# Empty compiler generated dependencies file for qualitative_test.
# This may be replaced when dependencies are built.
