file(REMOVE_RECURSE
  "CMakeFiles/qualitative_test.dir/qualitative_test.cc.o"
  "CMakeFiles/qualitative_test.dir/qualitative_test.cc.o.d"
  "qualitative_test"
  "qualitative_test.pdb"
  "qualitative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualitative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
