# Empty compiler generated dependencies file for variable_selection_test.
# This may be replaced when dependencies are built.
