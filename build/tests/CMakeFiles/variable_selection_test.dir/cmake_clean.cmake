file(REMOVE_RECURSE
  "CMakeFiles/variable_selection_test.dir/variable_selection_test.cc.o"
  "CMakeFiles/variable_selection_test.dir/variable_selection_test.cc.o.d"
  "variable_selection_test"
  "variable_selection_test.pdb"
  "variable_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
