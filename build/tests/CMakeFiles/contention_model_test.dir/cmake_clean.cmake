file(REMOVE_RECURSE
  "CMakeFiles/contention_model_test.dir/contention_model_test.cc.o"
  "CMakeFiles/contention_model_test.dir/contention_model_test.cc.o.d"
  "contention_model_test"
  "contention_model_test.pdb"
  "contention_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
