# Empty dependencies file for contention_model_test.
# This may be replaced when dependencies are built.
