file(REMOVE_RECURSE
  "CMakeFiles/global_planner_test.dir/global_planner_test.cc.o"
  "CMakeFiles/global_planner_test.dir/global_planner_test.cc.o.d"
  "global_planner_test"
  "global_planner_test.pdb"
  "global_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
