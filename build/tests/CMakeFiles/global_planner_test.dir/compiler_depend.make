# Empty compiler generated dependencies file for global_planner_test.
# This may be replaced when dependencies are built.
