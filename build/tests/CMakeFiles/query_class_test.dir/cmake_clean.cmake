file(REMOVE_RECURSE
  "CMakeFiles/query_class_test.dir/query_class_test.cc.o"
  "CMakeFiles/query_class_test.dir/query_class_test.cc.o.d"
  "query_class_test"
  "query_class_test.pdb"
  "query_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
