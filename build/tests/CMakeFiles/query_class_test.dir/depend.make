# Empty dependencies file for query_class_test.
# This may be replaced when dependencies are built.
