# Empty dependencies file for load_builder_test.
# This may be replaced when dependencies are built.
