file(REMOVE_RECURSE
  "CMakeFiles/load_builder_test.dir/load_builder_test.cc.o"
  "CMakeFiles/load_builder_test.dir/load_builder_test.cc.o.d"
  "load_builder_test"
  "load_builder_test.pdb"
  "load_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
