# Empty compiler generated dependencies file for diagnostics_test.
# This may be replaced when dependencies are built.
