file(REMOVE_RECURSE
  "CMakeFiles/diagnostics_test.dir/diagnostics_test.cc.o"
  "CMakeFiles/diagnostics_test.dir/diagnostics_test.cc.o.d"
  "diagnostics_test"
  "diagnostics_test.pdb"
  "diagnostics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
