file(REMOVE_RECURSE
  "CMakeFiles/access_path_test.dir/access_path_test.cc.o"
  "CMakeFiles/access_path_test.dir/access_path_test.cc.o.d"
  "access_path_test"
  "access_path_test.pdb"
  "access_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
