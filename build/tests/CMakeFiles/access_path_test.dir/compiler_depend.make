# Empty compiler generated dependencies file for access_path_test.
# This may be replaced when dependencies are built.
