file(REMOVE_RECURSE
  "CMakeFiles/system_monitor_test.dir/system_monitor_test.cc.o"
  "CMakeFiles/system_monitor_test.dir/system_monitor_test.cc.o.d"
  "system_monitor_test"
  "system_monitor_test.pdb"
  "system_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
