# Empty dependencies file for system_monitor_test.
# This may be replaced when dependencies are built.
