# Empty compiler generated dependencies file for pipeline_property_test.
# This may be replaced when dependencies are built.
