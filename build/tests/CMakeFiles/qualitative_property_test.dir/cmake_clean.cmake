file(REMOVE_RECURSE
  "CMakeFiles/qualitative_property_test.dir/qualitative_property_test.cc.o"
  "CMakeFiles/qualitative_property_test.dir/qualitative_property_test.cc.o.d"
  "qualitative_property_test"
  "qualitative_property_test.pdb"
  "qualitative_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualitative_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
