file(REMOVE_RECURSE
  "CMakeFiles/ols_test.dir/ols_test.cc.o"
  "CMakeFiles/ols_test.dir/ols_test.cc.o.d"
  "ols_test"
  "ols_test.pdb"
  "ols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
