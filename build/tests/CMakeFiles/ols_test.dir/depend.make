# Empty dependencies file for ols_test.
# This may be replaced when dependencies are built.
