# Empty dependencies file for cross_validation_test.
# This may be replaced when dependencies are built.
