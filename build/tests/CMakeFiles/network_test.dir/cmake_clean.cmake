file(REMOVE_RECURSE
  "CMakeFiles/network_test.dir/network_test.cc.o"
  "CMakeFiles/network_test.dir/network_test.cc.o.d"
  "network_test"
  "network_test.pdb"
  "network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
