# Empty dependencies file for prediction_interval_test.
# This may be replaced when dependencies are built.
