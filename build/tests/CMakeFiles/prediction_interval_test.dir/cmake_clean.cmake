file(REMOVE_RECURSE
  "CMakeFiles/prediction_interval_test.dir/prediction_interval_test.cc.o"
  "CMakeFiles/prediction_interval_test.dir/prediction_interval_test.cc.o.d"
  "prediction_interval_test"
  "prediction_interval_test.pdb"
  "prediction_interval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
