file(REMOVE_RECURSE
  "CMakeFiles/model_builder_test.dir/model_builder_test.cc.o"
  "CMakeFiles/model_builder_test.dir/model_builder_test.cc.o.d"
  "model_builder_test"
  "model_builder_test.pdb"
  "model_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
