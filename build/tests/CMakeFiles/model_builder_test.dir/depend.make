# Empty dependencies file for model_builder_test.
# This may be replaced when dependencies are built.
