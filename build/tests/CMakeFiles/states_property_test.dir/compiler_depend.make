# Empty compiler generated dependencies file for states_property_test.
# This may be replaced when dependencies are built.
