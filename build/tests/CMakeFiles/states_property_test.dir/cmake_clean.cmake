file(REMOVE_RECURSE
  "CMakeFiles/states_property_test.dir/states_property_test.cc.o"
  "CMakeFiles/states_property_test.dir/states_property_test.cc.o.d"
  "states_property_test"
  "states_property_test.pdb"
  "states_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/states_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
