file(REMOVE_RECURSE
  "CMakeFiles/states_test.dir/states_test.cc.o"
  "CMakeFiles/states_test.dir/states_test.cc.o.d"
  "states_test"
  "states_test.pdb"
  "states_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/states_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
