# Empty dependencies file for states_test.
# This may be replaced when dependencies are built.
