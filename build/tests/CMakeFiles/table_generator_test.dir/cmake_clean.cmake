file(REMOVE_RECURSE
  "CMakeFiles/table_generator_test.dir/table_generator_test.cc.o"
  "CMakeFiles/table_generator_test.dir/table_generator_test.cc.o.d"
  "table_generator_test"
  "table_generator_test.pdb"
  "table_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
