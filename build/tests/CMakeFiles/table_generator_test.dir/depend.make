# Empty dependencies file for table_generator_test.
# This may be replaced when dependencies are built.
