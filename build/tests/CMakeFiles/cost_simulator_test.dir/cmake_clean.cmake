file(REMOVE_RECURSE
  "CMakeFiles/cost_simulator_test.dir/cost_simulator_test.cc.o"
  "CMakeFiles/cost_simulator_test.dir/cost_simulator_test.cc.o.d"
  "cost_simulator_test"
  "cost_simulator_test.pdb"
  "cost_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
