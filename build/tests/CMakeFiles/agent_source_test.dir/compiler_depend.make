# Empty compiler generated dependencies file for agent_source_test.
# This may be replaced when dependencies are built.
