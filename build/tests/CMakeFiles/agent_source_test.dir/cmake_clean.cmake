file(REMOVE_RECURSE
  "CMakeFiles/agent_source_test.dir/agent_source_test.cc.o"
  "CMakeFiles/agent_source_test.dir/agent_source_test.cc.o.d"
  "agent_source_test"
  "agent_source_test.pdb"
  "agent_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
