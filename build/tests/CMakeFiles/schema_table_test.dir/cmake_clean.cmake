file(REMOVE_RECURSE
  "CMakeFiles/schema_table_test.dir/schema_table_test.cc.o"
  "CMakeFiles/schema_table_test.dir/schema_table_test.cc.o.d"
  "schema_table_test"
  "schema_table_test.pdb"
  "schema_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
