# Empty compiler generated dependencies file for schema_table_test.
# This may be replaced when dependencies are built.
