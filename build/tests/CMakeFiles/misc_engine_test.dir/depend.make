# Empty dependencies file for misc_engine_test.
# This may be replaced when dependencies are built.
