file(REMOVE_RECURSE
  "CMakeFiles/misc_engine_test.dir/misc_engine_test.cc.o"
  "CMakeFiles/misc_engine_test.dir/misc_engine_test.cc.o.d"
  "misc_engine_test"
  "misc_engine_test.pdb"
  "misc_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
