# Empty compiler generated dependencies file for distributions_test.
# This may be replaced when dependencies are built.
