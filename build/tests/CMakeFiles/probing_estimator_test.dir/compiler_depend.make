# Empty compiler generated dependencies file for probing_estimator_test.
# This may be replaced when dependencies are built.
