file(REMOVE_RECURSE
  "CMakeFiles/probing_estimator_test.dir/probing_estimator_test.cc.o"
  "CMakeFiles/probing_estimator_test.dir/probing_estimator_test.cc.o.d"
  "probing_estimator_test"
  "probing_estimator_test.pdb"
  "probing_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
