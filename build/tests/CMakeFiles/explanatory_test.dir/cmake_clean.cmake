file(REMOVE_RECURSE
  "CMakeFiles/explanatory_test.dir/explanatory_test.cc.o"
  "CMakeFiles/explanatory_test.dir/explanatory_test.cc.o.d"
  "explanatory_test"
  "explanatory_test.pdb"
  "explanatory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explanatory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
