# Empty dependencies file for explanatory_test.
# This may be replaced when dependencies are built.
