file(REMOVE_RECURSE
  "CMakeFiles/maintenance_test.dir/maintenance_test.cc.o"
  "CMakeFiles/maintenance_test.dir/maintenance_test.cc.o.d"
  "maintenance_test"
  "maintenance_test.pdb"
  "maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
