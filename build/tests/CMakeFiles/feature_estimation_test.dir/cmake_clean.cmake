file(REMOVE_RECURSE
  "CMakeFiles/feature_estimation_test.dir/feature_estimation_test.cc.o"
  "CMakeFiles/feature_estimation_test.dir/feature_estimation_test.cc.o.d"
  "feature_estimation_test"
  "feature_estimation_test.pdb"
  "feature_estimation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
