# Empty compiler generated dependencies file for feature_estimation_test.
# This may be replaced when dependencies are built.
