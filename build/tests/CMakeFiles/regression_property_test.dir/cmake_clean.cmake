file(REMOVE_RECURSE
  "CMakeFiles/regression_property_test.dir/regression_property_test.cc.o"
  "CMakeFiles/regression_property_test.dir/regression_property_test.cc.o.d"
  "regression_property_test"
  "regression_property_test.pdb"
  "regression_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
