# Empty dependencies file for regression_property_test.
# This may be replaced when dependencies are built.
