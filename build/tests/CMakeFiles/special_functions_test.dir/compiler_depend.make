# Empty compiler generated dependencies file for special_functions_test.
# This may be replaced when dependencies are built.
