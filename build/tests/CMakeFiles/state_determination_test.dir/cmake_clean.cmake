file(REMOVE_RECURSE
  "CMakeFiles/state_determination_test.dir/state_determination_test.cc.o"
  "CMakeFiles/state_determination_test.dir/state_determination_test.cc.o.d"
  "state_determination_test"
  "state_determination_test.pdb"
  "state_determination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_determination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
