# Empty dependencies file for local_dbs_test.
# This may be replaced when dependencies are built.
