file(REMOVE_RECURSE
  "CMakeFiles/local_dbs_test.dir/local_dbs_test.cc.o"
  "CMakeFiles/local_dbs_test.dir/local_dbs_test.cc.o.d"
  "local_dbs_test"
  "local_dbs_test.pdb"
  "local_dbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_dbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
