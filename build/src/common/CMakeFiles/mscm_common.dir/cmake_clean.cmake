file(REMOVE_RECURSE
  "CMakeFiles/mscm_common.dir/rng.cc.o"
  "CMakeFiles/mscm_common.dir/rng.cc.o.d"
  "CMakeFiles/mscm_common.dir/str_util.cc.o"
  "CMakeFiles/mscm_common.dir/str_util.cc.o.d"
  "CMakeFiles/mscm_common.dir/text_table.cc.o"
  "CMakeFiles/mscm_common.dir/text_table.cc.o.d"
  "libmscm_common.a"
  "libmscm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
