# Empty compiler generated dependencies file for mscm_common.
# This may be replaced when dependencies are built.
