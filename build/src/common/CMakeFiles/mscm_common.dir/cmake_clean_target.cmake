file(REMOVE_RECURSE
  "libmscm_common.a"
)
