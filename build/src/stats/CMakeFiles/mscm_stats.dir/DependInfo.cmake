
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/mscm_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/mscm_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/diagnostics.cc" "src/stats/CMakeFiles/mscm_stats.dir/diagnostics.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/diagnostics.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/mscm_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/linalg.cc" "src/stats/CMakeFiles/mscm_stats.dir/linalg.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/linalg.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/mscm_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/ols.cc" "src/stats/CMakeFiles/mscm_stats.dir/ols.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/ols.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/mscm_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/mscm_stats.dir/special_functions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mscm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
