file(REMOVE_RECURSE
  "CMakeFiles/mscm_stats.dir/correlation.cc.o"
  "CMakeFiles/mscm_stats.dir/correlation.cc.o.d"
  "CMakeFiles/mscm_stats.dir/descriptive.cc.o"
  "CMakeFiles/mscm_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/mscm_stats.dir/diagnostics.cc.o"
  "CMakeFiles/mscm_stats.dir/diagnostics.cc.o.d"
  "CMakeFiles/mscm_stats.dir/distributions.cc.o"
  "CMakeFiles/mscm_stats.dir/distributions.cc.o.d"
  "CMakeFiles/mscm_stats.dir/linalg.cc.o"
  "CMakeFiles/mscm_stats.dir/linalg.cc.o.d"
  "CMakeFiles/mscm_stats.dir/matrix.cc.o"
  "CMakeFiles/mscm_stats.dir/matrix.cc.o.d"
  "CMakeFiles/mscm_stats.dir/ols.cc.o"
  "CMakeFiles/mscm_stats.dir/ols.cc.o.d"
  "CMakeFiles/mscm_stats.dir/special_functions.cc.o"
  "CMakeFiles/mscm_stats.dir/special_functions.cc.o.d"
  "libmscm_stats.a"
  "libmscm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
