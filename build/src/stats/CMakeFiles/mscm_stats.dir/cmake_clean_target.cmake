file(REMOVE_RECURSE
  "libmscm_stats.a"
)
