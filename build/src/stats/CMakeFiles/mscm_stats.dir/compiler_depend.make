# Empty compiler generated dependencies file for mscm_stats.
# This may be replaced when dependencies are built.
