
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/access_path.cc" "src/engine/CMakeFiles/mscm_engine.dir/access_path.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/access_path.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/mscm_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/mscm_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/engine/CMakeFiles/mscm_engine.dir/explain.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/explain.cc.o.d"
  "/root/repo/src/engine/index.cc" "src/engine/CMakeFiles/mscm_engine.dir/index.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/index.cc.o.d"
  "/root/repo/src/engine/predicate.cc" "src/engine/CMakeFiles/mscm_engine.dir/predicate.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/predicate.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/engine/CMakeFiles/mscm_engine.dir/query.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/query.cc.o.d"
  "/root/repo/src/engine/schema.cc" "src/engine/CMakeFiles/mscm_engine.dir/schema.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/schema.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/mscm_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/table_generator.cc" "src/engine/CMakeFiles/mscm_engine.dir/table_generator.cc.o" "gcc" "src/engine/CMakeFiles/mscm_engine.dir/table_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mscm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
