# Empty dependencies file for mscm_engine.
# This may be replaced when dependencies are built.
