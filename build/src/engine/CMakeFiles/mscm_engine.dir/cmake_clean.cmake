file(REMOVE_RECURSE
  "CMakeFiles/mscm_engine.dir/access_path.cc.o"
  "CMakeFiles/mscm_engine.dir/access_path.cc.o.d"
  "CMakeFiles/mscm_engine.dir/database.cc.o"
  "CMakeFiles/mscm_engine.dir/database.cc.o.d"
  "CMakeFiles/mscm_engine.dir/executor.cc.o"
  "CMakeFiles/mscm_engine.dir/executor.cc.o.d"
  "CMakeFiles/mscm_engine.dir/explain.cc.o"
  "CMakeFiles/mscm_engine.dir/explain.cc.o.d"
  "CMakeFiles/mscm_engine.dir/index.cc.o"
  "CMakeFiles/mscm_engine.dir/index.cc.o.d"
  "CMakeFiles/mscm_engine.dir/predicate.cc.o"
  "CMakeFiles/mscm_engine.dir/predicate.cc.o.d"
  "CMakeFiles/mscm_engine.dir/query.cc.o"
  "CMakeFiles/mscm_engine.dir/query.cc.o.d"
  "CMakeFiles/mscm_engine.dir/schema.cc.o"
  "CMakeFiles/mscm_engine.dir/schema.cc.o.d"
  "CMakeFiles/mscm_engine.dir/table.cc.o"
  "CMakeFiles/mscm_engine.dir/table.cc.o.d"
  "CMakeFiles/mscm_engine.dir/table_generator.cc.o"
  "CMakeFiles/mscm_engine.dir/table_generator.cc.o.d"
  "libmscm_engine.a"
  "libmscm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
