file(REMOVE_RECURSE
  "libmscm_engine.a"
)
