# Empty compiler generated dependencies file for mscm_cluster.
# This may be replaced when dependencies are built.
