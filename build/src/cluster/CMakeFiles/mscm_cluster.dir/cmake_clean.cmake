file(REMOVE_RECURSE
  "CMakeFiles/mscm_cluster.dir/hierarchical.cc.o"
  "CMakeFiles/mscm_cluster.dir/hierarchical.cc.o.d"
  "libmscm_cluster.a"
  "libmscm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
