file(REMOVE_RECURSE
  "libmscm_cluster.a"
)
