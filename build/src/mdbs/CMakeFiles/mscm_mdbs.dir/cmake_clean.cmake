file(REMOVE_RECURSE
  "CMakeFiles/mscm_mdbs.dir/local_dbs.cc.o"
  "CMakeFiles/mscm_mdbs.dir/local_dbs.cc.o.d"
  "libmscm_mdbs.a"
  "libmscm_mdbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_mdbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
