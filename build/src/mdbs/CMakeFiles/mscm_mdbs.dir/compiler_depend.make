# Empty compiler generated dependencies file for mscm_mdbs.
# This may be replaced when dependencies are built.
