file(REMOVE_RECURSE
  "libmscm_mdbs.a"
)
