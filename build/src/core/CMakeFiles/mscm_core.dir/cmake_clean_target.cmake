file(REMOVE_RECURSE
  "libmscm_core.a"
)
