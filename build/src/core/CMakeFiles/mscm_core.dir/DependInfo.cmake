
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent_source.cc" "src/core/CMakeFiles/mscm_core.dir/agent_source.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/agent_source.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/mscm_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/mscm_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/cross_validation.cc" "src/core/CMakeFiles/mscm_core.dir/cross_validation.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/cross_validation.cc.o.d"
  "/root/repo/src/core/explanatory.cc" "src/core/CMakeFiles/mscm_core.dir/explanatory.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/explanatory.cc.o.d"
  "/root/repo/src/core/global_planner.cc" "src/core/CMakeFiles/mscm_core.dir/global_planner.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/global_planner.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/core/CMakeFiles/mscm_core.dir/maintenance.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/maintenance.cc.o.d"
  "/root/repo/src/core/model_builder.cc" "src/core/CMakeFiles/mscm_core.dir/model_builder.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/model_builder.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/mscm_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/probing_estimator.cc" "src/core/CMakeFiles/mscm_core.dir/probing_estimator.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/probing_estimator.cc.o.d"
  "/root/repo/src/core/qualitative.cc" "src/core/CMakeFiles/mscm_core.dir/qualitative.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/qualitative.cc.o.d"
  "/root/repo/src/core/query_class.cc" "src/core/CMakeFiles/mscm_core.dir/query_class.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/query_class.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/mscm_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/report.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/mscm_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/state_determination.cc" "src/core/CMakeFiles/mscm_core.dir/state_determination.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/state_determination.cc.o.d"
  "/root/repo/src/core/states.cc" "src/core/CMakeFiles/mscm_core.dir/states.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/states.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/core/CMakeFiles/mscm_core.dir/validation.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/validation.cc.o.d"
  "/root/repo/src/core/variable_selection.cc" "src/core/CMakeFiles/mscm_core.dir/variable_selection.cc.o" "gcc" "src/core/CMakeFiles/mscm_core.dir/variable_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mscm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mscm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mscm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mscm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mdbs/CMakeFiles/mscm_mdbs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
