# Empty compiler generated dependencies file for mscm_core.
# This may be replaced when dependencies are built.
