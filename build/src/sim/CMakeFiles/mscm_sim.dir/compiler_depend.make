# Empty compiler generated dependencies file for mscm_sim.
# This may be replaced when dependencies are built.
