file(REMOVE_RECURSE
  "CMakeFiles/mscm_sim.dir/contention_model.cc.o"
  "CMakeFiles/mscm_sim.dir/contention_model.cc.o.d"
  "CMakeFiles/mscm_sim.dir/cost_simulator.cc.o"
  "CMakeFiles/mscm_sim.dir/cost_simulator.cc.o.d"
  "CMakeFiles/mscm_sim.dir/load_builder.cc.o"
  "CMakeFiles/mscm_sim.dir/load_builder.cc.o.d"
  "CMakeFiles/mscm_sim.dir/network.cc.o"
  "CMakeFiles/mscm_sim.dir/network.cc.o.d"
  "CMakeFiles/mscm_sim.dir/performance_profile.cc.o"
  "CMakeFiles/mscm_sim.dir/performance_profile.cc.o.d"
  "CMakeFiles/mscm_sim.dir/system_monitor.cc.o"
  "CMakeFiles/mscm_sim.dir/system_monitor.cc.o.d"
  "libmscm_sim.a"
  "libmscm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
