
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/contention_model.cc" "src/sim/CMakeFiles/mscm_sim.dir/contention_model.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/contention_model.cc.o.d"
  "/root/repo/src/sim/cost_simulator.cc" "src/sim/CMakeFiles/mscm_sim.dir/cost_simulator.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/cost_simulator.cc.o.d"
  "/root/repo/src/sim/load_builder.cc" "src/sim/CMakeFiles/mscm_sim.dir/load_builder.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/load_builder.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/mscm_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/performance_profile.cc" "src/sim/CMakeFiles/mscm_sim.dir/performance_profile.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/performance_profile.cc.o.d"
  "/root/repo/src/sim/system_monitor.cc" "src/sim/CMakeFiles/mscm_sim.dir/system_monitor.cc.o" "gcc" "src/sim/CMakeFiles/mscm_sim.dir/system_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mscm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mscm_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
