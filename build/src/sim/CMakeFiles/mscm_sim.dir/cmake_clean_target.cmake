file(REMOVE_RECURSE
  "libmscm_sim.a"
)
