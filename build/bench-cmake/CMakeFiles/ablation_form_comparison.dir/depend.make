# Empty dependencies file for ablation_form_comparison.
# This may be replaced when dependencies are built.
