file(REMOVE_RECURSE
  "../bench/ablation_form_comparison"
  "../bench/ablation_form_comparison.pdb"
  "CMakeFiles/ablation_form_comparison.dir/ablation_form_comparison.cpp.o"
  "CMakeFiles/ablation_form_comparison.dir/ablation_form_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_form_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
