file(REMOVE_RECURSE
  "../bench/ablation_probing_estimation"
  "../bench/ablation_probing_estimation.pdb"
  "CMakeFiles/ablation_probing_estimation.dir/ablation_probing_estimation.cpp.o"
  "CMakeFiles/ablation_probing_estimation.dir/ablation_probing_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probing_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
