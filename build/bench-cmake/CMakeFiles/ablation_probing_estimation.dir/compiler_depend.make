# Empty compiler generated dependencies file for ablation_probing_estimation.
# This may be replaced when dependencies are built.
