# Empty dependencies file for fig01_contention_effect.
# This may be replaced when dependencies are built.
