file(REMOVE_RECURSE
  "../bench/fig01_contention_effect"
  "../bench/fig01_contention_effect.pdb"
  "CMakeFiles/fig01_contention_effect.dir/fig01_contention_effect.cpp.o"
  "CMakeFiles/fig01_contention_effect.dir/fig01_contention_effect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_contention_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
