# Empty dependencies file for table4_cost_models.
# This may be replaced when dependencies are built.
