file(REMOVE_RECURSE
  "../bench/table4_cost_models"
  "../bench/table4_cost_models.pdb"
  "CMakeFiles/table4_cost_models.dir/table4_cost_models.cpp.o"
  "CMakeFiles/table4_cost_models.dir/table4_cost_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cost_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
