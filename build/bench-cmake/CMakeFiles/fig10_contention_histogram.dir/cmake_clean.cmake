file(REMOVE_RECURSE
  "../bench/fig10_contention_histogram"
  "../bench/fig10_contention_histogram.pdb"
  "CMakeFiles/fig10_contention_histogram.dir/fig10_contention_histogram.cpp.o"
  "CMakeFiles/fig10_contention_histogram.dir/fig10_contention_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_contention_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
