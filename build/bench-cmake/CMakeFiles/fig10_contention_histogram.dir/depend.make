# Empty dependencies file for fig10_contention_histogram.
# This may be replaced when dependencies are built.
