file(REMOVE_RECURSE
  "../bench/ablation_states_sweep"
  "../bench/ablation_states_sweep.pdb"
  "CMakeFiles/ablation_states_sweep.dir/ablation_states_sweep.cpp.o"
  "CMakeFiles/ablation_states_sweep.dir/ablation_states_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_states_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
