# Empty compiler generated dependencies file for ablation_states_sweep.
# This may be replaced when dependencies are built.
