file(REMOVE_RECURSE
  "../bench/ext_all_classes"
  "../bench/ext_all_classes.pdb"
  "CMakeFiles/ext_all_classes.dir/ext_all_classes.cpp.o"
  "CMakeFiles/ext_all_classes.dir/ext_all_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_all_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
