# Empty dependencies file for ext_all_classes.
# This may be replaced when dependencies are built.
