# Empty compiler generated dependencies file for micro_engine.
# This may be replaced when dependencies are built.
