file(REMOVE_RECURSE
  "../bench/table6_iupma_vs_icma"
  "../bench/table6_iupma_vs_icma.pdb"
  "CMakeFiles/table6_iupma_vs_icma.dir/table6_iupma_vs_icma.cpp.o"
  "CMakeFiles/table6_iupma_vs_icma.dir/table6_iupma_vs_icma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_iupma_vs_icma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
