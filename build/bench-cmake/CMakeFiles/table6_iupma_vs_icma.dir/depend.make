# Empty dependencies file for table6_iupma_vs_icma.
# This may be replaced when dependencies are built.
