file(REMOVE_RECURSE
  "../bench/ablation_sample_size"
  "../bench/ablation_sample_size.pdb"
  "CMakeFiles/ablation_sample_size.dir/ablation_sample_size.cpp.o"
  "CMakeFiles/ablation_sample_size.dir/ablation_sample_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
