# Empty compiler generated dependencies file for ablation_sample_size.
# This may be replaced when dependencies are built.
