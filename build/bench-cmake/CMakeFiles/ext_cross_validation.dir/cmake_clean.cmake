file(REMOVE_RECURSE
  "../bench/ext_cross_validation"
  "../bench/ext_cross_validation.pdb"
  "CMakeFiles/ext_cross_validation.dir/ext_cross_validation.cpp.o"
  "CMakeFiles/ext_cross_validation.dir/ext_cross_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cross_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
