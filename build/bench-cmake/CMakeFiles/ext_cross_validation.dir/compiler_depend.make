# Empty compiler generated dependencies file for ext_cross_validation.
# This may be replaced when dependencies are built.
