file(REMOVE_RECURSE
  "../bench/table5_model_stats"
  "../bench/table5_model_stats.pdb"
  "CMakeFiles/table5_model_stats.dir/table5_model_stats.cpp.o"
  "CMakeFiles/table5_model_stats.dir/table5_model_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_model_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
