
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_model_stats.cpp" "bench-cmake/CMakeFiles/table5_model_stats.dir/table5_model_stats.cpp.o" "gcc" "bench-cmake/CMakeFiles/table5_model_stats.dir/table5_model_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mscm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mscm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mscm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mdbs/CMakeFiles/mscm_mdbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mscm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mscm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mscm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
