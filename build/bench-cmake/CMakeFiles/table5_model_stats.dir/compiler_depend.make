# Empty compiler generated dependencies file for table5_model_stats.
# This may be replaced when dependencies are built.
