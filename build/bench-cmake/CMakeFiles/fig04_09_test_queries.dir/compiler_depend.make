# Empty compiler generated dependencies file for fig04_09_test_queries.
# This may be replaced when dependencies are built.
