file(REMOVE_RECURSE
  "../bench/fig04_09_test_queries"
  "../bench/fig04_09_test_queries.pdb"
  "CMakeFiles/fig04_09_test_queries.dir/fig04_09_test_queries.cpp.o"
  "CMakeFiles/fig04_09_test_queries.dir/fig04_09_test_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_09_test_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
