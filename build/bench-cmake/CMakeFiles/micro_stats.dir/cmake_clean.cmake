file(REMOVE_RECURSE
  "../bench/micro_stats"
  "../bench/micro_stats.pdb"
  "CMakeFiles/micro_stats.dir/micro_stats.cpp.o"
  "CMakeFiles/micro_stats.dir/micro_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
