file(REMOVE_RECURSE
  "CMakeFiles/clustered_workload.dir/clustered_workload.cpp.o"
  "CMakeFiles/clustered_workload.dir/clustered_workload.cpp.o.d"
  "clustered_workload"
  "clustered_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
