# Empty dependencies file for clustered_workload.
# This may be replaced when dependencies are built.
