file(REMOVE_RECURSE
  "CMakeFiles/federated_join_planning.dir/federated_join_planning.cpp.o"
  "CMakeFiles/federated_join_planning.dir/federated_join_planning.cpp.o.d"
  "federated_join_planning"
  "federated_join_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_join_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
