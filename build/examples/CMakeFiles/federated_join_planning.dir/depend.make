# Empty dependencies file for federated_join_planning.
# This may be replaced when dependencies are built.
