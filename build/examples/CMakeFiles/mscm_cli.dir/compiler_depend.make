# Empty compiler generated dependencies file for mscm_cli.
# This may be replaced when dependencies are built.
