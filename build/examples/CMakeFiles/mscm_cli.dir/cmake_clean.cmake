file(REMOVE_RECURSE
  "CMakeFiles/mscm_cli.dir/mscm_cli.cpp.o"
  "CMakeFiles/mscm_cli.dir/mscm_cli.cpp.o.d"
  "mscm_cli"
  "mscm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mscm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
