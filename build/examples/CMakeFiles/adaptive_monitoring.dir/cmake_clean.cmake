file(REMOVE_RECURSE
  "CMakeFiles/adaptive_monitoring.dir/adaptive_monitoring.cpp.o"
  "CMakeFiles/adaptive_monitoring.dir/adaptive_monitoring.cpp.o.d"
  "adaptive_monitoring"
  "adaptive_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
