# Empty dependencies file for adaptive_monitoring.
# This may be replaced when dependencies are built.
