// Federated query planning — the paper's motivating scenario (§1): a global
// query optimizer must decide WHERE to execute component queries, and it can
// only do that with local cost models it derived itself.
//
// Setup: two autonomous local DBSs ("alpha", Oracle-like; "beta", DB2-like)
// both hold replicas of the same logical tables. The MDBS derives
// multi-states cost models for each site's join class and registers them in
// the online EstimationService (src/runtime): per-site contention trackers
// cache the probing cost, and the planner prices both candidate placements
// of every join in ONE EstimateBatch call — no probing query on the
// estimation path — routing each query to whichever replica is currently
// cheaper. Decisions flip as the sites' contention levels drift apart.

#include <cstdio>

#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/explanatory.h"
#include "core/model_builder.h"
#include "mdbs/agent.h"
#include "mdbs/local_dbs.h"
#include "runtime/estimation_service.h"
#include "sim/network.h"

namespace {

using namespace mscm;

mdbs::LocalDbsConfig MakeSite(const std::string& name, uint64_t seed) {
  mdbs::LocalDbsConfig config;
  config.site_name = name;
  config.profile = name == "beta" ? sim::PerformanceProfile::Beta()
                                  : sim::PerformanceProfile::Alpha();
  config.tables.num_tables = 6;
  config.tables.scale = 0.3;
  config.load.regime = sim::LoadRegime::kRandomWalk;
  config.load.min_processes = 10.0;
  config.load.max_processes = 110.0;
  config.seed = seed;  // same seed on purpose: replicated databases
  return config;
}

}  // namespace

int main() {
  // Both sites hold the same data (same generation seed) but run different
  // DBMSs on machines with independent load histories.
  mdbs::LocalDbs alpha(MakeSite("alpha", 77));
  mdbs::LocalDbs beta(MakeSite("beta", 77));
  mdbs::MdbsAgent agent_alpha(&alpha);
  mdbs::MdbsAgent agent_beta(&beta);

  const core::QueryClassId cls = core::QueryClassId::kJoinNoIndex;

  // 1. The MDBS derives a multi-states cost model per site and registers it
  //    with the online estimation service. Each site also gets a contention
  //    tracker probing through its MDBS agent.
  std::printf("Deriving local cost models (multi-states query sampling)…\n");
  runtime::EstimationServiceConfig service_config;
  service_config.probe_ttl = std::chrono::hours(1);  // probing is manual here
  // State-keyed estimate cache: when the optimizer re-prices a placement it
  // has already priced under the same contention state, the answer comes
  // from the memo (see estimate_cache hits in the closing stats).
  service_config.cache.capacity_per_thread = 1024;
  runtime::EstimationService service(service_config);
  for (mdbs::LocalDbs* site : {&alpha, &beta}) {
    core::AgentObservationSource source(site, cls, 5 + site->profile().name.size());
    core::ModelBuildOptions options;
    options.algorithm = core::StateAlgorithm::kIupma;
    options.sample_size = 250;
    core::BuildReport report = core::BuildCostModel(cls, source, options);
    std::printf("  site %-5s : %d states, R^2 = %.3f\n", site->name().c_str(),
                report.model.states().num_states(), report.model.r_squared());
    service.RegisterModel(site->name(), std::move(report.model));
  }
  service.RegisterSite(&agent_alpha);
  service.RegisterSite(&agent_beta);

  // Network links from the global server to each site: beta sits behind a
  // slower, busier link, so shipping large results from it costs real time.
  sim::NetworkLinkConfig link_alpha_config;
  link_alpha_config.name = "to-alpha";
  link_alpha_config.bandwidth_bytes_per_sec = 4.0e6;
  link_alpha_config.mean_utilization = 0.2;
  sim::NetworkLinkConfig link_beta_config;
  link_beta_config.name = "to-beta";
  link_beta_config.bandwidth_bytes_per_sec = 1.0e6;
  link_beta_config.mean_utilization = 0.45;
  sim::NetworkLink link_alpha(link_alpha_config, 171);
  sim::NetworkLink link_beta(link_beta_config, 172);

  // 2. Route a stream of join queries. Each round the trackers refresh the
  //    sites' contention states; the planner then prices both placements in
  //    one batched service call and picks the cheaper total.
  std::printf("\nRouting join queries to the cheaper replica:\n\n");
  TextTable table({"query", "probe alpha (s)", "probe beta (s)",
                   "est alpha (s)", "est beta (s)", "chosen",
                   "actual alpha (s)", "actual beta (s)", "right?"});

  core::QuerySampler sampler(&alpha.database(), alpha.profile().planner, 99);
  int correct = 0;
  double routed_cost = 0.0;
  double best_cost = 0.0;
  constexpr int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    // Load and link conditions drift between queries.
    agent_alpha.AdvanceLoad(600.0);
    agent_beta.AdvanceLoad(600.0);
    link_alpha.Advance(600.0);
    link_beta.Advance(600.0);

    const engine::JoinQuery query = sampler.SampleJoin(cls);

    // Refresh the cached contention state of each site (in a deployment the
    // background probers do this on their own clock).
    service.ProbeNow("alpha");
    service.ProbeNow("beta");
    const double probe_alpha = service.CurrentProbe("alpha").probing_cost;
    const double probe_beta = service.CurrentProbe("beta").probing_cost;

    // Planning-time feature vectors from catalog statistics: the optimizer
    // never executes the query to learn its own result size.
    const std::vector<double> features_alpha = core::EstimateJoinFeatures(
        alpha.database(), query, alpha.profile().planner);
    const std::vector<double> features_beta = core::EstimateJoinFeatures(
        beta.database(), query, beta.profile().planner);

    // Shipping estimate: estimated result bytes over the link's current
    // conditions (gauged by a link probe of 64 KB).
    const double est_result_bytes =
        features_alpha[4] * 1000.0 * features_alpha[8];  // N_rt * TL_rt
    auto shipping_estimate = [est_result_bytes](sim::NetworkLink& link) {
      const double probe_seconds = link.Probe();
      return probe_seconds * est_result_bytes / (64.0 * 1024.0);
    };

    runtime::PlacementCandidate cand_alpha;
    cand_alpha.request.site = "alpha";
    cand_alpha.request.class_id = cls;
    cand_alpha.request.features = features_alpha;
    cand_alpha.shipping_seconds = shipping_estimate(link_alpha);
    runtime::PlacementCandidate cand_beta;
    cand_beta.request.site = "beta";
    cand_beta.request.class_id = cls;
    cand_beta.request.features = features_beta;
    cand_beta.shipping_seconds = shipping_estimate(link_beta);

    const runtime::PlacementResult decision =
        service.ChoosePlacement({cand_alpha, cand_beta});

    // A global optimizer enumerating join orders revisits the same component
    // placement many times; those re-pricings hit the estimate cache (the
    // sites' contention states have not moved within this round).
    const runtime::PlacementResult repriced =
        service.ChoosePlacement({cand_alpha, cand_beta});
    if (repriced.chosen != decision.chosen) {
      std::printf("  (re-priced placement diverged — unexpected)\n");
    }

    // Ground truth: actually run the join at both sites and ship the result.
    const auto run_alpha = agent_alpha.RunJoin(query);
    const auto run_beta = agent_beta.RunJoin(query);
    const double result_bytes = run_alpha.execution.work.result_bytes;
    const double actual_alpha =
        run_alpha.elapsed_seconds + link_alpha.Transfer(result_bytes);
    const double actual_beta =
        run_beta.elapsed_seconds + link_beta.Transfer(result_bytes);
    const bool chose_alpha = decision.chosen == 0;
    const bool right =
        chose_alpha == (actual_alpha <= actual_beta);
    if (right) ++correct;
    routed_cost += chose_alpha ? actual_alpha : actual_beta;
    best_cost += std::min(actual_alpha, actual_beta);

    table.AddRow({Format("J%d", i + 1), Format("%.2f", probe_alpha),
                  Format("%.2f", probe_beta),
                  Format("%.1f", decision.total_seconds[0]),
                  Format("%.1f", decision.total_seconds[1]),
                  chose_alpha ? "alpha" : "beta",
                  Format("%.1f", actual_alpha), Format("%.1f", actual_beta),
                  right ? "yes" : "no"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nrouting picked the truly cheaper replica %d/%d times;\n"
      "total routed cost %.1f s vs %.1f s for an oracle router "
      "(%.0f%% of optimal).\n",
      correct, kQueries, routed_cost, best_cost,
      100.0 * best_cost / routed_cost);

  std::printf("\nservice runtime stats:\n%s\n",
              service.Stats().ToString().c_str());
  return 0;
}
