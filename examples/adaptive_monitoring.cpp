// Adaptive monitoring — probing-cost estimation from system statistics
// (paper §3.3, Eq. 2) used for live contention-state tracking.
//
// Instead of running the probing query before every cost estimate, the MDBS
// agent fits a regression of probing cost on monitor statistics once, then
// tracks the contention state from cheap counter reads while the machine's
// load regime shifts (idle -> busy -> thrashing -> recovering).

#include <cstdio>

#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/probing_estimator.h"
#include "mdbs/local_dbs.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config;
  config.site_name = "mon-site";
  config.tables.num_tables = 5;
  config.tables.scale = 0.2;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.min_processes = 0.0;
  config.load.max_processes = 120.0;
  config.seed = 21;
  mdbs::LocalDbs site(config);

  // 1. Calibrate Eq. 2: paired (monitor snapshot, observed probing cost).
  std::vector<sim::SystemStats> snapshots;
  std::vector<double> probes;
  for (int i = 0; i < 200; ++i) {
    site.ResampleLoad();
    snapshots.push_back(site.MonitorSnapshot());
    probes.push_back(site.RunProbingQuery());
  }
  const core::ProbingCostEstimator estimator =
      core::ProbingCostEstimator::Fit(snapshots, probes);
  std::printf("Probing-cost estimator (Eq. 2)\n------------------------------\n");
  std::printf("%s\n", estimator.ToString().c_str());
  std::printf("significant statistics kept: ");
  for (size_t i = 0; i < estimator.selected_stats().size(); ++i) {
    std::printf("%s%s", i > 0 ? ", " : "",
                core::ProbingCostEstimator::StatNames()
                    [static_cast<size_t>(estimator.selected_stats()[i])]
                        .c_str());
  }
  std::printf("\n\n");

  // 2. Derive a multi-states cost model (observed probes) whose states we
  //    will track live.
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  core::AgentObservationSource source(&site, cls, 22);
  core::ModelBuildOptions options;
  options.sample_size = 250;
  const core::BuildReport report = core::BuildCostModel(cls, source, options);
  std::printf("cost model: %d contention states, boundaries at %s\n\n",
              report.model.states().num_states(),
              report.model.states().ToString().c_str());

  // 3. Live tracking through a day-in-the-life load trace.
  struct Phase {
    const char* label;
    double processes;
  };
  const Phase kTrace[] = {
      {"overnight (idle)", 3},     {"morning ramp", 30},
      {"mid-morning", 55},         {"lunch spike", 95},
      {"afternoon thrash", 120},   {"evening recovery", 60},
      {"night batch", 40},         {"late night", 8},
  };

  TextTable table({"phase", "processes", "est probe (s)", "true probe (s)",
                   "est state", "true state"});
  int agree = 0;
  for (const Phase& phase : kTrace) {
    site.SetLoadProcesses(phase.processes);
    site.AdvanceLoad(60.0);  // let the monitor's load averages settle a bit
    const sim::SystemStats snap = site.MonitorSnapshot();
    const double est_probe = estimator.Estimate(snap);
    const double true_probe = site.RunProbingQuery();
    const int est_state = report.model.states().StateOf(est_probe);
    const int true_state = report.model.states().StateOf(true_probe);
    if (est_state == true_state) ++agree;
    table.AddRow({phase.label, Format("%.0f", phase.processes),
                  Format("%.2f", est_probe), Format("%.2f", true_probe),
                  Format("%d", est_state), Format("%d", true_state)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nstate agreement without running the probing query: %d/%zu "
              "phases\n",
              agree, std::size(kTrace));
  return 0;
}
