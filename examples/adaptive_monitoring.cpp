// Adaptive monitoring — probing-cost estimation from system statistics
// (paper §3.3, Eq. 2) feeding the online runtime's contention tracker.
//
// Instead of running the probing query before every cost estimate, the MDBS
// agent fits a regression of probing cost on monitor statistics once, then
// registers the site with the EstimationService using the *estimator* as the
// probe: the tracker refreshes the cached contention state from cheap
// counter reads while the machine's load regime shifts (idle -> busy ->
// thrashing -> recovering), and cost estimates are served from the cache.
// When the cache outlives its TTL, the service still answers — from the
// last known state, flagged stale.

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/probing_estimator.h"
#include "mdbs/agent.h"
#include "mdbs/local_dbs.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config;
  config.site_name = "mon-site";
  config.tables.num_tables = 5;
  config.tables.scale = 0.2;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.min_processes = 0.0;
  config.load.max_processes = 120.0;
  config.seed = 21;
  mdbs::LocalDbs site(config);
  mdbs::MdbsAgent agent(&site);

  // 1. Calibrate Eq. 2: paired (monitor snapshot, observed probing cost).
  std::vector<sim::SystemStats> snapshots;
  std::vector<double> probes;
  for (int i = 0; i < 200; ++i) {
    site.ResampleLoad();
    snapshots.push_back(site.MonitorSnapshot());
    probes.push_back(site.RunProbingQuery());
  }
  const core::ProbingCostEstimator estimator =
      core::ProbingCostEstimator::Fit(snapshots, probes);
  std::printf("Probing-cost estimator (Eq. 2)\n------------------------------\n");
  std::printf("%s\n", estimator.ToString().c_str());
  std::printf("significant statistics kept: ");
  for (size_t i = 0; i < estimator.selected_stats().size(); ++i) {
    std::printf("%s%s", i > 0 ? ", " : "",
                core::ProbingCostEstimator::StatNames()
                    [static_cast<size_t>(estimator.selected_stats()[i])]
                        .c_str());
  }
  std::printf("\n\n");

  // 2. Derive a multi-states cost model (observed probes) and stand up the
  //    online service: the site's tracker probes via Eq. 2 — a counter read,
  //    not a query.
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  core::AgentObservationSource source(&site, cls, 22);
  core::ModelBuildOptions options;
  options.sample_size = 250;
  core::BuildReport report = core::BuildCostModel(cls, source, options);
  const core::ContentionStates states = report.model.states();
  std::printf("cost model: %d contention states, boundaries at %s\n\n",
              states.num_states(), states.ToString().c_str());

  runtime::EstimationServiceConfig service_config;
  service_config.probe_ttl = std::chrono::milliseconds(100);
  runtime::EstimationService service(service_config);
  service.RegisterModel("mon-site", std::move(report.model));
  service.RegisterSite("mon-site", [&agent, &estimator] {
    return estimator.Estimate(agent.MonitorSnapshot());
  });

  // A fixed representative query to price in every phase: a mid-size scan
  // (paper Table 3 unary variables), so its cost moves with the state.
  std::vector<double> features = {
      /*N_t=*/20.0,  /*N_it=*/10.0, /*N_rt=*/5.0,   /*TL_t=*/100.0,
      /*TL_rt=*/60.0, /*L_t=*/2000.0, /*L_rt=*/300.0};

  // 3. Live tracking through a day-in-the-life load trace.
  struct Phase {
    const char* label;
    double processes;
  };
  const Phase kTrace[] = {
      {"overnight (idle)", 3},     {"morning ramp", 30},
      {"mid-morning", 55},         {"lunch spike", 95},
      {"afternoon thrash", 120},   {"evening recovery", 60},
      {"night batch", 40},         {"late night", 8},
  };

  TextTable table({"phase", "processes", "est probe (s)", "true probe (s)",
                   "est state", "true state", "est cost (s)"});
  int agree = 0;
  for (const Phase& phase : kTrace) {
    agent.SetLoadProcesses(phase.processes);
    agent.AdvanceLoad(60.0);  // let the monitor's load averages settle a bit
    service.ProbeNow("mon-site");  // tracker reads counters, not the probe query

    runtime::EstimateRequest request;
    request.site = "mon-site";
    request.class_id = cls;
    request.features = features;
    const runtime::EstimateResponse response = service.Estimate(request);

    const double true_probe = agent.RunProbingQuery();
    const int true_state = states.StateOf(true_probe);
    if (response.state == true_state) ++agree;
    table.AddRow({phase.label, Format("%.0f", phase.processes),
                  Format("%.2f", response.probing_cost),
                  Format("%.2f", true_probe), Format("%d", response.state),
                  Format("%d", true_state),
                  Format("%.2f", response.estimate_seconds)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nstate agreement without running the probing query: %d/%zu "
              "phases\n\n",
              agree, std::size(kTrace));

  // 4. Staleness fallback: when the tracker stops refreshing (slow or dead
  //    prober), the service keeps serving the last known state — flagged.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // > TTL
  runtime::EstimateRequest request;
  request.site = "mon-site";
  request.class_id = cls;
  request.features = features;
  const runtime::EstimateResponse stale = service.Estimate(request);
  std::printf("after the prober goes quiet past the %lld ms TTL: "
              "estimate %.2f s from state %d, stale_probe=%s\n\n",
              static_cast<long long>(100), stale.estimate_seconds, stale.state,
              stale.stale_probe ? "true" : "false");

  // 5. An occasionally-changing factor (paper §2): the disk degrades 3x —
  //    wear, a RAID rebuild, a noisy neighbor. The monitor statistics do not
  //    move, so the Eq. 2 gauge cannot see it, but observed query costs
  //    balloon. The refresh daemon watches the estimated-vs-observed error,
  //    re-derives through the agent when it trips, and atomically swaps the
  //    corrected model in — estimates served throughout, flagged stale while
  //    the refresh is pending.
  agent.SetLoadProcesses(40);
  agent.AdvanceLoad(60.0);
  service.ProbeNow("mon-site");
  const runtime::EstimateResponse before = service.Estimate(request);

  agent.SetEnvironmentShift(sim::EnvironmentShift::DegradedDisk(3.0));

  core::AgentObservationSource refresh_source(&site, cls, 77);
  runtime::ModelRefreshConfig refresh_config;
  refresh_config.min_reports = 12;
  refresh_config.drift_window = 12;
  refresh_config.error_threshold = 0.5;
  refresh_config.rederive.build.sample_size = 120;
  runtime::ModelRefreshDaemon daemon(&service, refresh_config);
  daemon.Watch("mon-site", cls, &refresh_source);

  // Feedback: observed costs of queries the optimizer priced anyway (here,
  // fresh sample queries stand in for the production workload).
  core::AgentObservationSource workload(&site, cls, 78);
  int fed = 0;
  while (daemon.Stats().refreshes_succeeded < 1 && fed < 80) {
    const core::Observation obs = workload.Draw();
    daemon.ReportObserved("mon-site", cls, obs.features, obs.cost);
    ++fed;
  }

  service.ProbeNow("mon-site");
  const runtime::EstimateResponse after = service.Estimate(request);
  std::printf("disk degrades 3x (invisible to the monitor gauge):\n");
  std::printf("  estimate before refresh: %.2f s (model derived pre-shift)\n",
              before.estimate_seconds);
  std::printf("  refresh tripped after %d feedback reports\n", fed);
  std::printf("  estimate after refresh:  %.2f s (re-derived, swapped in)\n",
              after.estimate_seconds);
  std::printf("  refresh daemon: %s\n\n", daemon.Stats().ToString().c_str());

  std::printf("service runtime stats:\n%s\n",
              service.Stats().ToString().c_str());
  return 0;
}
