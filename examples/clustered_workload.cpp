// Clustered contention environments: IUPMA vs ICMA (paper §3.3, Table 6,
// Figure 10).
//
// Real application environments often cycle between a few characteristic
// load levels (overnight batch, business hours, peak) rather than spreading
// uniformly. This example builds such an environment, shows the probing-cost
// histogram (Figure 10), and contrasts the contention-state boundaries that
// IUPMA (uniform partition) and ICMA (agglomerative clustering) derive.

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/str_util.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"
#include "mdbs/local_dbs.h"
#include "stats/descriptive.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config;
  config.site_name = "clustered-site";
  config.tables.num_tables = 6;
  config.tables.scale = 0.3;
  config.load.regime = sim::LoadRegime::kClustered;
  config.load.clusters = {
      {8.0, 2.5, 0.35},    // overnight batch window
      {55.0, 4.0, 0.40},   // business hours
      {105.0, 3.0, 0.25},  // peak / close-of-day
  };
  config.seed = 31;
  mdbs::LocalDbs site(config);

  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;

  // Shared training sample from the clustered environment.
  core::AgentObservationSource source(&site, cls, 32);
  const core::ObservationSet training = core::DrawObservations(source, 300);

  // Figure-10-style histogram of the sampled probing costs.
  std::vector<double> probes;
  for (const auto& o : training) probes.push_back(o.probing_cost);
  const stats::Histogram hist = stats::BuildHistogram(
      probes, stats::Min(probes), stats::Max(probes), 30);
  std::printf("Sampled contention level (probing cost, s):\n");
  size_t peak = 1;
  for (size_t c : hist.counts) peak = std::max(peak, c);
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    const int len = static_cast<int>(40.0 * static_cast<double>(hist.counts[b]) /
                                     static_cast<double>(peak));
    std::printf("%6.2f | %s\n", hist.BinCenter(b),
                std::string(static_cast<size_t>(len), '#').c_str());
  }

  // Derive models with both algorithms from the same observations.
  core::AgentObservationSource refill(&site, cls, 33);
  for (core::StateAlgorithm algo :
       {core::StateAlgorithm::kIupma, core::StateAlgorithm::kIcma}) {
    core::ObservationSet obs = training;
    core::ModelBuildOptions options;
    options.algorithm = algo;
    if (algo == core::StateAlgorithm::kIcma) {
      // Let ICMA top up any undersampled cluster with targeted draws first.
      core::StateDeterminationOptions so = options.states;
      so.form = options.form;
      (void)core::DetermineStatesIcma(
          cls, obs, core::VariableSet::ForClass(cls).BasicIndices(), so,
          &refill);
    }
    const core::BuildReport report =
        core::BuildCostModelFromObservations(cls, obs, options);

    core::AgentObservationSource test_source(&site, cls, 34);
    const core::ObservationSet test = core::DrawObservations(test_source, 80);
    const core::ValidationReport v = core::Validate(report.model, test);

    std::printf("\n%s: %d states, boundaries %s\n", core::ToString(algo),
                report.model.states().num_states(),
                report.model.states().ToString().c_str());
    std::printf("   R^2 = %.3f, very good %.0f%%, good %.0f%%\n",
                report.model.r_squared(), 100.0 * v.pct_very_good,
                100.0 * v.pct_good);
  }
  std::printf(
      "\nICMA's boundaries fall in the gaps between usage clusters, so each "
      "state captures one regime; IUPMA's uniform grid may split a cluster "
      "or lump two together.\n");
  return 0;
}
