// Quickstart: derive a multi-states cost model for one query class on one
// simulated dynamic local DBS, inspect it, and estimate some test queries.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"
#include "engine/explain.h"
#include "mdbs/local_dbs.h"

int main() {
  using namespace mscm;

  // 1. Stand up a local site: an Oracle-like DBMS over 12 synthetic tables,
  //    on a machine whose background load swings between idle and ~120
  //    concurrent processes (scale 0.2 keeps this demo fast).
  mdbs::LocalDbsConfig config;
  config.site_name = "demo-site";
  config.profile = sim::PerformanceProfile::Alpha();
  config.tables.scale = 0.2;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.max_processes = 120.0;
  config.seed = 42;
  mdbs::LocalDbs site(config);

  // 2. Build a multi-states cost model for the unary sequential-scan class
  //    (G1) using the IUPMA state-determination algorithm.
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  core::AgentObservationSource source(&site, cls, /*seed=*/7);

  core::ModelBuildOptions options;
  options.algorithm = core::StateAlgorithm::kIupma;
  const core::BuildReport report = core::BuildCostModel(cls, source, options);

  const core::VariableSet variables = core::VariableSet::ForClass(cls);
  std::printf("Derived cost model\n------------------\n%s\n",
              report.model.ToString(variables).c_str());

  // 3. Validate on fresh test queries drawn in the same dynamic environment.
  const core::ObservationSet test = core::DrawObservations(source, 60);
  const core::ValidationReport v = core::Validate(report.model, test);
  std::printf("Validation on %zu test queries\n", v.n_test);
  std::printf("  average observed cost : %.2f s\n", v.avg_observed_cost);
  std::printf("  very good estimates   : %.0f%% (relative error <= 30%%)\n",
              100.0 * v.pct_very_good);
  std::printf("  good estimates        : %.0f%% (within a factor of 2)\n",
              100.0 * v.pct_good);

  // 4. Estimate one query's cost under light vs heavy contention.
  const core::Observation& q = test.front();
  const double probe_light = report.model.states().boundaries().empty()
                                 ? q.probing_cost
                                 : report.model.states().boundaries().front() * 0.5;
  const double probe_heavy = report.model.states().boundaries().empty()
                                 ? q.probing_cost
                                 : report.model.states().boundaries().back() * 2.0;
  std::printf("\nSame query, different contention states:\n");
  std::printf("  light contention estimate: %.2f s\n",
              report.model.Estimate(q.features, probe_light));
  std::printf("  heavy contention estimate: %.2f s\n",
              report.model.Estimate(q.features, probe_heavy));

  // 5. Prediction intervals: how confident is the model? (nullopt for
  //    models reconstructed from the persisted catalog, which lack the
  //    fit's covariance structure.)
  const auto interval =
      report.model.EstimateWithInterval(q.features, probe_heavy, 0.05);
  if (interval.has_value()) {
    std::printf(
        "  heavy contention 95%% prediction interval: [%.2f, %.2f] s\n",
        interval->low, interval->high);
  } else {
    std::printf("  (no covariance structure: interval unavailable)\n");
  }

  // 6. Peek at what the local DBS would actually do with such a query.
  core::QuerySampler sampler(&site.database(), site.profile().planner, 99);
  const engine::SelectQuery sample = sampler.SampleSelect(cls);
  std::printf("\nA sample query from this class, explained:\n%s",
              engine::ExplainSelect(site.database(), sample,
                                    site.profile().planner)
                  .c_str());
  return 0;
}
