// mscm_cli — a small command-line driver over the public API, the shape of
// tool a downstream MDBS operator would run:
//
//   mscm_cli derive   [--class G1|G2|G3|Gc|Gj] [--site alpha|beta]
//                     [--algo iupma|icma|single] [--scale S] [--seed N]
//                     [--out FILE]
//       derive a cost model and print it; optionally save the catalog blob.
//
//   mscm_cli validate --in FILE [--scale S] [--seed N] [--tests N]
//       load a saved catalog and validate its models against fresh test
//       queries in a dynamic environment.
//
//   mscm_cli sweep    [--class ...] [--site ...] [--scale S]
//       print R^2 against forced state counts (the §5 observation).
//
// All data is simulated; see README.md. Exit status 0 on success.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/model_io.h"
#include "core/report.h"
#include "core/validation.h"
#include "mdbs/local_dbs.h"

namespace {

using namespace mscm;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
};

bool ParseArgs(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return false;
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return true;
}

core::QueryClassId ParseClass(const std::string& label) {
  if (label == "G1") return core::QueryClassId::kUnarySeqScan;
  if (label == "G2") return core::QueryClassId::kUnaryNonClusteredIndex;
  if (label == "Gc") return core::QueryClassId::kUnaryClusteredIndex;
  if (label == "G3") return core::QueryClassId::kJoinNoIndex;
  if (label == "Gj") return core::QueryClassId::kJoinIndex;
  std::fprintf(stderr, "unknown class %s, using G1\n", label.c_str());
  return core::QueryClassId::kUnarySeqScan;
}

core::StateAlgorithm ParseAlgo(const std::string& name) {
  if (name == "icma") return core::StateAlgorithm::kIcma;
  if (name == "single") return core::StateAlgorithm::kSingleState;
  return core::StateAlgorithm::kIupma;
}

mdbs::LocalDbsConfig SiteConfig(const Args& args) {
  mdbs::LocalDbsConfig config;
  config.site_name = args.Get("site", "alpha");
  config.profile = config.site_name == "beta"
                       ? sim::PerformanceProfile::Beta()
                       : sim::PerformanceProfile::Alpha();
  config.tables.num_tables = 8;
  config.tables.scale = args.GetDouble("scale", 0.2);
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.min_processes = 15.0;
  config.load.max_processes = 120.0;
  config.seed = args.GetInt("seed", 7);
  return config;
}

int CmdDerive(const Args& args) {
  const core::QueryClassId cls = ParseClass(args.Get("class", "G1"));
  mdbs::LocalDbs site(SiteConfig(args));
  core::AgentObservationSource source(&site, cls,
                                      args.GetInt("seed", 7) + 1);
  core::ModelBuildOptions options;
  options.algorithm = ParseAlgo(args.Get("algo", "iupma"));
  const core::BuildReport report = core::BuildCostModel(cls, source, options);
  std::printf("%s\n", core::RenderBuildReport(report).c_str());

  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    core::GlobalCatalog catalog;
    catalog.Register(site.name(), report.model);
    if (!core::SaveCatalogToFile(catalog, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("catalog written to %s\n", out.c_str());
  }
  return 0;
}

int CmdValidate(const Args& args) {
  const std::string in = args.Get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "validate requires --in FILE\n");
    return 1;
  }
  const auto catalog = core::LoadCatalogFromFile(in);
  if (!catalog.has_value()) {
    std::fprintf(stderr, "cannot read or parse catalog file %s\n",
                 in.c_str());
    return 1;
  }

  const int tests = static_cast<int>(args.GetInt("tests", 60));
  TextTable table({"site", "class", "#states", "very good", "good",
                   "avg cost (s)"});
  for (const auto& [site_name, cls] : catalog->Entries()) {
    Args site_args = args;
    site_args.flags["site"] = site_name;
    mdbs::LocalDbs site(SiteConfig(site_args));
    core::AgentObservationSource source(&site, cls,
                                        args.GetInt("seed", 7) + 2);
    const core::ObservationSet test = core::DrawObservations(source, tests);
    const core::CostModel* model = catalog->Find(site_name, cls);
    const core::ValidationReport v = core::Validate(*model, test);
    table.AddRow({site_name, core::Label(cls),
                  Format("%d", model->states().num_states()),
                  Format("%.0f%%", 100.0 * v.pct_very_good),
                  Format("%.0f%%", 100.0 * v.pct_good),
                  Format("%.2f", v.avg_observed_cost)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

int CmdSweep(const Args& args) {
  const core::QueryClassId cls = ParseClass(args.Get("class", "G1"));
  mdbs::LocalDbs site(SiteConfig(args));
  core::AgentObservationSource source(&site, cls,
                                      args.GetInt("seed", 7) + 3);
  const core::VariableSet vars = core::VariableSet::ForClass(cls);
  const core::ObservationSet obs = core::DrawObservations(source, 300);
  double cmin = obs.front().probing_cost;
  double cmax = cmin;
  for (const auto& o : obs) {
    cmin = std::min(cmin, o.probing_cost);
    cmax = std::max(cmax, o.probing_cost);
  }
  TextTable table({"#states", "R^2", "SEE"});
  for (int m = 1; m <= 8; ++m) {
    const core::CostModel model = core::FitCostModel(
        cls, obs, vars.BasicIndices(),
        core::ContentionStates::UniformPartition(cmin, cmax, m),
        core::QualitativeForm::kGeneral);
    table.AddRow({Format("%d", m), Format("%.4f", model.r_squared()),
                  CompactDouble(model.standard_error(), 3)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::printf(
        "usage: mscm_cli derive|validate|sweep [--flag value]...\n"
        "  derive   [--class G1|G2|G3|Gc|Gj] [--site alpha|beta]\n"
        "           [--algo iupma|icma|single] [--scale S] [--seed N]\n"
        "           [--out FILE]\n"
        "  validate --in FILE [--tests N] [--scale S] [--seed N]\n"
        "  sweep    [--class ...] [--site ...] [--scale S] [--seed N]\n");
    // No command: demonstrate the default derive flow so running the binary
    // bare still shows something useful.
    return argc < 2 ? CmdDerive(Args{"derive", {}}) : 1;
  }
  if (args.command == "derive") return CmdDerive(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "sweep") return CmdSweep(args);
  std::fprintf(stderr, "unknown command %s\n", args.command.c_str());
  return 1;
}
