// Model lifecycle — handling *occasionally-changing* factors (paper §2).
//
// The qualitative variable absorbs frequently-changing contention, but an
// occasionally-changing factor — here a machine memory downgrade — shifts
// the whole cost surface. The drift monitor watches the estimate outcomes
// the optimizer produces anyway, flags the degradation, and triggers a
// rebuild of the model from fresh samples. Persistence via the catalog
// serializer shows the model surviving an optimizer restart.

#include <cstdio>

#include "core/agent_source.h"
#include "core/maintenance.h"
#include "core/model_io.h"
#include "core/validation.h"
#include "mdbs/local_dbs.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config;
  config.site_name = "managed-site";
  config.tables.num_tables = 5;
  config.tables.scale = 0.2;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.min_processes = 10.0;
  config.load.max_processes = 100.0;
  config.seed = 51;
  mdbs::LocalDbs site(config);

  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  core::AgentObservationSource source(&site, cls, 52);

  // 1. Initial model.
  core::ModelBuildOptions options;
  options.sample_size = 250;
  core::BuildReport initial = core::BuildCostModel(cls, source, options);
  std::printf("initial model: %d states, R^2 = %.3f\n",
              initial.model.states().num_states(),
              initial.model.r_squared());

  // 2. Persist to the catalog format and reload (optimizer restart).
  core::GlobalCatalog catalog;
  catalog.Register(site.name(), initial.model);
  const std::string blob = core::SerializeCatalog(catalog);
  std::printf("persisted catalog: %zu bytes\n", blob.size());
  auto reloaded = core::ParseCatalog(blob);
  if (!reloaded.has_value()) {
    std::printf("catalog reload failed!\n");
    return 1;
  }
  const core::CostModel* restored = reloaded->Find(site.name(), cls);
  core::ManagedCostModel managed(*restored, cls, options);

  auto run_phase = [&](const char* label, int queries) {
    int rebuilds_before = managed.rebuild_count();
    int good = 0;
    for (int i = 0; i < queries; ++i) {
      const core::Observation obs = source.Draw();
      const double est = managed.Estimate(obs.features, obs.probing_cost);
      managed.ReportOutcome(est, obs.cost);
      if (core::IsGoodEstimate(est, obs.cost)) ++good;
      managed.RebuildIfDrifting(source);
    }
    std::printf(
        "%-28s: %2d/%2d good estimates, recent good fraction %.2f, "
        "rebuilds so far %d%s\n",
        label, good, queries, managed.monitor().RecentGoodFraction(),
        managed.rebuild_count(),
        managed.rebuild_count() > rebuilds_before ? "  <- rebuilt" : "");
  };

  // 3. Steady operation: the model holds.
  run_phase("steady operation", 40);

  // 4. Occasionally-changing factor: the machine loses half its memory
  //    (e.g. a failed DIMM, or the DBMS buffer cache shrank).
  sim::MachineSpec downgraded;
  downgraded.memory_mb = 192.0;
  downgraded.cpu_cores = 1.0;
  site.ReconfigureMachine(downgraded);
  std::printf("\n*** machine reconfigured: memory 512 MB -> 192 MB, "
              "2 cores -> 1 ***\n\n");

  // 5. Estimates degrade; the drift monitor flags it and the managed model
  //    rebuilds itself against the new machine.
  run_phase("after downgrade (degrading)", 40);
  run_phase("after automatic rebuild", 40);

  std::printf("\nfinal model: %d states, %d rebuild(s) performed\n",
              managed.model().states().num_states(), managed.rebuild_count());
  return 0;
}
