// Table 4: the multi-states cost models derived by the multi-states query
// sampling method for three representative query classes on each local DBS —
//   G1: unary queries without usable indexes,
//   G2: unary queries with usable non-clustered indexes for ranges,
//   G3: join queries without usable indexes.
// The paper prints per-state regression equations (coefficients spanning
// several orders of magnitude); this harness derives and prints the same.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/agent_source.h"
#include "core/model_builder.h"

int main() {
  using namespace mscm;

  const core::QueryClassId kClasses[] = {
      core::QueryClassId::kUnarySeqScan,
      core::QueryClassId::kUnaryNonClusteredIndex,
      core::QueryClassId::kJoinNoIndex,
  };

  std::printf(
      "Table 4 — multi-states cost models per query class and local DBS\n\n");

  uint64_t seed = 200;
  for (const std::string site_name : {"alpha", "beta"}) {
    mdbs::LocalDbs site(bench::SiteConfig(site_name, seed += 13));
    std::printf("== local DBS %s ==\n\n", bench::SiteDbmsLabel(site_name));
    for (core::QueryClassId cls : kClasses) {
      core::AgentObservationSource source(&site, cls, seed += 7);
      core::ModelBuildOptions options;
      options.algorithm = core::StateAlgorithm::kIupma;
      const core::BuildReport report =
          core::BuildCostModel(cls, source, options);
      std::printf("%s\n",
                  report.model
                      .ToString(core::VariableSet::ForClass(cls))
                      .c_str());
    }
  }
  return 0;
}
