// Microbenchmarks (google-benchmark) for the statistical machinery: OLS
// fits at the sizes the pipeline uses, qualitative design-matrix builds,
// agglomerative clustering, and distribution evaluations.

#include <benchmark/benchmark.h>

#include "cluster/hierarchical.h"
#include "common/rng.h"
#include "core/qualitative.h"
#include "stats/distributions.h"
#include "stats/ols.h"

namespace {

using namespace mscm;

stats::Matrix RandomDesign(size_t n, size_t p, Rng& rng) {
  stats::Matrix x(n, p);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    for (size_t j = 1; j < p; ++j) x(i, j) = rng.Uniform(0, 100);
  }
  return x;
}

void BM_OlsFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t p = static_cast<size_t>(state.range(1));
  Rng rng(1);
  const stats::Matrix x = RandomDesign(n, p, rng);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.Uniform(0, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::FitOls(x, y));
  }
}
BENCHMARK(BM_OlsFit)->Args({370, 6})->Args({370, 24})->Args({700, 36});

void BM_Vif(benchmark::State& state) {
  Rng rng(2);
  const stats::Matrix x = RandomDesign(300, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::VarianceInflationFactor(x, 3));
  }
}
BENCHMARK(BM_Vif);

void BM_Cluster1D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> xs(n);
  for (auto& v : xs) v = rng.Uniform(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::AgglomerativeCluster1D(xs, 5));
  }
}
BENCHMARK(BM_Cluster1D)->Arg(300)->Arg(1000);

void BM_BuildDesignMatrix(benchmark::State& state) {
  Rng rng(4);
  core::ObservationSet obs(500);
  for (auto& o : obs) {
    o.probing_cost = rng.NextDouble();
    o.features = {rng.Uniform(0, 100), rng.Uniform(0, 100),
                  rng.Uniform(0, 100)};
    o.cost = rng.Uniform(0, 10);
  }
  const core::ContentionStates states =
      core::ContentionStates::UniformPartition(0.0, 1.0, 4);
  const core::DesignLayout layout =
      core::DesignLayout::Make(3, core::QualitativeForm::kGeneral, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::BuildDesignMatrix(obs, {0, 1, 2}, states, layout));
  }
}
BENCHMARK(BM_BuildDesignMatrix);

void BM_FSurvival(benchmark::State& state) {
  double f = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::FSurvival(f, 12, 340));
    f += 0.1;
    if (f > 50) f = 0.1;
  }
}
BENCHMARK(BM_FSurvival);

}  // namespace

BENCHMARK_MAIN();
