// Throughput / latency microbench for the online estimation service
// (src/runtime): how fast can concurrent planner threads price queries
// against the snapshot catalog + cached contention states?
//
// Scenarios (fresh service each, same request workload):
//   single  x1   — one thread, one Estimate() call per request
//   batch   x1   — one thread, EstimateBatch() in chunks of kBatch
//   batch   xN   — N reader threads, each batching its own slice
//   batch   x8+w — 8 readers while a writer re-registers models (CoW swaps)
//   batch   x8+r — 8 readers while a refresh daemon, fed a stream of
//                  drifting feedback, continuously re-derives and swaps
//   hot     x1   — one thread, Estimate() over a small working set of
//                  requests cycled repeatedly (cache disabled)
//   hot x1 cached — same hot loop with the estimate cache enabled; the
//                  derived cached_hot_loop_speedup_x is hot-cached / hot
//   compiled batch — one thread, EstimateBatch() over the hot working set
//                  (cache disabled): the blocked loop over compiled rows
//   termwalk x1  — raw-model hot loop through the retired per-term walk
//                  (CostModel::EstimateTermWalk), no service or cache
//   compiled x1  — the same raw-model hot loop through the compiled
//                  per-state table (CostModel::EstimateFast); the derived
//                  compiled_hot_loop_speedup_x is compiled / termwalk
//   degraded x1  — one thread, Estimate() against sites whose probe circuit
//                  breakers are open: every response is priced from the last
//                  known state and flagged degraded (never memoized). The
//                  derived degraded_overhead_x is healthy / degraded, both
//                  sides measured *paired* — alternating rep by rep — so
//                  run-order and clock-frequency drift hit both equally (a
//                  degraded run measured half a bench after its healthy
//                  baseline once reported a nonsensical sub-1.0 "overhead").
//                  Values >= 1.0 mean degraded serving costs throughput.
//   boundary jitter placement — a placement duel on a probing cost that
//                  jitters around a state boundary: the point-estimate
//                  ranking flips between a cheap-state and expensive-state
//                  read of the jitter site (picking it ~half the time
//                  although its expected cost is worse), while the
//                  expected-cost ranking prices the served distribution's
//                  soft state membership and correctly avoids it. Emits
//                  placement_wrong_site_{point,expected}_rate and
//                  placement_regret_{point,expected}_x (realized cost vs a
//                  per-trial oracle).
//   drift-recovery duel — the environment's cost law jumps 3x and the RLS
//                  fast tier races a full-rederive-only baseline back to a
//                  10% serving error, scored in observations consumed.
//                  Emits adaptation_convergence_ratio_x (gated >= 3 in
//                  --smoke) and adaptation_probe_savings_x.
//
// Emits BENCH_runtime.json with requests/sec, p50/p99 per-estimate latency
// and shared_rmw_per_request per scenario (the RmwProbe tally of shared
// atomic read-modify-writes — refcounts, mutexes, shared counters — summed
// across reader threads over the timed pass; the cached hot path must
// report exactly 0), plus the derived batch-amortization and
// thread-scaling factors.
//
// Scaling honesty: threads beyond the machine's cores cannot add speedup,
// so each scenario records an `oversubscribed` flag, the JSON records
// `effective_hardware_threads`, and alongside the headline
// thread_scaling_8t_x the bench emits thread_scaling_honest_x measured at
// the largest batch thread count that actually fits the machine.
//
// Each scenario runs kReps times and reports the best repetition — on a
// shared machine the best rep is the least-perturbed measurement.
//
// MSCM_RUNTIME_BENCH_N (env) overrides the request count;
// MSCM_RUNTIME_BENCH_REPS overrides the repetition count.
// `--smoke` runs a bounded CI-sized pass (2000 requests, 1 rep), skips the
// JSON write, and fails (exit 1) if any of these hold: the cached hot path
// performed a shared atomic RMW per request, the paired degraded overhead
// fell below 0.8x (orientation check), expected-cost placement did not
// strictly beat point-estimate placement on wrong-site rate in the
// boundary-jitter duel, placement_expected_cost_wins stayed zero, the
// drift-recovery duel failed to converge or its RLS-vs-rederive observation
// ratio fell below 3x, or (on a multi-core machine) thread_scaling_honest_x
// fell below 1.05x.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/cost_model.h"
#include "core/explanatory.h"
#include "core/observation_source.h"
#include "runtime/adaptation.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"
#include "runtime/rmw_probe.h"
#include "sim/fleet.h"

namespace {

using namespace mscm;
using Clock = std::chrono::steady_clock;

constexpr size_t kBatch = 512;

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

// A fitted 4-state model over 3 selected variables with synthetic
// coefficients — the estimate path (state lookup + design row + dot
// product) is identical to a paper-derived model's.
core::CostModel MakeModel(core::QueryClassId cls, uint64_t seed) {
  const size_t n_features = core::VariableSet::ForClass(cls).size();
  constexpr int kStates = 4;
  core::ObservationSet obs;
  Rng rng(seed);
  for (int s = 0; s < kStates; ++s) {
    for (int i = 0; i < 50; ++i) {
      core::Observation o;
      o.probing_cost = s + 0.5;
      o.features.assign(n_features, 0.0);
      for (size_t j = 0; j < 3; ++j) o.features[j] = rng.Uniform(1.0, 10.0);
      o.cost = (s + 1.0) * (0.5 * o.features[0] + 0.2 * o.features[1] +
                            0.1 * o.features[2]);
      obs.push_back(std::move(o));
    }
  }
  return core::FitCostModel(
      cls, obs, {0, 1, 2},
      core::ContentionStates::FromBoundaries({1.0, 2.0, 3.0}),
      core::QualitativeForm::kGeneral);
}

// What a refresh daemon samples mid-bench: a cheap synthetic environment
// (no simulated site) so the re-derivation cost is regression + swap, and
// the bench isolates the *runtime* interference of refresh churn.
class BenchSource : public core::ObservationSource {
 public:
  explicit BenchSource(uint64_t seed) : rng_(seed) {}

  core::Observation Draw() override {
    core::Observation o;
    o.probing_cost = rng_.Uniform(0.0, 4.0);
    o.features.assign(
        core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size(),
        0.0);
    for (size_t j = 0; j < 3; ++j) o.features[j] = rng_.Uniform(1.0, 10.0);
    o.cost = 1.5 * o.features[0] + 0.6 * o.features[1] + 0.3 * o.features[2];
    return o;
  }

 private:
  Rng rng_;
};

struct Scenario {
  std::string name;
  int threads = 1;
  bool batched = false;
  bool with_writer = false;
  bool with_refresh = false;
  bool cached = false;  // enable the state-keyed estimate cache
  bool hot = false;     // drive the cycled working-set workload
  bool degraded = false;  // trip every site's breaker before the run
};

struct Result {
  Scenario scenario;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t refreshes = 0;   // models re-derived + swapped during the run
  uint64_t cache_hits = 0;  // estimate-cache hits (cached scenarios)
  // Shared atomic RMWs per request over the timed pass, summed across the
  // scenario's reader threads (RmwProbe tally; raw-model loops report 0).
  double rmw_per_request = 0.0;
};

std::vector<runtime::EstimateRequest> MakeWorkload(size_t n) {
  const std::vector<std::string> sites = {"alpha", "beta"};
  const std::vector<core::QueryClassId> classes = {
      core::QueryClassId::kUnarySeqScan, core::QueryClassId::kJoinNoIndex};
  Rng rng(17);
  std::vector<runtime::EstimateRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    runtime::EstimateRequest request;
    request.site = sites[i % sites.size()];
    request.class_id = classes[(i / 2) % classes.size()];
    request.features.assign(
        core::VariableSet::ForClass(request.class_id).size(), 0.0);
    for (size_t j = 0; j < 3; ++j) {
      request.features[j] = rng.Uniform(1.0, 10.0);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

// A planner's hot loop: a small working set of distinct requests (the
// candidate placements under consideration) priced over and over.
std::vector<runtime::EstimateRequest> MakeHotWorkload(size_t n) {
  constexpr size_t kWorkingSet = 256;
  const std::vector<runtime::EstimateRequest> distinct =
      MakeWorkload(std::min(n, kWorkingSet));
  std::vector<runtime::EstimateRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) requests.push_back(distinct[i % distinct.size()]);
  return requests;
}

std::unique_ptr<runtime::EstimationService> MakeService(bool cached,
                                                        bool degraded) {
  runtime::EstimationServiceConfig config;
  config.probe_ttl = std::chrono::hours(1);
  config.worker_threads = 0;  // reader threads are the parallelism measured
  if (cached) config.cache.capacity_per_thread = 4096;
  if (degraded) {
    config.breaker.failure_threshold = 1;
    config.breaker.open_duration = std::chrono::hours(1);  // stays open
  }
  auto service = std::make_unique<runtime::EstimationService>(config);
  uint64_t seed = 1;
  for (const std::string& site : {std::string("alpha"), std::string("beta")}) {
    service->RegisterModel(
        site, MakeModel(core::QueryClassId::kUnarySeqScan, seed++));
    service->RegisterModel(
        site, MakeModel(core::QueryClassId::kJoinNoIndex, seed++));
    auto fail = std::make_shared<std::atomic<bool>>(false);
    service->RegisterSite(
        site, [fail, value = 0.5 + 0.7 * static_cast<double>(seed)] {
          // A NaN probe cost is a probe failure.
          return fail->load(std::memory_order_relaxed) ? std::nan("") : value;
        });
    service->ProbeNow(site);
    if (degraded) {
      // One failed probe past the threshold: the breaker opens and every
      // estimate serves the cached pre-failure state, flagged degraded.
      fail->store(true);
      service->ProbeNow(site);
    }
  }
  return service;
}

Result Run(const Scenario& scenario,
           const std::vector<runtime::EstimateRequest>& requests) {
  auto service = MakeService(scenario.cached, scenario.degraded);

  std::atomic<bool> writer_stop{false};
  std::thread writer;
  if (scenario.with_writer) {
    writer = std::thread([&service, &writer_stop] {
      uint64_t seed = 1000;
      while (!writer_stop.load(std::memory_order_relaxed)) {
        service->RegisterModel(
            "alpha", MakeModel(core::QueryClassId::kUnarySeqScan, seed++));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Refresh churn: a reporter thread feeds feedback whose observed costs
  // always disagree with the model, so the daemon trips, re-derives and
  // swaps continuously while the readers run.
  BenchSource refresh_source(99);
  std::unique_ptr<runtime::ModelRefreshDaemon> daemon;
  std::atomic<bool> reporter_stop{false};
  std::thread reporter;
  if (scenario.with_refresh) {
    runtime::ModelRefreshConfig refresh_config;
    refresh_config.min_reports = 8;
    refresh_config.drift_window = 8;
    refresh_config.error_threshold = 0.5;
    refresh_config.refresh_cooldown = std::chrono::nanoseconds(0);
    refresh_config.rederive.build.algorithm =
        core::StateAlgorithm::kSingleState;
    refresh_config.rederive.build.sample_size = 40;
    daemon = std::make_unique<runtime::ModelRefreshDaemon>(service.get(),
                                                           refresh_config);
    daemon->Watch("alpha", core::QueryClassId::kUnarySeqScan,
                  &refresh_source);
    reporter = std::thread([&daemon, &reporter_stop] {
      Rng rng(7);
      std::vector<double> features(
          core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan)
              .size(),
          0.0);
      while (!reporter_stop.load(std::memory_order_relaxed)) {
        for (size_t j = 0; j < 3; ++j) features[j] = rng.Uniform(1.0, 10.0);
        // Deliberately off the model by far more than the threshold.
        daemon->ReportObserved("alpha", core::QueryClassId::kUnarySeqScan,
                               features, 5.0 * features[0]);
      }
    });
  }

  // Every drive() accumulates the thread's RmwProbe delta; the tally is
  // reset after warmup so rmw_total covers exactly the timed pass.
  std::atomic<uint64_t> rmw_total{0};
  auto drive = [&](size_t begin, size_t end) {
    const uint64_t rmw_before = runtime::RmwProbe::Current();
    if (scenario.batched) {
      std::vector<runtime::EstimateRequest> chunk;
      for (size_t i = begin; i < end; i += kBatch) {
        const size_t stop = std::min(end, i + kBatch);
        chunk.assign(requests.begin() + static_cast<long>(i),
                     requests.begin() + static_cast<long>(stop));
        service->EstimateBatch(chunk);
      }
    } else {
      for (size_t i = begin; i < end; ++i) service->Estimate(requests[i]);
    }
    rmw_total.fetch_add(runtime::RmwProbe::Current() - rmw_before,
                        std::memory_order_relaxed);
  };

  // Warmup pass (1/8 of the workload, but at least one full cycle of the
  // hot working set so cached scenarios enter the timed pass fully warm),
  // then the timed pass.
  drive(0, std::min(requests.size(),
                    std::max<size_t>(requests.size() / 8, 512)));
  rmw_total.store(0, std::memory_order_relaxed);

  const auto started = Clock::now();
  if (scenario.threads <= 1) {
    drive(0, requests.size());
  } else {
    std::vector<std::thread> readers;
    const size_t per = requests.size() / static_cast<size_t>(scenario.threads);
    for (int t = 0; t < scenario.threads; ++t) {
      const size_t begin = static_cast<size_t>(t) * per;
      const size_t end = t + 1 == scenario.threads
                             ? requests.size()
                             : begin + per;
      readers.emplace_back([&drive, begin, end] { drive(begin, end); });
    }
    for (std::thread& r : readers) r.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - started).count();

  if (scenario.with_writer) {
    writer_stop.store(true);
    writer.join();
  }
  uint64_t refreshes = 0;
  if (scenario.with_refresh) {
    reporter_stop.store(true);
    reporter.join();
    refreshes = daemon->Stats().refreshes_succeeded;
    daemon.reset();  // drains any in-flight refresh before the service dies
  }

  const runtime::RuntimeStatsSnapshot stats = service->Stats();
  Result result;
  result.scenario = scenario;
  result.qps = static_cast<double>(requests.size()) / seconds;
  result.p50_us = stats.estimate_latency.p50_seconds * 1e6;
  result.p99_us = stats.estimate_latency.p99_seconds * 1e6;
  result.refreshes = refreshes;
  result.cache_hits = stats.estimate_cache_hits;
  result.rmw_per_request = static_cast<double>(
                               rmw_total.load(std::memory_order_relaxed)) /
                           static_cast<double>(requests.size());
  return result;
}

// Best (highest-throughput) of `reps` repetitions of a scenario.
Result RunBestOf(const Scenario& scenario,
                 const std::vector<runtime::EstimateRequest>& requests,
                 size_t reps) {
  Result best = Run(scenario, requests);
  for (size_t r = 1; r < reps; ++r) {
    Result next = Run(scenario, requests);
    if (next.qps > best.qps) best = next;
  }
  return best;
}

// Raw-model hot loop: a 256-request working set priced directly against one
// CostModel — no service, snapshot or cache — isolating the serving
// representation itself (compiled per-state table vs the retired per-term
// walk). Probing costs cycle through all four states so the state lookup is
// exercised, not branch-predicted away.
struct RawWorkload {
  std::vector<std::vector<double>> features;
  std::vector<double> probes;
};

RawWorkload MakeRawWorkload() {
  constexpr size_t kWorkingSet = 256;
  const size_t width =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  Rng rng(23);
  RawWorkload workload;
  for (size_t i = 0; i < kWorkingSet; ++i) {
    std::vector<double> f(width, 0.0);
    for (size_t j = 0; j < 3; ++j) f[j] = rng.Uniform(1.0, 10.0);
    workload.features.push_back(std::move(f));
    workload.probes.push_back(0.5 + static_cast<double>(i % 4));
  }
  return workload;
}

Result RunRawBestOf(const core::CostModel& model, const RawWorkload& workload,
                    bool compiled, size_t n, size_t reps) {
  const size_t set = workload.features.size();
  double sink = 0.0;
  Result best;
  best.scenario.name = compiled ? "compiled x1" : "termwalk x1";
  for (size_t rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < n / 8; ++i) {  // warmup
      const size_t k = i % set;
      sink += model.EstimateFast(workload.features[k], workload.probes[k]);
    }
    const auto started = Clock::now();
    if (compiled) {
      for (size_t i = 0; i < n; ++i) {
        const size_t k = i % set;
        sink += model.EstimateFast(workload.features[k], workload.probes[k]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const size_t k = i % set;
        sink +=
            model.EstimateTermWalk(workload.features[k], workload.probes[k]);
      }
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - started).count();
    best.qps = std::max(best.qps, static_cast<double>(n) / seconds);
  }
  if (!(sink >= 0.0)) std::printf("sink %f\n", sink);  // keep the loops live
  return best;
}

// Fleet-scale serving under churn: a generated population of heterogeneous
// sites (sim::Fleet) behind one cached service, two reader threads pricing
// tracker-resolved requests across the whole fleet while a churner
// unregisters and re-registers sites and a regime thread moves every site's
// contention (diurnal sweep + group spikes). Reports sustained throughput
// and checks the lifecycle invariants the runtime soak pins: counter
// conservation (requests == hits + misses), retirement accounting
// (sites_retired == churn cycles) and full serving once churn stops.
struct FleetOutcome {
  Result result;
  size_t sites = 0;
  uint64_t churn_cycles = 0;
  uint64_t cache_hits = 0;
  bool conservation_ok = false;
  bool retirement_ok = false;
  bool serving_ok = false;
};

// One model per distinct state count, copied per site: the estimate path
// through a copy is identical, and fitting three prototypes instead of two
// hundred keeps bench startup off the critical path.
core::CostModel MakeFleetModel(int num_states) {
  const size_t n_features =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  core::ObservationSet obs;
  Rng rng(static_cast<uint64_t>(num_states) * 97 + 5);
  std::vector<double> boundaries;
  for (int s = 0; s < num_states; ++s) {
    if (s > 0) boundaries.push_back(static_cast<double>(s));
    for (int i = 0; i < 40; ++i) {
      core::Observation o;
      o.probing_cost = static_cast<double>(s) + 0.5;
      o.features.assign(n_features, 0.0);
      o.features[0] = rng.Uniform(1.0, 10.0);
      o.cost = (0.4 + 1.3 * static_cast<double>(s)) * o.features[0];
      obs.push_back(std::move(o));
    }
  }
  return core::FitCostModel(core::QueryClassId::kUnarySeqScan, obs, {0},
                            core::ContentionStates::FromBoundaries(boundaries),
                            core::QualitativeForm::kGeneral);
}

FleetOutcome RunFleetScenario(bool smoke) {
  sim::FleetConfig fleet_config;
  fleet_config.num_sites = smoke ? 64 : 208;
  fleet_config.diurnal_period_seconds = 2.0;
  sim::Fleet fleet(fleet_config);
  const size_t num_sites = fleet.num_sites();

  runtime::EstimationServiceConfig config;
  config.probe_ttl = std::chrono::hours(1);
  config.worker_threads = 0;
  config.cache.capacity_per_thread = 2048;
  runtime::EstimationService service(config);

  std::map<int, core::CostModel> prototypes;
  for (size_t i = 0; i < num_sites; ++i) {
    const int s = fleet.spec(i).num_states;
    if (prototypes.find(s) == prototypes.end()) {
      prototypes.emplace(s, MakeFleetModel(s));
    }
  }
  for (size_t i = 0; i < num_sites; ++i) {
    const sim::FleetSiteSpec& spec = fleet.spec(i);
    service.RegisterSite(spec.name, [&fleet, i] { return fleet.probing_cost(i); });
    service.RegisterModel(spec.name, prototypes.at(spec.num_states));
    service.ProbeNow(spec.name);
  }

  constexpr int kReaders = 2;
  const size_t per_reader = smoke ? 40000 : 400000;
  const size_t feature_width =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  std::atomic<bool> stop_background{false};

  std::thread regime([&] {
    Rng rng(41);
    uint64_t ticks = 0;
    while (!stop_background.load(std::memory_order_relaxed)) {
      fleet.Advance(0.01);
      if (++ticks % 40 == 0) {
        fleet.TriggerSpike(
            static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(fleet_config.num_groups) - 1)),
            rng.Uniform(0.3, 0.8), rng.Uniform(0.2, 0.5));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread prober([&] {
    size_t i = 0;
    while (!stop_background.load(std::memory_order_relaxed)) {
      service.ProbeNow(fleet.spec(i % num_sites).name);
      ++i;
      if (i % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  // Churn rolls over a fixed pool at the front of the fleet; readers accept
  // kNoModel from exactly that pool while a site is mid-cycle.
  const size_t churn_count = std::min<size_t>(8, num_sites / 8);
  std::atomic<uint64_t> churn_cycles{0};
  std::thread churner([&] {
    size_t k = 0;
    while (!stop_background.load(std::memory_order_relaxed)) {
      const size_t i = k % churn_count;
      const sim::FleetSiteSpec& spec = fleet.spec(i);
      service.UnregisterSite(spec.name);
      service.RegisterSite(spec.name,
                           [&fleet, i] { return fleet.probing_cost(i); });
      service.RegisterModel(spec.name, prototypes.at(spec.num_states));
      service.ProbeNow(spec.name);
      churn_cycles.fetch_add(1, std::memory_order_relaxed);
      ++k;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::atomic<bool> bad_status{false};
  std::vector<std::thread> readers;
  const auto started = Clock::now();
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (size_t r = 0; r < per_reader; ++r) {
        const size_t i = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(num_sites) - 1));
        runtime::EstimateRequest request;
        request.site = fleet.spec(i).name;
        request.features.assign(feature_width, 0.0);
        request.features[0] = 1.0 + static_cast<double>(r % 8);
        request.probing_cost = -1.0;
        const runtime::EstimateResponse response = service.Estimate(request);
        // A churn-pool site mid-cycle legitimately serves kNoModel (between
        // unregister and re-register) or kNoProbe (re-registered, first
        // probe still pending) — same contract the runtime soak pins.
        const bool ok_here =
            response.ok() ||
            (i < churn_count &&
             (response.status == runtime::EstimateStatus::kNoModel ||
              response.status == runtime::EstimateStatus::kNoProbe));
        if (!ok_here) bad_status.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& r : readers) r.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  stop_background.store(true, std::memory_order_relaxed);
  churner.join();
  prober.join();
  regime.join();

  // Churn stopped with every site registered; one probe pass and the whole
  // fleet must serve.
  bool serving_ok = !bad_status.load();
  for (size_t i = 0; i < num_sites; ++i) {
    service.ProbeNow(fleet.spec(i).name);
  }
  for (size_t i = 0; i < num_sites; ++i) {
    runtime::EstimateRequest request;
    request.site = fleet.spec(i).name;
    request.features.assign(feature_width, 0.0);
    request.features[0] = 2.0;
    request.probing_cost = -1.0;
    if (!service.Estimate(request).ok()) serving_ok = false;
  }

  const runtime::RuntimeStatsSnapshot stats = service.Stats();
  FleetOutcome outcome;
  outcome.result.scenario.name = "fleet x2 + churn";
  outcome.result.scenario.threads = kReaders;
  outcome.result.scenario.cached = true;
  outcome.result.qps =
      static_cast<double>(per_reader * kReaders) / seconds;
  outcome.result.cache_hits = stats.estimate_cache_hits;
  outcome.sites = num_sites;
  outcome.churn_cycles = churn_cycles.load();
  outcome.cache_hits = stats.estimate_cache_hits;
  // Every request here is tracker-resolved (probing < 0) on a cached
  // service, so the flow balance is exact: a request is a hit or a miss.
  outcome.conservation_ok =
      stats.requests == stats.estimate_cache_hits + stats.estimate_cache_misses;
  outcome.retirement_ok = stats.sites_retired == churn_cycles.load();
  outcome.serving_ok = serving_ok && stats.degraded_sites == 0;
  return outcome;
}

// ---- Boundary-jitter placement duel ---------------------------------------
//
// Two candidate sites for the same query. "steady" always costs 1.0.
// "jitter" is a two-state site (boundary at probing cost 1.0) costing 0.5
// uncontended and 4.0 contended, whose probing cost jitters within ±2% of
// the boundary — well inside the served distribution's soft-membership band.
// Its true expected cost (~2.25) is far worse than steady's 1.0, but a
// point estimate reads whichever single state the probe happens to land in,
// so point-estimate placement picks the jitter site on roughly half the
// trials. Expected-cost placement prices the blended distribution (mean
// >= 1.1 on either side of the boundary) and avoids it.
//
// "Wrong site" = picked the site whose true expected cost is higher.
// regret_x = realized cost of the policy's picks over a per-trial oracle
// that sees the contention state the query actually ran under.
struct JitterOutcome {
  uint64_t trials = 0;
  double wrong_point_rate = 0.0;
  double wrong_expected_rate = 0.0;
  double regret_point_x = 0.0;
  double regret_expected_x = 0.0;
  uint64_t expected_cost_wins = 0;  // service counter after the duel
};

// A model whose cost is constant within each state: the per-state fit is
// exact (slopes ~0, intercept = the state's cost), so the duel isolates the
// ranking policy rather than regression noise.
core::CostModel MakeConstantStateModel(const std::vector<double>& boundaries,
                                       const std::vector<double>& state_costs,
                                       uint64_t seed) {
  const auto cls = core::QueryClassId::kUnarySeqScan;
  const size_t width = core::VariableSet::ForClass(cls).size();
  core::ObservationSet obs;
  Rng rng(seed);
  for (size_t s = 0; s < state_costs.size(); ++s) {
    for (int i = 0; i < 50; ++i) {
      core::Observation o;
      o.probing_cost = static_cast<double>(s) + 0.5;
      o.features.assign(width, 0.0);
      for (size_t j = 0; j < 3; ++j) o.features[j] = rng.Uniform(1.0, 10.0);
      o.cost = state_costs[s];
      obs.push_back(std::move(o));
    }
  }
  return core::FitCostModel(cls, obs, {0, 1, 2},
                            core::ContentionStates::FromBoundaries(boundaries),
                            core::QualitativeForm::kGeneral);
}

JitterOutcome RunJitterPlacement(size_t trials) {
  runtime::EstimationServiceConfig config;
  config.worker_threads = 0;
  auto service = std::make_unique<runtime::EstimationService>(config);
  service->RegisterModel("steady", MakeConstantStateModel({}, {1.0}, 71));
  service->RegisterModel("jitter",
                         MakeConstantStateModel({1.0}, {0.5, 4.0}, 72));

  const size_t width =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  Rng rng(29);
  std::vector<runtime::PlacementCandidate> candidates(2);
  for (auto& candidate : candidates) {
    candidate.request.class_id = core::QueryClassId::kUnarySeqScan;
    candidate.request.features.assign(width, 0.0);
    for (size_t j = 0; j < 3; ++j) {
      candidate.request.features[j] = rng.Uniform(1.0, 10.0);
    }
    candidate.shipping_seconds = 0.0;
  }
  candidates[0].request.site = "steady";
  candidates[0].request.probing_cost = 0.5;
  candidates[1].request.site = "jitter";

  const runtime::PlacementOptions point_options;  // kPointEstimate default
  runtime::PlacementOptions expected_options;
  expected_options.ranking.policy = core::PlacementPolicy::kExpectedCost;

  JitterOutcome outcome;
  outcome.trials = trials;
  uint64_t wrong_point = 0;
  uint64_t wrong_expected = 0;
  double realized_point = 0.0;
  double realized_expected = 0.0;
  double realized_oracle = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    // The probe the planner sees and the contention the query actually runs
    // under are independent draws from the same ±2% band — the probe is
    // information about the future, not a copy of it.
    candidates[1].request.probing_cost = 1.0 + rng.Uniform(-0.02, 0.02);
    const double actual = 1.0 + rng.Uniform(-0.02, 0.02);
    const double jitter_realized = actual <= 1.0 ? 0.5 : 4.0;

    const runtime::PlacementResult point =
        service->ChoosePlacement(candidates, point_options);
    const runtime::PlacementResult expected =
        service->ChoosePlacement(candidates, expected_options);

    wrong_point += point.chosen == 1 ? 1 : 0;
    wrong_expected += expected.chosen == 1 ? 1 : 0;
    realized_point += point.chosen == 1 ? jitter_realized : 1.0;
    realized_expected += expected.chosen == 1 ? jitter_realized : 1.0;
    realized_oracle += std::min(jitter_realized, 1.0);
  }
  const double n_trials = static_cast<double>(trials);
  outcome.wrong_point_rate = static_cast<double>(wrong_point) / n_trials;
  outcome.wrong_expected_rate = static_cast<double>(wrong_expected) / n_trials;
  outcome.regret_point_x = realized_point / realized_oracle;
  outcome.regret_expected_x = realized_expected / realized_oracle;
  outcome.expected_cost_wins = service->Stats().placement_expected_cost_wins;
  return outcome;
}

// ---- Drift-recovery duel: RLS fast tier vs full-rederive-only --------------
//
// The environment's cost law jumps to 3x what the served model was fitted
// for. Two independent services race to bring the serving estimate back
// within 10% of the new truth, and the score is *observations consumed* —
// wall clock would mostly measure sleep intervals, while observation count
// is the quantity the paper's maintenance loop actually pays for:
//
//   RLS arm       — an AdaptationController fed one feedback report per
//                   served query (piggybacked on traffic; zero dedicated
//                   probing observations). Convergence cost = reports folded.
//   rederive arm  — a ModelRefreshDaemon watching the key the PR-6 way:
//                   feedback only *triggers* the refresh (min_reports with
//                   the error threshold), after which the daemon draws
//                   sample_size fresh observations from the site to refit.
//                   Convergence cost = trigger reports + sampled draws.
//
// adaptation_convergence_ratio_x = rederive cost / RLS cost (want >= 3).
// adaptation_probe_savings_x     = dedicated probing observations the
//                                  rederive arm drew per convergence vs the
//                                  RLS arm's (floored at 1; the RLS arm
//                                  draws none by construction).
struct AdaptationDuelOutcome {
  uint64_t rls_observations = 0;
  uint64_t rederive_observations = 0;
  uint64_t rederive_probe_draws = 0;
  bool rls_converged = false;
  bool rederive_converged = false;
  double convergence_ratio_x = 0.0;
  double probe_savings_x = 0.0;
};

// The post-drift environment at contention state 0 (probing cost 0.5):
// exactly 3x the law MakeModel fitted.
double DriftedTruth(const std::vector<double>& f) {
  return 3.0 * (0.5 * f[0] + 0.2 * f[1] + 0.1 * f[2]);
}

// An ObservationSource for the rederive arm that counts every draw — each
// one stands for a dedicated probing observation against the live site.
class CountingDriftSource : public core::ObservationSource {
 public:
  explicit CountingDriftSource(uint64_t seed) : rng_(seed) {}

  core::Observation Draw() override {
    ++draws_;
    core::Observation o;
    o.probing_cost = 0.5;
    o.features.assign(
        core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size(),
        0.0);
    for (size_t j = 0; j < 3; ++j) o.features[j] = rng_.Uniform(1.0, 10.0);
    o.cost = DriftedTruth(o.features);
    return o;
  }

  uint64_t draws() const { return draws_; }

 private:
  Rng rng_;
  uint64_t draws_ = 0;
};

// Both arms serve one site whose probe is pinned at 0.5 (state 0): the
// rederive arm's trigger path prices reports against the *cached* probe, so
// an uncontrolled probe would land in a different state than the drifted
// law was generated for and the error signal would read garbage.
std::unique_ptr<runtime::EstimationService> MakeDuelService() {
  runtime::EstimationServiceConfig config;
  config.probe_ttl = std::chrono::hours(1);
  config.worker_threads = 0;  // refreshes run inline
  auto service = std::make_unique<runtime::EstimationService>(config);
  service->RegisterModel("alpha",
                         MakeModel(core::QueryClassId::kUnarySeqScan, 1));
  service->RegisterSite("alpha", [] { return 0.5; });
  service->ProbeNow("alpha");
  return service;
}

AdaptationDuelOutcome RunAdaptationDuel() {
  const auto cls = core::QueryClassId::kUnarySeqScan;
  const size_t width = core::VariableSet::ForClass(cls).size();

  // The fixed query both arms are judged on, priced at state 0.
  runtime::EstimateRequest check;
  check.site = "alpha";
  check.class_id = cls;
  check.features.assign(width, 0.0);
  check.features[0] = 5.0;
  check.features[1] = 5.0;
  check.features[2] = 5.0;
  check.probing_cost = 0.5;
  const double truth = DriftedTruth(check.features);

  const auto converged = [&](runtime::EstimationService& service) {
    const runtime::EstimateResponse r = service.Estimate(check);
    return r.ok() && std::abs(r.estimate_seconds - truth) / truth <= 0.10;
  };

  constexpr uint64_t kObservationCap = 4096;
  AdaptationDuelOutcome outcome;

  {  // RLS arm: reports piggybacked on served traffic, drained inline.
    auto service = MakeDuelService();
    runtime::AdaptationConfig config;
    config.min_updates_to_publish = 4;
    config.stall_window = kObservationCap;  // the duel measures the fast
    config.min_samples_for_drift = kObservationCap;  // tier alone
    runtime::AdaptationController controller(service.get(), nullptr, config);
    Rng rng(311);
    runtime::FeedbackReport report;
    report.site = "alpha";
    report.class_id = cls;
    report.probing_cost = 0.5;
    report.features.assign(width, 0.0);
    while (outcome.rls_observations < kObservationCap) {
      for (size_t j = 0; j < 3; ++j) {
        report.features[j] = rng.Uniform(1.0, 10.0);
      }
      report.actual_cost = DriftedTruth(report.features);
      // A real client prices the query first and echoes the generation the
      // estimate came from; unstamped reports would read as stale lineage
      // once the fast tier starts publishing.
      runtime::EstimateRequest priced;
      priced.site = "alpha";
      priced.class_id = cls;
      priced.features = report.features;
      priced.probing_cost = 0.5;
      report.model_generation = service->Estimate(priced).model_generation;
      controller.Record(report);
      controller.DrainOnce();
      ++outcome.rls_observations;
      if (converged(*service)) {
        outcome.rls_converged = true;
        break;
      }
    }
  }

  {  // Rederive arm: feedback only triggers; the refit re-samples the site.
    auto service = MakeDuelService();
    runtime::ModelRefreshConfig refresh_config;
    refresh_config.min_reports = 8;
    refresh_config.drift_window = 8;
    refresh_config.error_threshold = 0.5;
    refresh_config.refresh_cooldown = std::chrono::nanoseconds(0);
    refresh_config.rederive.build.algorithm =
        core::StateAlgorithm::kSingleState;
    refresh_config.rederive.build.sample_size = 40;
    runtime::ModelRefreshDaemon daemon(service.get(), refresh_config);
    CountingDriftSource source(313);
    daemon.Watch("alpha", cls, &source);
    Rng rng(311);
    std::vector<double> features(width, 0.0);
    uint64_t reports = 0;
    while (reports < kObservationCap) {
      for (size_t j = 0; j < 3; ++j) features[j] = rng.Uniform(1.0, 10.0);
      // Refreshes run inline here (zero worker threads), so convergence can
      // be checked right after the report that tripped the refresh.
      daemon.ReportObserved("alpha", cls, features, DriftedTruth(features));
      ++reports;
      if (converged(*service)) {
        outcome.rederive_converged = true;
        break;
      }
    }
    outcome.rederive_probe_draws = source.draws();
    outcome.rederive_observations = reports + source.draws();
  }

  if (outcome.rls_observations > 0) {
    outcome.convergence_ratio_x =
        static_cast<double>(outcome.rederive_observations) /
        static_cast<double>(outcome.rls_observations);
  }
  // The RLS arm draws zero dedicated probing observations by construction;
  // floor its cost at one observation so the savings stay a finite ratio.
  outcome.probe_savings_x = static_cast<double>(outcome.rederive_probe_draws);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mscm;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  // Smoke mode bounds the run for CI: small workload, one rep, no JSON.
  const size_t n = EnvCount("MSCM_RUNTIME_BENCH_N", smoke ? 2000 : 40000);
  const size_t reps = EnvCount("MSCM_RUNTIME_BENCH_REPS", smoke ? 1 : 3);
  const std::vector<runtime::EstimateRequest> requests = MakeWorkload(n);
  const std::vector<runtime::EstimateRequest> hot_requests = MakeHotWorkload(n);

  const std::vector<Scenario> scenarios = {
      {"single x1", 1, /*batched=*/false, /*with_writer=*/false},
      {"batch x1", 1, true, false},
      {"batch x2", 2, true, false},
      {"batch x4", 4, true, false},
      {"batch x8", 8, true, false},
      {"batch x8 + writer", 8, true, true},
      {"batch x8 + refresh", 8, true, false, /*with_refresh=*/true},
      {"hot x1", 1, false, false, false, /*cached=*/false, /*hot=*/true},
      {"hot x1 cached", 1, false, false, false, /*cached=*/true, /*hot=*/true},
      {"compiled batch", 1, /*batched=*/true, false, false, /*cached=*/false,
       /*hot=*/true},
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned effective_hw = hw == 0 ? 1 : hw;

  std::printf("micro_runtime: %zu requests, batch size %zu, best of %zu "
              "reps, %u hardware threads%s\n\n",
              n, kBatch, reps, effective_hw, smoke ? " [smoke]" : "");

  TextTable table({"scenario", "requests/s", "p50 (us)", "p99 (us)",
                   "rmw/req", "refreshes", "cache hits"});
  std::vector<Result> results;
  for (const Scenario& scenario : scenarios) {
    results.push_back(
        RunBestOf(scenario, scenario.hot ? hot_requests : requests, reps));
    const Result& r = results.back();
    const bool oversub =
        static_cast<unsigned>(r.scenario.threads) > effective_hw;
    table.AddRow({r.scenario.name + (oversub ? " *" : ""),
                  Format("%.0f", r.qps),
                  Format("%.2f", r.p50_us), Format("%.2f", r.p99_us),
                  Format("%.2f", r.rmw_per_request),
                  Format("%llu", static_cast<unsigned long long>(r.refreshes)),
                  Format("%llu",
                         static_cast<unsigned long long>(r.cache_hits))});
  }

  // Degraded serving overhead, measured *paired*: healthy and degraded
  // single-thread runs alternate rep by rep so run-order effects — cache
  // warmth, frequency scaling, background noise — land on both sides
  // equally. Measuring the degraded run half a bench after its healthy
  // baseline once committed a nonsensical 0.753x "overhead" (degraded
  // apparently faster); the pairing removes that artifact.
  const Scenario degraded_single{"degraded x1", 1, false, false, false,
                                 false, false, /*degraded=*/true};
  Result paired_healthy = Run(scenarios[0], requests);
  Result paired_degraded = Run(degraded_single, requests);
  for (size_t r = 1; r < std::max<size_t>(reps, 2); ++r) {
    Result h = Run(scenarios[0], requests);
    Result d = Run(degraded_single, requests);
    if (h.qps > paired_healthy.qps) paired_healthy = h;
    if (d.qps > paired_degraded.qps) paired_degraded = d;
  }
  results.push_back(paired_degraded);
  {
    const Result& r = results.back();
    table.AddRow({r.scenario.name, Format("%.0f", r.qps),
                  Format("%.2f", r.p50_us), Format("%.2f", r.p99_us),
                  Format("%.2f", r.rmw_per_request), "0",
                  Format("%llu",
                         static_cast<unsigned long long>(r.cache_hits))});
  }

  // Raw-model hot loops (no service, no cache): the serving representation
  // head to head. No per-call latency histogram here — only throughput.
  const core::CostModel raw_model =
      MakeModel(core::QueryClassId::kUnarySeqScan, 1);
  const RawWorkload raw_workload = MakeRawWorkload();
  for (const bool compiled : {false, true}) {
    results.push_back(
        RunRawBestOf(raw_model, raw_workload, compiled, n, reps));
    const Result& r = results.back();
    table.AddRow({r.scenario.name, Format("%.0f", r.qps), "-", "-", "0.00",
                  "0", "0"});
  }

  // Fleet-scale churn scenario, appended after the fixed-index scenarios so
  // results[0..12] keep their positions.
  const FleetOutcome fleet = RunFleetScenario(smoke);
  results.push_back(fleet.result);
  table.AddRow({fleet.result.scenario.name, Format("%.0f", fleet.result.qps),
                "-", "-", "-",
                "0",
                Format("%llu",
                       static_cast<unsigned long long>(fleet.cache_hits))});
  std::printf("%s\n", table.Render().c_str());
  if (8u > effective_hw) {
    std::printf("* oversubscribed: more reader threads than the machine's %u "
                "hardware thread%s — throughput is a contention measurement, "
                "not scaling\n\n",
                effective_hw, effective_hw == 1 ? "" : "s");
  }

  // The boundary-jitter placement duel (point estimate vs expected cost on
  // a probing cost straddling a state boundary).
  const JitterOutcome jitter = RunJitterPlacement(smoke ? 400 : 4000);

  // The drift-recovery duel (RLS fast tier vs full-rederive-only) — counted
  // in observations, so the same size in smoke and full mode.
  const AdaptationDuelOutcome duel = RunAdaptationDuel();

  const double single_qps = results[0].qps;
  const double batch1_qps = results[1].qps;
  const double batch8_qps = results[4].qps;
  const double hot_qps = results[7].qps;
  const double hot_cached_qps = results[8].qps;
  const double degraded_qps = results[10].qps;
  const double termwalk_qps = results[11].qps;
  const double compiled_qps = results[12].qps;
  // Healthy baseline from the *paired* reps, not results[0] — see the
  // comment at the paired measurement above.
  const double degraded_overhead = paired_healthy.qps / degraded_qps;

  // Honest scaling: the largest measured batch thread count that fits the
  // machine (batch x1/x2/x4/x8 sit at results[1..4]). With one hardware
  // thread this degenerates to 1.00x by construction — which is the honest
  // answer: this box cannot measure scale-out.
  const bool scaling_oversubscribed = 8u > effective_hw;
  size_t honest_index = 1;
  for (size_t i = 2; i <= 4; ++i) {
    if (static_cast<unsigned>(results[i].scenario.threads) <= effective_hw) {
      honest_index = i;
    }
  }
  const int honest_threads = results[honest_index].scenario.threads;
  const double honest_scaling = results[honest_index].qps / batch1_qps;

  std::printf("batch amortization (batch x1 / single x1): %.2fx\n",
              batch1_qps / single_qps);
  std::printf("thread scaling (batch x8 / batch x1):      %.2fx%s\n",
              batch8_qps / batch1_qps,
              scaling_oversubscribed ? "  [oversubscribed — see *]" : "");
  std::printf("thread scaling honest (batch x%d / x1):     %.2fx\n",
              honest_threads, honest_scaling);
  std::printf("cached hot loop (hot cached / hot):        %.2fx\n",
              hot_cached_qps / hot_qps);
  std::printf("compiled hot loop (compiled / termwalk):   %.2fx\n",
              compiled_qps / termwalk_qps);
  std::printf("degraded serving (paired healthy/degraded):%.2fx overhead\n",
              degraded_overhead);
  std::printf("cached hot path shared RMWs per request:   %.3f (want 0)\n",
              results[8].rmw_per_request);
  std::printf("placement wrong-site rate point/expected:  %.3f / %.3f "
              "(%llu trials)\n",
              jitter.wrong_point_rate, jitter.wrong_expected_rate,
              static_cast<unsigned long long>(jitter.trials));
  std::printf("placement regret vs oracle point/expected: %.2fx / %.2fx "
              "(expected-cost wins: %llu)\n",
              jitter.regret_point_x, jitter.regret_expected_x,
              static_cast<unsigned long long>(jitter.expected_cost_wins));
  std::printf("drift recovery RLS/rederive observations:  %llu / %llu "
              "(ratio %.1fx, probe savings %.0fx)\n",
              static_cast<unsigned long long>(duel.rls_observations),
              static_cast<unsigned long long>(duel.rederive_observations),
              duel.convergence_ratio_x, duel.probe_savings_x);
  std::printf("fleet churn (%zu sites, %llu cycles):      %.0f req/s, "
              "conservation %s, retirement %s, serving %s\n",
              fleet.sites,
              static_cast<unsigned long long>(fleet.churn_cycles),
              fleet.result.qps, fleet.conservation_ok ? "ok" : "VIOLATED",
              fleet.retirement_ok ? "ok" : "VIOLATED",
              fleet.serving_ok ? "ok" : "BROKEN");

  if (smoke) {
    bool fail = false;
    if (results[8].rmw_per_request != 0.0) {
      std::printf("\nSMOKE FAIL: cached hot path performed %.3f shared "
                  "atomic RMWs per request; the epoch read path + per-thread "
                  "cache/counters should make it exactly 0\n",
                  results[8].rmw_per_request);
      fail = true;
    }
    if (!(degraded_overhead >= 0.8)) {
      std::printf("\nSMOKE FAIL: degraded_overhead_x %.3f — the healthy / "
                  "degraded ratio should sit near or above 1.0; well below "
                  "means the ratio inverted or the paired measurement "
                  "broke\n",
                  degraded_overhead);
      fail = true;
    }
    if (!(jitter.wrong_expected_rate < jitter.wrong_point_rate)) {
      std::printf("\nSMOKE FAIL: expected-cost placement picked the wrong "
                  "site at %.3f, not below the point-estimate rate %.3f — "
                  "distribution ranking is not beating the point estimate "
                  "under boundary jitter\n",
                  jitter.wrong_expected_rate, jitter.wrong_point_rate);
      fail = true;
    }
    if (jitter.expected_cost_wins == 0) {
      std::printf("\nSMOKE FAIL: placement_expected_cost_wins stayed 0 over "
                  "the jitter duel — the expected-cost ranking never "
                  "diverged from the point argmin\n");
      fail = true;
    }
    if (!duel.rls_converged || !duel.rederive_converged) {
      std::printf("\nSMOKE FAIL: drift-recovery duel did not converge "
                  "(RLS %s, rederive %s) — an adaptation tier cannot track "
                  "a 3x coefficient drift\n",
                  duel.rls_converged ? "ok" : "STUCK",
                  duel.rederive_converged ? "ok" : "STUCK");
      fail = true;
    }
    if (!(duel.convergence_ratio_x >= 3.0)) {
      std::printf("\nSMOKE FAIL: adaptation_convergence_ratio_x %.2f < 3.0 — "
                  "the RLS fast tier should recover from parametric drift "
                  "with at least 3x fewer observations than a full "
                  "re-derivation\n",
                  duel.convergence_ratio_x);
      fail = true;
    }
    if (!fleet.conservation_ok || !fleet.retirement_ok || !fleet.serving_ok ||
        fleet.churn_cycles == 0) {
      std::printf("\nSMOKE FAIL: fleet churn scenario broke a lifecycle "
                  "invariant (conservation %s, retirement %s, serving %s, "
                  "%llu churn cycles) — site churn corrupted stats or left "
                  "the fleet unable to serve\n",
                  fleet.conservation_ok ? "ok" : "VIOLATED",
                  fleet.retirement_ok ? "ok" : "VIOLATED",
                  fleet.serving_ok ? "ok" : "BROKEN",
                  static_cast<unsigned long long>(fleet.churn_cycles));
      fail = true;
    }
    if (effective_hw > 1 && !(honest_scaling >= 1.05)) {
      std::printf("\nSMOKE FAIL: thread_scaling_honest_x %.2f at %d threads "
                  "on a %u-thread machine — the sharded estimate path "
                  "stopped scaling across real cores\n",
                  honest_scaling, honest_threads, effective_hw);
      fail = true;
    }
    if (fail) return 1;
    std::printf("\nsmoke ok: %zu requests/scenario, cached hot path served "
                "with zero shared atomic RMWs, degraded overhead %.2fx, "
                "expected-cost wrong-site %.3f < point %.3f, drift recovery "
                "%.1fx fewer observations via RLS\n",
                n, degraded_overhead, jitter.wrong_expected_rate,
                jitter.wrong_point_rate, duel.convergence_ratio_x);
    return 0;  // no JSON in smoke mode — numbers from a tiny run mislead
  }

  FILE* json = std::fopen("BENCH_runtime.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"micro_runtime\",\n");
    std::fprintf(json, "  \"requests\": %zu,\n  \"batch_size\": %zu,\n",
                 n, kBatch);
    std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(json, "  \"effective_hardware_threads\": %u,\n",
                 effective_hw);
    std::fprintf(json, "  \"scenarios\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"threads\": %d, \"batched\": %s, "
                   "\"writer\": %s, \"refresh\": %s, \"cached\": %s, "
                   "\"degraded\": %s, \"oversubscribed\": %s, "
                   "\"qps\": %.0f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
                   "\"shared_rmw_per_request\": %.3f, "
                   "\"refreshes\": %llu, \"cache_hits\": %llu}%s\n",
                   r.scenario.name.c_str(), r.scenario.threads,
                   r.scenario.batched ? "true" : "false",
                   r.scenario.with_writer ? "true" : "false",
                   r.scenario.with_refresh ? "true" : "false",
                   r.scenario.cached ? "true" : "false",
                   r.scenario.degraded ? "true" : "false",
                   static_cast<unsigned>(r.scenario.threads) > effective_hw
                       ? "true"
                       : "false",
                   r.qps, r.p50_us, r.p99_us, r.rmw_per_request,
                   static_cast<unsigned long long>(r.refreshes),
                   static_cast<unsigned long long>(r.cache_hits),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"batch_amortization_x\": %.3f,\n",
                 batch1_qps / single_qps);
    std::fprintf(json, "  \"thread_scaling_8t_x\": %.3f,\n",
                 batch8_qps / batch1_qps);
    std::fprintf(json, "  \"thread_scaling_8t_oversubscribed\": %s,\n",
                 scaling_oversubscribed ? "true" : "false");
    std::fprintf(json, "  \"thread_scaling_honest_threads\": %d,\n",
                 honest_threads);
    std::fprintf(json, "  \"thread_scaling_honest_x\": %.3f,\n",
                 honest_scaling);
    std::fprintf(json, "  \"cached_hot_shared_rmw_per_request\": %.3f,\n",
                 results[8].rmw_per_request);
    std::fprintf(json, "  \"cached_hot_loop_speedup_x\": %.3f,\n",
                 hot_cached_qps / hot_qps);
    std::fprintf(json, "  \"compiled_hot_loop_speedup_x\": %.3f,\n",
                 compiled_qps / termwalk_qps);
    std::fprintf(json, "  \"degraded_overhead_x\": %.3f,\n",
                 degraded_overhead);
    std::fprintf(json, "  \"placement_trials\": %llu,\n",
                 static_cast<unsigned long long>(jitter.trials));
    std::fprintf(json, "  \"placement_wrong_site_point_rate\": %.4f,\n",
                 jitter.wrong_point_rate);
    std::fprintf(json, "  \"placement_wrong_site_expected_rate\": %.4f,\n",
                 jitter.wrong_expected_rate);
    std::fprintf(json, "  \"placement_regret_point_x\": %.3f,\n",
                 jitter.regret_point_x);
    std::fprintf(json, "  \"placement_regret_expected_x\": %.3f,\n",
                 jitter.regret_expected_x);
    std::fprintf(json, "  \"placement_expected_cost_wins\": %llu,\n",
                 static_cast<unsigned long long>(jitter.expected_cost_wins));
    std::fprintf(json, "  \"adaptation_rls_observations\": %llu,\n",
                 static_cast<unsigned long long>(duel.rls_observations));
    std::fprintf(json, "  \"adaptation_rederive_observations\": %llu,\n",
                 static_cast<unsigned long long>(duel.rederive_observations));
    std::fprintf(json, "  \"adaptation_rederive_probe_draws\": %llu,\n",
                 static_cast<unsigned long long>(duel.rederive_probe_draws));
    std::fprintf(json, "  \"adaptation_convergence_ratio_x\": %.3f,\n",
                 duel.convergence_ratio_x);
    std::fprintf(json, "  \"adaptation_probe_savings_x\": %.3f,\n",
                 duel.probe_savings_x);
    std::fprintf(json, "  \"fleet_sites\": %zu,\n", fleet.sites);
    std::fprintf(json, "  \"fleet_qps\": %.0f,\n", fleet.result.qps);
    std::fprintf(json, "  \"fleet_churn_cycles\": %llu,\n",
                 static_cast<unsigned long long>(fleet.churn_cycles));
    std::fprintf(json, "  \"fleet_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(fleet.cache_hits));
    std::fprintf(json, "  \"fleet_conservation_ok\": %s,\n",
                 fleet.conservation_ok ? "true" : "false");
    std::fprintf(json, "  \"fleet_retirement_ok\": %s,\n",
                 fleet.retirement_ok ? "true" : "false");
    std::fprintf(json, "  \"fleet_serving_ok\": %s\n",
                 fleet.serving_ok ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_runtime.json\n");
  }
  return 0;
}
