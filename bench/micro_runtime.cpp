// Throughput / latency microbench for the online estimation service
// (src/runtime): how fast can concurrent planner threads price queries
// against the snapshot catalog + cached contention states?
//
// Scenarios (fresh service each, same request workload):
//   single  x1   — one thread, one Estimate() call per request
//   batch   x1   — one thread, EstimateBatch() in chunks of kBatch
//   batch   xN   — N reader threads, each batching its own slice
//   batch   x8+w — 8 readers while a writer re-registers models (CoW swaps)
//
// Emits BENCH_runtime.json with requests/sec and p50/p99 per-estimate
// latency per scenario, plus the derived batch-amortization and
// thread-scaling factors. Threads beyond the machine's cores cannot add
// speedup (hardware_concurrency is recorded in the JSON for that reason).
//
// Each scenario runs kReps times and reports the best repetition — on a
// shared machine the best rep is the least-perturbed measurement.
//
// MSCM_RUNTIME_BENCH_N (env) overrides the request count;
// MSCM_RUNTIME_BENCH_REPS overrides the repetition count.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/cost_model.h"
#include "core/explanatory.h"
#include "runtime/estimation_service.h"

namespace {

using namespace mscm;
using Clock = std::chrono::steady_clock;

constexpr size_t kBatch = 512;

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

// A fitted 4-state model over 3 selected variables with synthetic
// coefficients — the estimate path (state lookup + design row + dot
// product) is identical to a paper-derived model's.
core::CostModel MakeModel(core::QueryClassId cls, uint64_t seed) {
  const size_t n_features = core::VariableSet::ForClass(cls).size();
  constexpr int kStates = 4;
  core::ObservationSet obs;
  Rng rng(seed);
  for (int s = 0; s < kStates; ++s) {
    for (int i = 0; i < 50; ++i) {
      core::Observation o;
      o.probing_cost = s + 0.5;
      o.features.assign(n_features, 0.0);
      for (size_t j = 0; j < 3; ++j) o.features[j] = rng.Uniform(1.0, 10.0);
      o.cost = (s + 1.0) * (0.5 * o.features[0] + 0.2 * o.features[1] +
                            0.1 * o.features[2]);
      obs.push_back(std::move(o));
    }
  }
  return core::FitCostModel(
      cls, obs, {0, 1, 2},
      core::ContentionStates::FromBoundaries({1.0, 2.0, 3.0}),
      core::QualitativeForm::kGeneral);
}

struct Scenario {
  std::string name;
  int threads = 1;
  bool batched = false;
  bool with_writer = false;
};

struct Result {
  Scenario scenario;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

std::vector<runtime::EstimateRequest> MakeWorkload(size_t n) {
  const std::vector<std::string> sites = {"alpha", "beta"};
  const std::vector<core::QueryClassId> classes = {
      core::QueryClassId::kUnarySeqScan, core::QueryClassId::kJoinNoIndex};
  Rng rng(17);
  std::vector<runtime::EstimateRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    runtime::EstimateRequest request;
    request.site = sites[i % sites.size()];
    request.class_id = classes[(i / 2) % classes.size()];
    request.features.assign(
        core::VariableSet::ForClass(request.class_id).size(), 0.0);
    for (size_t j = 0; j < 3; ++j) {
      request.features[j] = rng.Uniform(1.0, 10.0);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

std::unique_ptr<runtime::EstimationService> MakeService() {
  runtime::EstimationServiceConfig config;
  config.probe_ttl = std::chrono::hours(1);
  config.worker_threads = 0;  // reader threads are the parallelism measured
  auto service = std::make_unique<runtime::EstimationService>(config);
  uint64_t seed = 1;
  for (const std::string& site : {std::string("alpha"), std::string("beta")}) {
    service->RegisterModel(
        site, MakeModel(core::QueryClassId::kUnarySeqScan, seed++));
    service->RegisterModel(
        site, MakeModel(core::QueryClassId::kJoinNoIndex, seed++));
    service->RegisterSite(site,
                          [value = 0.5 + 0.7 * static_cast<double>(seed)] {
                            return value;
                          });
    service->ProbeNow(site);
  }
  return service;
}

Result Run(const Scenario& scenario,
           const std::vector<runtime::EstimateRequest>& requests) {
  auto service = MakeService();

  std::atomic<bool> writer_stop{false};
  std::thread writer;
  if (scenario.with_writer) {
    writer = std::thread([&service, &writer_stop] {
      uint64_t seed = 1000;
      while (!writer_stop.load(std::memory_order_relaxed)) {
        service->RegisterModel(
            "alpha", MakeModel(core::QueryClassId::kUnarySeqScan, seed++));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  auto drive = [&](size_t begin, size_t end) {
    if (scenario.batched) {
      std::vector<runtime::EstimateRequest> chunk;
      for (size_t i = begin; i < end; i += kBatch) {
        const size_t stop = std::min(end, i + kBatch);
        chunk.assign(requests.begin() + static_cast<long>(i),
                     requests.begin() + static_cast<long>(stop));
        service->EstimateBatch(chunk);
      }
    } else {
      for (size_t i = begin; i < end; ++i) service->Estimate(requests[i]);
    }
  };

  // Warmup pass (1/8 of the workload), then the timed pass.
  drive(0, requests.size() / 8);

  const auto started = Clock::now();
  if (scenario.threads <= 1) {
    drive(0, requests.size());
  } else {
    std::vector<std::thread> readers;
    const size_t per = requests.size() / static_cast<size_t>(scenario.threads);
    for (int t = 0; t < scenario.threads; ++t) {
      const size_t begin = static_cast<size_t>(t) * per;
      const size_t end = t + 1 == scenario.threads
                             ? requests.size()
                             : begin + per;
      readers.emplace_back([&drive, begin, end] { drive(begin, end); });
    }
    for (std::thread& r : readers) r.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - started).count();

  if (scenario.with_writer) {
    writer_stop.store(true);
    writer.join();
  }

  const runtime::RuntimeStatsSnapshot stats = service->Stats();
  Result result;
  result.scenario = scenario;
  result.qps = static_cast<double>(requests.size()) / seconds;
  result.p50_us = stats.estimate_latency.p50_seconds * 1e6;
  result.p99_us = stats.estimate_latency.p99_seconds * 1e6;
  return result;
}

// Best (highest-throughput) of `reps` repetitions of a scenario.
Result RunBestOf(const Scenario& scenario,
                 const std::vector<runtime::EstimateRequest>& requests,
                 size_t reps) {
  Result best = Run(scenario, requests);
  for (size_t r = 1; r < reps; ++r) {
    Result next = Run(scenario, requests);
    if (next.qps > best.qps) best = next;
  }
  return best;
}

}  // namespace

int main() {
  using namespace mscm;
  const size_t n = EnvCount("MSCM_RUNTIME_BENCH_N", 40000);
  const size_t reps = EnvCount("MSCM_RUNTIME_BENCH_REPS", 3);
  const std::vector<runtime::EstimateRequest> requests = MakeWorkload(n);

  const std::vector<Scenario> scenarios = {
      {"single x1", 1, /*batched=*/false, /*with_writer=*/false},
      {"batch x1", 1, true, false},
      {"batch x2", 2, true, false},
      {"batch x4", 4, true, false},
      {"batch x8", 8, true, false},
      {"batch x8 + writer", 8, true, true},
  };

  std::printf("micro_runtime: %zu requests, batch size %zu, best of %zu "
              "reps, %u hardware threads\n\n",
              n, kBatch, reps, std::thread::hardware_concurrency());

  TextTable table({"scenario", "requests/s", "p50 (us)", "p99 (us)"});
  std::vector<Result> results;
  for (const Scenario& scenario : scenarios) {
    results.push_back(RunBestOf(scenario, requests, reps));
    const Result& r = results.back();
    table.AddRow({r.scenario.name, Format("%.0f", r.qps),
                  Format("%.2f", r.p50_us), Format("%.2f", r.p99_us)});
  }
  std::printf("%s\n", table.Render().c_str());

  const double single_qps = results[0].qps;
  const double batch1_qps = results[1].qps;
  const double batch8_qps = results[4].qps;
  std::printf("batch amortization (batch x1 / single x1): %.2fx\n",
              batch1_qps / single_qps);
  std::printf("thread scaling (batch x8 / batch x1):      %.2fx\n",
              batch8_qps / batch1_qps);

  FILE* json = std::fopen("BENCH_runtime.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"micro_runtime\",\n");
    std::fprintf(json, "  \"requests\": %zu,\n  \"batch_size\": %zu,\n",
                 n, kBatch);
    std::fprintf(json, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(json, "  \"scenarios\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"threads\": %d, \"batched\": %s, "
                   "\"writer\": %s, \"qps\": %.0f, \"p50_us\": %.3f, "
                   "\"p99_us\": %.3f}%s\n",
                   r.scenario.name.c_str(), r.scenario.threads,
                   r.scenario.batched ? "true" : "false",
                   r.scenario.with_writer ? "true" : "false", r.qps, r.p50_us,
                   r.p99_us, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"batch_amortization_x\": %.3f,\n",
                 batch1_qps / single_qps);
    std::fprintf(json, "  \"thread_scaling_8t_x\": %.3f\n",
                 batch8_qps / batch1_qps);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_runtime.json\n");
  }
  return 0;
}
