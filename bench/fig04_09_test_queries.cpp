// Figures 4–9: observed vs estimated costs for test queries in a dynamic
// environment — estimated by the multi-states ("qualitative") model and by
// the one-state ("static approach") model. One figure per (query class,
// local DBS) pair:
//   Fig 4/5: class G1 on DB2-like / Oracle-like,
//   Fig 6/7: class G2,
//   Fig 8/9: class G3 (join).
// The paper plots cost against the number of result tuples; this harness
// prints the same series, sorted by result size, so the crossing pattern
// (multi-states hugging the observed curve, one-state deviating under
// high/low contention) is directly visible.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

namespace {

using namespace mscm;

// Index of the result-cardinality feature in the class's variable set.
int ResultTuplesFeature(core::QueryClassId cls) {
  return core::IsJoinClass(cls) ? 4 : 2;
}

}  // namespace

int main() {
  struct FigureSpec {
    int number;
    core::QueryClassId cls;
    const char* site;
  };
  const FigureSpec kFigures[] = {
      {4, core::QueryClassId::kUnarySeqScan, "beta"},
      {5, core::QueryClassId::kUnarySeqScan, "alpha"},
      {6, core::QueryClassId::kUnaryNonClusteredIndex, "beta"},
      {7, core::QueryClassId::kUnaryNonClusteredIndex, "alpha"},
      {8, core::QueryClassId::kJoinNoIndex, "beta"},
      {9, core::QueryClassId::kJoinNoIndex, "alpha"},
  };
  constexpr int kTestQueries = 40;

  uint64_t seed = 600;
  for (const FigureSpec& fig : kFigures) {
    mdbs::LocalDbs site(bench::SiteConfig(fig.site, seed += 31));

    // Train multi-states and one-state models on the same dynamic sample.
    core::AgentObservationSource source(&site, fig.cls, seed += 7);
    const core::VariableSet vars = core::VariableSet::ForClass(fig.cls);
    const int n = core::RecommendedSampleSize(
        static_cast<int>(vars.BasicIndices().size()), 6);
    const core::ObservationSet training = core::DrawObservations(source, n);

    core::ModelBuildOptions multi_options;
    multi_options.algorithm = core::StateAlgorithm::kIupma;
    const core::BuildReport multi =
        core::BuildCostModelFromObservations(fig.cls, training, multi_options);
    core::ModelBuildOptions one_options;
    one_options.algorithm = core::StateAlgorithm::kSingleState;
    const core::BuildReport one =
        core::BuildCostModelFromObservations(fig.cls, training, one_options);

    core::AgentObservationSource test_source(&site, fig.cls, seed += 7);
    core::ObservationSet test = core::DrawObservations(test_source,
                                                       kTestQueries);
    const int result_feature = ResultTuplesFeature(fig.cls);
    std::sort(test.begin(), test.end(),
              [result_feature](const core::Observation& a,
                               const core::Observation& b) {
                return a.features[static_cast<size_t>(result_feature)] <
                       b.features[static_cast<size_t>(result_feature)];
              });

    std::printf(
        "Figure %d — costs for test queries in class %s on %s\n",
        fig.number, core::Label(fig.cls), bench::SiteDbmsLabel(fig.site));
    TextTable table({"result tuples", "observed (s)",
                     "multi-states est (s)", "one-state est (s)"});
    int multi_good = 0;
    int one_good = 0;
    for (const core::Observation& o : test) {
      const double est_multi = multi.model.Estimate(o.features,
                                                    o.probing_cost);
      const double est_one = one.model.Estimate(o.features, o.probing_cost);
      if (core::IsGoodEstimate(est_multi, o.cost)) ++multi_good;
      if (core::IsGoodEstimate(est_one, o.cost)) ++one_good;
      table.AddRow(
          {Format("%.0f",
                  o.features[static_cast<size_t>(result_feature)] * 1000.0),
           Format("%.2f", o.cost), Format("%.2f", est_multi),
           Format("%.2f", est_one)});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("good estimates: multi-states %d/%d, one-state %d/%d\n\n",
                multi_good, kTestQueries, one_good, kTestQueries);
  }
  return 0;
}
