// Extension experiment: the paper evaluates three representative query
// classes (G1/G2/G3); the underlying taxonomy (from the static query
// sampling method) also contains the clustered-index unary class and the
// index-nested-loop join class. This harness derives multi-states models
// for *all five* classes on both sites and validates each — showing the
// method generalizes across the full classification.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

int main() {
  using namespace mscm;

  const core::QueryClassId kClasses[] = {
      core::QueryClassId::kUnarySeqScan,
      core::QueryClassId::kUnaryNonClusteredIndex,
      core::QueryClassId::kUnaryClusteredIndex,
      core::QueryClassId::kJoinNoIndex,
      core::QueryClassId::kJoinIndex,
  };

  std::printf("Extension — multi-states models for the full query-class "
              "taxonomy\n\n");
  TextTable table({"class", "description", "site", "#states", "R^2",
                   "very good", "good"});

  uint64_t seed = 1200;
  for (const std::string site_name : {"alpha", "beta"}) {
    mdbs::LocalDbs site(bench::SiteConfig(site_name, seed += 17));
    for (core::QueryClassId cls : kClasses) {
      core::AgentObservationSource source(&site, cls, seed += 7);
      core::ModelBuildOptions options;
      options.algorithm = core::StateAlgorithm::kIupma;
      const core::BuildReport report =
          core::BuildCostModel(cls, source, options);

      core::AgentObservationSource test_source(&site, cls, seed += 7);
      const core::ObservationSet test =
          core::DrawObservations(test_source, 80);
      const core::ValidationReport v = core::Validate(report.model, test);

      table.AddRow({core::Label(cls), core::ToString(cls), site_name,
                    Format("%d", report.model.states().num_states()),
                    Format("%.3f", report.model.r_squared()),
                    Format("%.0f%%", 100.0 * v.pct_very_good),
                    Format("%.0f%%", 100.0 * v.pct_good)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nnote: Gc (clustered-index) and Gj (index-join) extend the "
              "paper's three evaluated classes; the same pipeline covers "
              "them without modification.\n");
  return 0;
}
