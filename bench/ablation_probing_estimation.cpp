// Ablation (§3.3, Eq. 2): probing-cost *estimation*. Instead of executing
// the probing query to determine the contention state, fit
//   probing_cost ~ b0 + b1*P1 + ... + bm*Pm
// over monitor statistics (CPU load, I/O utilization, memory use, …), and
// classify states from the estimate. Cheaper, at the price of estimation
// error. This harness fits the estimator, prints the surviving significant
// parameters, and measures (a) how often the estimated probe lands in the
// same contention state as the observed probe and (b) how much cost-model
// accuracy degrades when estimates replace observations.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/probing_estimator.h"
#include "core/validation.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbs site(bench::SiteConfig("alpha", /*seed=*/1000));

  // Paired (monitor snapshot, observed probing cost) samples.
  std::vector<sim::SystemStats> snapshots;
  std::vector<double> probes;
  for (int i = 0; i < 250; ++i) {
    site.ResampleLoad();
    snapshots.push_back(site.MonitorSnapshot());
    probes.push_back(site.RunProbingQuery());
  }
  const core::ProbingCostEstimator estimator =
      core::ProbingCostEstimator::Fit(snapshots, probes);

  std::printf("Ablation — probing-cost estimation from system statistics "
              "(Eq. 2)\n\n");
  std::printf("fitted equation: %s\n", estimator.ToString().c_str());
  std::printf("significant parameters kept: %zu of %zu candidates\n\n",
              estimator.selected_stats().size(),
              core::ProbingCostEstimator::StatNames().size());

  // Build a multi-states model with observed probes, then evaluate test
  // queries twice: states from observed probes vs states from estimates.
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  core::AgentObservationSource source(&site, cls, 1002);
  core::ModelBuildOptions options;
  options.algorithm = core::StateAlgorithm::kIupma;
  const core::BuildReport report = core::BuildCostModel(cls, source, options);

  // Fresh test queries with both the snapshot and the observed probe.
  int state_agreement = 0;
  core::ObservationSet test_observed;
  core::ObservationSet test_estimated;
  constexpr int kTest = 100;
  core::AgentObservationSource test_source(&site, cls, 1003);
  for (int i = 0; i < kTest; ++i) {
    site.ResampleLoad();
    const sim::SystemStats snap = site.MonitorSnapshot();
    const double est_probe = estimator.Estimate(snap);
    // Observe probe + query at the same contention point the snapshot was
    // taken at.
    const core::Observation obs = test_source.DrawAtCurrentLoad();
    if (report.model.states().StateOf(obs.probing_cost) ==
        report.model.states().StateOf(est_probe)) {
      ++state_agreement;
    }
    test_observed.push_back(obs);
    core::Observation est = obs;
    est.probing_cost = est_probe;
    test_estimated.push_back(est);
  }

  const core::ValidationReport with_observed =
      core::Validate(report.model, test_observed);
  const core::ValidationReport with_estimated =
      core::Validate(report.model, test_estimated);

  TextTable table({"probe source", "very good", "good", "mean rel err"});
  table.AddRow({"observed (run probing query)",
                Format("%.0f%%", 100.0 * with_observed.pct_very_good),
                Format("%.0f%%", 100.0 * with_observed.pct_good),
                Format("%.2f", with_observed.mean_relative_error)});
  table.AddRow({"estimated (Eq. 2 from stats)",
                Format("%.0f%%", 100.0 * with_estimated.pct_very_good),
                Format("%.0f%%", 100.0 * with_estimated.pct_good),
                Format("%.2f", with_estimated.mean_relative_error)});
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nstate agreement (estimated vs observed probe): %d%% of %d test "
      "points\nexpected shape: estimation keeps most of the accuracy while "
      "avoiding probing-query executions (paper: 'usually more efficient', "
      "with 'certain inaccuracy').\n",
      state_agreement, kTest);
  return 0;
}
