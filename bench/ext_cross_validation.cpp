// Extension: k-fold cross-validation of the state-count choice. In-sample R²
// never decreases with more states (§5's sweep), so how many states are
// *really* warranted? Held-out error answers: it improves up to the true
// regime structure and then flattens or degrades — independently confirming
// the paper's "3 to 6 states are usually sufficient" with an out-of-sample
// criterion the paper did not use.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/cross_validation.h"
#include "core/model_builder.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbs site(bench::SiteConfig("alpha", /*seed=*/1300));
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  const core::VariableSet vars = core::VariableSet::ForClass(cls);

  core::AgentObservationSource source(&site, cls, 1301);
  const core::ObservationSet obs = core::DrawObservations(source, 400);

  double cmin = obs.front().probing_cost;
  double cmax = cmin;
  for (const auto& o : obs) {
    cmin = std::min(cmin, o.probing_cost);
    cmax = std::max(cmax, o.probing_cost);
  }

  std::printf("Extension — 5-fold cross-validation vs number of states\n");
  std::printf("class %s on %s, %zu observations\n\n", core::Label(cls),
              bench::SiteDbmsLabel("alpha"), obs.size());

  TextTable table({"#states", "in-sample R^2", "CV RMSE (s)",
                   "CV very good", "CV good"});
  for (int m = 1; m <= 8; ++m) {
    const core::ContentionStates states =
        core::ContentionStates::UniformPartition(cmin, cmax, m);
    const core::CostModel model = core::FitCostModel(
        cls, obs, vars.BasicIndices(), states,
        core::QualitativeForm::kGeneral);
    Rng rng(1302);  // same folds for every m
    const core::CrossValidationReport cv = core::CrossValidate(
        cls, obs, vars.BasicIndices(), states,
        core::QualitativeForm::kGeneral, 5, rng);
    table.AddRow({Format("%d", m), Format("%.4f", model.r_squared()),
                  Format("%.2f", cv.mean_rmse),
                  Format("%.0f%%", 100.0 * cv.pct_very_good),
                  Format("%.0f%%", 100.0 * cv.pct_good)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nexpected shape: the typical-query bands (very good / good) keep "
      "improving with more states, but CV RMSE degrades sharply once a "
      "sparse tail subrange no longer has enough observations in every "
      "training fold — the instability IUPMA's underpopulation pre-merging "
      "exists to prevent, and an out-of-sample confirmation that a small "
      "number of *well-populated* states is the right target.\n");
  return 0;
}
