// Ablation (§5 observation): "the more contention states are considered,
// the better the derived cost model usually is … however, the improvement
// may be very small after the number of contention states reaches a certain
// point." The paper reports R^2 of 0.7788, 0.9636, 0.9674, 0.9899, 0.9922
// for 1–5/6 states on a G2-style class.
//
// This harness fixes the uniform partition at m = 1..8 states (no merging)
// and prints R^2 / SEE per state count, plus the count IUPMA itself settles
// on.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbs site(bench::SiteConfig("alpha", /*seed=*/900));
  const core::QueryClassId cls = core::QueryClassId::kUnaryNonClusteredIndex;
  const core::VariableSet vars = core::VariableSet::ForClass(cls);

  core::AgentObservationSource source(&site, cls, 901);
  const int n = core::RecommendedSampleSize(
      static_cast<int>(vars.BasicIndices().size()), 8);
  const core::ObservationSet obs = core::DrawObservations(source, n);

  double cmin = obs.front().probing_cost;
  double cmax = cmin;
  for (const core::Observation& o : obs) {
    cmin = std::min(cmin, o.probing_cost);
    cmax = std::max(cmax, o.probing_cost);
  }

  std::printf("Ablation — model quality vs number of contention states\n");
  std::printf("class %s on %s, %zu sample queries, general form, uniform "
              "partition (no merging)\n\n",
              core::Label(cls), bench::SiteDbmsLabel("alpha"), obs.size());

  TextTable table({"#states", "R^2", "SEE", "F p-value"});
  for (int m = 1; m <= 8; ++m) {
    const core::ContentionStates states =
        core::ContentionStates::UniformPartition(cmin, cmax, m);
    const core::CostModel model =
        core::FitCostModel(cls, obs, vars.BasicIndices(), states,
                           core::QualitativeForm::kGeneral);
    table.AddRow({Format("%d", m), Format("%.4f", model.r_squared()),
                  CompactDouble(model.standard_error(), 3),
                  Format("%.2g", model.f_pvalue())});
  }
  std::printf("%s", table.Render().c_str());

  core::ModelBuildOptions options;
  options.algorithm = core::StateAlgorithm::kIupma;
  const core::BuildReport report =
      core::BuildCostModelFromObservations(cls, obs, options);
  std::printf(
      "\nIUPMA settles on %d states after %d merge(s) "
      "(paper: 3-6 states usually suffice; R^2 gains flatten beyond that)\n",
      report.model.states().num_states(), report.merges);
  return 0;
}
