// Shared configuration for the benchmark harness binaries.
//
// Every bench binary reproduces one table or figure from the paper. The two
// simulated sites stand in for the paper's testbed:
//   site "alpha" — Oracle-8.0-like profile,
//   site "beta"  — DB2-5.0-like profile,
// each over 12 generated tables (3,000 … 250,000 tuples at scale 1.0) on a
// machine whose background load spans 0 … 130 concurrent processes.
//
// MSCM_BENCH_SCALE (env var) shrinks table cardinalities for quick runs;
// default is paper scale (1.0).

#ifndef MSCM_BENCH_BENCH_UTIL_H_
#define MSCM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "mdbs/local_dbs.h"

namespace mscm::bench {

inline double BenchScale() {
  const char* env = std::getenv("MSCM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

// Site config matching the paper's dynamic environment (uniform contention
// distribution unless overridden).
inline mdbs::LocalDbsConfig SiteConfig(const std::string& name,
                                       uint64_t seed) {
  mdbs::LocalDbsConfig config;
  config.site_name = name;
  config.profile = (name == "beta") ? sim::PerformanceProfile::Beta()
                                    : sim::PerformanceProfile::Alpha();
  config.tables.num_tables = 12;
  config.tables.scale = BenchScale();
  config.load.regime = sim::LoadRegime::kUniform;
  // The paper's dynamic environment never idles — Figure 1 spans 50…130
  // concurrent processes. Keep a modest floor so "dynamic" means loaded.
  config.load.min_processes = 20.0;
  config.load.max_processes = 130.0;
  config.seed = seed;
  return config;
}

inline const char* SiteDbmsLabel(const std::string& name) {
  return name == "beta" ? "beta (DB2-5.0-like)" : "alpha (Oracle-8.0-like)";
}

}  // namespace mscm::bench

#endif  // MSCM_BENCH_BENCH_UTIL_H_
