// Figure 10: histogram of the system contention level (probing query cost)
// in a clustered dynamic environment. The paper's histogram shows the
// contention level concentrating in a few distinct clusters; this harness
// samples probing costs under the clustered load regime and prints the
// frequency distribution as numbers plus an ASCII bar chart.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stats/descriptive.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config = bench::SiteConfig("alpha", /*seed=*/800);
  config.load.regime = sim::LoadRegime::kClustered;
  mdbs::LocalDbs site(config);

  constexpr int kSamples = 400;
  std::vector<double> probes;
  probes.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    site.ResampleLoad();
    probes.push_back(site.RunProbingQuery());
  }

  const double lo = stats::Min(probes);
  const double hi = stats::Max(probes);
  const stats::Histogram hist = stats::BuildHistogram(probes, lo, hi, 40);

  std::printf("Figure 10 — histogram of contention level "
              "(probing query cost, seconds) in a clustered case\n");
  std::printf("%d probing runs, range [%.3f, %.3f]\n\n", kSamples, lo, hi);

  size_t max_count = 0;
  for (size_t c : hist.counts) max_count = std::max(max_count, c);
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    const int bar_len = max_count == 0
        ? 0
        : static_cast<int>(50.0 * static_cast<double>(hist.counts[b]) /
                           static_cast<double>(max_count));
    std::printf("%7.3f | %-50s %zu\n", hist.BinCenter(b),
                std::string(static_cast<size_t>(bar_len), '#').c_str(),
                hist.counts[b]);
  }

  // Count distinct clusters: maximal runs of non-empty bins separated by
  // at least two empty bins.
  int clusters = 0;
  int empty_run = 2;
  for (size_t c : hist.counts) {
    if (c > 0) {
      if (empty_run >= 2) ++clusters;
      empty_run = 0;
    } else {
      ++empty_run;
    }
  }
  std::printf("\ndistinct contention clusters observed: %d "
              "(paper's Figure 10 shows a few well-separated clusters)\n",
              clusters);
  return 0;
}
