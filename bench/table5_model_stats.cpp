// Table 5: statistical measures for the derived cost models — multi-states
// vs one-state (static method applied to dynamic data) vs static
// (model trained in a quiet environment, "Static Approach 1") — for three
// query classes on each local DBS.
//
// Paper columns: R^2, SEE (s_e), average sample cost (y-bar), percentage of
// very good estimates (relative error <= 30%) and good estimates (within a
// factor of two) on randomly generated test queries run in the dynamic
// environment.
//
// Expected shape (paper): multi-states R^2 ~0.97-0.999 with 37-69% very good
// and 62-81% good; one-state drops both bands by ~20-30 points; the static
// model, despite high in-sample R^2, yields almost no good estimates in the
// dynamic environment.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

namespace {

using namespace mscm;

struct Variant {
  const char* label;
  core::CostModel model;
};

}  // namespace

int main() {
  const core::QueryClassId kClasses[] = {
      core::QueryClassId::kUnarySeqScan,
      core::QueryClassId::kUnaryNonClusteredIndex,
      core::QueryClassId::kJoinNoIndex,
  };
  constexpr int kTestQueries = 100;

  std::printf("Table 5 — statistics for cost models (multi-states vs "
              "one-state vs static)\n\n");
  TextTable table({"query class", "site", "model type", "#states", "R^2",
                   "SEE", "avg cost (s)", "very good", "good"});

  uint64_t seed = 400;
  for (const std::string site_name : {"alpha", "beta"}) {
    // Dynamic site for sampling + testing; quiet twin (same seed => same
    // database) for the static approach.
    mdbs::LocalDbs site(bench::SiteConfig(site_name, 4242));
    mdbs::LocalDbsConfig quiet_config = bench::SiteConfig(site_name, 4242);
    quiet_config.load.regime = sim::LoadRegime::kSteady;
    quiet_config.load.min_processes = 0.0;  // a genuinely idle machine
    quiet_config.load.steady_processes = 2.0;
    mdbs::LocalDbs quiet_site(quiet_config);

    for (core::QueryClassId cls : kClasses) {
      // One training sample in the dynamic environment, reused by both the
      // multi-states and one-state pipelines (as in the paper's comparison).
      core::AgentObservationSource source(&site, cls, seed += 7);
      const core::VariableSet vars = core::VariableSet::ForClass(cls);
      const int n = core::RecommendedSampleSize(
          static_cast<int>(vars.BasicIndices().size()), 6);
      const core::ObservationSet training =
          core::DrawObservations(source, n);

      core::ModelBuildOptions multi_options;
      multi_options.algorithm = core::StateAlgorithm::kIupma;
      core::BuildReport multi = core::BuildCostModelFromObservations(
          cls, training, multi_options);

      core::ModelBuildOptions one_options;
      one_options.algorithm = core::StateAlgorithm::kSingleState;
      core::BuildReport one = core::BuildCostModelFromObservations(
          cls, training, one_options);

      // Static Approach 1: sample in the quiet environment.
      core::AgentObservationSource quiet_source(&quiet_site, cls, seed += 7);
      core::ModelBuildOptions static_options;
      static_options.algorithm = core::StateAlgorithm::kSingleState;
      static_options.sample_size = n;
      core::BuildReport static_model =
          core::BuildCostModel(cls, quiet_source, static_options);

      // Test queries in the dynamic environment.
      core::AgentObservationSource test_source(&site, cls, seed += 7);
      const core::ObservationSet test =
          core::DrawObservations(test_source, kTestQueries);

      const Variant variants[] = {
          {"multi-states", multi.model},
          {"one-state", one.model},
          {"static", static_model.model},
      };
      for (const Variant& v : variants) {
        const core::ValidationReport r = core::Validate(v.model, test);
        table.AddRow({core::Label(cls), site_name, v.label,
                      Format("%d", v.model.states().num_states()),
                      Format("%.3f", v.model.r_squared()),
                      CompactDouble(v.model.standard_error(), 3),
                      Format("%.2f", r.avg_observed_cost),
                      Format("%.0f%%", 100.0 * r.pct_very_good),
                      Format("%.0f%%", 100.0 * r.pct_good)});
      }
      table.AddSeparator();
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nnote: 'very good' = relative error <= 30%%; 'good' = estimate within"
      " a factor of 2 of the observed cost (both measured on %d test queries"
      " run in the dynamic environment). The 'static' rows show in-sample"
      " R^2/SEE from the quiet environment the model was trained in.\n",
      kTestQueries);
  return 0;
}
