// End-to-end serving benchmark for the network boundary (src/net): a full
// ServedRuntime (models + probers + refresh daemon + epoll server) on
// loopback, driven by the load generator over real sockets. Where
// micro_runtime measures in-process estimate rates, this measures what a
// remote global query optimizer actually sees: framing, syscalls, dispatch,
// admission control.
//
// Scenarios (fresh server each):
//   closed x4        — 4 closed-loop connections, one estimate per frame;
//                      capacity under request/response discipline
//   closed x4 b64    — same connections, 64-estimate batch frames; wire +
//                      dispatch amortization (items/s vs frames/s)
//   open @rate       — open-loop arrivals below capacity; the scheduled-
//                      arrival latency distribution
//   overload tiny-q  — open-loop arrivals against a server with a tiny
//                      admission bound (max_inflight=2): the server must
//                      shed with typed kOverloaded errors, keep serving
//                      what it admits, and stay up — verified by a
//                      post-overload probe RPC that must succeed.
//
// Emits BENCH_net.json. MSCM_NET_BENCH_S (env) overrides per-scenario
// seconds; MSCM_NET_BENCH_RATE the open-loop arrival rate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "common/text_table.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/served_runtime.h"

namespace {

using namespace mscm;

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

struct Scenario {
  std::string name;
  net::LoadGenConfig::Mode mode = net::LoadGenConfig::Mode::kClosed;
  int connections = 4;
  size_t batch_size = 1;
  double target_rate = 0.0;    // open loop only
  size_t max_inflight = 256;   // server admission bound
};

struct Outcome {
  Scenario scenario;
  net::LoadGenResult result;
  net::NetServerStatsSnapshot server;
  bool recovered_after = false;  // post-run probe RPC succeeded
};

Outcome RunScenario(const Scenario& scenario, double seconds,
                    const std::vector<runtime::EstimateRequest>& workload) {
  net::ServedRuntimeConfig config;
  config.sites = 4;
  config.worker_threads = 2;
  config.server.io_threads = 2;
  config.server.max_inflight = scenario.max_inflight;
  config.refresh = true;
  config.probe_interval = std::chrono::milliseconds(50);

  net::ServedRuntime served(config);
  std::string error;
  if (!served.Start(&error)) {
    std::fprintf(stderr, "net_serving: server start failed: %s\n",
                 error.c_str());
    std::exit(1);
  }

  net::LoadGenConfig load;
  load.host = "127.0.0.1";
  load.port = served.port();
  load.mode = scenario.mode;
  load.connections = scenario.connections;
  load.batch_size = scenario.batch_size;
  load.target_rate = scenario.target_rate;
  load.duration = std::chrono::milliseconds(
      static_cast<int64_t>(seconds * 1000.0));
  load.workload = workload;

  Outcome outcome;
  outcome.scenario = scenario;
  outcome.result = net::RunLoadGen(load);

  // The stay-up check: whatever the load did, the server must still answer
  // a fresh request afterwards (shedding is a response, not a death).
  net::NetClient probe;
  runtime::EstimateResponse resp;
  outcome.recovered_after = probe.Connect("127.0.0.1", served.port()) &&
                            probe.Estimate(workload.front(), &resp).ok() &&
                            resp.ok();
  outcome.server = served.server().Stats();
  served.Shutdown();
  return outcome;
}

}  // namespace

int main() {
  using namespace mscm;
  const double seconds = EnvDouble("MSCM_NET_BENCH_S", 2.0);
  const double rate = EnvDouble("MSCM_NET_BENCH_RATE", 3000.0);
  const std::vector<runtime::EstimateRequest> workload =
      net::MakeUniformWorkload(/*n_requests=*/2048, /*n_sites=*/4,
                               /*seed=*/17);

  const std::vector<Scenario> scenarios = {
      {"closed x4", net::LoadGenConfig::Mode::kClosed, 4, 1, 0.0, 256},
      {"closed x4 b64", net::LoadGenConfig::Mode::kClosed, 4, 64, 0.0, 256},
      {"open @rate", net::LoadGenConfig::Mode::kOpen, 4, 1, rate, 256},
      {"overload tiny-q", net::LoadGenConfig::Mode::kOpen, 8, 1, 4.0 * rate,
       /*max_inflight=*/2},
  };

  std::printf("net_serving: %.1fs per scenario, open-loop rate %.0f/s\n\n",
              seconds, rate);

  TextTable table({"scenario", "frames/s", "items/s", "p50 (us)", "p99 (us)",
                   "overloaded", "recovered"});
  std::vector<Outcome> outcomes;
  for (const Scenario& scenario : scenarios) {
    outcomes.push_back(RunScenario(scenario, seconds, workload));
    const Outcome& o = outcomes.back();
    table.AddRow(
        {o.scenario.name, Format("%.0f", o.result.qps),
         Format("%.0f", o.result.items_per_sec),
         Format("%.1f", o.result.p50_us), Format("%.1f", o.result.p99_us),
         Format("%llu", static_cast<unsigned long long>(o.result.overloaded)),
         o.recovered_after ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());

  const Outcome& overload = outcomes.back();
  bool ok = true;
  if (overload.result.overloaded == 0) {
    std::printf("FAIL: overload scenario produced no kOverloaded sheds\n");
    ok = false;
  }
  for (const Outcome& o : outcomes) {
    if (!o.recovered_after) {
      std::printf("FAIL: server did not answer after scenario '%s'\n",
                  o.scenario.name.c_str());
      ok = false;
    }
  }
  const double amortization =
      outcomes[1].result.items_per_sec / outcomes[0].result.items_per_sec;
  std::printf("batch wire amortization (b64 items/s / b1 items/s): %.2fx\n",
              amortization);

  FILE* json = std::fopen("BENCH_net.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"net_serving\",\n");
    std::fprintf(json, "  \"seconds_per_scenario\": %.2f,\n", seconds);
    std::fprintf(json, "  \"open_loop_rate\": %.0f,\n", rate);
    std::fprintf(json, "  \"scenarios\": [\n");
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const Outcome& o = outcomes[i];
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"mode\": \"%s\", \"connections\": %d, "
          "\"batch\": %zu, \"max_inflight\": %zu, \"qps\": %.1f, "
          "\"items_per_sec\": %.1f, \"completed\": %llu, "
          "\"overloaded\": %llu, \"error_frames\": %llu, "
          "\"transport_errors\": %llu, \"behind_schedule\": %llu, "
          "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p99_us\": %.1f, "
          "\"max_us\": %.1f, \"server_dispatched\": %llu, "
          "\"server_completed\": %llu, \"server_shed\": %llu, "
          "\"recovered_after\": %s}%s\n",
          o.scenario.name.c_str(),
          o.scenario.mode == net::LoadGenConfig::Mode::kClosed ? "closed"
                                                               : "open",
          o.scenario.connections, o.scenario.batch_size,
          o.scenario.max_inflight, o.result.qps, o.result.items_per_sec,
          static_cast<unsigned long long>(o.result.completed),
          static_cast<unsigned long long>(o.result.overloaded),
          static_cast<unsigned long long>(o.result.error_frames),
          static_cast<unsigned long long>(o.result.transport_errors),
          static_cast<unsigned long long>(o.result.behind_schedule),
          o.result.p50_us, o.result.p90_us, o.result.p99_us, o.result.max_us,
          static_cast<unsigned long long>(o.server.requests_dispatched),
          static_cast<unsigned long long>(o.server.requests_completed),
          static_cast<unsigned long long>(o.server.overload_shed),
          o.recovered_after ? "true" : "false",
          i + 1 < outcomes.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"batch_wire_amortization_x\": %.3f,\n",
                 amortization);
    std::fprintf(json, "  \"shed_and_survived\": %s\n", ok ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_net.json\n");
  }
  return ok ? 0 : 1;
}
