// Microbenchmarks (google-benchmark) for the relational engine substrate:
// scans, index lookups, joins, and full observation draws through the MDBS
// agent.

#include <benchmark/benchmark.h>

#include "core/agent_source.h"
#include "engine/executor.h"
#include "engine/table_generator.h"
#include "mdbs/local_dbs.h"

namespace {

using namespace mscm;

engine::Database MakeDb(double scale) {
  engine::TableGeneratorConfig config;
  config.num_tables = 8;
  config.scale = scale;
  Rng rng(1);
  engine::Database db = engine::GenerateDatabase(config, rng);
  engine::AddProbingTable(db, rng);
  return db;
}

void BM_SeqScan(benchmark::State& state) {
  const engine::Database db = MakeDb(0.5);
  const engine::Executor executor(&db);
  engine::SelectQuery q;
  q.table = "R7";  // 25k tuples at scale 0.5
  q.predicate.Add({3, engine::CompareOp::kLe, 50, 0});
  const engine::SelectPlan plan{engine::AccessMethod::kSequentialScan, -1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteSelect(q, plan));
  }
}
BENCHMARK(BM_SeqScan);

void BM_ClusteredIndexScan(benchmark::State& state) {
  const engine::Database db = MakeDb(0.5);
  const engine::Executor executor(&db);
  const engine::Table* t = db.FindTable("R7");
  engine::SelectQuery q;
  q.table = "R7";
  q.predicate.Add({0, engine::CompareOp::kBetween, t->column_stats(0).min,
                   t->column_stats(0).min + (t->column_stats(0).max -
                                             t->column_stats(0).min) / 10});
  const engine::SelectPlan plan{engine::AccessMethod::kClusteredIndexScan, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteSelect(q, plan));
  }
}
BENCHMARK(BM_ClusteredIndexScan);

void BM_HashJoin(benchmark::State& state) {
  const engine::Database db = MakeDb(0.3);
  const engine::Executor executor(&db);
  engine::JoinQuery q;
  q.left_table = "R5";
  q.right_table = "R7";
  q.left_column = 4;
  q.right_column = 4;
  const engine::JoinPlan plan{engine::JoinMethod::kHashJoin, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.ExecuteJoin(q, plan));
  }
}
BENCHMARK(BM_HashJoin);

void BM_ProbingQuery(benchmark::State& state) {
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 2;
  config.tables.scale = 0.1;
  config.seed = 2;
  mdbs::LocalDbs site(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(site.RunProbingQuery());
  }
}
BENCHMARK(BM_ProbingQuery);

void BM_ObservationDraw(benchmark::State& state) {
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 6;
  config.tables.scale = 0.1;
  config.seed = 3;
  mdbs::LocalDbs site(config);
  core::AgentObservationSource source(&site,
                                      core::QueryClassId::kUnarySeqScan, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.Draw());
  }
}
BENCHMARK(BM_ObservationDraw);

}  // namespace

BENCHMARK_MAIN();
