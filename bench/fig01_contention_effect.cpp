// Figure 1: effect of a dynamic factor (number of concurrent processes) on
// query cost. The paper runs
//     select a1, a5, a7 from R7 where a3 > 300 and a8 < 2000
// on a 50,000-tuple table under Oracle 8.0 on a SUN UltraSparc 2 and observes
// the cost climbing from 3.80 s at ~50 processes to 124.02 s at ~130.
// This harness sweeps the load builder across the same process range and
// prints the cost series; the expected *shape* is a monotone, convex climb
// of an order of magnitude or more.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config = bench::SiteConfig("alpha", /*seed=*/101);
  config.load.regime = sim::LoadRegime::kSteady;
  mdbs::LocalDbs site(config);

  // The paper's query on R7 (50,000 tuples at scale 1.0): moderately
  // selective conjunctive range conditions on non-indexed columns, three
  // projected columns — a sequential scan.
  const engine::Table* r7 = site.database().FindTable("R7");
  engine::SelectQuery query;
  query.table = "R7";
  query.projection = {0, 4, 6};
  query.predicate.Add({3, engine::CompareOp::kGt,
                       r7->column_stats(3).max / 50, 0});
  query.predicate.Add({4, engine::CompareOp::kLt,
                       r7->column_stats(4).max / 3, 0});

  std::printf("Figure 1 — query cost vs number of concurrent processes\n");
  std::printf("query: %s (%s)\n\n",
              query.ToString(r7->schema()).c_str(),
              engine::ToString(site.PlanSelect(query).method));

  TextTable table({"processes", "query cost (s)", "probing cost (s)"});
  double first = 0.0;
  double last = 0.0;
  for (int processes = 50; processes <= 130; processes += 5) {
    site.SetLoadProcesses(processes);
    // Average a few runs per level so the series is smooth like Figure 1.
    double cost = 0.0;
    double probe = 0.0;
    constexpr int kReps = 3;
    for (int r = 0; r < kReps; ++r) {
      probe += site.RunProbingQuery();
      site.SetLoadProcesses(processes);
      cost += site.RunSelect(query).elapsed_seconds;
      site.SetLoadProcesses(processes);
    }
    cost /= kReps;
    probe /= kReps;
    if (processes == 50) first = cost;
    last = cost;
    table.AddRow({Format("%d", processes), Format("%.2f", cost),
                  Format("%.3f", probe)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\ncost at 50 processes: %.2f s, at 130 processes: %.2f s "
      "(x%.1f; paper observed 3.80 s -> 124.02 s)\n",
      first, last, last / first);
  return 0;
}
