// Ablation (§3.2, Table 2): which qualitative regression form fits query
// cost behaviour in a dynamic environment?
//
// The paper argues the *general* form is the right one because the system
// contention level affects the initialization cost (intercept term) *and*
// the I/O/CPU costs (slope terms). This harness fits all four forms —
// coincident, parallel, concurrent, general — on the same sample with the
// same states and compares R^2 / SEE / out-of-sample accuracy.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbs site(bench::SiteConfig("alpha", /*seed=*/1100));
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  const core::VariableSet vars = core::VariableSet::ForClass(cls);

  core::AgentObservationSource source(&site, cls, 1101);
  const int n = core::RecommendedSampleSize(
      static_cast<int>(vars.BasicIndices().size()), 6);
  const core::ObservationSet training = core::DrawObservations(source, n);

  // Fix the contention states once (general-form IUPMA) so the comparison
  // isolates the *form*, not the partition.
  core::ModelBuildOptions options;
  options.algorithm = core::StateAlgorithm::kIupma;
  const core::BuildReport base =
      core::BuildCostModelFromObservations(cls, training, options);
  const core::ContentionStates states = base.model.states();
  const std::vector<int> selected = base.model.selected_variables();

  core::AgentObservationSource test_source(&site, cls, 1102);
  const core::ObservationSet test = core::DrawObservations(test_source, 100);

  std::printf("Ablation — qualitative regression forms (paper Table 2)\n");
  std::printf("class %s on %s, %d states fixed, variables fixed\n\n",
              core::Label(cls), bench::SiteDbmsLabel("alpha"),
              states.num_states());

  TextTable table({"form", "#coefficients", "R^2", "SEE", "very good",
                   "good"});
  for (core::QualitativeForm form :
       {core::QualitativeForm::kCoincident, core::QualitativeForm::kParallel,
        core::QualitativeForm::kConcurrent,
        core::QualitativeForm::kGeneral}) {
    const core::CostModel model =
        core::FitCostModel(cls, training, selected, states, form);
    const core::ValidationReport v = core::Validate(model, test);
    table.AddRow({core::ToString(form),
                  Format("%zu", model.fit().coefficients.size()),
                  Format("%.3f", model.r_squared()),
                  CompactDouble(model.standard_error(), 3),
                  Format("%.0f%%", 100.0 * v.pct_very_good),
                  Format("%.0f%%", 100.0 * v.pct_good)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nexpected shape: coincident (= static one-state behaviour across "
      "states) worst; parallel and concurrent intermediate; general best — "
      "contention moves both the intercept and the slopes (paper §3.2).\n");
  return 0;
}
