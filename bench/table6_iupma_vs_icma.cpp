// Table 6: statistics for cost models derived in a *clustered* dynamic
// environment — the contention level concentrates in a few usage clusters
// (Figure 10) rather than spreading uniformly. Both state-determination
// algorithms run on the same sampled data:
//   IUPMA — iterative uniform partition with merging adjustment,
//   ICMA  — iterative (agglomerative) clustering with merging adjustment.
// Paper result for a unary class: IUPMA R^2 0.978 / 58% very good / 82%
// good; ICMA R^2 0.991 / 82% very good / 95% good — ICMA finds boundaries
// aligned with the actual clusters and wins.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbsConfig config = bench::SiteConfig("alpha", /*seed=*/700);
  config.load.regime = sim::LoadRegime::kClustered;
  mdbs::LocalDbs site(config);

  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  const core::VariableSet vars = core::VariableSet::ForClass(cls);
  const int n = core::RecommendedSampleSize(
      static_cast<int>(vars.BasicIndices().size()), 6);

  // Shared training sample drawn from the clustered environment.
  core::AgentObservationSource source(&site, cls, 701);
  const core::ObservationSet training = core::DrawObservations(source, n);

  std::printf("Table 6 — IUPMA vs ICMA in a clustered dynamic environment\n");
  std::printf("class %s on %s, %zu sample queries\n\n", core::Label(cls),
              bench::SiteDbmsLabel("alpha"), training.size());

  core::AgentObservationSource test_source(&site, cls, 702);
  const core::ObservationSet test = core::DrawObservations(test_source, 100);

  TextTable table({"states determination", "#states", "R^2", "SEE",
                   "avg cost (s)", "very good", "good"});
  for (core::StateAlgorithm algo :
       {core::StateAlgorithm::kIupma, core::StateAlgorithm::kIcma}) {
    core::ModelBuildOptions options;
    options.algorithm = algo;
    // ICMA may top up undersampled clusters through the live source.
    core::AgentObservationSource refill(&site, cls, 703);
    core::BuildReport report =
        (algo == core::StateAlgorithm::kIcma)
            ? [&]() {
                core::ObservationSet obs = training;
                core::ModelBuildOptions icma_options = options;
                // Run with the live source available for targeted draws.
                core::StateDeterminationOptions so = icma_options.states;
                so.form = icma_options.form;
                // First pass: let ICMA top up undersampled clusters with
                // targeted draws, growing `obs`; then run the full pipeline
                // over the augmented sample.
                (void)core::DetermineStatesIcma(cls, obs,
                                                vars.BasicIndices(), so,
                                                &refill);
                return core::BuildCostModelFromObservations(cls, obs,
                                                            icma_options);
              }()
            : core::BuildCostModelFromObservations(cls, training, options);
    const core::ValidationReport r = core::Validate(report.model, test);
    table.AddRow({core::ToString(algo),
                  Format("%d", report.model.states().num_states()),
                  Format("%.3f", report.model.r_squared()),
                  CompactDouble(report.model.standard_error(), 3),
                  Format("%.2f", r.avg_observed_cost),
                  Format("%.0f%%", 100.0 * r.pct_very_good),
                  Format("%.0f%%", 100.0 * r.pct_good)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape (paper): ICMA's cluster-aligned state "
              "boundaries give equal or better R^2 and estimate bands than "
              "IUPMA's uniform partition.\n");
  return 0;
}
