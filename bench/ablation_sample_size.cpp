// Ablation (Proposition 4.1 / Eq. 4): how many sample queries are enough?
// The paper mandates >= 10 observations per estimated coefficient. This
// harness sweeps the training-sample size and measures out-of-sample
// estimate quality — the knee should sit near the Proposition 4.1 number.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "common/text_table.h"
#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"

int main() {
  using namespace mscm;

  mdbs::LocalDbs site(bench::SiteConfig("alpha", /*seed=*/1400));
  const core::QueryClassId cls = core::QueryClassId::kUnarySeqScan;
  const core::VariableSet vars = core::VariableSet::ForClass(cls);
  const int recommended = core::RecommendedSampleSize(
      static_cast<int>(vars.BasicIndices().size()), 6);

  core::AgentObservationSource test_source(&site, cls, 1401);
  const core::ObservationSet test = core::DrawObservations(test_source, 120);

  std::printf("Ablation — estimate quality vs training-sample size\n");
  std::printf("class %s on %s; Proposition 4.1 / Eq. 4 recommends n = %d\n\n",
              core::Label(cls), bench::SiteDbmsLabel("alpha"), recommended);

  TextTable table({"sample size", "#states found", "R^2", "very good",
                   "good"});
  core::AgentObservationSource train_source(&site, cls, 1402);
  for (int n : {60, 120, 180, recommended, recommended * 2}) {
    const core::ObservationSet training =
        core::DrawObservations(train_source, n);
    core::ModelBuildOptions options;
    options.algorithm = core::StateAlgorithm::kIupma;
    const core::BuildReport report =
        core::BuildCostModelFromObservations(cls, training, options);
    const core::ValidationReport v = core::Validate(report.model, test);
    table.AddRow(
        {Format("%d%s", n, n == recommended ? " (Prop. 4.1)" : ""),
         Format("%d", report.model.states().num_states()),
         Format("%.3f", report.model.r_squared()),
         Format("%.0f%%", 100.0 * v.pct_very_good),
         Format("%.0f%%", 100.0 * v.pct_good)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nexpected shape: undersized samples support fewer states (the "
      "per-state population guard bites) and estimate worse; gains flatten "
      "beyond the Proposition 4.1 size.\n");
  return 0;
}
