// Fleet-scale federation soak: hundreds of heterogeneous sites under the
// full serving stack (estimation service + estimate cache + circuit
// breakers + refresh daemon + streaming-RLS adaptation) while
//
//   * a regime driver runs correlated contention — a phase-staggered
//     diurnal sweep plus shared-storage spikes that lift whole site groups
//     at once (sim::Fleet);
//   * a fault injector corrupts a slice of the fleet's probes (NaN,
//     negative, throwing, delayed) so breakers open and close for real;
//   * a churn thread continuously retires and re-registers the tail of the
//     fleet — UnregisterSite racing registration, probing, estimate
//     serving, cache invalidation and in-flight re-derivations.
//
// Throughout, the harness checks the lifecycle invariants the runtime
// promises (DESIGN §7):
//
//   * every wire counter in StatsCounterFields() is monotone across churn
//     (retired trackers fold their totals into the service) — except the
//     three documented gauges (degraded_sites, stale_models,
//     near_boundary_sites), which legitimately move both ways;
//   * stats conservation: with a cache-enabled service and every request
//     tracker-resolved (probing_cost < 0), requests ==
//     estimate_cache_hits + estimate_cache_misses, and the sampled
//     hit-latency path can never record more samples than requests;
//   * served model generations never regress on stable sites (streaming
//     adaptation only moves lineages forward; only a full re-derivation —
//     confined here to the churn domain — may reset them);
//   * no stuck breakers: once faults stop, every degraded site recovers;
//   * clean teardown: retiring the whole fleet leaves no stale flags, no
//     adaptation groups, no degraded sites, and exact sites_retired
//     accounting.
//
// Scale knobs (CI runs a smaller fleet under the sanitizers):
//   MSCM_SOAK_SITES    fleet size            (default 208)
//   MSCM_SOAK_SECONDS  churn phase duration  (default 4)
//   MSCM_SOAK_SEED     fleet + workload seed (default 0xf1ee7)

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/adaptation.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"
#include "sim/fault_injector.h"
#include "sim/fleet.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr auto kCls = core::QueryClassId::kUnarySeqScan;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

std::vector<double> FeatureVector(double x0) {
  std::vector<double> f(core::VariableSet::ForClass(kCls).size(), 0.0);
  f[0] = x0;
  return f;
}

// The three documented gauge-like snapshot fields; everything else in
// StatsCounterFields() must be monotone across any amount of site churn.
bool IsMonotoneCounter(const char* name) {
  return std::strcmp(name, "degraded_sites") != 0 &&
         std::strcmp(name, "stale_models") != 0 &&
         std::strcmp(name, "near_boundary_sites") != 0;
}

// Observation source over the fleet's ground truth, for churn-domain
// re-derivations. Thread-safe: across churn cycles the daemon may briefly
// have an abandoned in-flight task and a fresh one drawing from the same
// source.
class FleetSource : public core::ObservationSource {
 public:
  FleetSource(const sim::Fleet* fleet, size_t site, uint64_t seed)
      : fleet_(fleet), site_(site), rng_(seed) {}

  core::Observation Draw() override {
    std::lock_guard<std::mutex> lock(mutex_);
    const double hi =
        static_cast<double>(fleet_->spec(site_).num_states) - 0.1;
    core::Observation o;
    o.probing_cost = rng_.Uniform(0.1, hi);
    o.features = FeatureVector(rng_.Uniform(1.0, 10.0));
    o.cost = fleet_->ActualCost(site_, o.features[0], o.probing_cost);
    return o;
  }

 private:
  const sim::Fleet* fleet_;
  const size_t site_;
  std::mutex mutex_;
  Rng rng_;
};

TEST(RuntimeSoakTest, FleetChurnSoakHoldsLifecycleInvariants) {
  const size_t num_sites =
      std::max<uint64_t>(16, EnvU64("MSCM_SOAK_SITES", 208));
  const double soak_seconds =
      std::max(0.5, EnvDouble("MSCM_SOAK_SECONDS", 4.0));
  const uint64_t seed = EnvU64("MSCM_SOAK_SEED", 0xf1ee7ULL);

  sim::FleetConfig fleet_config;
  fleet_config.num_sites = num_sites;
  fleet_config.seed = seed;
  fleet_config.diurnal_period_seconds = 1.5;
  sim::Fleet fleet(fleet_config);

  // The fleet's tail churns (retire / re-register continuously); the rest
  // is stable — its serving guarantees must hold through the turbulence.
  const size_t churn_count = std::min<size_t>(32, num_sites / 4);
  const size_t stable_count = num_sites - churn_count;

  sim::FaultInjectorConfig fault_config;
  fault_config.seed = seed ^ 0xfa17ULL;
  fault_config.nan_rate = 0.2;
  fault_config.negative_rate = 0.15;
  fault_config.throw_rate = 0.15;
  fault_config.delay_rate = 0.05;
  fault_config.delay = milliseconds(2);
  sim::FaultInjector injector(fault_config);
  std::atomic<bool> faults_on{false};  // armed after the initial probe pass

  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 512;
  config.worker_threads = 2;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = milliseconds(100);
  config.breaker.half_open_successes = 1;
  EstimationService service(config);

  ModelRefreshConfig refresh_config;
  refresh_config.min_reports = 16;
  refresh_config.max_attempts = 1;
  refresh_config.refresh_cooldown = milliseconds(200);
  refresh_config.rederive.build.algorithm = core::StateAlgorithm::kSingleState;
  refresh_config.rederive.build.sample_size = 24;
  ModelRefreshDaemon daemon(&service, refresh_config);

  AdaptationConfig adapt_config;
  adapt_config.buffer_capacity = 4096;
  adapt_config.min_updates_to_publish = 16;
  // Touchy escalation thresholds: the diurnal sweep drags sites across
  // state boundaries, so drift trips fire throughout the soak. On watched
  // (churn) keys they become real re-derivations racing retirement; on
  // stable keys the refresh daemon refuses them and the group re-seeds.
  adapt_config.stall_window = 48;
  adapt_config.drift_threshold = 0.4;
  adapt_config.drift_window = 32;
  adapt_config.min_samples_for_drift = 16;
  adapt_config.drain_interval = milliseconds(5);
  adapt_config.start_thread = true;
  AdaptationController controller(&service, &daemon, adapt_config);

  // Stable probe identities: churn cycles re-register the same callable.
  // Every 13th-ish site probes through the (gated) fault injector.
  std::vector<std::function<double()>> probes(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    std::function<double()> base = [&fleet, i] { return fleet.probing_cost(i); };
    if (i % 13 == 5) {
      std::function<double()> wrapped = injector.WrapProbe(base);
      probes[i] = [base, wrapped, &faults_on] {
        return faults_on.load(std::memory_order_relaxed) ? wrapped() : base();
      };
    } else {
      probes[i] = std::move(base);
    }
  }

  // Derive every site's model from its ground-truth surface. The fits are
  // independent pure computation — fan them out.
  std::vector<std::optional<core::CostModel>> models(num_sites);
  {
    std::vector<std::thread> fitters;
    const size_t n_fitters = 4;
    for (size_t t = 0; t < n_fitters; ++t) {
      fitters.emplace_back([&, t] {
        for (size_t i = t; i < num_sites; i += n_fitters) {
          models[i].emplace(test::PiecewiseLinearModel(
              kCls, fleet.spec(i).state_slopes, seed + i));
        }
      });
    }
    for (auto& f : fitters) f.join();
  }
  for (size_t i = 0; i < num_sites; ++i) {
    service.RegisterSite(fleet.spec(i).name, probes[i]);
    service.RegisterModel(fleet.spec(i).name, *models[i]);
  }

  // Only churn-domain sites go under refresh maintenance: a full
  // re-derivation resets the model generation, which would (correctly)
  // break the stable-domain generation monotonicity the readers assert.
  std::vector<std::unique_ptr<FleetSource>> sources;
  sources.reserve(churn_count);
  for (size_t k = 0; k < churn_count; ++k) {
    const size_t i = stable_count + k;
    sources.push_back(
        std::make_unique<FleetSource>(&fleet, i, seed ^ (0x50acULL + k)));
    daemon.Watch(fleet.spec(i).name, kCls, sources.back().get());
  }

  // Initial fault-free probe pass: every site gets a reading, so stable
  // sites must serve kOk for the entire soak.
  for (size_t i = 0; i < num_sites; ++i) {
    ASSERT_TRUE(service.ProbeNow(fleet.spec(i).name)) << fleet.spec(i).name;
  }
  faults_on.store(true, std::memory_order_relaxed);

  std::atomic<bool> stop_regime{false};
  std::atomic<bool> stop_probers{false};
  std::atomic<bool> stop_readers{false};
  std::atomic<bool> stop_churn{false};
  std::atomic<uint64_t> status_violations{0};
  std::atomic<uint64_t> gen_violations{0};
  std::atomic<uint64_t> churn_cycles{0};
  std::atomic<uint64_t> reader_requests{0};

  // --- Regime driver: diurnal sweep + correlated group spikes. -----------
  std::thread regime([&] {
    Rng rng(seed ^ 0x4e91ULL);
    uint64_t ticks = 0;
    while (!stop_regime.load(std::memory_order_relaxed)) {
      fleet.Advance(0.015);
      if (++ticks % 25 == 0) {
        fleet.TriggerSpike(
            static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(fleet_config.num_groups) - 1)),
            rng.Uniform(0.3, 0.9), rng.Uniform(0.2, 0.5));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  // --- Probe pumps: keep every live tracker's reading moving. ------------
  std::vector<std::thread> probers;
  for (size_t t = 0; t < 2; ++t) {
    probers.emplace_back([&, t] {
      while (!stop_probers.load(std::memory_order_relaxed)) {
        for (size_t i = t; i < num_sites; i += 2) {
          service.ProbeNow(fleet.spec(i).name);  // false mid-churn is fine
          if (stop_probers.load(std::memory_order_relaxed)) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // --- Readers: estimate, validate, close the feedback loop. -------------
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed ^ (0xead0ULL + t));
      // Per-reader, per-(site, feature-key) generation watermarks over the
      // stable domain. Per-reader because shared watermarks would race
      // (read-check-update) and report false regressions. Per feature key
      // because that is the grain the estimate cache guarantees: after a
      // streaming adaptation swaps generation N -> N+1, entries for
      // *unchanged* states legitimately keep serving their bit-identical
      // response stamped N until invalidated — but any one key, once it
      // has served N+1, can never fall back.
      constexpr size_t kX0Values = 8;
      std::vector<uint64_t> watermark(stable_count * kX0Values, 0);
      uint64_t local_requests = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        // Bias half the traffic onto a hot set so the estimate cache sees
        // genuine repeats between churn-driven catalog invalidations.
        const size_t i =
            rng.Bernoulli(0.5)
                ? static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(std::min<size_t>(16, num_sites)) - 1))
                : static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(num_sites) - 1));
        const size_t x0_index = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(kX0Values) - 1));
        const double x0 = 1.0 + static_cast<double>(x0_index);
        EstimateRequest request;
        request.site = fleet.spec(i).name;
        request.class_id = kCls;
        request.features = FeatureVector(x0);
        request.probing_cost = -1.0;  // tracker-resolved: cache-countable
        const EstimateResponse response = service.Estimate(request);
        ++local_requests;

        if (i < stable_count && !response.ok()) {
          // A stable site is always registered, modeled and probed: it
          // must serve, even degraded or stale.
          status_violations.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "stable site " << request.site
                        << " served status " << ToString(response.status);
        } else if (i >= stable_count && response.status != EstimateStatus::kOk &&
                   response.status != EstimateStatus::kNoModel &&
                   response.status != EstimateStatus::kNoProbe) {
          // Churn domain: mid-retirement kNoModel / freshly re-registered
          // kNoProbe are legitimate; anything else is not.
          status_violations.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "churn site " << request.site
                        << " served status " << ToString(response.status);
        }
        if (!response.ok()) continue;

        if (i < stable_count) {
          // Stable lineages only move forward: streaming adaptation bumps
          // generations, and full re-derivations (which reset them) are
          // confined to the churn domain.
          uint64_t& seen = watermark[i * kX0Values + x0_index];
          if (response.model_generation < seen) {
            gen_violations.fetch_add(1, std::memory_order_relaxed);
            ADD_FAILURE() << "generation regressed on " << request.site
                          << " x0=" << x0 << ": " << seen << " -> "
                          << response.model_generation;
          }
          seen = response.model_generation;
        }
        // Close the feedback loop for both domains — churn-site reports
        // feed adaptation groups whose escalations drive re-derivations
        // that race retirement, exactly the traffic UnregisterSite must
        // survive.
        if (rng.Bernoulli(0.25)) {
          FeedbackReport report;
          report.site = request.site;
          report.class_id = kCls;
          report.features = request.features;
          report.actual_cost = std::max(
              1e-9, fleet.ActualCost(i, x0, response.probing_cost) *
                        (1.0 + 0.05 * rng.Gaussian()));
          report.probing_cost = -1.0;
          report.model_generation = response.model_generation;
          controller.Record(report);  // ring-full drops are acceptable
        }
      }
      reader_requests.fetch_add(local_requests, std::memory_order_relaxed);
    });
  }

  // --- Churn: retire and resurrect the fleet's tail, continuously. -------
  std::thread churner([&] {
    size_t k = 0;
    while (!stop_churn.load(std::memory_order_relaxed)) {
      const size_t i = stable_count + k;
      const std::string& name = fleet.spec(i).name;
      daemon.UnwatchSite(name);
      service.UnregisterSite(name);
      controller.DetachSite(name);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      service.RegisterSite(name, probes[i]);
      service.RegisterModel(name, *models[i]);
      daemon.Watch(name, kCls, sources[k].get());
      service.ProbeNow(name);
      churn_cycles.fetch_add(1, std::memory_order_relaxed);
      k = (k + 1) % churn_count;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // --- Main thread: the monotonicity watchdog. ----------------------------
  const auto& fields = StatsCounterFields();
  RuntimeStatsSnapshot prev = service.Stats();
  const auto deadline =
      steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(soak_seconds * 1000.0));
  while (steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const RuntimeStatsSnapshot cur = service.Stats();
    for (const auto& field : fields) {
      if (!IsMonotoneCounter(field.name)) continue;
      EXPECT_GE(cur.*(field.field), prev.*(field.field))
          << "counter " << field.name << " regressed under churn";
    }
    prev = cur;
  }

  // Orderly stop: churn last-cycle-completes first, so every site ends
  // registered; then the traffic; then the regimes.
  stop_churn.store(true, std::memory_order_relaxed);
  churner.join();
  stop_readers.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  stop_probers.store(true, std::memory_order_relaxed);
  for (auto& p : probers) p.join();
  stop_regime.store(true, std::memory_order_relaxed);
  regime.join();

  EXPECT_EQ(status_violations.load(), 0u);
  EXPECT_EQ(gen_violations.load(), 0u);
  EXPECT_GT(churn_cycles.load(), 0u);
  EXPECT_GT(reader_requests.load(), 0u);

  // --- Recovery: faults off, every breaker must close. --------------------
  faults_on.store(false, std::memory_order_relaxed);
  const auto recovery_deadline = steady_clock::now() + std::chrono::seconds(30);
  while (service.Stats().degraded_sites != 0 &&
         steady_clock::now() < recovery_deadline) {
    for (size_t i = 0; i < num_sites; ++i) {
      service.ProbeNow(fleet.spec(i).name);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(service.Stats().degraded_sites, 0u) << "stuck breaker after soak";

  // --- Post-churn sweep: the whole fleet serves again. --------------------
  for (size_t i = 0; i < num_sites; ++i) {
    EstimateRequest request;
    request.site = fleet.spec(i).name;
    request.class_id = kCls;
    request.features = FeatureVector(2.0);
    request.probing_cost = -1.0;
    const EstimateResponse response = service.Estimate(request);
    ASSERT_TRUE(response.ok())
        << request.site << ": " << ToString(response.status);
    EXPECT_GE(response.state, 0);
    EXPECT_LT(response.state, fleet.spec(i).num_states);
  }

  // Quiesce the adaptation tier (final drain) before conservation checks.
  controller.Stop();
  const AdaptationStats adapt_stats = controller.Stats();
  EXPECT_EQ(adapt_stats.drained, adapt_stats.accepted);

  // --- Conservation: the books balance exactly after quiescence. ----------
  const RuntimeStatsSnapshot quiesced = service.Stats();
  // Every estimate in this test (readers, adaptation drains, sweeps) is
  // tracker-resolved on a cache-enabled service, so each one is a cache
  // hit or a counted miss — no third bucket.
  EXPECT_EQ(quiesced.requests,
            quiesced.estimate_cache_hits + quiesced.estimate_cache_misses);
  EXPECT_GT(quiesced.estimate_cache_hits, 0u);
  EXPECT_EQ(quiesced.invalid_requests, 0u);
  // The sampled hit-latency path records one weighted sample per full hit
  // window: the histogram can never claim more estimates than were served.
  EXPECT_GT(quiesced.estimate_latency.count, 0u);
  EXPECT_LE(quiesced.estimate_latency.count, quiesced.requests);
  EXPECT_EQ(quiesced.sites_retired, churn_cycles.load());
  EXPECT_GT(quiesced.probes, 0u);

  // --- Clean teardown: retire the whole fleet, nothing may linger. --------
  for (size_t i = 0; i < num_sites; ++i) {
    const std::string& name = fleet.spec(i).name;
    daemon.UnwatchSite(name);
    service.UnregisterSite(name);
    controller.DetachSite(name);
  }
  const RuntimeStatsSnapshot final_stats = service.Stats();
  EXPECT_EQ(final_stats.sites_retired, churn_cycles.load() + num_sites);
  EXPECT_EQ(final_stats.stale_models, 0u);
  EXPECT_EQ(final_stats.degraded_sites, 0u);
  EXPECT_EQ(controller.NumGroups(), 0u);
  EstimateRequest gone;
  gone.site = fleet.spec(0).name;
  gone.class_id = kCls;
  gone.features = FeatureVector(2.0);
  gone.probing_cost = -1.0;
  EXPECT_EQ(service.Estimate(gone).status, EstimateStatus::kNoModel);
}

// Cold start at fleet scale: registration storms race serving traffic.
// Readers must only ever see coherent statuses (a site either prices or
// reports kNoModel — never an invalid or torn response), and the moment the
// storm settles the whole fleet serves.
TEST(RuntimeSoakTest, RegistrationStormServesCoherentStatuses) {
  constexpr size_t kSites = 64;
  sim::FleetConfig fleet_config;
  fleet_config.num_sites = kSites;
  fleet_config.seed = 0xc01d57a7ULL;
  sim::Fleet fleet(fleet_config);

  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 128;
  EstimationService service(config);

  // One representative model per distinct state count; registration copies.
  std::map<int, core::CostModel> prototypes;
  for (size_t i = 0; i < kSites; ++i) {
    const auto& spec = fleet.spec(i);
    if (prototypes.find(spec.num_states) == prototypes.end()) {
      prototypes.emplace(spec.num_states,
                         test::PiecewiseLinearModel(kCls, spec.state_slopes));
    }
  }

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0xbeadULL + t);
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const size_t i = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(kSites) - 1));
        EstimateRequest request;
        request.site = fleet.spec(i).name;
        request.class_id = kCls;
        request.features = FeatureVector(rng.Uniform(1.0, 8.0));
        request.probing_cost = 0.5;  // explicit: no probe dependency
        const EstimateResponse response = service.Estimate(request);
        if (response.status != EstimateStatus::kOk &&
            response.status != EstimateStatus::kNoModel) {
          ADD_FAILURE() << "cold-start read on " << request.site
                        << " served " << ToString(response.status);
        }
      }
    });
  }

  std::vector<std::thread> registrars;
  for (size_t t = 0; t < 4; ++t) {
    registrars.emplace_back([&, t] {
      for (size_t i = t; i < kSites; i += 4) {
        const auto& spec = fleet.spec(i);
        service.RegisterSite(spec.name,
                             [&fleet, i] { return fleet.probing_cost(i); });
        service.RegisterModel(spec.name, prototypes.at(spec.num_states));
        EXPECT_TRUE(service.ProbeNow(spec.name));
      }
    });
  }
  for (auto& r : registrars) r.join();
  stop_readers.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  // Storm over: every site prices from its own tracker.
  for (size_t i = 0; i < kSites; ++i) {
    EstimateRequest request;
    request.site = fleet.spec(i).name;
    request.class_id = kCls;
    request.features = FeatureVector(3.0);
    request.probing_cost = -1.0;
    EXPECT_TRUE(service.Estimate(request).ok()) << request.site;
  }
  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_EQ(stats.invalid_requests, 0u);
}

}  // namespace
}  // namespace mscm::runtime
