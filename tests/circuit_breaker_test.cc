#include "runtime/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "runtime/clock.h"

namespace mscm::runtime {
namespace {

using std::chrono::seconds;

CircuitBreakerConfig Config(int threshold, int half_open_successes = 1) {
  CircuitBreakerConfig config;
  config.failure_threshold = threshold;
  config.open_duration = seconds(5);
  config.half_open_successes = half_open_successes;
  return config;
}

TEST(CircuitBreakerTest, DisabledBreakerNeverOpens) {
  FakeClock clock;
  CircuitBreaker breaker(Config(0), &clock);
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.degraded());
  EXPECT_EQ(breaker.opens(), 0u);
  // The consecutive-failure count still runs (retry backoff uses it).
  EXPECT_EQ(breaker.consecutive_failures(), 10);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, OpensAfterThresholdConsecutiveFailures) {
  FakeClock clock;
  CircuitBreaker breaker(Config(3), &clock);

  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());

  // A success in between resets the run: two more failures do not open.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.degraded());
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneTrialAfterOpenDuration) {
  FakeClock clock;
  CircuitBreaker breaker(Config(1), &clock);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.Advance(seconds(4));
  EXPECT_FALSE(breaker.AllowRequest());  // still cooling off

  clock.Advance(seconds(2));
  EXPECT_TRUE(breaker.AllowRequest());  // the half-open trial
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.degraded());
  // Exactly one trial at a time: concurrent callers are rejected until the
  // trial reports.
  EXPECT_FALSE(breaker.AllowRequest());

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(breaker.degraded());
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, TrialFailureReopensWithFreshTimer) {
  FakeClock clock;
  CircuitBreaker breaker(Config(1), &clock);
  breaker.RecordFailure();
  clock.Advance(seconds(6));
  ASSERT_TRUE(breaker.AllowRequest());
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);  // the reopen counts

  // The open timer restarted at the trial failure.
  clock.Advance(seconds(4));
  EXPECT_FALSE(breaker.AllowRequest());
  clock.Advance(seconds(2));
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ClosingCanRequireMultipleTrialSuccesses) {
  FakeClock clock;
  CircuitBreaker breaker(Config(1, /*half_open_successes=*/2), &clock);
  breaker.RecordFailure();
  clock.Advance(seconds(6));

  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);  // 1 of 2

  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StragglingFailureWhileOpenIsANoOp) {
  FakeClock clock;
  CircuitBreaker breaker(Config(1), &clock);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  breaker.RecordFailure();  // e.g. an abandoned probe reporting late
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  // The open window did not restart management state; after the duration a
  // trial is still admitted.
  clock.Advance(seconds(6));
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ToStringNamesEveryState) {
  EXPECT_EQ(std::string(ToString(CircuitBreaker::State::kClosed)), "closed");
  EXPECT_EQ(std::string(ToString(CircuitBreaker::State::kOpen)), "open");
  EXPECT_EQ(std::string(ToString(CircuitBreaker::State::kHalfOpen)),
            "half-open");
}

}  // namespace
}  // namespace mscm::runtime
