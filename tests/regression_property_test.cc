// Property tests (parameterized) for the regression machinery: OLS must
// recover known coefficients across sample sizes and noise levels, and the
// multi-state fit must recover per-state ground truth under every form that
// can express it.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

struct RecoveryCase {
  size_t n;
  double noise;
};

void PrintTo(const RecoveryCase& c, std::ostream* os) {
  *os << "n" << c.n << "/noise" << c.noise;
}

class OlsRecoveryTest : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(OlsRecoveryTest, RecoversGroundTruthWithinSamplingError) {
  const auto [n, noise] = GetParam();
  Rng rng(n * 31 + static_cast<uint64_t>(noise * 100));
  stats::Matrix x(n, 3);
  std::vector<double> y(n);
  const double beta0 = 4.0;
  const double beta1 = 1.25;
  const double beta2 = -0.75;
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 50);
    x(i, 2) = rng.Uniform(0, 20);
    y[i] = beta0 + beta1 * x(i, 1) + beta2 * x(i, 2) +
           rng.Gaussian(0, noise);
  }
  const stats::OlsResult r = stats::FitOls(x, y);
  // Coefficient errors shrink like noise / sqrt(n); allow a generous
  // multiple of that.
  const double tol = 1e-9 + 12.0 * noise / std::sqrt(static_cast<double>(n));
  EXPECT_NEAR(r.coefficients[1], beta1, tol);
  EXPECT_NEAR(r.coefficients[2], beta2, tol);
  // SEE estimates the noise level.
  EXPECT_NEAR(r.standard_error, noise, 1e-9 + 0.25 * noise);
}

INSTANTIATE_TEST_SUITE_P(
    SampleSizesAndNoise, OlsRecoveryTest,
    ::testing::Values(RecoveryCase{50, 0.0}, RecoveryCase{50, 0.5},
                      RecoveryCase{200, 0.5}, RecoveryCase{200, 2.0},
                      RecoveryCase{1000, 2.0}, RecoveryCase{1000, 8.0}));

struct FormRecoveryCase {
  QualitativeForm form;
  int num_states;
};

void PrintTo(const FormRecoveryCase& c, std::ostream* os) {
  *os << ToString(c.form) << "/s" << c.num_states;
}

class FormRecoveryTest : public ::testing::TestWithParam<FormRecoveryCase> {};

TEST_P(FormRecoveryTest, FitRecoversDataGeneratedByOwnForm) {
  // Generate data that the form itself can express exactly, fit, and expect
  // a near-perfect in-sample fit plus coefficient recovery.
  const auto [form, s] = GetParam();
  Rng rng(91);

  test::SyntheticGroundTruth truth;
  for (int st = 0; st < s; ++st) {
    const bool vary_intercept = form == QualitativeForm::kParallel ||
                                form == QualitativeForm::kGeneral;
    const bool vary_slope = form == QualitativeForm::kConcurrent ||
                            form == QualitativeForm::kGeneral;
    truth.intercepts.push_back(vary_intercept ? 1.0 + 3.0 * st : 2.0);
    truth.slopes.push_back({vary_slope ? 0.5 + 1.5 * st : 1.0});
  }
  truth.noise_stddev = 0.0;
  const ObservationSet obs = test::SyntheticObservations(truth, 160, rng);
  const ContentionStates states =
      s == 1 ? ContentionStates::Single()
             : ContentionStates::UniformPartition(0.0, 1.0, s);
  const CostModel model = FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                                       states, form);
  EXPECT_NEAR(model.r_squared(), 1.0, 1e-9);
  for (int st = 0; st < s; ++st) {
    EXPECT_NEAR(model.CoefficientFor(-1, st),
                truth.intercepts[static_cast<size_t>(st)], 1e-6);
    EXPECT_NEAR(model.CoefficientFor(0, st),
                truth.slopes[static_cast<size_t>(st)][0], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormsAndStates, FormRecoveryTest,
    ::testing::Values(FormRecoveryCase{QualitativeForm::kCoincident, 1},
                      FormRecoveryCase{QualitativeForm::kParallel, 2},
                      FormRecoveryCase{QualitativeForm::kParallel, 4},
                      FormRecoveryCase{QualitativeForm::kConcurrent, 2},
                      FormRecoveryCase{QualitativeForm::kConcurrent, 4},
                      FormRecoveryCase{QualitativeForm::kGeneral, 2},
                      FormRecoveryCase{QualitativeForm::kGeneral, 3},
                      FormRecoveryCase{QualitativeForm::kGeneral, 5}));

}  // namespace
}  // namespace mscm::core
