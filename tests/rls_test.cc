#include "stats/rls.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "stats/matrix.h"
#include "stats/ols.h"

namespace mscm::stats {
namespace {

std::vector<double> Row3(double x1, double x2) { return {1.0, x1, x2}; }

TEST(RlsTest, ConvergesToTrueCoefficients) {
  RlsConfig config;
  config.forgetting = 1.0;
  config.initial_variance = 1e8;  // diffuse prior: negligible shrinkage bias
  RlsEstimator rls(3, config);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(0.0, 10.0);
  const std::vector<double> truth = {2.0, 0.5, -0.25};
  for (int i = 0; i < 500; ++i) {
    std::vector<double> z = Row3(u(rng), u(rng));
    double y = truth[0] * z[0] + truth[1] * z[1] + truth[2] * z[2];
    ASSERT_TRUE(rls.Update(z.data(), y));
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(rls.coefficients()[i], truth[i], 1e-6);
  }
  EXPECT_EQ(rls.updates(), 500u);
  EXPECT_FALSE(rls.blown_up());
}

// With λ = 1 and a diffuse prior, the RLS trajectory is growing-window
// least squares: after n noisy observations the coefficients must agree
// with a batch OLS fit over the same window. This is the differential pin
// for the ISSUE's "parity with a batch OLS refit on the same window" —
// bit-exactness between two different floating-point orderings is not
// attainable, so the pin is a tight numeric tolerance scaled to a diffuse
// prior's O(1/initial_variance) regularization bias.
TEST(RlsTest, Lambda1MatchesBatchOlsOnSameWindow) {
  RlsConfig config;
  config.forgetting = 1.0;
  config.initial_variance = 1e10;  // diffuse: negligible prior shrinkage
  RlsEstimator rls(3, config);

  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(1.0, 10.0);
  std::normal_distribution<double> noise(0.0, 0.3);

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> z = Row3(u(rng), u(rng));
    double y = 1.5 + 0.8 * z[1] + 0.1 * z[2] + noise(rng);
    ASSERT_TRUE(rls.Update(z.data(), y));
    xs.push_back(z);
    ys.push_back(y);
  }

  OlsResult batch = FitOls(Matrix::FromRows(xs), ys);
  ASSERT_EQ(batch.coefficients.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(rls.coefficients()[i], batch.coefficients[i], 1e-5)
        << "coefficient " << i;
  }
  // P should track (X'X)^{-1} at λ = 1 (again up to the prior).
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(rls.covariance()[i * 3 + j], batch.xtx_inverse(i, j), 1e-6)
          << "P(" << i << "," << j << ")";
    }
  }
}

TEST(RlsTest, ForgettingTracksStepChange) {
  RlsConfig config;
  config.forgetting = 0.95;
  RlsEstimator rls(3, config);

  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(1.0, 10.0);

  auto feed = [&](const std::vector<double>& truth, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> z = Row3(u(rng), u(rng));
      double y = truth[0] + truth[1] * z[1] + truth[2] * z[2];
      rls.Update(z.data(), y);
    }
  };

  feed({1.0, 0.5, 0.2}, 300);
  // Step change: the environment's true coefficients double.
  feed({2.0, 1.0, 0.4}, 300);
  EXPECT_NEAR(rls.coefficients()[0], 2.0, 1e-3);
  EXPECT_NEAR(rls.coefficients()[1], 1.0, 1e-3);
  EXPECT_NEAR(rls.coefficients()[2], 0.4, 1e-3);
}

TEST(RlsTest, Lambda1CannotTrackWhatForgettingCan) {
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> u(1.0, 10.0);

  RlsConfig with_memory;
  with_memory.forgetting = 1.0;
  RlsEstimator infinite(3, with_memory);
  RlsConfig tracking;
  tracking.forgetting = 0.9;
  RlsEstimator forgetting(3, tracking);

  auto feed = [&](RlsEstimator& e, std::mt19937 local_rng, double scale,
                  int n) {
    std::uniform_real_distribution<double> lu(1.0, 10.0);
    for (int i = 0; i < n; ++i) {
      std::vector<double> z = Row3(lu(local_rng), lu(local_rng));
      double y = scale * (1.0 + 0.5 * z[1] + 0.2 * z[2]);
      e.Update(z.data(), y);
    }
  };
  // Same stream to both: 400 old-regime points, then 100 doubled.
  feed(infinite, std::mt19937(17), 1.0, 400);
  feed(forgetting, std::mt19937(17), 1.0, 400);
  feed(infinite, std::mt19937(19), 2.0, 100);
  feed(forgetting, std::mt19937(19), 2.0, 100);

  std::vector<double> probe = Row3(u(rng), u(rng));
  double target = 2.0 * (1.0 + 0.5 * probe[1] + 0.2 * probe[2]);
  double err_infinite = std::fabs(infinite.Predict(probe.data()) - target);
  double err_forgetting = std::fabs(forgetting.Predict(probe.data()) - target);
  EXPECT_LT(err_forgetting, err_infinite / 4.0);
}

TEST(RlsTest, CovarianceStaysSymmetric) {
  RlsConfig config;
  config.forgetting = 0.97;
  RlsEstimator rls(4, config);
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> u(0.0, 5.0);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> z = {1.0, u(rng), u(rng), u(rng)};
    rls.Update(z.data(), 3.0 + z[1] - 0.5 * z[2] + 0.25 * z[3]);
  }
  const auto& p = rls.covariance();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p[i * 4 + j], p[j * 4 + i]);
    }
  }
}

TEST(RlsTest, SkipsNonFiniteObservations) {
  RlsEstimator rls(2);
  std::vector<double> z = {1.0, 2.0};
  EXPECT_TRUE(rls.Update(z.data(), 5.0));
  EXPECT_FALSE(rls.Update(z.data(), std::nan("")));
  std::vector<double> bad_z = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(rls.Update(bad_z.data(), 5.0));
  EXPECT_EQ(rls.updates(), 1u);
  EXPECT_EQ(rls.updates_skipped(), 2u);
  EXPECT_FALSE(rls.blown_up());
}

TEST(RlsTest, CovarianceWindUpLatchesBlownUp) {
  RlsConfig config;
  config.forgetting = 0.5;              // aggressive forgetting: P ~ 2^t
  config.covariance_trace_limit = 1e9;  // reached quickly
  RlsEstimator rls(2, config);
  // A persistently non-exciting stream (z = 0 direction never excited):
  // only z[0] carries signal, so P(1,1) winds up as 1/λ per step.
  std::vector<double> z = {1.0, 0.0};
  bool latched = false;
  for (int i = 0; i < 200 && !latched; ++i) {
    rls.Update(z.data(), 1.0);
    latched = rls.blown_up();
  }
  EXPECT_TRUE(latched);
  // Once latched, updates are refused.
  EXPECT_FALSE(rls.Update(z.data(), 1.0));
}

TEST(RlsTest, WarmStartContinuesTrajectory) {
  RlsConfig config;
  config.forgetting = 1.0;
  RlsEstimator a(3, config);
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> u(1.0, 8.0);
  std::vector<std::vector<double>> zs;
  std::vector<double> ys;
  for (int i = 0; i < 120; ++i) {
    zs.push_back(Row3(u(rng), u(rng)));
    ys.push_back(2.0 + 0.3 * zs.back()[1] + 0.7 * zs.back()[2]);
  }
  for (int i = 0; i < 60; ++i) a.Update(zs[i].data(), ys[i]);

  // Serialize-and-resume: the warm-started estimator continues bit-exactly.
  RlsEstimator b(a.coefficients(), a.covariance(), config);
  for (int i = 60; i < 120; ++i) {
    a.Update(zs[i].data(), ys[i]);
    b.Update(zs[i].data(), ys[i]);
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.coefficients()[i], b.coefficients()[i]);
  }
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(a.covariance()[i], b.covariance()[i]);
  }
}

TEST(RlsTest, HostileWarmStartCovarianceLatchesBlownUp) {
  RlsConfig config;
  std::vector<double> theta = {1.0, 2.0};
  std::vector<double> cov = {1.0, 0.0, 0.0,
                             std::numeric_limits<double>::infinity()};
  RlsEstimator rls(theta, cov, config);
  EXPECT_TRUE(rls.blown_up());
  std::vector<double> z = {1.0, 1.0};
  EXPECT_FALSE(rls.Update(z.data(), 1.0));
}

TEST(RlsTest, UnitWeightIsBitExactWithUpdate) {
  RlsConfig config;
  config.forgetting = 0.98;
  RlsEstimator a(3, config);
  RlsEstimator b(3, config);
  std::mt19937 rng(37);
  std::uniform_real_distribution<double> u(1.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> z = Row3(u(rng), u(rng));
    double y = 1.0 + 0.5 * z[1] - 0.2 * z[2];
    EXPECT_EQ(a.Update(z.data(), y), b.UpdateWeighted(z.data(), y, 1.0));
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.coefficients()[i], b.coefficients()[i]);
  }
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(a.covariance()[i], b.covariance()[i]);
  }
}

// A weight of k at λ = 1 is the information update Φ += k·zz', b += k·z·y —
// identical (in exact arithmetic) to folding the same observation k times.
// Pins the weighted Sherman–Morrison derivation against the unweighted one.
TEST(RlsTest, IntegerWeightMatchesRepeatedObservations) {
  RlsConfig config;
  config.forgetting = 1.0;
  RlsEstimator weighted(3, config);
  RlsEstimator repeated(3, config);
  std::mt19937 rng(41);
  std::uniform_real_distribution<double> u(1.0, 10.0);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> z = Row3(u(rng), u(rng));
    double y = 2.0 - 0.3 * z[1] + 0.6 * z[2];
    ASSERT_TRUE(weighted.UpdateWeighted(z.data(), y, 3.0));
    for (int k = 0; k < 3; ++k) ASSERT_TRUE(repeated.Update(z.data(), y));
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(weighted.coefficients()[i], repeated.coefficients()[i], 1e-8);
  }
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(weighted.covariance()[i], repeated.covariance()[i], 1e-8);
  }
}

TEST(RlsTest, DownweightedObservationMovesCoefficientsLess) {
  RlsConfig config;
  config.forgetting = 1.0;
  RlsEstimator full(2, config);
  RlsEstimator down(2, config);
  std::vector<double> z = {1.0, 2.0};
  // Converge both, then hit each with the same conflicting observation.
  for (int i = 0; i < 50; ++i) {
    full.Update(z.data(), 5.0);
    down.Update(z.data(), 5.0);
  }
  const double before = full.Predict(z.data());
  ASSERT_TRUE(full.UpdateWeighted(z.data(), 50.0, 1.0));
  ASSERT_TRUE(down.UpdateWeighted(z.data(), 50.0, 0.1));
  const double full_shift = std::abs(full.Predict(z.data()) - before);
  const double down_shift = std::abs(down.Predict(z.data()) - before);
  EXPECT_GT(full_shift, down_shift * 5.0);
  EXPECT_GT(down_shift, 0.0);
}

TEST(RlsTest, InvalidWeightSkipsUpdate) {
  RlsEstimator rls(2);
  std::vector<double> z = {1.0, 2.0};
  ASSERT_TRUE(rls.Update(z.data(), 5.0));
  const std::vector<double> theta = rls.coefficients();
  EXPECT_FALSE(rls.UpdateWeighted(z.data(), 9.0, 0.0));
  EXPECT_FALSE(rls.UpdateWeighted(z.data(), 9.0, -1.0));
  EXPECT_FALSE(rls.UpdateWeighted(z.data(), 9.0, std::nan("")));
  EXPECT_FALSE(rls.UpdateWeighted(
      z.data(), 9.0, std::numeric_limits<double>::infinity()));
  EXPECT_EQ(rls.updates(), 1u);
  EXPECT_EQ(rls.updates_skipped(), 4u);
  EXPECT_EQ(rls.coefficients(), theta);
  EXPECT_FALSE(rls.blown_up());
}

TEST(RlsTest, PredictionErrorIsInnovation) {
  RlsConfig config;
  config.forgetting = 1.0;
  config.initial_variance = 1e8;
  RlsEstimator rls(2, config);
  std::vector<double> z = {1.0, 3.0};
  for (int i = 0; i < 50; ++i) rls.Update(z.data(), 7.0);
  EXPECT_NEAR(rls.PredictionError(z.data(), 7.0), 0.0, 1e-6);
  EXPECT_NEAR(rls.PredictionError(z.data(), 9.0), 2.0, 1e-6);
}

}  // namespace
}  // namespace mscm::stats
