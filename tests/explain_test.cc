#include "engine/explain.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::engine {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(test::TinyDatabase(/*seed=*/51));
  }
  std::unique_ptr<Database> db_;
  PlannerRules rules_;
};

TEST_F(ExplainTest, SeqScanExplanation) {
  SelectQuery q;
  q.table = "R2";
  q.predicate.Add({4, CompareOp::kGt, 100, 0});
  const std::string s = ExplainSelect(*db_, q, rules_);
  EXPECT_NE(s.find("seq-scan"), std::string::npos);
  EXPECT_NE(s.find("estimated:"), std::string::npos);
  EXPECT_NE(s.find("R2"), std::string::npos);
}

TEST_F(ExplainTest, IndexScanNamesDrivingColumn) {
  const Table* t = db_->FindTable("R1");
  const auto& s1 = t->column_stats(1);
  SelectQuery q;
  q.table = "R1";
  q.predicate.Add({1, CompareOp::kBetween, s1.min,
                   s1.min + (s1.max - s1.min) / 60});
  const std::string s = ExplainSelect(*db_, q, rules_);
  EXPECT_NE(s.find("nonclustered-index-scan"), std::string::npos);
  EXPECT_NE(s.find("on a2"), std::string::npos);
  EXPECT_NE(s.find("driving selectivity"), std::string::npos);
}

TEST_F(ExplainTest, ClusteredScanExplanation) {
  SelectQuery q;
  q.table = "R1";
  q.predicate.Add({0, CompareOp::kBetween, 0, 50});
  const std::string s = ExplainSelect(*db_, q, rules_);
  EXPECT_NE(s.find("clustered-index-scan"), std::string::npos);
}

TEST_F(ExplainTest, JoinExplanationListsMethodAndFilters) {
  JoinQuery q;
  q.left_table = "R3";
  q.right_table = "R4";
  q.left_column = 4;
  q.right_column = 4;
  q.left_predicate.Add({3, CompareOp::kLe,
                        db_->FindTable("R3")->column_stats(3).max / 2, 0});
  const std::string s = ExplainJoin(*db_, q, rules_);
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("filter R3"), std::string::npos);
  EXPECT_NE(s.find("filter R4"), std::string::npos);
  EXPECT_NE(s.find("qualify of"), std::string::npos);
  EXPECT_NE(s.find("outer ="), std::string::npos);
}

TEST_F(ExplainTest, JoinExplanationShowsChosenMethod) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R4";
  q.left_column = 1;
  q.right_column = 1;
  const Table* l = db_->FindTable("R1");
  q.left_predicate.Add({4, CompareOp::kBetween, l->column_stats(4).min,
                        l->column_stats(4).min + 10});
  const std::string s = ExplainJoin(*db_, q, rules_);
  EXPECT_NE(s.find("index-nested-loop"), std::string::npos);
}

}  // namespace
}  // namespace mscm::engine
