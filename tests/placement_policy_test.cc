// Distribution serving (CostDistribution / EvaluateDistribution) and the
// placement ranking policies (PlacementScore, the ranked ChoosePlacement
// overload) — the least-expected-cost placement layer on top of the
// qualitative-state models.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost_distribution.h"
#include "core/cost_model.h"
#include "core/global_planner.h"

namespace mscm::core {
namespace {

constexpr double kTol = 1e-9;

// Two contention states split at probing cost 1.0, linear in feature 0 with
// a little noise so the fit carries a real prediction-interval structure.
CostModel NoisyTwoStateModel(uint64_t seed = 3) {
  const size_t width =
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size();
  ObservationSet obs;
  Rng rng(seed);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 60; ++i) {
      Observation o;
      o.probing_cost = s == 0 ? 0.5 : 1.5;
      o.features.assign(width, 0.0);
      for (size_t j = 0; j < 3; ++j) o.features[j] = rng.Uniform(1.0, 10.0);
      o.cost = (s + 1.0) * (2.0 + 0.8 * o.features[0]) +
               rng.Uniform(-0.1, 0.1);
      obs.push_back(std::move(o));
    }
  }
  return FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1, 2},
                      ContentionStates::FromBoundaries({1.0}),
                      QualitativeForm::kGeneral);
}

// Cost constant within each state: the fit is exact, so placement tests
// reason about the ranking rather than regression noise.
CostModel ConstantStateModel(const std::vector<double>& boundaries,
                             const std::vector<double>& state_costs,
                             uint64_t seed = 11) {
  const size_t width =
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size();
  ObservationSet obs;
  Rng rng(seed);
  for (size_t s = 0; s < state_costs.size(); ++s) {
    for (int i = 0; i < 50; ++i) {
      Observation o;
      o.probing_cost = static_cast<double>(s) + 0.5;
      o.features.assign(width, 0.0);
      for (size_t j = 0; j < 3; ++j) o.features[j] = rng.Uniform(1.0, 10.0);
      o.cost = state_costs[s];
      obs.push_back(std::move(o));
    }
  }
  return FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1, 2},
                      ContentionStates::FromBoundaries(boundaries),
                      QualitativeForm::kGeneral);
}

std::vector<double> Features(double x) {
  std::vector<double> f(
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size(), 0.0);
  f[0] = x;
  f[1] = 2.0;
  f[2] = 3.0;
  return f;
}

// ---- CostDistribution / EvaluateDistribution -------------------------------

TEST(CostDistributionTest, HardStateMatchesPointAndInterval) {
  const CostModel model = NoisyTwoStateModel();
  const std::vector<double> features = Features(5.0);
  // Probing cost well away from the boundary: no blending, the distribution
  // must reproduce the point estimate and the 95% prediction interval.
  const double probe = 0.2;
  const CostDistribution d = model.EstimateDistribution(features, probe);
  EXPECT_TRUE(d.has_interval);
  EXPECT_NEAR(d.mean, model.Estimate(features, probe), kTol);
  const auto interval = model.EstimateWithInterval(features, probe);
  ASSERT_TRUE(interval.has_value());
  EXPECT_NEAR(d.low, interval->low, 1e-6 * (1.0 + interval->high));
  EXPECT_NEAR(d.high, interval->high, 1e-6 * (1.0 + interval->high));
  EXPECT_GT(d.width(), 0.0);
}

TEST(CostDistributionTest, BlendsAtTheBoundary) {
  const CostModel model = NoisyTwoStateModel();
  const std::vector<double> features = Features(5.0);
  // Exactly on the boundary: half the weight on each adjacent state.
  const CostDistribution d = model.EstimateDistribution(features, 1.0);
  const double m0 = model.Estimate(features, 0.2);
  const double m1 = model.Estimate(features, 1.8);
  EXPECT_NEAR(d.mean, 0.5 * (m0 + m1), 1e-6 * (1.0 + m1));
  // The between-state spread must widen the interval beyond either state's
  // own prediction interval.
  const auto i0 = model.EstimateWithInterval(features, 0.2);
  ASSERT_TRUE(i0.has_value());
  EXPECT_GT(d.width(), i0->high - i0->low);
}

TEST(CostDistributionTest, ContinuousAcrossTheBandEdge) {
  const CostModel model = NoisyTwoStateModel();
  const std::vector<double> features = Features(5.0);
  // band = 0.1 * |1.0|: the blend weight ramps to zero at probe 0.9, so the
  // served mean must not jump crossing the band edge.
  const double inside = model.EstimateDistribution(features, 0.9 + 1e-9).mean;
  const double outside = model.EstimateDistribution(features, 0.9 - 1e-9).mean;
  EXPECT_NEAR(inside, outside, 1e-5 * (1.0 + outside));
}

TEST(CostDistributionTest, ZeroBandFractionServesHardStates) {
  const CostModel model = NoisyTwoStateModel();
  const std::vector<double> features = Features(5.0);
  const CostDistribution d =
      model.EstimateDistribution(features, 1.0, /*band_fraction=*/0.0);
  EXPECT_NEAR(d.mean, model.Estimate(features, 1.0), kTol);
}

TEST(CostDistributionTest, NoCovarianceStructureStillServesSpread) {
  const CostModel fitted = ConstantStateModel({1.0}, {0.5, 4.0});
  // Compile from bare coefficients: no (X'X)^{-1}, so no per-state
  // intervals — but the between-state spread near a boundary survives.
  const CompiledEquations bare = CompiledEquations::Compile(
      fitted.selected_variables(), fitted.states(), fitted.layout(),
      fitted.fit().coefficients);
  EXPECT_FALSE(bare.has_intervals());
  const std::vector<double> features = Features(5.0);
  const CostDistribution hard = bare.EvaluateDistribution(features, 0.2, 0.1);
  EXPECT_FALSE(hard.has_interval);
  EXPECT_NEAR(hard.width(), 0.0, kTol);
  const CostDistribution soft = bare.EvaluateDistribution(features, 1.0, 0.1);
  EXPECT_GT(soft.width(), 1.0);  // states 3.5 apart, weight 0.5 each
}

// ---- PlacementScore --------------------------------------------------------

CostDistribution Dist(double mean, double half) {
  CostDistribution d;
  d.mean = mean;
  d.low = mean - half;
  d.high = mean + half;
  d.has_interval = true;
  return d;
}

TEST(PlacementPolicyTest, PointPolicyIsLegacyScore) {
  PlacementRanking ranking;  // kPointEstimate
  const CostDistribution d = Dist(10.0, 3.0);
  EXPECT_EQ(PlacementScore(ranking, d, 2.5, 0.25), 2.75);
  // NaN point estimates stay NaN — the argmin's strict < never selects them.
  EXPECT_TRUE(std::isnan(PlacementScore(
      ranking, d, std::numeric_limits<double>::quiet_NaN(), 0.0)));
}

TEST(PlacementPolicyTest, ExpectedCostScoresTheMean) {
  PlacementRanking ranking;
  ranking.policy = PlacementPolicy::kExpectedCost;
  const CostDistribution d = Dist(10.0, 3.0);
  // Fresh candidate: no widening, the score is mean + shipping.
  EXPECT_NEAR(PlacementScore(ranking, d, 9.0, 0.5), 10.5, kTol);
}

TEST(PlacementPolicyTest, StaleAndDegradedWidenOneSided) {
  PlacementRanking ranking;
  ranking.policy = PlacementPolicy::kExpectedCost;
  CostDistribution fresh = Dist(10.0, 3.0);
  CostDistribution stale = fresh;
  stale.stale = true;
  CostDistribution degraded = fresh;
  degraded.degraded = true;
  const double s_fresh = PlacementScore(ranking, fresh, 10.0, 0.0);
  const double s_stale = PlacementScore(ranking, stale, 10.0, 0.0);
  const double s_degraded = PlacementScore(ranking, degraded, 10.0, 0.0);
  EXPECT_GT(s_stale, s_fresh);
  EXPECT_GT(s_degraded, s_stale);  // degraded_width_factor > stale_width_factor
  // width 6, stale factor 1.5: widened by 3, mean shifts by half of that.
  EXPECT_NEAR(s_stale, 10.0 + 0.5 * 6.0 * (1.5 - 1.0), kTol);
}

TEST(PlacementPolicyTest, RiskAdjustedChargesTheWidth) {
  PlacementRanking ranking;
  ranking.policy = PlacementPolicy::kRiskAdjusted;
  ranking.risk_lambda = 0.5;
  const CostDistribution certain = Dist(10.0, 0.0);
  const CostDistribution uncertain = Dist(9.5, 4.0);
  // Expected cost alone prefers the 9.5 mean; the risk premium flips it.
  PlacementRanking expected = ranking;
  expected.policy = PlacementPolicy::kExpectedCost;
  EXPECT_LT(PlacementScore(expected, uncertain, 0, 0),
            PlacementScore(expected, certain, 0, 0));
  EXPECT_GT(PlacementScore(ranking, uncertain, 0, 0),
            PlacementScore(ranking, certain, 0, 0));
}

// ---- Ranked ChoosePlacement ------------------------------------------------

ComponentQueryCandidate Candidate(const std::string& site, double probe,
                                  double shipping = 0.0) {
  ComponentQueryCandidate c;
  c.site = site;
  c.class_id = QueryClassId::kUnarySeqScan;
  c.features = Features(5.0);
  c.probing_cost = probe;
  c.shipping_seconds = shipping;
  return c;
}

TEST(PlacementPolicyTest, DefaultRankingMatchesLegacyOverload) {
  GlobalCatalog catalog;
  catalog.Register("a", ConstantStateModel({}, {2.0}, 21));
  catalog.Register("b", ConstantStateModel({}, {1.0}, 22));
  const std::vector<ComponentQueryCandidate> candidates = {
      Candidate("a", 0.5, 0.1), Candidate("b", 0.5, 0.2)};
  const PlacementDecision legacy = ChoosePlacement(catalog, candidates);
  const PlacementDecision ranked =
      ChoosePlacement(catalog, candidates, PlacementRanking{});
  EXPECT_EQ(legacy.chosen, ranked.chosen);
  ASSERT_EQ(legacy.estimates.size(), ranked.estimates.size());
  for (size_t i = 0; i < legacy.estimates.size(); ++i) {
    EXPECT_EQ(legacy.estimates[i], ranked.estimates[i]);
    EXPECT_EQ(ranked.scores[i], ranked.estimates[i]);  // point policy
  }
}

TEST(PlacementPolicyTest, ExpectedCostAvoidsTheBoundaryStraddler) {
  // "jitter" reads 0.5 for a probe just under its boundary but costs 4.0
  // just over it; "steady" always costs 1.0. The point estimate takes the
  // 0.5 bait; the expected-cost ranking prices the blend and declines.
  GlobalCatalog catalog;
  catalog.Register("steady", ConstantStateModel({}, {1.0}, 31));
  catalog.Register("jitter", ConstantStateModel({1.0}, {0.5, 4.0}, 32));
  const std::vector<ComponentQueryCandidate> candidates = {
      Candidate("steady", 0.5), Candidate("jitter", 0.99)};

  const PlacementDecision point = ChoosePlacement(catalog, candidates);
  EXPECT_EQ(point.chosen, 1);

  PlacementRanking ranking;
  ranking.policy = PlacementPolicy::kExpectedCost;
  const PlacementDecision expected =
      ChoosePlacement(catalog, candidates, ranking);
  EXPECT_EQ(expected.chosen, 0);
  ASSERT_EQ(expected.distributions.size(), 2u);
  EXPECT_GT(expected.distributions[1].mean, 1.0);
  EXPECT_GT(expected.distributions[1].width(),
            expected.distributions[0].width());
}

TEST(PlacementPolicyTest, NonFiniteCandidatesAreNeverChosen) {
  GlobalCatalog catalog;
  catalog.Register("a", ConstantStateModel({}, {2.0}, 41));
  std::vector<ComponentQueryCandidate> candidates = {Candidate("a", 0.5),
                                                     Candidate("a", 0.5)};
  // A NaN feature evaluates through the clamp to 0.0 — without the finite
  // guard it would win the argmin with a fictitious free placement.
  candidates[0].features[0] = std::numeric_limits<double>::quiet_NaN();
  for (const auto& ranking :
       {PlacementRanking{},
        PlacementRanking{PlacementPolicy::kExpectedCost},
        PlacementRanking{PlacementPolicy::kRiskAdjusted}}) {
    const PlacementDecision d = ChoosePlacement(catalog, candidates, ranking);
    EXPECT_EQ(d.chosen, 1) << ToString(ranking.policy);
    EXPECT_TRUE(std::isinf(d.scores[0])) << ToString(ranking.policy);
  }
}

TEST(PlacementPolicyTest, TiesBreakToTheLowestIndex) {
  GlobalCatalog catalog;
  catalog.Register("a", ConstantStateModel({}, {2.0}, 51));
  PlacementRanking ranking;
  ranking.policy = PlacementPolicy::kExpectedCost;
  const PlacementDecision d = ChoosePlacement(
      catalog, {Candidate("a", 0.5), Candidate("a", 0.5)}, ranking);
  EXPECT_EQ(d.chosen, 0);
}

TEST(PlacementPolicyTest, NoModelAnywhereIsMinusOneUnderEveryPolicy) {
  GlobalCatalog catalog;
  for (const auto policy :
       {PlacementPolicy::kPointEstimate, PlacementPolicy::kExpectedCost,
        PlacementPolicy::kRiskAdjusted}) {
    PlacementRanking ranking;
    ranking.policy = policy;
    const PlacementDecision d =
        ChoosePlacement(catalog, {Candidate("ghost", 0.5)}, ranking);
    EXPECT_EQ(d.chosen, -1) << ToString(policy);
    ASSERT_EQ(d.scores.size(), 1u);
    EXPECT_TRUE(std::isinf(d.scores[0]));
  }
}

}  // namespace
}  // namespace mscm::core
