#include "mdbs/local_dbs.h"

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mscm::mdbs {
namespace {

LocalDbsConfig SmallConfig(uint64_t seed = 1) {
  LocalDbsConfig config;
  config.site_name = "test-site";
  config.tables.num_tables = 4;
  config.tables.scale = 0.03;
  config.seed = seed;
  return config;
}

TEST(LocalDbsTest, RunSelectReturnsPositiveCost) {
  LocalDbs site(SmallConfig());
  engine::SelectQuery q;
  q.table = "R2";
  q.predicate.Add({3, engine::CompareOp::kGe, 0, 0});
  const auto out = site.RunSelect(q);
  EXPECT_GT(out.elapsed_seconds, 0.0);
  EXPECT_GT(out.execution.result_rows, 0u);
}

TEST(LocalDbsTest, ProbingQueryCheap) {
  LocalDbs site(SmallConfig());
  site.SetLoadProcesses(0.0);
  const double cost = site.RunProbingQuery();
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1.0);  // idle probe well under a second
}

TEST(LocalDbsTest, ProbingCostTracksContention) {
  LocalDbs site(SmallConfig());
  std::vector<double> processes;
  std::vector<double> probes;
  for (double p = 0.0; p <= 120.0; p += 10.0) {
    site.SetLoadProcesses(p);
    processes.push_back(p);
    probes.push_back(site.RunProbingQuery());
  }
  // Strong positive association between load and probing cost. (Pearson
  // understates it because the swap-thrash knee makes the relationship
  // convex rather than linear.)
  EXPECT_GT(stats::PearsonCorrelation(processes, probes), 0.75);
}

TEST(LocalDbsTest, QueryCostGrowsWithContention) {
  LocalDbs site(SmallConfig());
  engine::SelectQuery q;
  q.table = "R4";
  q.predicate.Add({3, engine::CompareOp::kGe, 0, 0});
  site.SetLoadProcesses(0.0);
  const double idle = site.RunSelect(q).elapsed_seconds;
  site.SetLoadProcesses(120.0);
  const double busy = site.RunSelect(q).elapsed_seconds;
  EXPECT_GT(busy, idle * 3.0);  // the Figure 1 phenomenon
}

TEST(LocalDbsTest, RunningQueriesAdvancesSimulatedTime) {
  LocalDbs site(SmallConfig());
  const double t0 = site.simulated_time_seconds();
  site.RunProbingQuery();
  EXPECT_GT(site.simulated_time_seconds(), t0);
}

TEST(LocalDbsTest, ResampleLoadChangesContention) {
  LocalDbsConfig config = SmallConfig();
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.max_processes = 120.0;
  LocalDbs site(config);
  std::vector<double> levels;
  for (int i = 0; i < 50; ++i) {
    site.ResampleLoad();
    levels.push_back(site.current_processes());
  }
  EXPECT_GT(stats::StdDev(levels), 10.0);
}

TEST(LocalDbsTest, MonitorSnapshotReflectsLoad) {
  LocalDbs site(SmallConfig());
  site.SetLoadProcesses(5.0);
  const auto idle = site.MonitorSnapshot();
  site.SetLoadProcesses(110.0);
  const auto busy = site.MonitorSnapshot();
  EXPECT_GT(busy.pct_disk_util, idle.pct_disk_util);
}

TEST(LocalDbsTest, PlanVisibilityMatchesEngineRules) {
  LocalDbs site(SmallConfig());
  engine::SelectQuery q;
  q.table = "R1";
  q.predicate.Add({0, engine::CompareOp::kBetween, 0, 10});
  EXPECT_EQ(site.PlanSelect(q).method,
            engine::AccessMethod::kClusteredIndexScan);
}

TEST(LocalDbsTest, RepeatedExecutionIsNoisy) {
  LocalDbs site(SmallConfig());
  site.SetLoadProcesses(20.0);
  engine::SelectQuery q;
  q.table = "R2";
  q.predicate.Add({3, engine::CompareOp::kGe, 0, 0});
  const double a = site.RunSelect(q).elapsed_seconds;
  site.SetLoadProcesses(20.0);
  const double b = site.RunSelect(q).elapsed_seconds;
  EXPECT_NE(a, b);
}

TEST(LocalDbsTest, DeterministicAcrossInstancesWithSameSeed) {
  LocalDbs a(SmallConfig(9));
  LocalDbs b(SmallConfig(9));
  engine::SelectQuery q;
  q.table = "R3";
  q.predicate.Add({3, engine::CompareOp::kGe, 0, 0});
  EXPECT_DOUBLE_EQ(a.RunSelect(q).elapsed_seconds,
                   b.RunSelect(q).elapsed_seconds);
}

}  // namespace
}  // namespace mscm::mdbs
