#include "core/sampling.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

TEST(SampleSizeTest, MinimumMatchesProposition41) {
  // (k+1)*s coefficients + error variance, 10 observations each.
  EXPECT_EQ(MinimumSampleSize(3, 1), 10 * (4 * 1 + 1));
  EXPECT_EQ(MinimumSampleSize(3, 4), 10 * (4 * 4 + 1));
  EXPECT_EQ(MinimumSampleSize(0, 1), 20);
}

TEST(SampleSizeTest, RecommendedCoversExpectedModel) {
  // Eq. (4): basic vars + 2 secondary expected to survive.
  EXPECT_EQ(RecommendedSampleSize(3, 6), MinimumSampleSize(5, 6));
  EXPECT_GT(RecommendedSampleSize(6, 6), RecommendedSampleSize(3, 6));
}

class QuerySamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>(
        test::TinyDatabase(/*seed=*/31, /*num_tables=*/6, /*scale=*/0.03));
  }
  std::unique_ptr<engine::Database> db_;
  engine::PlannerRules rules_;
};

TEST_F(QuerySamplerTest, UnaryClassesClassifyCorrectly) {
  QuerySampler sampler(db_.get(), rules_, 1);
  for (QueryClassId target : {QueryClassId::kUnarySeqScan,
                              QueryClassId::kUnaryNonClusteredIndex,
                              QueryClassId::kUnaryClusteredIndex}) {
    for (int i = 0; i < 25; ++i) {
      const engine::SelectQuery q = sampler.SampleSelect(target);
      EXPECT_EQ(ClassifySelect(*db_, q, rules_), target)
          << ToString(target) << " sample " << i;
    }
  }
}

TEST_F(QuerySamplerTest, JoinClassesClassifyCorrectly) {
  QuerySampler sampler(db_.get(), rules_, 2);
  for (QueryClassId target :
       {QueryClassId::kJoinNoIndex, QueryClassId::kJoinIndex}) {
    for (int i = 0; i < 15; ++i) {
      const engine::JoinQuery q = sampler.SampleJoin(target);
      EXPECT_EQ(ClassifyJoin(*db_, q, rules_), target)
          << ToString(target) << " sample " << i;
    }
  }
}

TEST_F(QuerySamplerTest, SamplesSpanMultipleTables) {
  QuerySampler sampler(db_.get(), rules_, 3);
  std::set<std::string> tables;
  for (int i = 0; i < 60; ++i) {
    tables.insert(sampler.SampleSelect(QueryClassId::kUnarySeqScan).table);
  }
  EXPECT_GE(tables.size(), 4u);
}

TEST_F(QuerySamplerTest, SamplesVaryInSelectivity) {
  QuerySampler sampler(db_.get(), rules_, 4);
  std::vector<double> sels;
  for (int i = 0; i < 60; ++i) {
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnarySeqScan);
    const engine::Table* t = db_->FindTable(q.table);
    sels.push_back(engine::EstimatePredicateSelectivity(*t, q.predicate));
  }
  double lo = 1.0;
  double hi = 0.0;
  for (double s : sels) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LT(lo, 0.1);
  EXPECT_GT(hi, 0.5);
}

TEST_F(QuerySamplerTest, ProbingTableNeverSampled) {
  QuerySampler sampler(db_.get(), rules_, 5);
  for (int i = 0; i < 40; ++i) {
    EXPECT_NE(sampler.SampleSelect(QueryClassId::kUnarySeqScan).table, "P0");
  }
}

TEST_F(QuerySamplerTest, ProjectionsNonEmptyAndValid) {
  QuerySampler sampler(db_.get(), rules_, 6);
  for (int i = 0; i < 40; ++i) {
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnaryClusteredIndex);
    const engine::Table* t = db_->FindTable(q.table);
    EXPECT_FALSE(q.projection.empty());
    for (int c : q.projection) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, static_cast<int>(t->schema().num_columns()));
    }
  }
}

TEST_F(QuerySamplerTest, DeterministicGivenSeed) {
  QuerySampler a(db_.get(), rules_, 7);
  QuerySampler b(db_.get(), rules_, 7);
  for (int i = 0; i < 10; ++i) {
    const engine::SelectQuery qa =
        a.SampleSelect(QueryClassId::kUnarySeqScan);
    const engine::SelectQuery qb =
        b.SampleSelect(QueryClassId::kUnarySeqScan);
    EXPECT_EQ(qa.table, qb.table);
    EXPECT_EQ(qa.predicate.conditions().size(),
              qb.predicate.conditions().size());
  }
}

}  // namespace
}  // namespace mscm::core
