#include "runtime/snapshot_catalog.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;

std::vector<double> FeatureVector(QueryClassId cls, double x0) {
  std::vector<double> f(core::VariableSet::ForClass(cls).size(), 0.0);
  f[0] = x0;
  return f;
}

TEST(SnapshotCatalogTest, StartsEmpty) {
  SnapshotCatalog catalog;
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.version(), 0u);
  EXPECT_EQ(catalog.snapshot()->Find("s", QueryClassId::kUnarySeqScan),
            nullptr);
}

TEST(SnapshotCatalogTest, RegisterPublishesNewSnapshot) {
  SnapshotCatalog catalog;
  catalog.Register("s", test::PiecewiseLinearModel(
                            QueryClassId::kUnarySeqScan, {2.0}));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.version(), 1u);
  const auto snap = catalog.snapshot();
  const core::CostModel* m = snap->Find("s", QueryClassId::kUnarySeqScan);
  ASSERT_NE(m, nullptr);
  EXPECT_NEAR(
      m->Estimate(FeatureVector(QueryClassId::kUnarySeqScan, 3.0), 0.5), 6.0,
      1e-6);
}

TEST(SnapshotCatalogTest, OldSnapshotSurvivesReplacement) {
  SnapshotCatalog catalog;
  const auto cls = QueryClassId::kUnarySeqScan;
  catalog.Register("s", test::PiecewiseLinearModel(cls, {2.0}));

  const SnapshotCatalog::Snapshot old_snap = catalog.snapshot();
  const core::CostModel* old_model = old_snap->Find("s", cls);
  ASSERT_NE(old_model, nullptr);

  // Replacing the model publishes a new snapshot; the raw pointer into the
  // old snapshot must stay valid and keep its old behaviour — this is the
  // lifetime guarantee GlobalCatalog::Find alone cannot give.
  catalog.Register("s", test::PiecewiseLinearModel(cls, {5.0}));
  EXPECT_EQ(catalog.version(), 2u);

  const auto features = FeatureVector(cls, 3.0);
  EXPECT_NEAR(old_model->Estimate(features, 0.5), 6.0, 1e-6);
  EXPECT_NEAR(catalog.snapshot()->Find("s", cls)->Estimate(features, 0.5),
              15.0, 1e-6);
}

TEST(SnapshotCatalogTest, UpdateAppliesBulkEditAtomically) {
  SnapshotCatalog catalog;
  const auto cls = QueryClassId::kUnarySeqScan;
  catalog.Update([&](core::GlobalCatalog& c) {
    c.Register("a", test::PiecewiseLinearModel(cls, {1.0}));
    c.Register("b", test::PiecewiseLinearModel(cls, {2.0}));
  });
  EXPECT_EQ(catalog.version(), 1u);  // one snapshot for both entries
  EXPECT_EQ(catalog.size(), 2u);
}

}  // namespace
}  // namespace mscm::runtime
