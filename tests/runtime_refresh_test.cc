#include "runtime/model_refresh.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/clock.h"
#include "runtime/estimation_service.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr auto kCls = QueryClassId::kUnarySeqScan;

std::vector<double> FeatureVector(double x0) {
  std::vector<double> f(core::VariableSet::ForClass(kCls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, double x0,
                        double probing_cost = -1.0) {
  EstimateRequest request;
  request.site = site;
  request.class_id = kCls;
  request.features = FeatureVector(x0);
  request.probing_cost = probing_cost;
  return request;
}

// The environment as the refresh daemon samples it: cost = slope * x0
// exactly (all other features are uninformative noise), probing costs in a
// fixed band. `slope` is the ground truth that drifts; `fail` simulates an
// unreachable site (TryDraw reports nullopt).
class LinearSource : public core::ObservationSource {
 public:
  LinearSource(double slope, uint64_t seed) : slope_(slope), rng_(seed) {}

  std::optional<core::Observation> TryDraw() override {
    if (fail_.load()) return std::nullopt;
    return Draw();
  }

  core::Observation Draw() override {
    draws_.fetch_add(1);
    core::Observation o;
    o.probing_cost = rng_.Uniform(0.3, 0.7);
    o.features.resize(core::VariableSet::ForClass(kCls).size());
    for (auto& f : o.features) f = rng_.Uniform(1.0, 10.0);
    o.cost = slope_.load() * o.features[0];
    return o;
  }

  void set_slope(double s) { slope_.store(s); }
  void set_fail(bool f) { fail_.store(f); }
  int draws() const { return draws_.load(); }

 private:
  std::atomic<double> slope_;
  std::atomic<bool> fail_{false};
  std::atomic<int> draws_{0};
  Rng rng_;
};

// Small, deterministic daemon config: inline refreshes (the service has no
// workers), single-state re-derivation, fast trip thresholds.
ModelRefreshConfig TestConfig(Clock* clock) {
  ModelRefreshConfig config;
  config.ewma_alpha = 0.5;
  config.error_threshold = 0.5;
  config.drift_threshold = 0.6;
  config.min_reports = 8;
  config.drift_window = 8;
  config.rederive.build.algorithm = core::StateAlgorithm::kSingleState;
  config.rederive.build.sample_size = 60;
  config.clock = clock;
  return config;
}

TEST(ModelRefreshTest, EstimationErrorTriggersRederiveAndAtomicSwap) {
  FakeClock clock;
  EstimationServiceConfig service_config;
  service_config.clock = &clock;
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  // The environment has shifted: queries now cost 6x, the model says 2x.
  LinearSource source(6.0, 11);
  ModelRefreshDaemon daemon(&service, TestConfig(&clock));
  daemon.Watch("a", kCls, &source);

  Rng rng(5);
  int reports = 0;
  while (daemon.Stats().refreshes_succeeded < 1 && reports < 50) {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 6.0 * x);
    ++reports;
  }

  // The daemon re-derived and swapped within min_reports + a few reports.
  const ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_succeeded, 1u);
  EXPECT_GE(stats.error_trips, 1u);
  EXPECT_EQ(stats.refresh_failures, 0u);
  EXPECT_LE(reports, 12);
  EXPECT_GT(source.draws(), 0);

  // The swapped-in model prices the new environment correctly, the key is
  // fresh again and the stale flag is gone.
  const EstimateResponse response = service.Estimate(Request("a", 3.0));
  ASSERT_TRUE(response.ok());
  EXPECT_NEAR(response.estimate_seconds, 18.0, 1e-3);
  EXPECT_FALSE(response.stale_model);
  EXPECT_FALSE(service.IsModelStale("a", kCls));
  EXPECT_EQ(daemon.Status("a", kCls).state, RefreshState::kFresh);
  EXPECT_EQ(service.Stats().catalog_swaps, 2u);
}

TEST(ModelRefreshTest, ContentionDistributionDriftTriggersRefresh) {
  FakeClock clock;
  EstimationServiceConfig service_config;
  service_config.clock = &clock;
  EstimationService service(service_config);
  // Accurate in *both* states (cost = 2x everywhere), so the error signal
  // never fires; only the state distribution changes.
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 2.0}));
  std::atomic<double> probe_value{0.5};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  LinearSource source(2.0, 13);
  ModelRefreshConfig config = TestConfig(&clock);
  config.error_threshold = 10.0;  // error signal effectively disabled
  ModelRefreshDaemon daemon(&service, config);
  daemon.Watch("a", kCls, &source);

  Rng rng(7);
  // Baseline window: the site sits in state 0.
  for (size_t i = 0; i < config.min_reports; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 2.0 * x);
  }
  EXPECT_EQ(daemon.Stats().drift_trips, 0u);

  // Contention jumps into state 1 and stays there; estimates are still
  // accurate, but the environment left the region the baseline saw.
  probe_value.store(1.5);
  ASSERT_TRUE(service.ProbeNow("a"));
  int reports = 0;
  while (daemon.Stats().refreshes_scheduled < 1 && reports < 50) {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 2.0 * x);
    ++reports;
  }

  const ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.drift_trips, 1u);
  EXPECT_EQ(stats.error_trips, 0u);
  EXPECT_EQ(stats.refreshes_succeeded, 1u);
  EXPECT_LE(reports, static_cast<int>(config.drift_window) + 2);
}

TEST(ModelRefreshTest, FailedRederiveKeepsOldModelAndBacksOffExponentially) {
  FakeClock clock;
  EstimationServiceConfig service_config;
  service_config.clock = &clock;
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  LinearSource source(6.0, 17);
  source.set_fail(true);  // the site refuses to be sampled
  ModelRefreshConfig config = TestConfig(&clock);
  config.min_reports = 4;
  config.drift_window = 4;
  config.max_attempts = 3;
  config.initial_backoff = milliseconds(100);
  config.backoff_multiplier = 2.0;
  config.max_backoff = seconds(1);
  ModelRefreshDaemon daemon(&service, config);
  daemon.Watch("a", kCls, &source);

  Rng rng(9);
  auto report = [&] {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 6.0 * x);
  };

  // First trip: the inline refresh fails; the old model keeps serving,
  // flagged stale, and the key backs off.
  for (size_t i = 0; i < config.min_reports; ++i) report();
  ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_scheduled, 1u);
  EXPECT_EQ(stats.refresh_failures, 1u);
  EXPECT_EQ(daemon.Status("a", kCls).state, RefreshState::kBackedOff);
  EXPECT_EQ(daemon.Status("a", kCls).attempts, 1);
  EXPECT_TRUE(service.IsModelStale("a", kCls));
  const EstimateResponse during = service.Estimate(Request("a", 3.0));
  ASSERT_TRUE(during.ok());  // graceful degradation, never an error
  EXPECT_NEAR(during.estimate_seconds, 6.0, 1e-6);  // old model
  EXPECT_TRUE(during.stale_model);

  // Reports inside the backoff window must not schedule another attempt.
  for (int i = 0; i < 5; ++i) report();
  EXPECT_EQ(daemon.Stats().refreshes_scheduled, 1u);

  // Past the 100ms backoff the still-high error re-trips: failure #2,
  // backoff doubles to 200ms.
  clock.Advance(milliseconds(150));
  report();
  EXPECT_EQ(daemon.Stats().refresh_failures, 2u);
  EXPECT_EQ(daemon.Status("a", kCls).attempts, 2);

  // 150ms < 200ms: still backed off.
  clock.Advance(milliseconds(150));
  report();
  EXPECT_EQ(daemon.Stats().refreshes_scheduled, 2u);

  // Another 100ms crosses the 200ms mark: failure #3.
  clock.Advance(milliseconds(100));
  report();
  EXPECT_EQ(daemon.Stats().refresh_failures, 3u);

  // The site comes back; after the 400ms backoff the next trip succeeds
  // and the key returns to fresh with the drift-corrected model.
  source.set_fail(false);
  clock.Advance(milliseconds(450));
  report();
  stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_succeeded, 1u);
  EXPECT_EQ(stats.refresh_failures, 3u);
  EXPECT_EQ(daemon.Status("a", kCls).state, RefreshState::kFresh);
  EXPECT_EQ(daemon.Status("a", kCls).attempts, 0);
  EXPECT_FALSE(service.IsModelStale("a", kCls));
  const EstimateResponse after = service.Estimate(Request("a", 3.0));
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after.estimate_seconds, 18.0, 1e-3);
  EXPECT_FALSE(after.stale_model);
}

TEST(ModelRefreshTest, UnwatchedAndUnpriceableReportsAreIgnored) {
  EstimationService service;
  ModelRefreshDaemon daemon(&service, {});

  // Unwatched key.
  daemon.ReportObserved("ghost", kCls, FeatureVector(3.0), 1.0);
  EXPECT_EQ(daemon.Stats().ignored_reports, 1u);
  EXPECT_FALSE(daemon.Status("ghost", kCls).watched);

  // Watched, but the service has no model (and no probe) for the key:
  // feedback cannot be priced, so it cannot update the error signal.
  LinearSource source(2.0, 3);
  daemon.Watch("a", kCls, &source);
  daemon.ReportObserved("a", kCls, FeatureVector(3.0), 1.0);
  // Non-positive observed costs are noise, not signal.
  daemon.ReportObserved("a", kCls, FeatureVector(3.0), 0.0);
  const ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.ignored_reports, 3u);
  EXPECT_EQ(stats.reports, 0u);
  EXPECT_EQ(stats.refreshes_scheduled, 0u);
}

// Estimates must never block on (or tear under) a concurrent refresh: while
// reporters drive the daemon into repeated re-derivations on the worker
// pool, readers see either the old model (2x) or a re-derived one (~6x) —
// never an error, never a mix. Run under MSCM_SANITIZE=thread.
TEST(ModelRefreshTest, ConcurrentReportsEstimatesAndRefreshesAreSafe) {
  EstimationServiceConfig service_config;
  service_config.worker_threads = 2;  // refreshes run on background workers
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  LinearSource source(6.0, 23);
  ModelRefreshConfig config = TestConfig(Clock::System());
  config.min_reports = 16;
  config.drift_window = 16;
  config.refresh_cooldown = milliseconds(1);  // allow repeated refreshes
  config.rederive.build.sample_size = 30;
  ModelRefreshDaemon daemon(&service, config);
  daemon.Watch("a", kCls, &source);

  std::atomic<bool> stop{false};
  std::vector<std::thread> reporters;
  for (int t = 0; t < 2; ++t) {
    reporters.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 400 && !stop.load(); ++i) {
        const double x = rng.Uniform(1.0, 10.0);
        daemon.ReportObserved("a", kCls, FeatureVector(x), 6.0 * x);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        const EstimateResponse r = service.Estimate(Request("a", 3.0, 0.5));
        if (!r.ok()) {
          stop.store(true);
          ADD_FAILURE() << "estimate failed mid-refresh: "
                        << ToString(r.status);
          return;
        }
        // Either the old model (6.0) or a re-derived one (≈18.0).
        const bool old_model = std::abs(r.estimate_seconds - 6.0) < 1.0;
        const bool new_model = std::abs(r.estimate_seconds - 18.0) < 1.0;
        if (!old_model && !new_model) {
          stop.store(true);
          ADD_FAILURE() << "torn estimate: " << r.estimate_seconds;
          return;
        }
      }
    });
  }
  for (auto& t : reporters) t.join();
  for (auto& t : readers) t.join();

  // A tripped refresh may still be in flight on the worker pool when the
  // threads join; give it a deadline to land before asserting.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.Stats().refreshes_succeeded == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  const ModelRefreshStats stats = daemon.Stats();
  EXPECT_GT(stats.reports, 0u);
  EXPECT_GE(stats.refreshes_succeeded, 1u);
}

// An observation source that throws from TryDraw — the mdbs glue talking to
// a misbehaving remote site.
class ThrowingSource : public core::ObservationSource {
 public:
  explicit ThrowingSource(LinearSource* inner) : inner_(inner) {}
  std::optional<core::Observation> TryDraw() override {
    if (throwing_.load()) throw std::runtime_error("sampling RPC exploded");
    return inner_->TryDraw();
  }
  core::Observation Draw() override { return inner_->Draw(); }
  void set_throwing(bool t) { throwing_.store(t); }

 private:
  LinearSource* inner_;
  std::atomic<bool> throwing_{true};
};

// Regression: an exception escaping core::RederiveModel used to propagate out
// of RunRefresh — on an inline refresh it blew up the reporter, on a worker
// it took the pool thread down. It is now routed into the same failed-attempt
// backoff as a clean sampling failure.
TEST(ModelRefreshTest, ThrowingSourceIsAFailedAttemptNotACrash) {
  FakeClock clock;
  EstimationServiceConfig service_config;
  service_config.clock = &clock;
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  LinearSource inner(6.0, 29);
  ThrowingSource source(&inner);
  ModelRefreshConfig config = TestConfig(&clock);
  config.min_reports = 4;
  config.drift_window = 4;
  config.initial_backoff = milliseconds(100);
  ModelRefreshDaemon daemon(&service, config);
  daemon.Watch("a", kCls, &source);

  Rng rng(31);
  auto report = [&] {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 6.0 * x);
  };

  // The trip runs an inline refresh; the thrown exception must surface as a
  // counted failure with the key backed off — not as a crash.
  for (size_t i = 0; i < config.min_reports; ++i) report();
  ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_scheduled, 1u);
  EXPECT_EQ(stats.refresh_failures, 1u);
  EXPECT_EQ(stats.refresh_exceptions, 1u);
  EXPECT_EQ(daemon.Status("a", kCls).state, RefreshState::kBackedOff);
  EXPECT_TRUE(service.IsModelStale("a", kCls));
  // The old model keeps serving.
  ASSERT_TRUE(service.Estimate(Request("a", 3.0)).ok());

  // The source stops throwing; past the backoff the retry succeeds.
  source.set_throwing(false);
  clock.Advance(milliseconds(150));
  report();
  stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_succeeded, 1u);
  EXPECT_EQ(stats.refresh_exceptions, 1u);
  EXPECT_EQ(daemon.Status("a", kCls).state, RefreshState::kFresh);
  EXPECT_NEAR(service.Estimate(Request("a", 3.0)).estimate_seconds, 18.0,
              1e-3);
}

// Tentpole: while a site's probe breaker is open, re-deriving its model from
// fresh samples is pointless (the same site is unreachable) — the daemon
// suspends the refresh instead of burning a failed attempt, and re-trips
// from accumulated signals once the site recovers.
TEST(ModelRefreshTest, RefreshesAreSuspendedWhileSiteIsDegraded) {
  FakeClock clock;
  EstimationServiceConfig service_config;
  service_config.clock = &clock;
  service_config.breaker.failure_threshold = 1;
  service_config.breaker.open_duration = seconds(5);
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  std::atomic<bool> fail{false};
  service.RegisterSite("a", [&]() -> double {
    if (fail.load()) throw std::runtime_error("site down");
    return 0.5;
  });
  ASSERT_TRUE(service.ProbeNow("a"));

  // Trip the breaker: the site is degraded.
  fail.store(true);
  EXPECT_FALSE(service.ProbeNow("a"));
  ASSERT_TRUE(service.IsSiteDegraded("a"));

  LinearSource source(6.0, 37);
  ModelRefreshConfig config = TestConfig(&clock);
  config.min_reports = 4;
  config.drift_window = 4;
  ModelRefreshDaemon daemon(&service, config);
  daemon.Watch("a", kCls, &source);

  Rng rng(41);
  auto report = [&] {
    const double x = rng.Uniform(1.0, 10.0);
    daemon.ReportObserved("a", kCls, FeatureVector(x), 6.0 * x);
  };

  // Plenty of high-error reports, but the degraded site suspends every trip:
  // nothing is scheduled, no attempt is burned, no sample is drawn.
  for (int i = 0; i < 10; ++i) report();
  ModelRefreshStats stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_scheduled, 0u);
  EXPECT_EQ(stats.refresh_failures, 0u);
  EXPECT_GE(stats.refreshes_suspended, 1u);
  EXPECT_EQ(source.draws(), 0);
  EXPECT_EQ(daemon.Status("a", kCls).attempts, 0);

  // The site recovers: half-open trial closes the breaker, and the signals
  // that kept accumulating re-trip a real refresh on the next report.
  fail.store(false);
  clock.Advance(seconds(6));
  ASSERT_TRUE(service.ProbeNow("a"));
  ASSERT_FALSE(service.IsSiteDegraded("a"));
  int reports = 0;
  while (daemon.Stats().refreshes_succeeded < 1 && reports < 20) {
    report();
    ++reports;
  }
  stats = daemon.Stats();
  EXPECT_EQ(stats.refreshes_succeeded, 1u);
  EXPECT_GT(source.draws(), 0);
  EXPECT_NEAR(service.Estimate(Request("a", 3.0)).estimate_seconds, 18.0,
              1e-3);
}

}  // namespace
}  // namespace mscm::runtime
