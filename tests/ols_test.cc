#include "stats/ols.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mscm::stats {
namespace {

Matrix DesignWithIntercept(const std::vector<std::vector<double>>& xs) {
  std::vector<std::vector<double>> rows;
  for (const auto& x : xs) {
    std::vector<double> row = {1.0};
    row.insert(row.end(), x.begin(), x.end());
    rows.push_back(row);
  }
  return Matrix::FromRows(rows);
}

TEST(OlsTest, PerfectLineRecovered) {
  // y = 3 + 2x, no noise.
  const Matrix x = DesignWithIntercept({{0}, {1}, {2}, {3}, {4}});
  const std::vector<double> y = {3, 5, 7, 9, 11};
  const OlsResult r = FitOls(x, y);
  EXPECT_NEAR(r.coefficients[0], 3.0, 1e-10);
  EXPECT_NEAR(r.coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(r.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(r.sse, 0.0, 1e-18);
}

TEST(OlsTest, KnownTextbookRegression) {
  // Simple regression: slope = Sxy/Sxx, intercept = ybar - slope*xbar.
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 2.8, 3.6, 4.5, 5.1};
  const Matrix x = DesignWithIntercept({{1}, {2}, {3}, {4}, {5}});
  const OlsResult r = FitOls(x, ys);
  const double xbar = 3.0;
  double ybar = 0.0;
  for (double v : ys) ybar += v;
  ybar /= 5.0;
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    sxy += (xs[i] - xbar) * (ys[i] - ybar);
    sxx += (xs[i] - xbar) * (xs[i] - xbar);
  }
  EXPECT_NEAR(r.coefficients[1], sxy / sxx, 1e-12);
  EXPECT_NEAR(r.coefficients[0], ybar - (sxy / sxx) * xbar, 1e-12);
}

TEST(OlsTest, ResidualsOrthogonalToDesign) {
  Rng rng(4);
  Matrix x(30, 3);
  std::vector<double> y(30);
  for (size_t i = 0; i < 30; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 10);
    x(i, 2) = rng.Uniform(-5, 5);
    y[i] = 2.0 + 0.5 * x(i, 1) - 1.5 * x(i, 2) + rng.Gaussian(0, 0.3);
  }
  const OlsResult r = FitOls(x, y);
  // X^T residuals == 0 is the normal-equation optimality condition.
  for (size_t j = 0; j < 3; ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < 30; ++i) dot += x(i, j) * r.residuals[i];
    EXPECT_NEAR(dot, 0.0, 1e-8);
  }
}

TEST(OlsTest, RecoversCoefficientsUnderNoise) {
  Rng rng(8);
  const size_t n = 400;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 100);
    x(i, 2) = rng.Uniform(0, 50);
    y[i] = 5.0 + 0.8 * x(i, 1) + 2.5 * x(i, 2) + rng.Gaussian(0, 2.0);
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_NEAR(r.coefficients[0], 5.0, 1.0);
  EXPECT_NEAR(r.coefficients[1], 0.8, 0.02);
  EXPECT_NEAR(r.coefficients[2], 2.5, 0.05);
  EXPECT_GT(r.r_squared, 0.99);
  EXPECT_NEAR(r.standard_error, 2.0, 0.4);
}

TEST(OlsTest, SeeMatchesPaperFormula) {
  // SEE = sqrt(SSE / (n - m - 1)) with m explanatory variables + intercept.
  Rng rng(10);
  const size_t n = 50;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 10);
    y[i] = 1.0 + x(i, 1) + rng.Gaussian(0, 1.0);
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_NEAR(r.standard_error,
              std::sqrt(r.sse / (static_cast<double>(n) - 2.0)), 1e-12);
}

TEST(OlsTest, RSquaredZeroForPureNoiseRegressor) {
  Rng rng(11);
  const size_t n = 2000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_LT(r.r_squared, 0.01);
  EXPECT_GT(r.f_pvalue, 0.001);
}

TEST(OlsTest, FTestSignificantForRealSignal) {
  Rng rng(12);
  const size_t n = 60;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 10);
    y[i] = 2.0 * x(i, 1) + rng.Gaussian(0, 1.0);
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_GT(r.f_statistic, 100.0);
  EXPECT_LT(r.f_pvalue, 1e-6);
}

TEST(OlsTest, TStatisticsFlagIrrelevantVariable) {
  Rng rng(13);
  const size_t n = 300;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(0, 10);
    x(i, 2) = rng.Uniform(0, 10);  // irrelevant
    y[i] = 1.0 + 3.0 * x(i, 1) + rng.Gaussian(0, 1.0);
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_GT(std::fabs(r.t_statistics[1]), 10.0);
  EXPECT_LT(std::fabs(r.t_statistics[2]), 3.5);
}

TEST(OlsTest, PredictMatchesFitted) {
  const Matrix x = DesignWithIntercept({{0}, {1}, {2}});
  const OlsResult r = FitOls(x, {1, 3, 5});
  EXPECT_NEAR(r.Predict({1.0, 1.5}), 4.0, 1e-10);
}

TEST(OlsTest, AdjustedRSquaredBelowRSquared) {
  Rng rng(14);
  const size_t n = 25;
  Matrix x(n, 4);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    for (size_t j = 1; j < 4; ++j) x(i, j) = rng.Uniform(0, 1);
    y[i] = x(i, 1) + rng.Gaussian(0, 0.5);
  }
  const OlsResult r = FitOls(x, y);
  EXPECT_LT(r.adjusted_r_squared, r.r_squared);
}

TEST(VifTest, OrthogonalColumnsHaveUnitVif) {
  // Two orthogonal, centered columns: VIF should be ~1.
  const Matrix x = Matrix::FromRows({{1, -1, -1},
                                     {1, -1, 1},
                                     {1, 1, -1},
                                     {1, 1, 1}});
  EXPECT_NEAR(VarianceInflationFactor(x, 1), 1.0, 1e-9);
  EXPECT_NEAR(VarianceInflationFactor(x, 2), 1.0, 1e-9);
}

TEST(VifTest, CollinearColumnHasHugeVif) {
  // col2 = 2 * col1.
  const Matrix x = Matrix::FromRows(
      {{1, 1, 2}, {1, 2, 4}, {1, 3, 6}, {1, 4, 8}, {1, 5, 10}});
  EXPECT_GT(VarianceInflationFactor(x, 2), 1e6);
}

TEST(VifTest, ModerateCorrelationGivesModerateVif) {
  Rng rng(15);
  const size_t n = 500;
  Matrix x(n, 3);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Gaussian();
    // Correlated with column 1 (rho ~ 0.9 => VIF ~ 1/(1-0.81) ~ 5).
    x(i, 2) = 0.9 * x(i, 1) + std::sqrt(1 - 0.81) * rng.Gaussian();
  }
  const double vif = VarianceInflationFactor(x, 2);
  EXPECT_GT(vif, 3.0);
  EXPECT_LT(vif, 9.0);
}

}  // namespace
}  // namespace mscm::stats
