#include "stats/special_functions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mscm::stats {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(3.0), std::log(2.0), 1e-10);
  EXPECT_NEAR(LogGamma(6.0), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // Gamma(x+1) = x * Gamma(x)  =>  lgamma(x+1) = lgamma(x) + ln(x).
  for (double x : {0.3, 1.7, 4.2, 11.5, 100.25}) {
    EXPECT_NEAR(LogGamma(x + 1.0), LogGamma(x) + std::log(x), 1e-9)
        << "x = " << x;
  }
}

TEST(IncompleteBetaTest, Endpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCaseAtHalf) {
  // I_{0.5}(a, a) = 0.5 for any a.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, ClosedFormA1) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (double b : {1.0, 2.0, 5.0}) {
    for (double x : {0.2, 0.6}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x),
                  1.0 - std::pow(1.0 - x, b), 1e-10);
    }
  }
}

TEST(IncompleteBetaTest, ComplementIdentity) {
  // I_x(a, b) + I_{1-x}(b, a) = 1.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, 0.3) +
                  RegularizedIncompleteBeta(4.0, 2.5, 0.7),
              1.0, 1e-10);
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = RegularizedIncompleteBeta(3.0, 2.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ErfTest, KnownValues) {
  EXPECT_NEAR(Erf(0.0), 0.0, 1e-7);
  EXPECT_NEAR(Erf(1.0), 0.8427007929, 2e-7);
  EXPECT_NEAR(Erf(-1.0), -0.8427007929, 2e-7);
  EXPECT_NEAR(Erf(2.0), 0.9953222650, 2e-7);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-7);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-4);
}

}  // namespace
}  // namespace mscm::stats
