// Property tests (parameterized) for contention-state partitions: mapping
// and merging invariants across state counts.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/states.h"

namespace mscm::core {
namespace {

class StatesPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StatesPropertyTest, EveryCostMapsToExactlyOneValidState) {
  const int m = GetParam();
  const ContentionStates s = ContentionStates::UniformPartition(0.5, 9.5, m);
  EXPECT_EQ(s.num_states(), m);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double cost = rng.Uniform(-5.0, 20.0);
    const int state = s.StateOf(cost);
    EXPECT_GE(state, 0);
    EXPECT_LT(state, m);
  }
}

TEST_P(StatesPropertyTest, StateOfIsMonotoneInCost) {
  const int m = GetParam();
  const ContentionStates s = ContentionStates::UniformPartition(0.0, 10.0, m);
  int prev = 0;
  for (double cost = -1.0; cost <= 12.0; cost += 0.01) {
    const int state = s.StateOf(cost);
    EXPECT_GE(state, prev);
    prev = state;
  }
  EXPECT_EQ(prev, m - 1);
}

TEST_P(StatesPropertyTest, BoundariesAscending) {
  const int m = GetParam();
  const ContentionStates s = ContentionStates::UniformPartition(1.0, 3.0, m);
  const auto& b = s.boundaries();
  ASSERT_EQ(b.size(), static_cast<size_t>(m - 1));
  for (size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LT(b[i], b[i + 1]);
}

TEST_P(StatesPropertyTest, MergePreservesMappingOutsideMergedPair) {
  const int m = GetParam();
  if (m < 3) return;
  const ContentionStates original =
      ContentionStates::UniformPartition(0.0, 10.0, m);
  for (int merge_at = 0; merge_at < m - 1; ++merge_at) {
    ContentionStates merged = original;
    merged.MergeAdjacent(merge_at);
    EXPECT_EQ(merged.num_states(), m - 1);
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      const double cost = rng.Uniform(-2.0, 12.0);
      const int before = original.StateOf(cost);
      const int after = merged.StateOf(cost);
      if (before < merge_at) {
        EXPECT_EQ(after, before);
      } else if (before > merge_at + 1) {
        EXPECT_EQ(after, before - 1);
      } else {
        EXPECT_EQ(after, merge_at);  // both merged states collapse
      }
    }
  }
}

TEST_P(StatesPropertyTest, MergingDownToOneAlwaysPossible) {
  const int m = GetParam();
  ContentionStates s = ContentionStates::UniformPartition(0.0, 1.0, m);
  while (s.num_states() > 1) s.MergeAdjacent(0);
  EXPECT_EQ(s.num_states(), 1);
  EXPECT_EQ(s.StateOf(123.0), 0);
}

TEST_P(StatesPropertyTest, FromBoundariesRoundTrips) {
  const int m = GetParam();
  const ContentionStates s = ContentionStates::UniformPartition(0.2, 7.7, m);
  const ContentionStates rebuilt =
      ContentionStates::FromBoundaries(s.boundaries());
  EXPECT_EQ(rebuilt.num_states(), s.num_states());
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double cost = rng.Uniform(-1.0, 9.0);
    EXPECT_EQ(rebuilt.StateOf(cost), s.StateOf(cost));
  }
}

INSTANTIATE_TEST_SUITE_P(StateCounts, StatesPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace mscm::core
