#include "engine/index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::engine {
namespace {

TEST(IndexTest, LookupReturnsMatchingRows) {
  Table t = test::SequentialTable("T", 100);
  const Index idx(t, 0, /*clustered=*/false);
  const auto rows = idx.Lookup(10, 14);
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(t.row(rows[i])[0], static_cast<int64_t>(10 + i));
  }
}

TEST(IndexTest, LookupEmptyRange) {
  Table t = test::SequentialTable("T", 100);
  const Index idx(t, 0, false);
  EXPECT_TRUE(idx.Lookup(200, 300).empty());
  EXPECT_TRUE(idx.Lookup(50, 49).empty());
}

TEST(IndexTest, LookupDuplicateKeys) {
  Table t = test::SequentialTable("T", 100, /*mod=*/10);
  const Index idx(t, 1, false);
  // Key 3 appears 10 times in column 1.
  EXPECT_EQ(idx.Lookup(3, 3).size(), 10u);
  EXPECT_EQ(idx.CountRange(3, 3), 10u);
}

TEST(IndexTest, CountRangeMatchesLookupSize) {
  Table t = test::SequentialTable("T", 500, /*mod=*/37);
  const Index idx(t, 1, false);
  for (int64_t lo = 0; lo < 37; lo += 5) {
    EXPECT_EQ(idx.CountRange(lo, lo + 7), idx.Lookup(lo, lo + 7).size());
  }
}

TEST(IndexTest, ClusteredRequiresSortedTable) {
  Table t = test::SequentialTable("T", 50);
  t.SortByColumn(0);
  const Index idx(t, 0, /*clustered=*/true);
  EXPECT_TRUE(idx.clustered());
  EXPECT_EQ(idx.Lookup(5, 9).size(), 5u);
}

TEST(IndexTest, TreeHeightGrowsWithSize) {
  Table small = test::SequentialTable("S", 100);
  Table big = test::SequentialTable("B", 100000);
  const Index i_small(small, 0, false);
  const Index i_big(big, 0, false);
  EXPECT_GE(i_big.TreeHeight(), i_small.TreeHeight());
  EXPECT_GE(i_small.TreeHeight(), 1);
  EXPECT_EQ(i_big.TreeHeight(), 3);  // ceil(log_256(1e5)) = 3
}

TEST(IndexTest, NumEntriesMatchesTable) {
  Table t = test::SequentialTable("T", 321);
  const Index idx(t, 0, false);
  EXPECT_EQ(idx.num_entries(), 321u);
}

}  // namespace
}  // namespace mscm::engine
