// Property tests (parameterized) across the whole model-building pipeline:
// for a family of piecewise ground truths (varying contrast between regimes
// and noise levels), the multi-states pipeline must dominate the one-state
// special case in-sample, and its state count must track the true number of
// regimes.

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

struct PipelineCase {
  int true_regimes;
  double contrast;  // cost multiplier ratio between adjacent regimes
  double noise;
};

void PrintTo(const PipelineCase& c, std::ostream* os) {
  *os << "r" << c.true_regimes << "/contrast" << c.contrast << "/noise"
      << c.noise;
}

class PipelinePropertyTest : public ::testing::TestWithParam<PipelineCase> {
 protected:
  ObservationSet MakeObservations(size_t n, uint64_t seed) const {
    const auto [regimes, contrast, noise] = GetParam();
    test::SyntheticGroundTruth truth;
    double scale = 1.0;
    for (int r = 0; r < regimes; ++r) {
      truth.intercepts.push_back(0.5 * scale);
      // The unary variable set has 7 variables; only the first two carry
      // signal, the rest are inert (zero slope) so variable selection has
      // something to prune.
      truth.slopes.push_back(
          {1.0 * scale, 0.4 * scale, 0.0, 0.0, 0.0, 0.0, 0.0});
      scale *= contrast;
    }
    truth.noise_stddev = noise;
    Rng rng(seed);
    return test::SyntheticObservations(truth, n, rng);
  }
};

TEST_P(PipelinePropertyTest, MultiStatesDominatesOneStateInSample) {
  const ObservationSet obs = MakeObservations(500, 21);
  ModelBuildOptions multi;
  multi.algorithm = StateAlgorithm::kIupma;
  const BuildReport m = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs, multi);
  ModelBuildOptions single;
  single.algorithm = StateAlgorithm::kSingleState;
  const BuildReport s = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs, single);
  EXPECT_GE(m.model.r_squared() + 1e-9, s.model.r_squared());
  EXPECT_LE(m.model.standard_error(), s.model.standard_error() * 1.001);
}

TEST_P(PipelinePropertyTest, StateCountTracksTrueRegimes) {
  const auto [regimes, contrast, noise] = GetParam();
  const ObservationSet obs = MakeObservations(600, 22);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIupma;
  const BuildReport report = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs, options);
  if (regimes == 1) {
    // Homogeneous data must not hallucinate many states.
    EXPECT_LE(report.model.states().num_states(), 2);
  } else if (contrast >= 3.0 && noise <= 0.3) {
    // Strong, clean regime structure must be detected.
    EXPECT_GE(report.model.states().num_states(), regimes);
  }
  // Never exceed the configured maximum.
  EXPECT_LE(report.model.states().num_states(),
            options.states.max_states);
}

TEST_P(PipelinePropertyTest, IcmaAgreesWithIupmaOnUniformProbes) {
  // Probing costs here are uniform, so clustering-based and uniform
  // partitions should produce models of comparable quality.
  const ObservationSet obs = MakeObservations(500, 23);
  ModelBuildOptions iupma;
  iupma.algorithm = StateAlgorithm::kIupma;
  ObservationSet obs_copy = obs;
  const BuildReport a = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs, iupma);
  ModelBuildOptions icma;
  icma.algorithm = StateAlgorithm::kIcma;
  const BuildReport b = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs_copy, icma);
  // Clustering has no natural boundaries to lock onto in uniform data, so
  // allow a modest quality gap in either direction.
  EXPECT_NEAR(a.model.r_squared(), b.model.r_squared(), 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    GroundTruthFamilies, PipelinePropertyTest,
    ::testing::Values(PipelineCase{1, 1.0, 0.1}, PipelineCase{2, 3.0, 0.1},
                      PipelineCase{2, 8.0, 0.3}, PipelineCase{3, 3.0, 0.1},
                      PipelineCase{3, 3.0, 0.5}, PipelineCase{4, 4.0, 0.2},
                      PipelineCase{5, 2.0, 0.2}));

}  // namespace
}  // namespace mscm::core
