#include "core/agent_source.h"

#include <gtest/gtest.h>

#include "core/explanatory.h"
#include "stats/descriptive.h"

namespace mscm::core {
namespace {

mdbs::LocalDbsConfig SmallSite(uint64_t seed) {
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 4;
  config.tables.scale = 0.05;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.min_processes = 5.0;
  config.load.max_processes = 110.0;
  config.seed = seed;
  return config;
}

TEST(AgentSourceTest, DrawProducesCompleteObservations) {
  mdbs::LocalDbs site(SmallSite(1));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 2);
  for (int i = 0; i < 20; ++i) {
    const Observation obs = source.Draw();
    EXPECT_EQ(obs.features.size(),
              VariableSet::ForClass(QueryClassId::kUnarySeqScan).size());
    EXPECT_GT(obs.cost, 0.0);
    EXPECT_GT(obs.probing_cost, 0.0);
  }
}

TEST(AgentSourceTest, JoinClassObservationsHaveJoinFeatures) {
  mdbs::LocalDbs site(SmallSite(3));
  AgentObservationSource source(&site, QueryClassId::kJoinNoIndex, 4);
  const Observation obs = source.Draw();
  EXPECT_EQ(obs.features.size(),
            VariableSet::ForClass(QueryClassId::kJoinNoIndex).size());
}

TEST(AgentSourceTest, DrawsSpanContentionRange) {
  mdbs::LocalDbs site(SmallSite(5));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 6);
  std::vector<double> probes;
  for (int i = 0; i < 60; ++i) probes.push_back(source.Draw().probing_cost);
  // The probe range should be wide (contention varies ~20x across draws).
  EXPECT_GT(stats::Max(probes) / stats::Min(probes), 4.0);
}

TEST(AgentSourceTest, DrawInProbingRangeHitsRequestedSubrange) {
  mdbs::LocalDbs site(SmallSite(7));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 8);
  // Establish the empirical probe range first.
  std::vector<double> probes;
  for (int i = 0; i < 40; ++i) probes.push_back(source.Draw().probing_cost);
  const double lo = stats::Quantile(probes, 0.3);
  const double hi = stats::Quantile(probes, 0.7);
  int hits = 0;
  for (int i = 0; i < 10; ++i) {
    const auto obs = source.DrawInProbingRange(lo, hi, 40);
    if (obs.has_value()) {
      EXPECT_GE(obs->probing_cost, lo);
      EXPECT_LE(obs->probing_cost, hi);
      ++hits;
    }
  }
  EXPECT_GE(hits, 8);  // the mid-range must be reliably reachable
}

TEST(AgentSourceTest, DrawInProbingRangeUsesBisectionForNarrowBands) {
  mdbs::LocalDbs site(SmallSite(9));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 10);
  std::vector<double> probes;
  for (int i = 0; i < 40; ++i) probes.push_back(source.Draw().probing_cost);
  // A narrow band around the 60th percentile: rejection alone would often
  // miss it, bisection should find it most of the time.
  const double center = stats::Quantile(probes, 0.6);
  const double lo = center * 0.85;
  const double hi = center * 1.15;
  int hits = 0;
  for (int i = 0; i < 10; ++i) {
    if (source.DrawInProbingRange(lo, hi, 60).has_value()) ++hits;
  }
  EXPECT_GE(hits, 6);
}

TEST(AgentSourceTest, ImpossibleRangeReturnsNullopt) {
  mdbs::LocalDbs site(SmallSite(11));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 12);
  // No load level makes the probe cost a million seconds.
  EXPECT_FALSE(source.DrawInProbingRange(1e6, 2e6, 10).has_value());
}

TEST(AgentSourceTest, DrawAtCurrentLoadDoesNotResample) {
  mdbs::LocalDbs site(SmallSite(13));
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 14);
  site.SetLoadProcesses(30.0);
  const Observation obs = source.DrawAtCurrentLoad();
  // The load builder should still be near the pinned level (queries drift it
  // only slightly).
  EXPECT_NEAR(site.current_processes(), 30.0, 5.0);
  EXPECT_GT(obs.cost, 0.0);
}

TEST(AgentSourceTest, DeterministicGivenSeeds) {
  mdbs::LocalDbs site_a(SmallSite(15));
  mdbs::LocalDbs site_b(SmallSite(15));
  AgentObservationSource a(&site_a, QueryClassId::kUnarySeqScan, 16);
  AgentObservationSource b(&site_b, QueryClassId::kUnarySeqScan, 16);
  for (int i = 0; i < 5; ++i) {
    const Observation oa = a.Draw();
    const Observation ob = b.Draw();
    EXPECT_DOUBLE_EQ(oa.cost, ob.cost);
    EXPECT_DOUBLE_EQ(oa.probing_cost, ob.probing_cost);
    EXPECT_EQ(oa.features, ob.features);
  }
}

}  // namespace
}  // namespace mscm::core
