// Frame codec tests: round-trips for every message type, header-invariant
// violations, truncated/byte-split delivery, semantic boundary rejection,
// stats wire round-trip, and seeded random/mutation fuzzing of the
// assembler + payload decoders (run under ASan/TSan via run_sanitized.sh).

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/stats_codec.h"
#include "net/wire_format.h"
#include "runtime/runtime_stats.h"

namespace mscm::net {
namespace {

using runtime::EstimateRequest;
using runtime::EstimateResponse;
using runtime::EstimateStatus;
using runtime::PlacementCandidate;
using runtime::PlacementResult;

EstimateRequest MakeRequest() {
  EstimateRequest req;
  req.site = "site3";
  req.class_id = core::QueryClassId::kJoinNoIndex;
  req.features = {1.0, 2.5, -3.25, 1e6};
  req.probing_cost = 1.75;
  return req;
}

EstimateResponse MakeResponse() {
  EstimateResponse resp;
  resp.status = EstimateStatus::kOk;
  resp.estimate_seconds = 0.125;
  resp.probing_cost = 2.5;
  resp.state = 3;
  resp.stale_probe = true;
  resp.stale_model = false;
  resp.degraded = true;
  return resp;
}

// ---- Primitive layer --------------------------------------------------------

TEST(WireReaderTest, FailsClosedOnOverread) {
  const std::vector<uint8_t> bytes = {0x01, 0x02};
  WireReader r(bytes);
  EXPECT_EQ(r.TakeU8(), 0x01);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.TakeU32(), 0u);  // only 1 byte left
  EXPECT_FALSE(r.ok());
  // Sticky: subsequent reads stay zero even though a byte remains.
  EXPECT_EQ(r.TakeU8(), 0u);
  EXPECT_FALSE(r.AtEnd());
}

TEST(WireReaderTest, RoundTripsPrimitives) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutF64(-1234.5678);
  w.PutString("hello");
  const std::vector<uint8_t> bytes = w.bytes();

  WireReader r(bytes);
  EXPECT_EQ(r.TakeU8(), 0xAB);
  EXPECT_EQ(r.TakeU16(), 0x1234);
  EXPECT_EQ(r.TakeU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.TakeU64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.TakeF64(), -1234.5678);
  EXPECT_EQ(r.TakeString(16), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderTest, NonFiniteDoublesSurviveTheWire) {
  WireWriter w;
  w.PutF64(std::numeric_limits<double>::quiet_NaN());
  w.PutF64(std::numeric_limits<double>::infinity());
  WireReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.TakeF64()));
  EXPECT_TRUE(std::isinf(r.TakeF64()));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderTest, StringCapIsEnforced) {
  WireWriter w;
  w.PutString(std::string(64, 'x'));
  WireReader r(w.bytes());
  EXPECT_EQ(r.TakeString(/*max_bytes=*/8), "");
  EXPECT_FALSE(r.ok());
}

TEST(WireReaderTest, StringPrefixBeyondPayloadFails) {
  WireWriter w;
  w.PutU16(100);  // length prefix promising 100 bytes...
  w.PutU8('x');   // ...but only 1 present
  WireReader r(w.bytes());
  EXPECT_EQ(r.TakeString(256), "");
  EXPECT_FALSE(r.ok());
}

// ---- Frame assembler --------------------------------------------------------

TEST(FrameAssemblerTest, ReassemblesOneFrame) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4};
  const std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kEstimateRequest, 42, payload);
  ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());

  FrameAssembler a;
  EXPECT_TRUE(a.Feed(bytes.data(), bytes.size()));
  auto frame = a.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kEstimateRequest));
  EXPECT_EQ(frame->request_id, 42u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(a.Next().has_value());
  EXPECT_EQ(a.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, ByteAtATimeDelivery) {
  const std::vector<uint8_t> bytes =
      EncodeFrame(MessageType::kStatsRequest, 7, {});
  FrameAssembler a;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(a.Feed(&bytes[i], 1));
    EXPECT_FALSE(a.Next().has_value()) << "frame completed early at byte " << i;
  }
  ASSERT_TRUE(a.Feed(&bytes.back(), 1));
  auto frame = a.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->request_id, 7u);
}

TEST(FrameAssemblerTest, PipelinedFramesComeOutInOrder) {
  std::vector<uint8_t> stream;
  for (uint32_t id = 1; id <= 5; ++id) {
    const auto f = EncodeFrame(MessageType::kEstimateRequest, id,
                               {static_cast<uint8_t>(id)});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameAssembler a;
  ASSERT_TRUE(a.Feed(stream.data(), stream.size()));
  EXPECT_EQ(a.frames_ready(), 5u);
  for (uint32_t id = 1; id <= 5; ++id) {
    auto frame = a.Next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->request_id, id);
  }
}

TEST(FrameAssemblerTest, BadMagicPoisonsTheStream) {
  std::vector<uint8_t> bytes = EncodeFrame(MessageType::kStatsRequest, 1, {});
  bytes[0] ^= 0xFF;
  FrameAssembler a;
  EXPECT_FALSE(a.Feed(bytes.data(), bytes.size()));
  EXPECT_TRUE(a.broken());
  EXPECT_EQ(a.error(), WireError::kMalformedFrame);
  // Poisoned: even valid bytes are refused now.
  const auto good = EncodeFrame(MessageType::kStatsRequest, 2, {});
  EXPECT_FALSE(a.Feed(good.data(), good.size()));
  EXPECT_FALSE(a.Next().has_value());
}

TEST(FrameAssemblerTest, WrongVersionIsItsOwnError) {
  std::vector<uint8_t> bytes = EncodeFrame(MessageType::kStatsRequest, 1, {});
  bytes[2] = kProtocolVersion + 1;  // version byte
  FrameAssembler a;
  EXPECT_FALSE(a.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(a.error(), WireError::kUnsupportedVersion);
}

TEST(FrameAssemblerTest, OversizedPayloadLengthIsRejectedUpFront) {
  std::vector<uint8_t> bytes = EncodeFrame(MessageType::kStatsRequest, 1, {});
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // payload_len field
  FrameAssembler a;
  EXPECT_FALSE(a.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(a.error(), WireError::kMalformedFrame);
  // The lying length must not be buffered toward.
  EXPECT_EQ(a.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, LowerCapApplies) {
  const std::vector<uint8_t> payload(128, 0);
  const auto bytes = EncodeFrame(MessageType::kEstimateRequest, 1, payload);
  FrameAssembler a(/*max_payload=*/64);
  EXPECT_FALSE(a.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(a.error(), WireError::kMalformedFrame);
}

TEST(FrameAssemblerTest, TruncatedFrameStaysPendingNotBroken) {
  const auto bytes =
      EncodeFrame(MessageType::kEstimateRequest, 9, {1, 2, 3, 4, 5});
  FrameAssembler a;
  ASSERT_TRUE(a.Feed(bytes.data(), bytes.size() - 2));
  EXPECT_FALSE(a.broken());
  EXPECT_FALSE(a.Next().has_value());
  EXPECT_GT(a.buffered_bytes(), 0u);
}

// ---- Message round-trips ----------------------------------------------------

TEST(WireMessagesTest, EstimateRequestRoundTrips) {
  const EstimateRequest req = MakeRequest();
  WireWriter w;
  EncodeEstimateRequest(req, w);
  WireError error = WireError::kNone;
  auto got = DecodeEstimateRequestPayload(w.bytes(), &error);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  EXPECT_EQ(got->site, req.site);
  EXPECT_EQ(got->class_id, req.class_id);
  EXPECT_EQ(got->features, req.features);
  EXPECT_DOUBLE_EQ(got->probing_cost, req.probing_cost);
}

TEST(WireMessagesTest, NegativeProbingCostSentinelSurvives) {
  EstimateRequest req = MakeRequest();
  req.probing_cost = -1.0;  // "use the site's cached probe"
  WireWriter w;
  EncodeEstimateRequest(req, w);
  WireError error = WireError::kNone;
  auto got = DecodeEstimateRequestPayload(w.bytes(), &error);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->probing_cost, -1.0);
}

TEST(WireMessagesTest, EstimateResponseRoundTrips) {
  const EstimateResponse resp = MakeResponse();
  WireWriter w;
  EncodeEstimateResponse(resp, w);
  auto got = DecodeEstimateResponsePayload(w.bytes());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, resp.status);
  EXPECT_DOUBLE_EQ(got->estimate_seconds, resp.estimate_seconds);
  EXPECT_DOUBLE_EQ(got->probing_cost, resp.probing_cost);
  EXPECT_EQ(got->state, resp.state);
  EXPECT_EQ(got->stale_probe, resp.stale_probe);
  EXPECT_EQ(got->stale_model, resp.stale_model);
  EXPECT_EQ(got->degraded, resp.degraded);
}

TEST(WireMessagesTest, AllStatusesRoundTrip) {
  for (const EstimateStatus status :
       {EstimateStatus::kOk, EstimateStatus::kNoModel, EstimateStatus::kNoProbe,
        EstimateStatus::kInvalidRequest}) {
    EstimateResponse resp = MakeResponse();
    resp.status = status;
    WireWriter w;
    EncodeEstimateResponse(resp, w);
    auto got = DecodeEstimateResponsePayload(w.bytes());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, status);
  }
}

TEST(WireMessagesTest, BatchRoundTrips) {
  std::vector<EstimateRequest> requests;
  for (int i = 0; i < 7; ++i) {
    EstimateRequest req = MakeRequest();
    req.site = "site" + std::to_string(i);
    req.features[0] = i;
    requests.push_back(std::move(req));
  }
  WireError error = WireError::kNone;
  auto got =
      DecodeEstimateBatchRequestPayload(EncodeEstimateBatchRequest(requests),
                                        &error);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  ASSERT_EQ(got->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ((*got)[i].site, requests[i].site);
    EXPECT_EQ((*got)[i].features, requests[i].features);
  }

  std::vector<EstimateResponse> responses(3, MakeResponse());
  responses[1].status = EstimateStatus::kNoModel;
  auto got_resp = DecodeEstimateBatchResponsePayload(
      EncodeEstimateBatchResponse(responses));
  ASSERT_TRUE(got_resp.has_value());
  ASSERT_EQ(got_resp->size(), 3u);
  EXPECT_EQ((*got_resp)[1].status, EstimateStatus::kNoModel);
}

TEST(WireMessagesTest, PlacementRoundTrips) {
  std::vector<PlacementCandidate> candidates(3);
  for (int i = 0; i < 3; ++i) {
    candidates[i].request = MakeRequest();
    candidates[i].request.site = "site" + std::to_string(i);
    candidates[i].shipping_seconds = 0.25 * i;
  }
  WireError error = WireError::kNone;
  auto got =
      DecodePlacementRequestPayload(EncodePlacementRequest(candidates), &error);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  ASSERT_EQ(got->size(), 3u);
  EXPECT_DOUBLE_EQ((*got)[2].shipping_seconds, 0.5);

  PlacementResult result;
  result.chosen = 1;
  result.responses = {MakeResponse(), MakeResponse()};
  result.total_seconds = {1.5, 0.75};
  auto got_result =
      DecodePlacementResponsePayload(EncodePlacementResponse(result));
  ASSERT_TRUE(got_result.has_value());
  EXPECT_EQ(got_result->chosen, 1);
  ASSERT_EQ(got_result->responses.size(), 2u);
  ASSERT_EQ(got_result->total_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(got_result->total_seconds[1], 0.75);
}

TEST(WireMessagesTest, PlacementOptionsRoundTrip) {
  std::vector<PlacementCandidate> candidates(2);
  for (int i = 0; i < 2; ++i) candidates[i].request = MakeRequest();
  runtime::PlacementOptions sent;
  sent.ranking.policy = core::PlacementPolicy::kRiskAdjusted;
  sent.ranking.risk_lambda = 1.25;
  sent.ranking.boundary_band_fraction = 0.05;

  WireError error = WireError::kNone;
  runtime::PlacementOptions got_options;
  auto got = DecodePlacementRequestPayload(
      EncodePlacementRequest(candidates, sent), &error, &got_options);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  EXPECT_EQ(got_options.ranking.policy, core::PlacementPolicy::kRiskAdjusted);
  EXPECT_DOUBLE_EQ(got_options.ranking.risk_lambda, 1.25);
  EXPECT_DOUBLE_EQ(got_options.ranking.boundary_band_fraction, 0.05);
}

TEST(WireMessagesTest, PlacementDistributionsRoundTrip) {
  PlacementResult result;
  result.policy = core::PlacementPolicy::kExpectedCost;
  result.chosen = 0;
  result.responses = {MakeResponse(), MakeResponse()};
  result.total_seconds = {1.5, 0.75};
  core::CostDistribution d0;
  d0.mean = 2.0;
  d0.low = 1.0;
  d0.high = 3.5;
  d0.has_interval = true;
  d0.stale = true;
  core::CostDistribution d1;
  d1.mean = 4.0;
  d1.low = 4.0;
  d1.high = 4.0;
  d1.degraded = true;
  result.distributions = {d0, d1};
  result.scores = {2.75, std::numeric_limits<double>::infinity()};

  auto got = DecodePlacementResponsePayload(EncodePlacementResponse(result));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->policy, core::PlacementPolicy::kExpectedCost);
  ASSERT_EQ(got->distributions.size(), 2u);
  EXPECT_DOUBLE_EQ(got->distributions[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(got->distributions[0].low, 1.0);
  EXPECT_DOUBLE_EQ(got->distributions[0].high, 3.5);
  EXPECT_TRUE(got->distributions[0].has_interval);
  EXPECT_TRUE(got->distributions[0].stale);
  EXPECT_FALSE(got->distributions[0].degraded);
  EXPECT_TRUE(got->distributions[1].degraded);
  ASSERT_EQ(got->scores.size(), 2u);
  EXPECT_DOUBLE_EQ(got->scores[0], 2.75);
  EXPECT_TRUE(std::isinf(got->scores[1]));  // unservable: +inf is legal
}

TEST(WireMessagesTest, UnplacedResultRoundTripsChosenMinusOne) {
  PlacementResult result;
  result.chosen = -1;
  result.responses = {MakeResponse()};
  result.responses[0].status = EstimateStatus::kNoModel;
  result.total_seconds = {std::numeric_limits<double>::infinity()};
  result.distributions = {core::CostDistribution{}};
  result.scores = {std::numeric_limits<double>::infinity()};
  auto got = DecodePlacementResponsePayload(EncodePlacementResponse(result));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->chosen, -1);
  EXPECT_EQ(got->responses[0].status, EstimateStatus::kNoModel);
}

TEST(WireMessagesTest, ErrorBodyRoundTrips) {
  auto got = DecodeErrorBodyPayload(
      EncodeErrorBody({WireError::kOverloaded, "shed: 256 in flight"}));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code, WireError::kOverloaded);
  EXPECT_EQ(got->message, "shed: 256 in flight");
}

TEST(WireMessagesTest, ErrorFrameEchoesRequestId) {
  const auto bytes = EncodeErrorFrame(77, WireError::kShuttingDown, "bye");
  FrameAssembler a;
  ASSERT_TRUE(a.Feed(bytes.data(), bytes.size()));
  auto frame = a.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kError));
  EXPECT_EQ(frame->request_id, 77u);
  auto body = DecodeErrorBodyPayload(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kShuttingDown);
}

// ---- Generation extension + feedback reports --------------------------------

runtime::FeedbackReport MakeReport() {
  runtime::FeedbackReport report;
  report.site = "site2";
  report.class_id = core::QueryClassId::kJoinNoIndex;
  report.features = {4.0, 2.0, 1.5};
  report.actual_cost = 0.375;
  report.probing_cost = 1.25;
  report.model_generation = 9;
  return report;
}

TEST(WireGenerationTest, SingleResponseCarriesGeneration) {
  EstimateResponse resp = MakeResponse();
  resp.model_generation = 42;
  auto got = DecodeEstimateResponsePayload(EncodeEstimateResponsePayload(resp));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->model_generation, 42u);
}

TEST(WireGenerationTest, LegacyResponseWithoutExtensionDecodesToGenerationZero) {
  // A pre-extension peer encodes only the base response body.
  EstimateResponse resp = MakeResponse();
  resp.model_generation = 42;  // must NOT survive the legacy encoding
  WireWriter w;
  EncodeEstimateResponse(resp, w);
  auto got = DecodeEstimateResponsePayload(w.bytes());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->model_generation, 0u);
}

TEST(WireGenerationTest, BatchResponsesCarryPerItemGenerations) {
  std::vector<EstimateResponse> responses(3, MakeResponse());
  responses[0].model_generation = 1;
  responses[1].model_generation = 0;
  responses[2].model_generation = 7;
  auto got = DecodeEstimateBatchResponsePayload(
      EncodeEstimateBatchResponse(responses));
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), 3u);
  EXPECT_EQ((*got)[0].model_generation, 1u);
  EXPECT_EQ((*got)[1].model_generation, 0u);
  EXPECT_EQ((*got)[2].model_generation, 7u);
}

TEST(WireGenerationTest, PartialBatchGenerationExtensionFailsClosed) {
  std::vector<EstimateResponse> responses(3, MakeResponse());
  auto bytes = EncodeEstimateBatchResponse(responses);
  // Drop one u64 from the generation extension: neither a legacy frame
  // (extension absent) nor a complete one.
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(DecodeEstimateBatchResponsePayload(bytes).has_value());
}

TEST(WireGenerationTest, PlacementResponsesCarryGenerations) {
  PlacementResult result;
  result.chosen = 0;
  result.responses = {MakeResponse(), MakeResponse()};
  result.responses[0].model_generation = 3;
  result.responses[1].model_generation = 11;
  result.total_seconds = {1.0, 2.0};
  auto got = DecodePlacementResponsePayload(EncodePlacementResponse(result));
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->responses.size(), 2u);
  EXPECT_EQ(got->responses[0].model_generation, 3u);
  EXPECT_EQ(got->responses[1].model_generation, 11u);
}

TEST(WireMessagesTest, ReportActualRoundTrips) {
  const runtime::FeedbackReport report = MakeReport();
  WireError error = WireError::kNone;
  auto got = DecodeReportActualPayload(EncodeReportActual(report), &error);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  EXPECT_EQ(got->site, report.site);
  EXPECT_EQ(got->class_id, report.class_id);
  EXPECT_EQ(got->features, report.features);
  EXPECT_DOUBLE_EQ(got->actual_cost, report.actual_cost);
  EXPECT_DOUBLE_EQ(got->probing_cost, report.probing_cost);
  EXPECT_EQ(got->model_generation, report.model_generation);
}

TEST(WireMessagesTest, ReportActualNegativeProbingSentinelSurvives) {
  runtime::FeedbackReport report = MakeReport();
  report.probing_cost = -1.0;  // resolve from the site's cached probe
  auto got = DecodeReportActualPayload(EncodeReportActual(report), nullptr);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->probing_cost, -1.0);
}

TEST(WireMessagesTest, ReportActualAckRoundTrips) {
  EXPECT_EQ(DecodeReportActualAckPayload(EncodeReportActualAck(true)), true);
  EXPECT_EQ(DecodeReportActualAckPayload(EncodeReportActualAck(false)), false);
  EXPECT_FALSE(DecodeReportActualAckPayload({0x02}).has_value());
  EXPECT_FALSE(DecodeReportActualAckPayload({}).has_value());
  EXPECT_FALSE(DecodeReportActualAckPayload({0x01, 0x00}).has_value());
}

TEST(WireValidationTest, ReportActualSemanticViolationsAreInvalidRequest) {
  const auto expect_invalid = [](runtime::FeedbackReport report) {
    WireError error = WireError::kNone;
    EXPECT_FALSE(
        DecodeReportActualPayload(EncodeReportActual(report), &error)
            .has_value());
    EXPECT_EQ(error, WireError::kInvalidRequest);
  };
  {
    runtime::FeedbackReport r = MakeReport();
    r.actual_cost = 0.0;  // feedback must be a priceable observation
    expect_invalid(r);
  }
  {
    runtime::FeedbackReport r = MakeReport();
    r.actual_cost = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(r);
  }
  {
    runtime::FeedbackReport r = MakeReport();
    r.probing_cost = std::numeric_limits<double>::infinity();
    expect_invalid(r);
  }
  {
    runtime::FeedbackReport r = MakeReport();
    r.features[1] = std::numeric_limits<double>::infinity();
    expect_invalid(r);
  }
  {
    runtime::FeedbackReport r = MakeReport();
    r.site.clear();
    expect_invalid(r);
  }
}

TEST(WireValidationTest, ReportActualTruncationAndTrailingAreMalformed) {
  auto bytes = EncodeReportActual(MakeReport());
  WireError error = WireError::kNone;
  auto truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(DecodeReportActualPayload(truncated, &error).has_value());
  EXPECT_EQ(error, WireError::kMalformedFrame);

  error = WireError::kNone;
  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_FALSE(DecodeReportActualPayload(trailing, &error).has_value());
  EXPECT_EQ(error, WireError::kMalformedFrame);
}

// ---- Semantic boundary rejection -------------------------------------------

TEST(WireValidationTest, NonFiniteFeatureIsInvalidRequest) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    EstimateRequest req = MakeRequest();
    req.features[1] = bad;
    WireWriter w;
    EncodeEstimateRequest(req, w);
    WireError error = WireError::kNone;
    EXPECT_FALSE(DecodeEstimateRequestPayload(w.bytes(), &error).has_value());
    EXPECT_EQ(error, WireError::kInvalidRequest);
  }
}

TEST(WireValidationTest, NonFiniteProbingCostIsInvalidRequest) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    EstimateRequest req = MakeRequest();
    req.probing_cost = bad;
    WireWriter w;
    EncodeEstimateRequest(req, w);
    WireError error = WireError::kNone;
    EXPECT_FALSE(DecodeEstimateRequestPayload(w.bytes(), &error).has_value());
    EXPECT_EQ(error, WireError::kInvalidRequest);
  }
}

TEST(WireValidationTest, ClassIdPastEnumIsInvalidRequest) {
  EstimateRequest req = MakeRequest();
  WireWriter w;
  EncodeEstimateRequest(req, w);
  std::vector<uint8_t> payload = w.bytes();
  // The class byte follows the u16-prefixed site string.
  const size_t class_off = 2 + req.site.size();
  ASSERT_LT(class_off, payload.size());
  payload[class_off] = 250;
  WireError error = WireError::kNone;
  EXPECT_FALSE(DecodeEstimateRequestPayload(payload, &error).has_value());
  EXPECT_EQ(error, WireError::kInvalidRequest);
}

TEST(WireValidationTest, EmptyBatchIsInvalidRequest) {
  WireError error = WireError::kNone;
  EXPECT_FALSE(
      DecodeEstimateBatchRequestPayload(EncodeEstimateBatchRequest({}), &error)
          .has_value());
  EXPECT_EQ(error, WireError::kInvalidRequest);
}

TEST(WireValidationTest, EmptyPlacementIsInvalidRequest) {
  WireError error = WireError::kNone;
  EXPECT_FALSE(
      DecodePlacementRequestPayload(EncodePlacementRequest({}), &error)
          .has_value());
  EXPECT_EQ(error, WireError::kInvalidRequest);
}

// The placement-options extension is append-only: a frame ending at the
// legacy layout decodes with default options.
TEST(WireValidationTest, LegacyPlacementFramesDecodeToDefaultOptions) {
  std::vector<PlacementCandidate> candidates(2);
  for (int i = 0; i < 2; ++i) candidates[i].request = MakeRequest();
  std::vector<uint8_t> legacy = EncodePlacementRequest(candidates);
  legacy.resize(legacy.size() - 17);  // strip u8 policy + two f64 knobs

  WireError error = WireError::kNone;
  runtime::PlacementOptions options;
  options.ranking.policy = core::PlacementPolicy::kRiskAdjusted;  // sentinel
  auto got = DecodePlacementRequestPayload(legacy, &error, &options);
  ASSERT_TRUE(got.has_value()) << ToString(error);
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ(options.ranking.policy, core::PlacementPolicy::kPointEstimate);
  EXPECT_DOUBLE_EQ(options.ranking.risk_lambda,
                   core::PlacementRanking{}.risk_lambda);
}

TEST(WireValidationTest, BadPlacementExtensionFailsClosed) {
  std::vector<PlacementCandidate> candidates(1);
  candidates[0].request = MakeRequest();
  std::vector<uint8_t> legacy = EncodePlacementRequest(candidates);
  legacy.resize(legacy.size() - 17);

  const auto with_extension = [&legacy](uint8_t policy, double lambda,
                                        double band) {
    WireWriter w;
    w.PutU8(policy);
    w.PutF64(lambda);
    w.PutF64(band);
    std::vector<uint8_t> payload = legacy;
    payload.insert(payload.end(), w.bytes().begin(), w.bytes().end());
    return payload;
  };

  const struct {
    std::vector<uint8_t> payload;
    WireError want;
    const char* what;
  } cases[] = {
      {with_extension(7, 0.5, 0.1), WireError::kInvalidRequest,
       "unknown policy byte"},
      {with_extension(1, std::nan(""), 0.1), WireError::kInvalidRequest,
       "NaN risk lambda"},
      {with_extension(1, -0.5, 0.1), WireError::kInvalidRequest,
       "negative risk lambda"},
      {with_extension(2, 0.5, 1.5), WireError::kInvalidRequest,
       "band fraction above 1"},
  };
  for (const auto& c : cases) {
    WireError error = WireError::kNone;
    EXPECT_FALSE(
        DecodePlacementRequestPayload(c.payload, &error).has_value())
        << c.what;
    EXPECT_EQ(error, c.want) << c.what;
  }

  // Extension present but truncated: structural, not semantic.
  std::vector<uint8_t> cut = with_extension(1, 0.5, 0.1);
  cut.resize(cut.size() - 4);
  WireError error = WireError::kNone;
  EXPECT_FALSE(DecodePlacementRequestPayload(cut, &error).has_value());
  EXPECT_EQ(error, WireError::kMalformedFrame);
}

TEST(WireValidationTest, PlacementResponseRejectsInvertedInterval) {
  PlacementResult result;
  result.chosen = 0;
  result.responses = {MakeResponse()};
  result.total_seconds = {1.0};
  core::CostDistribution d;
  d.mean = 2.0;
  d.low = 3.0;  // low > high: no decoder should accept this
  d.high = 1.0;
  result.distributions = {d};
  result.scores = {1.0};
  EXPECT_FALSE(DecodePlacementResponsePayload(EncodePlacementResponse(result))
                   .has_value());
}

TEST(WireValidationTest, OversizedCountsAreInvalidRequest) {
  // A batch count past kMaxBatchItems must be rejected before any attempt
  // to reserve toward it.
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(kMaxBatchItems + 1));
  WireError error = WireError::kNone;
  EXPECT_FALSE(
      DecodeEstimateBatchRequestPayload(w.bytes(), &error).has_value());
  EXPECT_EQ(error, WireError::kInvalidRequest);

  WireWriter wf;
  wf.PutString("site0");
  wf.PutU8(0);
  wf.PutF64(1.0);
  wf.PutU32(static_cast<uint32_t>(kMaxFeatures + 1));
  error = WireError::kNone;
  EXPECT_FALSE(DecodeEstimateRequestPayload(wf.bytes(), &error).has_value());
  EXPECT_EQ(error, WireError::kInvalidRequest);
}

TEST(WireValidationTest, TruncationIsMalformedNotInvalid) {
  const EstimateRequest req = MakeRequest();
  WireWriter w;
  EncodeEstimateRequest(req, w);
  std::vector<uint8_t> payload = w.bytes();
  for (const size_t cut : {payload.size() - 1, payload.size() / 2, size_t{1}}) {
    const std::vector<uint8_t> truncated(payload.begin(),
                                         payload.begin() + cut);
    WireError error = WireError::kNone;
    EXPECT_FALSE(DecodeEstimateRequestPayload(truncated, &error).has_value());
    EXPECT_EQ(error, WireError::kMalformedFrame) << "cut at " << cut;
  }
}

TEST(WireValidationTest, TrailingBytesAreMalformed) {
  const EstimateRequest req = MakeRequest();
  WireWriter w;
  EncodeEstimateRequest(req, w);
  std::vector<uint8_t> payload = w.bytes();
  payload.push_back(0x00);
  WireError error = WireError::kNone;
  EXPECT_FALSE(DecodeEstimateRequestPayload(payload, &error).has_value());
  EXPECT_EQ(error, WireError::kMalformedFrame);
}

// ---- Stats codec ------------------------------------------------------------

runtime::RuntimeStatsSnapshot MakeFullSnapshot() {
  runtime::RuntimeStatsSnapshot snap;
  // Give every scalar field a distinct nonzero value through the wire-field
  // tables, so the round-trip check cannot pass on accidental zeros.
  uint64_t v = 1000;
  for (const auto& f : runtime::StatsCounterFields()) snap.*(f.field) = ++v;
  for (const auto& f : runtime::StatsGaugeFields()) {
    snap.*(f.field) = -static_cast<int64_t>(++v);
  }
  snap.estimate_latency.count = 99;
  snap.estimate_latency.mean_seconds = 0.001;
  snap.estimate_latency.p50_seconds = 0.0005;
  snap.estimate_latency.p90_seconds = 0.002;
  snap.estimate_latency.p99_seconds = 0.004;
  snap.estimate_latency.max_bucket_seconds = 0.008;
  snap.probe_latency.count = 17;
  snap.probe_latency.mean_seconds = 0.25;
  snap.probe_latency.p50_seconds = 0.125;
  snap.probe_latency.p90_seconds = 0.5;
  snap.probe_latency.p99_seconds = 1.0;
  snap.probe_latency.max_bucket_seconds = 2.0;
  return snap;
}

TEST(StatsCodecTest, RoundTripsEveryScalarField) {
  const runtime::RuntimeStatsSnapshot snap = MakeFullSnapshot();
  auto wire = DecodeStatsPayload(EncodeStats(snap));
  ASSERT_TRUE(wire.has_value());
  const runtime::RuntimeStatsSnapshot back = ToSnapshot(*wire);

  for (const auto& f : runtime::StatsCounterFields()) {
    EXPECT_EQ(back.*(f.field), snap.*(f.field)) << f.name;
  }
  for (const auto& f : runtime::StatsGaugeFields()) {
    EXPECT_EQ(back.*(f.field), snap.*(f.field)) << f.name;
  }
  for (const auto& f : runtime::StatsHistogramFields()) {
    const auto& orig = snap.*(f.field);
    const auto& got = back.*(f.field);
    EXPECT_EQ(got.count, orig.count) << f.name;
    EXPECT_DOUBLE_EQ(got.mean_seconds, orig.mean_seconds) << f.name;
    EXPECT_DOUBLE_EQ(got.p50_seconds, orig.p50_seconds) << f.name;
    EXPECT_DOUBLE_EQ(got.p90_seconds, orig.p90_seconds) << f.name;
    EXPECT_DOUBLE_EQ(got.p99_seconds, orig.p99_seconds) << f.name;
    EXPECT_DOUBLE_EQ(got.max_bucket_seconds, orig.max_bucket_seconds)
        << f.name;
  }
}

TEST(StatsCodecTest, ExtraCountersDecodeLikeAnyOther) {
  runtime::RuntimeStatsSnapshot snap;
  snap.requests = 5;
  auto wire = DecodeStatsPayload(
      EncodeStats(snap, {{"net.frames_received", 123},
                         {"net.overload_shed", 9}}));
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->counters.at("net.frames_received"), 123u);
  EXPECT_EQ(wire->counters.at("net.overload_shed"), 9u);
  EXPECT_EQ(wire->counters.at("requests"), 5u);
}

TEST(StatsCodecTest, UnknownKeysArePreservedNotFatal) {
  // Simulates a *newer* server: append an extra entry to a valid payload
  // and bump the count — an old client must still decode.
  runtime::RuntimeStatsSnapshot snap;
  std::vector<uint8_t> payload = EncodeStats(snap);
  WireWriter extra;
  extra.PutString("counter_from_the_future");
  extra.PutU8(0);  // u64 tag
  extra.PutU64(42);
  payload.insert(payload.end(), extra.bytes().begin(), extra.bytes().end());
  uint32_t count;
  std::memcpy(&count, payload.data(), sizeof(count));
  ++count;
  std::memcpy(payload.data(), &count, sizeof(count));

  auto wire = DecodeStatsPayload(payload);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->counters.at("counter_from_the_future"), 42u);
  // ...and ToSnapshot simply ignores it.
  (void)ToSnapshot(*wire);
}

TEST(StatsCodecTest, StructuralViolationsAreRejected) {
  runtime::RuntimeStatsSnapshot snap;
  const std::vector<uint8_t> payload = EncodeStats(snap);

  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t cut = 0; cut < payload.size(); cut += 7) {
    const std::vector<uint8_t> truncated(payload.begin(),
                                         payload.begin() + cut);
    EXPECT_FALSE(DecodeStatsPayload(truncated).has_value()) << cut;
  }

  // Trailing garbage.
  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0xFF);
  EXPECT_FALSE(DecodeStatsPayload(trailing).has_value());

  // Entry count past the cap.
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(kMaxStatsEntries + 1));
  EXPECT_FALSE(DecodeStatsPayload(w.bytes()).has_value());
}

// ---- Fuzzing ----------------------------------------------------------------

// Random bytes must never crash, over-read, or loop: either frames come out
// or the stream breaks. (ASan/TSan make violations fatal in tier 2.)
TEST(WireFuzzTest, RandomBytesIntoAssembler) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    FrameAssembler a;
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 4096));
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    // Feed in random-size chunks.
    size_t off = 0;
    while (off < bytes.size() && !a.broken()) {
      const size_t chunk = static_cast<size_t>(
          rng.UniformInt(1, 64));
      const size_t take = std::min(chunk, bytes.size() - off);
      a.Feed(bytes.data() + off, take);
      off += take;
      while (a.Next().has_value()) {
      }
    }
  }
}

// Valid frames with random single-byte mutations: decoders must fail closed
// or produce a (possibly different) valid message — never crash.
TEST(WireFuzzTest, MutatedValidFramesNeverCrashDecoders) {
  Rng rng(777);
  const EstimateRequest req = MakeRequest();
  WireWriter w;
  EncodeEstimateRequest(req, w);
  const std::vector<uint8_t> base_payload = w.bytes();
  const std::vector<uint8_t> base_frame =
      EncodeFrame(MessageType::kEstimateRequest, 1, base_payload);

  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> frame = base_frame;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, frame.size() - 1));
      frame[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    FrameAssembler a;
    a.Feed(frame.data(), frame.size());
    while (auto f = a.Next()) {
      WireError error = WireError::kNone;
      (void)DecodeEstimateRequestPayload(f->payload, &error);
      (void)DecodeEstimateBatchRequestPayload(f->payload, &error);
      (void)DecodePlacementRequestPayload(f->payload, &error);
      (void)DecodeEstimateResponsePayload(f->payload);
      (void)DecodeReportActualPayload(f->payload, &error);
      (void)DecodeReportActualAckPayload(f->payload);
      (void)DecodeErrorBodyPayload(f->payload);
      (void)DecodeStatsPayload(f->payload);
    }
  }
}

// Random truncations of every message type's valid payload.
TEST(WireFuzzTest, TruncatedPayloadsFailClosed) {
  Rng rng(4242);
  std::vector<std::vector<uint8_t>> payloads;
  {
    WireWriter w;
    EncodeEstimateRequest(MakeRequest(), w);
    payloads.push_back(w.bytes());
  }
  {
    WireWriter w;
    EncodeEstimateResponse(MakeResponse(), w);
    payloads.push_back(w.bytes());
  }
  payloads.push_back(
      EncodeEstimateBatchRequest({MakeRequest(), MakeRequest()}));
  payloads.push_back(
      EncodeEstimateBatchResponse({MakeResponse(), MakeResponse()}));
  {
    PlacementCandidate c;
    c.request = MakeRequest();
    c.shipping_seconds = 1.0;
    payloads.push_back(EncodePlacementRequest({c, c}));
    // Non-default ranking exercises truncation points inside the
    // append-only options extension.
    runtime::PlacementOptions options;
    options.ranking.policy = core::PlacementPolicy::kRiskAdjusted;
    options.ranking.risk_lambda = 2.0;
    payloads.push_back(EncodePlacementRequest({c, c}, options));
  }
  {
    PlacementResult result;
    result.chosen = 0;
    result.responses = {MakeResponse()};
    result.total_seconds = {1.0};
    core::CostDistribution d;
    d.mean = 2.0;
    d.low = 1.0;
    d.high = 3.0;
    d.has_interval = true;
    result.distributions = {d};
    result.scores = {2.0};
    result.policy = core::PlacementPolicy::kExpectedCost;
    payloads.push_back(EncodePlacementResponse(result));
  }
  payloads.push_back(EncodeReportActual(MakeReport()));
  payloads.push_back(EncodeReportActualAck(true));
  payloads.push_back(EncodeErrorBody({WireError::kInternal, "boom"}));
  payloads.push_back(EncodeStats(runtime::RuntimeStatsSnapshot{}));

  for (const auto& payload : payloads) {
    for (int trial = 0; trial < 64; ++trial) {
      const size_t cut = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(payload.size())));
      if (cut == payload.size()) continue;
      const std::vector<uint8_t> truncated(payload.begin(),
                                           payload.begin() + cut);
      WireError error = WireError::kNone;
      (void)DecodeEstimateRequestPayload(truncated, &error);
      (void)DecodeEstimateBatchRequestPayload(truncated, &error);
      (void)DecodePlacementRequestPayload(truncated, &error);
      (void)DecodeEstimateResponsePayload(truncated);
      (void)DecodeEstimateBatchResponsePayload(truncated);
      (void)DecodePlacementResponsePayload(truncated);
      (void)DecodeReportActualPayload(truncated, &error);
      (void)DecodeReportActualAckPayload(truncated);
      (void)DecodeErrorBodyPayload(truncated);
      (void)DecodeStatsPayload(truncated);
    }
  }
}

}  // namespace
}  // namespace mscm::net
