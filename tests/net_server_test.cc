// Loopback end-to-end tests for the estimation serving boundary: every
// message type over a real socket, wire-boundary validation mapping to typed
// error frames (never exceptions), admission-control shedding, and hostile
// byte streams (garbage, wrong version, unknown type).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explanatory.h"
#include "net/client.h"
#include "net/served_runtime.h"
#include "net/server.h"
#include "net/wire_format.h"

namespace mscm::net {
namespace {

using runtime::EstimateRequest;
using runtime::EstimateResponse;
using runtime::EstimateStatus;
using runtime::PlacementCandidate;
using runtime::PlacementResult;

ServedRuntimeConfig TestConfig() {
  ServedRuntimeConfig config;
  config.sites = 2;
  config.worker_threads = 2;
  config.refresh = false;  // keep tests focused on the wire
  config.probe_interval = std::chrono::milliseconds(0);  // no background probes
  return config;
}

EstimateRequest ValidRequest(const std::string& site = "site0") {
  EstimateRequest req;
  req.site = site;
  req.class_id = core::QueryClassId::kUnarySeqScan;
  const size_t n =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  req.features.assign(n, 2.0);
  req.probing_cost = 1.5;
  return req;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    served_ = std::make_unique<ServedRuntime>(TestConfig());
    std::string error;
    ASSERT_TRUE(served_->Start(&error)) << error;
    ASSERT_NE(served_->port(), 0);
  }

  std::unique_ptr<ServedRuntime> served_;
};

// A raw loopback socket for byte-level hostile-peer tests (the NetClient
// refuses to send malformed frames, so we go under it).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
    timeval tv{5, 0};
    if (connected_) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendAll(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until one frame assembles, the peer closes (empty payload,
  // eof=true), or the receive deadline hits.
  std::optional<Frame> ReadFrame(bool* eof = nullptr) {
    if (eof != nullptr) *eof = false;
    FrameAssembler a;
    uint8_t buf[512];
    while (true) {
      if (auto frame = a.Next()) return frame;
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) {
        if (eof != nullptr) *eof = true;
        return std::nullopt;
      }
      if (n < 0) return std::nullopt;
      if (!a.Feed(buf, static_cast<size_t>(n))) return std::nullopt;
    }
  }

  // True if the server closes the connection (within the recv deadline).
  bool WaitForClose() {
    uint8_t buf[512];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// ---- Happy paths ------------------------------------------------------------

TEST_F(NetServerTest, EstimateOverLoopback) {
  NetClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port(), &error)) << error;

  EstimateResponse resp;
  const RpcStatus status = client.Estimate(ValidRequest(), &resp);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(resp.status, EstimateStatus::kOk);
  EXPECT_GT(resp.estimate_seconds, 0.0);
  EXPECT_GE(resp.state, 0);
}

TEST_F(NetServerTest, WireEstimateMatchesInProcessEstimate) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  const EstimateRequest req = ValidRequest();
  EstimateResponse over_wire;
  ASSERT_TRUE(client.Estimate(req, &over_wire).ok());
  const EstimateResponse in_process = served_->service().Estimate(req);
  EXPECT_EQ(over_wire.status, in_process.status);
  EXPECT_DOUBLE_EQ(over_wire.estimate_seconds, in_process.estimate_seconds);
  EXPECT_EQ(over_wire.state, in_process.state);
}

TEST_F(NetServerTest, BatchOverLoopback) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  std::vector<EstimateRequest> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(ValidRequest(i % 2 == 0 ? "site0" : "site1"));
    requests.back().features[0] = 1.0 + i;
  }
  std::vector<EstimateResponse> responses;
  const RpcStatus status = client.EstimateBatch(requests, &responses);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(responses.size(), requests.size());
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.status, EstimateStatus::kOk);
  }
}

TEST_F(NetServerTest, PlacementOverLoopback) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  std::vector<PlacementCandidate> candidates(2);
  candidates[0].request = ValidRequest("site0");
  candidates[0].shipping_seconds = 100.0;  // make site1 the clear winner
  candidates[1].request = ValidRequest("site1");
  candidates[1].shipping_seconds = 0.0;
  PlacementResult result;
  const RpcStatus status = client.ChoosePlacement(candidates, &result);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(result.chosen, 1);
  ASSERT_EQ(result.responses.size(), 2u);
  ASSERT_EQ(result.total_seconds.size(), 2u);
  // The default-policy response still carries the served distributions.
  EXPECT_EQ(result.policy, core::PlacementPolicy::kPointEstimate);
  ASSERT_EQ(result.distributions.size(), 2u);
  ASSERT_EQ(result.scores.size(), 2u);
}

TEST_F(NetServerTest, PlacementWithRankingPolicyOverLoopback) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  std::vector<PlacementCandidate> candidates(2);
  candidates[0].request = ValidRequest("site0");
  candidates[0].shipping_seconds = 100.0;
  candidates[1].request = ValidRequest("site1");
  candidates[1].shipping_seconds = 0.0;

  runtime::PlacementOptions options;
  options.ranking.policy = core::PlacementPolicy::kRiskAdjusted;
  options.ranking.risk_lambda = 1.0;
  PlacementResult result;
  const RpcStatus status = client.ChoosePlacement(candidates, options, &result);
  ASSERT_TRUE(status.ok()) << status.message;
  // The shipping gap dwarfs any width penalty: site1 wins under every policy,
  // and the response echoes the requested policy with finite scores.
  EXPECT_EQ(result.chosen, 1);
  EXPECT_EQ(result.policy, core::PlacementPolicy::kRiskAdjusted);
  ASSERT_EQ(result.scores.size(), 2u);
  EXPECT_LT(result.scores[1], result.scores[0]);
  ASSERT_EQ(result.distributions.size(), 2u);
  EXPECT_GT(result.distributions[1].mean, 0.0);
}

TEST_F(NetServerTest, StatsOverLoopback) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  EstimateResponse resp;
  ASSERT_TRUE(client.Estimate(ValidRequest(), &resp).ok());

  WireStats stats;
  const RpcStatus status = client.Stats(&stats);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_GE(stats.counters.at("requests"), 1u);
  // The server merges its own wire counters into the same payload.
  EXPECT_GE(stats.counters.at("net.frames_received"), 1u);
  EXPECT_GE(stats.counters.at("net.responses_sent"), 1u);
}

TEST_F(NetServerTest, FeedbackOverLoopbackAdaptsTheServedModel) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  const EstimateRequest req = ValidRequest();
  EstimateResponse before;
  ASSERT_TRUE(client.Estimate(req, &before).ok());
  ASSERT_EQ(before.status, EstimateStatus::kOk);
  EXPECT_EQ(before.model_generation, 0u);  // base fit, never adapted

  // The environment now costs 3x what the served model believes. Close the
  // loop over the wire until the fast tier publishes an adapted row.
  const double truth = 3.0 * before.estimate_seconds;
  runtime::FeedbackReport report;
  report.site = req.site;
  report.class_id = req.class_id;
  report.features = req.features;
  report.actual_cost = truth;
  report.probing_cost = before.probing_cost;
  report.model_generation = before.model_generation;

  EstimateResponse after = before;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         after.model_generation == 0) {
    for (int i = 0; i < 16; ++i) {
      bool accepted = false;
      const RpcStatus status = client.ReportActual(report, &accepted);
      ASSERT_TRUE(status.ok()) << status.message;
      EXPECT_TRUE(accepted);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_TRUE(client.Estimate(req, &after).ok());
  }
  ASSERT_GE(after.model_generation, 1u) << "no adapted publish before deadline";
  // The adapted estimate moved toward the reported truth.
  EXPECT_LT(std::abs(after.estimate_seconds - truth),
            std::abs(before.estimate_seconds - truth));

  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_GE(stats.counters.at("net.feedback_reports"), 16u);
  EXPECT_GE(stats.counters.at("adaptations_applied"), 1u);
}

TEST_F(NetServerTest, InvalidFeedbackGetsInvalidRequestErrorFrame) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  runtime::FeedbackReport report;
  report.site = "site0";
  report.class_id = core::QueryClassId::kUnarySeqScan;
  report.features = {1.0};
  report.actual_cost = 0.0;  // not a priceable observation
  bool accepted = true;
  const RpcStatus status = client.ReportActual(report, &accepted);
  EXPECT_EQ(status.code, RpcStatus::Code::kErrorFrame);
  EXPECT_EQ(status.wire_error, WireError::kInvalidRequest);

  // The connection survives a rejected report.
  EstimateResponse resp;
  EXPECT_TRUE(client.Estimate(ValidRequest(), &resp).ok());
}

TEST(NetServerFeedbackTest, NoHandlerAcksAcceptedFalse) {
  ServedRuntimeConfig config = TestConfig();
  config.adaptation = false;  // serving without an adaptation loop
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served.port()));
  runtime::FeedbackReport report;
  report.site = "site0";
  report.class_id = core::QueryClassId::kUnarySeqScan;
  report.features = {1.0, 2.0};
  report.actual_cost = 0.5;
  bool accepted = true;
  const RpcStatus status = client.ReportActual(report, &accepted);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_FALSE(accepted);  // decoded and counted, but nothing consumed it
  EXPECT_GE(served.server().Stats().feedback_reports, 1u);
}

TEST_F(NetServerTest, BatchResponsesCarryGenerationOverWire) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));
  std::vector<EstimateRequest> batch = {ValidRequest("site0"),
                                        ValidRequest("site1")};
  std::vector<EstimateResponse> responses;
  ASSERT_TRUE(client.EstimateBatch(batch, &responses).ok());
  ASSERT_EQ(responses.size(), 2u);
  for (const EstimateResponse& r : responses) {
    EXPECT_EQ(r.status, EstimateStatus::kOk);
    EXPECT_EQ(r.model_generation, 0u);  // base fit on both sites
  }
}

TEST_F(NetServerTest, PipelinedRequestsOnOneConnection) {
  // Several sequential RPCs on one socket: request-id echo keeps them
  // matched, and the connection survives all of them.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));
  for (int i = 0; i < 32; ++i) {
    EstimateRequest req = ValidRequest(i % 2 == 0 ? "site0" : "site1");
    req.features[0] = 1.0 + (i % 7);
    EstimateResponse resp;
    ASSERT_TRUE(client.Estimate(req, &resp).ok()) << "iteration " << i;
    EXPECT_EQ(resp.status, EstimateStatus::kOk);
  }
}

TEST_F(NetServerTest, ManyConcurrentConnections) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, &failures] {
      NetClient client;
      if (!client.Connect("127.0.0.1", served_->port())) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 20; ++i) {
        EstimateResponse resp;
        if (!client.Estimate(ValidRequest(), &resp).ok() || !resp.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Wire-boundary validation ----------------------------------------------

TEST_F(NetServerTest, UnknownSiteIsANormalNoModelResponse) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  EstimateResponse resp;
  const RpcStatus status = client.Estimate(ValidRequest("no-such-site"), &resp);
  ASSERT_TRUE(status.ok()) << status.message;  // not an error frame
  EXPECT_EQ(resp.status, EstimateStatus::kNoModel);
}

TEST_F(NetServerTest, NanFeatureGetsInvalidRequestErrorFrame) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  EstimateRequest req = ValidRequest();
  req.features[0] = std::numeric_limits<double>::quiet_NaN();
  EstimateResponse resp;
  const RpcStatus status = client.Estimate(req, &resp);
  EXPECT_EQ(status.code, RpcStatus::Code::kErrorFrame);
  EXPECT_EQ(status.wire_error, WireError::kInvalidRequest);

  // The connection stays usable after a semantic reject.
  EstimateResponse ok_resp;
  EXPECT_TRUE(client.Estimate(ValidRequest(), &ok_resp).ok());
}

TEST_F(NetServerTest, EmptyBatchGetsInvalidRequestErrorFrame) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  // The client encodes the empty batch; the server's boundary rejects it.
  Frame frame;
  const RpcStatus status = client.RoundTrip(MessageType::kEstimateBatchRequest,
                                            EncodeEstimateBatchRequest({}),
                                            &frame);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(frame.type, static_cast<uint8_t>(MessageType::kError));
  auto body = DecodeErrorBodyPayload(frame.payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kInvalidRequest);
}

TEST_F(NetServerTest, TruncatedPayloadGetsInvalidOrMalformedNeverCrash) {
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served_->port()));

  WireWriter w;
  EncodeEstimateRequest(ValidRequest(), w);
  std::vector<uint8_t> payload = w.bytes();
  payload.resize(payload.size() / 2);  // frame is valid; payload is not

  Frame frame;
  const RpcStatus status =
      client.RoundTrip(MessageType::kEstimateRequest, payload, &frame);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(frame.type, static_cast<uint8_t>(MessageType::kError));
  auto body = DecodeErrorBodyPayload(frame.payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kMalformedFrame);
}

TEST_F(NetServerTest, UnknownMessageTypeIsAnsweredAndKeptOpen) {
  RawConn conn(served_->port());
  ASSERT_TRUE(conn.connected());

  WireWriter header;
  header.PutU16(kMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(200);  // not a MessageType
  header.PutU32(31);  // request id
  header.PutU32(0);   // empty payload
  ASSERT_TRUE(conn.SendAll(header.bytes()));

  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kError));
  EXPECT_EQ(frame->request_id, 31u);
  auto body = DecodeErrorBodyPayload(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kUnknownType);

  // Unknown type is not poisonous — a valid request on the same socket works.
  WireWriter w;
  EncodeEstimateRequest(ValidRequest(), w);
  ASSERT_TRUE(
      conn.SendAll(EncodeFrame(MessageType::kEstimateRequest, 32, w.bytes())));
  auto ok_frame = conn.ReadFrame();
  ASSERT_TRUE(ok_frame.has_value());
  EXPECT_EQ(ok_frame->type,
            static_cast<uint8_t>(MessageType::kEstimateResponse));
}

TEST_F(NetServerTest, GarbageBytesGetMalformedFrameThenClose) {
  RawConn conn(served_->port());
  ASSERT_TRUE(conn.connected());

  std::vector<uint8_t> garbage(64);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(0xC7 ^ i);
  }
  ASSERT_TRUE(conn.SendAll(garbage));

  bool eof = false;
  auto frame = conn.ReadFrame(&eof);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(MessageType::kError));
  auto body = DecodeErrorBodyPayload(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kMalformedFrame);
  EXPECT_TRUE(conn.WaitForClose());

  EXPECT_GE(served_->server().Stats().malformed_frames, 1u);
}

TEST_F(NetServerTest, WrongVersionGetsUnsupportedVersionThenClose) {
  RawConn conn(served_->port());
  ASSERT_TRUE(conn.connected());

  std::vector<uint8_t> bytes = EncodeFrame(MessageType::kStatsRequest, 5, {});
  bytes[2] = kProtocolVersion + 3;
  ASSERT_TRUE(conn.SendAll(bytes));

  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  auto body = DecodeErrorBodyPayload(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kUnsupportedVersion);
  EXPECT_TRUE(conn.WaitForClose());
}

TEST_F(NetServerTest, HostilePayloadLengthClosesWithoutBuffering) {
  RawConn conn(served_->port());
  ASSERT_TRUE(conn.connected());

  WireWriter header;
  header.PutU16(kMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(static_cast<uint8_t>(MessageType::kEstimateRequest));
  header.PutU32(1);
  header.PutU32(0xFFFFFFFFu);  // 4GB payload promise
  ASSERT_TRUE(conn.SendAll(header.bytes()));

  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  auto body = DecodeErrorBodyPayload(frame->payload);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->code, WireError::kMalformedFrame);
  EXPECT_TRUE(conn.WaitForClose());
}

// ---- Admission control ------------------------------------------------------

TEST(NetServerAdmissionTest, ZeroInflightShedsEverythingButStaysUp) {
  ServedRuntimeConfig config = TestConfig();
  config.server.max_inflight = 0;  // shed every request
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served.port()));
  for (int i = 0; i < 5; ++i) {
    EstimateResponse resp;
    const RpcStatus status = client.Estimate(ValidRequest(), &resp);
    EXPECT_EQ(status.code, RpcStatus::Code::kErrorFrame) << i;
    EXPECT_TRUE(status.overloaded()) << i;
  }
  // The server is shedding, not dying: still running, still accepting.
  EXPECT_TRUE(served.server().running());
  NetClient second;
  EXPECT_TRUE(second.Connect("127.0.0.1", served.port()));
  EXPECT_GE(served.server().Stats().overload_shed, 5u);
  EXPECT_EQ(served.server().Stats().requests_dispatched, 0u);
}

TEST(NetServerAdmissionTest, ConnectionCapRejectsExtraSockets) {
  ServedRuntimeConfig config = TestConfig();
  config.server.max_connections = 2;
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  NetClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", served.port()));
  ASSERT_TRUE(b.Connect("127.0.0.1", served.port()));
  EstimateResponse resp;
  ASSERT_TRUE(a.Estimate(ValidRequest(), &resp).ok());
  ASSERT_TRUE(b.Estimate(ValidRequest(), &resp).ok());

  // The third connection is accepted at the TCP level then closed by the
  // server; the first RPC on it fails rather than hanging.
  NetClient c;
  if (c.Connect("127.0.0.1", served.port())) {
    EstimateResponse r;
    EXPECT_FALSE(c.Estimate(ValidRequest(), &r).ok());
  }
  // The first two stay healthy.
  EXPECT_TRUE(a.Estimate(ValidRequest(), &resp).ok());
}

TEST(NetServerAdmissionTest, ReadLimitDisconnectsGarbageStreamers) {
  ServedRuntimeConfig config = TestConfig();
  config.server.max_read_buffer = 4096;
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  RawConn conn(served.port());
  ASSERT_TRUE(conn.connected());
  // A single giant unfinished frame: valid header promising near-cap
  // payload, then bytes that never complete it past the read limit.
  WireWriter header;
  header.PutU16(kMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(static_cast<uint8_t>(MessageType::kEstimateRequest));
  header.PutU32(1);
  header.PutU32(512 * 1024);
  std::vector<uint8_t> bytes = header.bytes();
  bytes.resize(64 * 1024, 0x55);
  (void)conn.SendAll(bytes);  // may fail partway once the server closes us
  EXPECT_TRUE(conn.WaitForClose());
  EXPECT_GE(served.server().Stats().read_limit_closes, 1u);
  EXPECT_TRUE(served.server().running());
}

}  // namespace
}  // namespace mscm::net
