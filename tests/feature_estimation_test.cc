// Planning-time feature estimation vs executed ground truth.

#include <cmath>

#include <gtest/gtest.h>

#include "core/agent_source.h"
#include "core/explanatory.h"
#include "core/model_builder.h"
#include "core/sampling.h"
#include "core/validation.h"
#include "engine/executor.h"
#include "mdbs/local_dbs.h"
#include "stats/correlation.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

class FeatureEstimationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>(
        test::TinyDatabase(/*seed=*/41, /*num_tables=*/6, /*scale=*/0.05));
    executor_ = std::make_unique<engine::Executor>(db_.get());
  }
  engine::PlannerRules rules_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Executor> executor_;
};

TEST_F(FeatureEstimationTest, UnaryVectorShapeMatchesVariableSet) {
  QuerySampler sampler(db_.get(), rules_, 1);
  const engine::SelectQuery q =
      sampler.SampleSelect(QueryClassId::kUnarySeqScan);
  const std::vector<double> est = EstimateUnaryFeatures(*db_, q, rules_);
  EXPECT_EQ(est.size(),
            VariableSet::ForClass(QueryClassId::kUnarySeqScan).size());
}

TEST_F(FeatureEstimationTest, ExactFeaturesMatchExactly) {
  // Cardinality of the operand table and tuple lengths are catalog facts —
  // the estimate must equal the executed value for those components.
  QuerySampler sampler(db_.get(), rules_, 2);
  for (int i = 0; i < 20; ++i) {
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnarySeqScan);
    const std::vector<double> est = EstimateUnaryFeatures(*db_, q, rules_);
    const engine::SelectExecution exec = executor_->ExecuteSelect(
        q, engine::ChooseSelectPlan(*db_, q, rules_));
    const std::vector<double> actual = ExtractUnaryFeatures(exec);
    EXPECT_DOUBLE_EQ(est[0], actual[0]);  // N_t
    EXPECT_DOUBLE_EQ(est[3], actual[3]);  // TL_t
    EXPECT_DOUBLE_EQ(est[4], actual[4]);  // TL_rt
  }
}

TEST_F(FeatureEstimationTest, EstimatedResultSizesTrackActuals) {
  QuerySampler sampler(db_.get(), rules_, 3);
  std::vector<double> est_rt;
  std::vector<double> act_rt;
  for (int i = 0; i < 50; ++i) {
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnarySeqScan);
    est_rt.push_back(EstimateUnaryFeatures(*db_, q, rules_)[2]);
    const engine::SelectExecution exec = executor_->ExecuteSelect(
        q, engine::ChooseSelectPlan(*db_, q, rules_));
    act_rt.push_back(ExtractUnaryFeatures(exec)[2]);
  }
  EXPECT_GT(stats::PearsonCorrelation(est_rt, act_rt), 0.95);
}

TEST_F(FeatureEstimationTest, IndexScanIntermediateUsesDrivingCondition) {
  QuerySampler sampler(db_.get(), rules_, 4);
  for (int i = 0; i < 20; ++i) {
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnaryNonClusteredIndex);
    const std::vector<double> est = EstimateUnaryFeatures(*db_, q, rules_);
    // For an index scan the estimated intermediate must be well below the
    // operand cardinality (the driving condition is selective by class
    // construction).
    EXPECT_LT(est[1], est[0] * 0.2);
    EXPECT_GE(est[1] * 1.0001, est[2]);  // result <= intermediate
  }
}

TEST_F(FeatureEstimationTest, JoinEstimatesTrackActuals) {
  QuerySampler sampler(db_.get(), rules_, 5);
  std::vector<double> est_rt;
  std::vector<double> act_rt;
  for (int i = 0; i < 40; ++i) {
    const engine::JoinQuery q = sampler.SampleJoin(QueryClassId::kJoinNoIndex);
    est_rt.push_back(EstimateJoinFeatures(*db_, q, rules_)[4]);
    const engine::JoinExecution exec = executor_->ExecuteJoin(
        q, engine::ChooseJoinPlan(*db_, q, rules_));
    act_rt.push_back(ExtractJoinFeatures(exec)[4]);
  }
  EXPECT_GT(stats::PearsonCorrelation(est_rt, act_rt), 0.8);  // small-count joins are noisy
  // And on average the ratio is near 1 (unbiased under uniformity).
  double ratio_sum = 0.0;
  int counted = 0;
  for (size_t i = 0; i < est_rt.size(); ++i) {
    if (act_rt[i] > 1e-6) {
      ratio_sum += est_rt[i] / act_rt[i];
      ++counted;
    }
  }
  ASSERT_GT(counted, 20);
  EXPECT_NEAR(ratio_sum / counted, 1.0, 0.3);
}

TEST_F(FeatureEstimationTest, ModelFedEstimatedFeaturesStillEstimatesWell) {
  // End-to-end planning realism: train on executed features, estimate with
  // *planning-time* features. Accuracy drops a little but stays useful.
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 5;
  config.tables.scale = 0.2;
  config.load.min_processes = 15.0;
  config.load.max_processes = 100.0;
  config.seed = 43;
  mdbs::LocalDbs site(config);
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 44);
  ModelBuildOptions options;
  options.sample_size = 250;
  const BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, source, options);

  QuerySampler sampler(&site.database(), site.profile().planner, 45);
  int good = 0;
  constexpr int kTests = 60;
  for (int i = 0; i < kTests; ++i) {
    site.ResampleLoad();
    const double probe = site.RunProbingQuery();
    const engine::SelectQuery q =
        sampler.SampleSelect(QueryClassId::kUnarySeqScan);
    const std::vector<double> est_features =
        EstimateUnaryFeatures(site.database(), q, site.profile().planner);
    const double est = report.model.Estimate(est_features, probe);
    const double observed = site.RunSelect(q).elapsed_seconds;
    if (IsGoodEstimate(est, observed)) ++good;
  }
  EXPECT_GT(good, kTests / 3);
}

}  // namespace
}  // namespace mscm::core
