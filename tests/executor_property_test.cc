// Property tests (parameterized) over the executor: for any sampled query of
// any class, the chosen-plan execution must agree with the brute-force
// reference semantics, and the work counters must satisfy basic sanity
// invariants.

#include <gtest/gtest.h>

#include "core/sampling.h"
#include "engine/executor.h"
#include "tests/test_util.h"

namespace mscm::engine {
namespace {

using core::QueryClassId;

struct Case {
  QueryClassId cls;
  uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << core::Label(c.cls) << "/seed" << c.seed;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(
        test::TinyDatabase(/*seed=*/17, /*num_tables=*/6, /*scale=*/0.03));
    executor_ = std::make_unique<Executor>(db_.get());
    sampler_ = std::make_unique<core::QuerySampler>(db_.get(), rules_,
                                                    GetParam().seed);
  }
  PlannerRules rules_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<core::QuerySampler> sampler_;
};

TEST_P(ExecutorPropertyTest, PlanExecutionMatchesNaiveSemantics) {
  const QueryClassId cls = GetParam().cls;
  for (int i = 0; i < 10; ++i) {
    if (core::IsJoinClass(cls)) {
      const JoinQuery q = sampler_->SampleJoin(cls);
      const JoinPlan plan = ChooseJoinPlan(*db_, q, rules_);
      const JoinExecution exec = executor_->ExecuteJoin(q, plan);
      EXPECT_EQ(exec.result_rows, executor_->NaiveJoinCount(q));
    } else {
      const SelectQuery q = sampler_->SampleSelect(cls);
      const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
      const SelectExecution exec = executor_->ExecuteSelect(q, plan);
      EXPECT_EQ(exec.result_rows, executor_->NaiveSelectCount(q));
    }
  }
}

TEST_P(ExecutorPropertyTest, WorkCounterInvariants) {
  const QueryClassId cls = GetParam().cls;
  for (int i = 0; i < 10; ++i) {
    WorkCounters work;
    double result_rows = 0.0;
    double result_bytes_per_tuple = 0.0;
    if (core::IsJoinClass(cls)) {
      const JoinQuery q = sampler_->SampleJoin(cls);
      const JoinExecution exec =
          executor_->ExecuteJoin(q, ChooseJoinPlan(*db_, q, rules_));
      work = exec.work;
      result_rows = static_cast<double>(exec.result_rows);
      result_bytes_per_tuple = exec.result_tuple_bytes;
      // Qualified counts bounded by operand cardinalities.
      EXPECT_LE(exec.left_qualified, exec.left_rows);
      EXPECT_LE(exec.right_qualified, exec.right_rows);
    } else {
      const SelectQuery q = sampler_->SampleSelect(cls);
      const SelectExecution exec =
          executor_->ExecuteSelect(q, ChooseSelectPlan(*db_, q, rules_));
      work = exec.work;
      result_rows = static_cast<double>(exec.result_rows);
      result_bytes_per_tuple = exec.result_tuple_bytes;
      // Result flows through the access method.
      EXPECT_LE(exec.result_rows, exec.intermediate_rows);
      EXPECT_LE(exec.intermediate_rows, exec.operand_rows);
    }
    // Non-negative counters.
    EXPECT_GE(work.sequential_pages, 0.0);
    EXPECT_GE(work.random_pages, 0.0);
    EXPECT_GE(work.tuples_read, 0.0);
    EXPECT_GE(work.predicate_evals, 0.0);
    EXPECT_GE(work.init_ops, 1.0);
    // Result accounting is exact.
    EXPECT_DOUBLE_EQ(work.result_tuples, result_rows);
    EXPECT_DOUBLE_EQ(work.result_bytes,
                     result_rows * result_bytes_per_tuple);
    // Something was read unless the operand sides were empty.
    EXPECT_GT(work.tuples_read + work.random_pages + work.sequential_pages,
              0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAndSeeds, ExecutorPropertyTest,
    ::testing::Values(Case{QueryClassId::kUnarySeqScan, 1},
                      Case{QueryClassId::kUnarySeqScan, 2},
                      Case{QueryClassId::kUnaryNonClusteredIndex, 3},
                      Case{QueryClassId::kUnaryNonClusteredIndex, 4},
                      Case{QueryClassId::kUnaryClusteredIndex, 5},
                      Case{QueryClassId::kUnaryClusteredIndex, 6},
                      Case{QueryClassId::kJoinNoIndex, 7},
                      Case{QueryClassId::kJoinNoIndex, 8},
                      Case{QueryClassId::kJoinIndex, 9},
                      Case{QueryClassId::kJoinIndex, 10}));

}  // namespace
}  // namespace mscm::engine
