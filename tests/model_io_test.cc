#include "core/model_io.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

CostModel MakeModel(int num_states, QualitativeForm form,
                    QueryClassId cls = QueryClassId::kUnarySeqScan) {
  test::SyntheticGroundTruth truth;
  for (int s = 0; s < num_states; ++s) {
    truth.intercepts.push_back(1.0 + 2.0 * s);
    truth.slopes.push_back({0.5 * (s + 1), 0.25 * (s + 1)});
  }
  truth.noise_stddev = 0.05;
  Rng rng(7);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const ContentionStates states =
      num_states == 1
          ? ContentionStates::Single()
          : ContentionStates::UniformPartition(0.0, 1.0, num_states);
  return FitCostModel(cls, obs, {0, 1}, states, form);
}

TEST(ModelIoTest, RoundTripPreservesEstimates) {
  const CostModel original = MakeModel(3, QualitativeForm::kGeneral);
  const std::string blob = SerializeCostModel(original);
  const auto restored = ParseCostModel(blob);
  ASSERT_TRUE(restored.has_value());

  EXPECT_EQ(restored->class_id(), original.class_id());
  EXPECT_EQ(restored->states().num_states(), original.states().num_states());
  EXPECT_EQ(restored->selected_variables(), original.selected_variables());
  EXPECT_DOUBLE_EQ(restored->r_squared(), original.r_squared());
  EXPECT_DOUBLE_EQ(restored->standard_error(), original.standard_error());

  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> features = {rng.Uniform(0, 10),
                                          rng.Uniform(0, 10)};
    const double probe = rng.NextDouble();
    EXPECT_DOUBLE_EQ(restored->Estimate(features, probe),
                     original.Estimate(features, probe));
  }
}

TEST(ModelIoTest, RoundTripAllForms) {
  for (QualitativeForm form :
       {QualitativeForm::kCoincident, QualitativeForm::kParallel,
        QualitativeForm::kConcurrent, QualitativeForm::kGeneral}) {
    const CostModel original = MakeModel(2, form);
    const auto restored = ParseCostModel(SerializeCostModel(original));
    ASSERT_TRUE(restored.has_value()) << ToString(form);
    EXPECT_DOUBLE_EQ(restored->Estimate({1.0, 2.0}, 0.3),
                     original.Estimate({1.0, 2.0}, 0.3))
        << ToString(form);
  }
}

TEST(ModelIoTest, RoundTripSingleState) {
  const CostModel original = MakeModel(1, QualitativeForm::kGeneral);
  const auto restored = ParseCostModel(SerializeCostModel(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->states().num_states(), 1);
}

TEST(ModelIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseCostModel("").has_value());
  EXPECT_FALSE(ParseCostModel("not a model").has_value());
  EXPECT_FALSE(ParseCostModel("mscm-cost-model v1\nend\n").has_value());
}

TEST(ModelIoTest, RejectsTamperedRecords) {
  const std::string blob = SerializeCostModel(
      MakeModel(2, QualitativeForm::kGeneral));
  {
    // Unknown key.
    std::string bad = blob;
    bad.insert(bad.find("end"), "bogus 1 2 3\n");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Out-of-range class id.
    std::string bad = blob;
    const size_t pos = bad.find("class ");
    bad.replace(pos, bad.find('\n', pos) - pos, "class 99");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Truncated (no end marker).
    std::string bad = blob.substr(0, blob.find("end"));
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Coefficient count inconsistent with layout.
    std::string bad = blob;
    const size_t pos = bad.find("coefficients ");
    const size_t eol = bad.find('\n', pos);
    bad.replace(pos, eol - pos, "coefficients 1.0 2.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
}

TEST(ModelIoTest, RoundTripPreservesPredictionIntervals) {
  // The xtxinv record line persists the fit's covariance structure, so a
  // round-tripped model serves the same intervals as the in-process fit —
  // the bug being pinned: EstimateWithInterval silently returning nullopt
  // after a save/load.
  const CostModel original = MakeModel(3, QualitativeForm::kGeneral);
  const auto restored = ParseCostModel(SerializeCostModel(original));
  ASSERT_TRUE(restored.has_value());

  Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    const std::vector<double> features = {rng.Uniform(0, 10),
                                          rng.Uniform(0, 10)};
    const double probe = rng.NextDouble();
    const auto want = original.EstimateWithInterval(features, probe);
    const auto got = restored->EstimateWithInterval(features, probe);
    ASSERT_TRUE(want.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(got->estimate, want->estimate, 1e-9);
    EXPECT_NEAR(got->low, want->low, 1e-9 * (1.0 + want->high));
    EXPECT_NEAR(got->high, want->high, 1e-9 * (1.0 + want->high));
    // The served distribution path reads the same persisted structure.
    const CostDistribution d_want =
        original.EstimateDistribution(features, probe);
    const CostDistribution d_got =
        restored->EstimateDistribution(features, probe);
    EXPECT_TRUE(d_got.has_interval);
    EXPECT_NEAR(d_got.low, d_want.low, 1e-9 * (1.0 + d_want.high));
    EXPECT_NEAR(d_got.high, d_want.high, 1e-9 * (1.0 + d_want.high));
  }
}

TEST(ModelIoTest, LegacyRecordWithoutXtxInvStillParses) {
  // Records written before the xtxinv line existed must parse — they just
  // cannot serve intervals.
  const CostModel original = MakeModel(2, QualitativeForm::kGeneral);
  std::string blob = SerializeCostModel(original);
  const size_t pos = blob.find("xtxinv ");
  ASSERT_NE(pos, std::string::npos);
  blob.erase(pos, blob.find('\n', pos) - pos + 1);
  const auto restored = ParseCostModel(blob);
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->Estimate({1.0, 2.0}, 0.3),
                   original.Estimate({1.0, 2.0}, 0.3));
  EXPECT_FALSE(restored->EstimateWithInterval({1.0, 2.0}, 0.3).has_value());
  EXPECT_FALSE(restored->EstimateDistribution({1.0, 2.0}, 0.3).has_interval);
}

TEST(ModelIoTest, RejectsTamperedXtxInv) {
  const std::string blob =
      SerializeCostModel(MakeModel(2, QualitativeForm::kGeneral));
  const size_t pos = blob.find("xtxinv ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = blob.find('\n', pos);
  {
    // Dimension disagreeing with the coefficient count.
    std::string bad = blob;
    bad.replace(pos, eol - pos, "xtxinv 2 1.0 0.0 0.0 1.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Value count not dim^2.
    std::string bad = blob;
    bad.replace(pos, eol - pos, "xtxinv 2 1.0 0.0 0.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Non-finite entry.
    std::string bad = blob;
    bad.replace(pos, eol - pos, "xtxinv 2 1.0 0.0 0.0 inf");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
}

TEST(ModelIoTest, RejectsUnsortedBoundaries) {
  std::string blob =
      SerializeCostModel(MakeModel(3, QualitativeForm::kGeneral));
  const size_t pos = blob.find("states ");
  const size_t eol = blob.find('\n', pos);
  blob.replace(pos, eol - pos, "states 0.9 0.1");
  EXPECT_FALSE(ParseCostModel(blob).has_value());
}

CostModel AdaptedModel(int feedback_count, Rng& rng) {
  CostModel model = MakeModel(3, QualitativeForm::kGeneral);
  stats::RlsConfig config;
  config.forgetting = 0.99;
  for (int i = 0; i < feedback_count; ++i) {
    const std::vector<double> features = {rng.Uniform(1, 10),
                                          rng.Uniform(1, 10)};
    const double actual = 3.0 + 1.2 * features[0] + 0.4 * features[1];
    auto next = model.ApplyFeedback(i % 3, features, actual, config);
    if (next.has_value()) model = std::move(*next);
  }
  return model;
}

TEST(ModelIoTest, AdaptedModelRoundTripsBitExact) {
  Rng rng(31);
  const CostModel original = AdaptedModel(30, rng);
  ASSERT_GT(original.generation(), 0u);
  ASSERT_FALSE(original.adaptation().states.empty());

  const auto restored = ParseCostModel(SerializeCostModel(original));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation(), original.generation());
  EXPECT_EQ(restored->adaptation().forgetting,
            original.adaptation().forgetting);
  ASSERT_EQ(restored->adaptation().states.size(),
            original.adaptation().states.size());
  for (const auto& [state, st] : original.adaptation().states) {
    const auto it = restored->adaptation().states.find(state);
    ASSERT_NE(it, restored->adaptation().states.end());
    EXPECT_EQ(it->second.updates, st.updates);
    EXPECT_EQ(it->second.row, st.row);                // exact doubles
    EXPECT_EQ(it->second.covariance, st.covariance);  // exact doubles
  }

  // The persisted-and-reloaded model serves bit-identical estimates,
  // including on adapted states.
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> features = {rng.Uniform(0, 12),
                                          rng.Uniform(0, 12)};
    const double probe = rng.NextDouble();
    EXPECT_EQ(restored->EstimateFast(features, probe),
              original.EstimateFast(features, probe));
  }
}

TEST(ModelIoTest, AdaptedRoundTripResumesTrajectoryBitExact) {
  // Warm-started continuation: feeding the same observation to the
  // original and its round-tripped copy must produce identical rows —
  // the persisted covariance really is the estimator state.
  Rng rng(32);
  CostModel original = AdaptedModel(20, rng);
  auto restored = ParseCostModel(SerializeCostModel(original));
  ASSERT_TRUE(restored.has_value());

  const std::vector<double> features = {4.0, 6.0};
  auto a = original.ApplyFeedback(0, features, 42.0);
  auto b = restored->ApplyFeedback(0, features, 42.0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const double* row_a = a->compiled().row(0);
  const double* row_b = b->compiled().row(0);
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(row_a[j], row_b[j]);
}

TEST(ModelIoTest, LegacyRecordWithoutAdaptationStillParses) {
  const CostModel unadapted = MakeModel(2, QualitativeForm::kGeneral);
  const std::string blob = SerializeCostModel(unadapted);
  // Unadapted records carry no adaptation lines at all — byte-compatible
  // with records written before the overlay existed.
  EXPECT_EQ(blob.find("generation"), std::string::npos);
  EXPECT_EQ(blob.find("adapted"), std::string::npos);
  const auto restored = ParseCostModel(blob);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->generation(), 0u);
  EXPECT_TRUE(restored->adaptation().states.empty());
}

TEST(ModelIoTest, RejectsTamperedAdaptation) {
  Rng rng(33);
  const std::string blob = SerializeCostModel(AdaptedModel(12, rng));
  const size_t pos = blob.find("\nadapted ");
  ASSERT_NE(pos, std::string::npos);
  const size_t line = pos + 1;
  const size_t eol = blob.find('\n', line);
  {
    // Adapted state outside the partition.
    std::string bad = blob;
    bad.replace(line, eol - line, "adapted 9 1 1.0 2.0 3.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Row width not matching the stride.
    std::string bad = blob;
    bad.replace(line, eol - line, "adapted 0 1 1.0 2.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Non-finite row entry.
    std::string bad = blob;
    bad.replace(line, eol - line, "adapted 0 1 1.0 2.0 nan");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Adapted rows demand a nonzero generation.
    std::string bad = blob;
    const size_t gpos = bad.find("generation ");
    const size_t geol = bad.find('\n', gpos);
    bad.replace(gpos, geol - gpos, "generation 0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Forgetting factor outside (0, 1].
    std::string bad = blob;
    const size_t fpos = bad.find("forgetting ");
    const size_t feol = bad.find('\n', fpos);
    bad.replace(fpos, feol - fpos, "forgetting 1.5");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Covariance with no matching adapted row.
    std::string good = SerializeCostModel(MakeModel(2,
                                                    QualitativeForm::kGeneral));
    const size_t epos = good.find("end\n");
    std::string bad = good;
    bad.insert(epos, "generation 1\nadaptcov 0 1 0 0 0 0 0 0 0 0\n");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
  {
    // Covariance with the wrong element count.
    std::string bad = blob;
    const size_t cpos = bad.find("adaptcov ");
    ASSERT_NE(cpos, std::string::npos);
    const size_t ceol = bad.find('\n', cpos);
    bad.replace(cpos, ceol - cpos, "adaptcov 0 1.0 2.0");
    EXPECT_FALSE(ParseCostModel(bad).has_value());
  }
}

TEST(CatalogIoTest, RoundTripMultipleEntries) {
  GlobalCatalog catalog;
  catalog.Register("alpha", MakeModel(2, QualitativeForm::kGeneral));
  catalog.Register("beta", MakeModel(3, QualitativeForm::kGeneral));
  catalog.Register("beta", MakeModel(1, QualitativeForm::kGeneral,
                                     QueryClassId::kJoinNoIndex));
  const std::string blob = SerializeCatalog(catalog);
  const auto restored = ParseCatalog(blob);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 3u);
  ASSERT_NE(restored->Find("alpha", QueryClassId::kUnarySeqScan), nullptr);
  ASSERT_NE(restored->Find("beta", QueryClassId::kJoinNoIndex), nullptr);
  EXPECT_EQ(restored->Find("beta", QueryClassId::kUnarySeqScan)
                ->states()
                .num_states(),
            3);
}

TEST(CatalogIoTest, EmptyCatalogRoundTrips) {
  const auto restored = ParseCatalog(SerializeCatalog(GlobalCatalog{}));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 0u);
}

TEST(CatalogIoTest, RejectsBadHeader) {
  EXPECT_FALSE(ParseCatalog("wrong\n").has_value());
}


TEST(CatalogIoTest, FileRoundTrip) {
  GlobalCatalog catalog;
  catalog.Register("alpha", MakeModel(2, QualitativeForm::kGeneral));
  const std::string path = ::testing::TempDir() + "/mscm_catalog_test.txt";
  ASSERT_TRUE(SaveCatalogToFile(catalog, path));
  const auto restored = LoadCatalogFromFile(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 1u);
  EXPECT_NE(restored->Find("alpha", QueryClassId::kUnarySeqScan), nullptr);
}

TEST(CatalogIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCatalogFromFile("/nonexistent/dir/file.txt").has_value());
}

TEST(CatalogIoTest, SaveToUnwritablePathFails) {
  GlobalCatalog catalog;
  EXPECT_FALSE(SaveCatalogToFile(catalog, "/nonexistent/dir/file.txt"));
}

}  // namespace
}  // namespace mscm::core
