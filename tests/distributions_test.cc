#include "stats/distributions.h"

#include <gtest/gtest.h>

namespace mscm::stats {
namespace {

TEST(FDistributionTest, CdfAtZeroIsZero) {
  EXPECT_DOUBLE_EQ(FCdf(0.0, 3, 10), 0.0);
  EXPECT_DOUBLE_EQ(FSurvival(0.0, 3, 10), 1.0);
}

TEST(FDistributionTest, CdfPlusSurvivalIsOne) {
  for (double f : {0.5, 1.0, 2.5, 10.0}) {
    EXPECT_NEAR(FCdf(f, 4, 20) + FSurvival(f, 4, 20), 1.0, 1e-12);
  }
}

TEST(FDistributionTest, KnownCriticalValues) {
  // F(0.95; 1, 10) critical value is 4.9646 (standard tables).
  EXPECT_NEAR(FSurvival(4.9646, 1, 10), 0.05, 2e-4);
  // F(0.95; 5, 20) critical value is 2.7109.
  EXPECT_NEAR(FSurvival(2.7109, 5, 20), 0.05, 2e-4);
  // F(0.99; 3, 30) critical value is 4.5097.
  EXPECT_NEAR(FSurvival(4.5097, 3, 30), 0.01, 2e-4);
}

TEST(FDistributionTest, MedianOfF11) {
  // For d1 = d2, the F distribution has median 1.
  EXPECT_NEAR(FCdf(1.0, 7, 7), 0.5, 1e-10);
}

TEST(FDistributionTest, CdfMonotone) {
  double prev = 0.0;
  for (double f = 0.1; f < 20.0; f *= 1.7) {
    const double v = FCdf(f, 3, 15);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(StudentTTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(1.3, 8) + StudentTCdf(-1.3, 8), 1.0, 1e-12);
}

TEST(StudentTTest, KnownCriticalValues) {
  // t(0.975; 10) = 2.2281.
  EXPECT_NEAR(StudentTCdf(2.2281, 10), 0.975, 2e-4);
  // t(0.95; 30) = 1.6973.
  EXPECT_NEAR(StudentTCdf(1.6973, 30), 0.95, 2e-4);
}

TEST(StudentTTest, TwoSidedPValue) {
  EXPECT_NEAR(StudentTTwoSidedPValue(2.2281, 10), 0.05, 4e-4);
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-12);
  // Sign does not matter.
  EXPECT_NEAR(StudentTTwoSidedPValue(-2.2281, 10),
              StudentTTwoSidedPValue(2.2281, 10), 1e-12);
}

TEST(StudentTTest, SquaredTIsF) {
  // If T ~ t(df), then T^2 ~ F(1, df): two-sided t p-value equals the F
  // survival of t^2.
  const double t = 1.8;
  const double df = 12;
  EXPECT_NEAR(StudentTTwoSidedPValue(t, df), FSurvival(t * t, 1, df), 1e-10);
}

TEST(FUpperQuantileTest, InvertsSurvival) {
  for (double alpha : {0.1, 0.05, 0.01}) {
    const double q = FUpperQuantile(alpha, 4, 18);
    EXPECT_NEAR(FSurvival(q, 4, 18), alpha, 1e-6);
  }
}

TEST(FUpperQuantileTest, MatchesTable) {
  EXPECT_NEAR(FUpperQuantile(0.05, 1, 10), 4.9646, 1e-3);
}

}  // namespace
}  // namespace mscm::stats
