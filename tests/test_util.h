// Shared helpers for the MSCM test suite.

#ifndef MSCM_TESTS_TEST_UTIL_H_
#define MSCM_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/table_generator.h"

namespace mscm::test {

// A tiny generated database (scale well below paper size) for fast tests.
inline engine::Database TinyDatabase(uint64_t seed = 1,
                                     int num_tables = 4,
                                     double scale = 0.02) {
  engine::TableGeneratorConfig config;
  config.num_tables = num_tables;
  config.scale = scale;
  Rng rng(seed);
  engine::Database db = engine::GenerateDatabase(config, rng);
  engine::AddProbingTable(db, rng);
  return db;
}

// A hand-built 2-column table with known contents: col0 = i, col1 = i % mod.
inline engine::Table SequentialTable(const std::string& name, size_t rows,
                                     int64_t mod = 10) {
  engine::Table t(name, engine::Schema({{"c0", 8}, {"c1", 8}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({static_cast<int64_t>(i), static_cast<int64_t>(i) % mod});
  }
  return t;
}

}  // namespace mscm::test

#include "core/observation.h"

namespace mscm::test {

// Synthetic regression data with a known piecewise-linear ground truth:
// probing costs are uniform in [0, 1); the state is determined by equal-width
// subranges; within state s, cost = intercepts[s] + sum_j slopes[s][j]*x_j
// (+ Gaussian noise). Features are uniform in [0, feature_scale).
struct SyntheticGroundTruth {
  std::vector<double> intercepts;               // one per state
  std::vector<std::vector<double>> slopes;      // [state][feature]
  double noise_stddev = 0.0;
  double feature_scale = 10.0;
};

inline core::ObservationSet SyntheticObservations(
    const SyntheticGroundTruth& truth, size_t n, Rng& rng) {
  const size_t num_states = truth.intercepts.size();
  const size_t num_features = truth.slopes.front().size();
  core::ObservationSet out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core::Observation obs;
    obs.probing_cost = rng.NextDouble();
    const size_t state = std::min(
        num_states - 1,
        static_cast<size_t>(obs.probing_cost * static_cast<double>(num_states)));
    obs.features.resize(num_features);
    obs.cost = truth.intercepts[state];
    for (size_t j = 0; j < num_features; ++j) {
      obs.features[j] = rng.Uniform(0.0, truth.feature_scale);
      obs.cost += truth.slopes[state][j] * obs.features[j];
    }
    if (truth.noise_stddev > 0.0) {
      obs.cost += rng.Gaussian(0.0, truth.noise_stddev);
    }
    out.push_back(std::move(obs));
  }
  return out;
}

}  // namespace mscm::test

#include "core/cost_model.h"

namespace mscm::test {

// A deterministic fitted model with known behaviour for runtime tests:
// one selected variable, one contention state per entry of `state_slopes`
// (state s covers probing costs in (s, s+1], ends open), and within state s
// cost = state_slopes[s] * features[0] exactly (no noise, general form).
inline core::CostModel PiecewiseLinearModel(
    core::QueryClassId cls, const std::vector<double>& state_slopes,
    uint64_t seed = 7) {
  const size_t num_states = state_slopes.size();
  const size_t n_features = core::VariableSet::ForClass(cls).size();
  core::ObservationSet obs;
  Rng rng(seed);
  for (size_t s = 0; s < num_states; ++s) {
    for (int i = 0; i < 40; ++i) {
      core::Observation o;
      o.probing_cost = static_cast<double>(s) + 0.5;
      o.features.assign(n_features, 0.0);
      o.features[0] = rng.Uniform(1.0, 10.0);
      o.cost = state_slopes[s] * o.features[0];
      obs.push_back(std::move(o));
    }
  }
  std::vector<double> boundaries;
  for (size_t s = 1; s < num_states; ++s) {
    boundaries.push_back(static_cast<double>(s));
  }
  const core::ContentionStates states =
      boundaries.empty() ? core::ContentionStates::Single()
                         : core::ContentionStates::FromBoundaries(boundaries);
  return core::FitCostModel(cls, obs, {0}, states,
                            core::QualitativeForm::kGeneral);
}

}  // namespace mscm::test

#endif  // MSCM_TESTS_TEST_UTIL_H_
