#include "runtime/estimation_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/rng.h"
#include "runtime/clock.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;
using std::chrono::seconds;

std::vector<double> FeatureVector(QueryClassId cls, double x0) {
  std::vector<double> f(core::VariableSet::ForClass(cls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, QueryClassId cls, double x0,
                        double probing_cost = -1.0) {
  EstimateRequest request;
  request.site = site;
  request.class_id = cls;
  request.features = FeatureVector(cls, x0);
  request.probing_cost = probing_cost;
  return request;
}

TEST(EstimationServiceTest, EstimatesWithExplicitProbeAcrossStates) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  // State 0 (probe ≤ 1): cost = 2x. State 1 (probe > 1): cost = 5x.
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));

  EstimateResponse low = service.Estimate(Request("a", cls, 3.0, 0.5));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.state, 0);
  EXPECT_NEAR(low.estimate_seconds, 6.0, 1e-6);
  EXPECT_DOUBLE_EQ(low.probing_cost, 0.5);
  EXPECT_FALSE(low.stale_probe);

  EstimateResponse high = service.Estimate(Request("a", cls, 3.0, 1.5));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.state, 1);
  EXPECT_NEAR(high.estimate_seconds, 15.0, 1e-6);
}

TEST(EstimationServiceTest, ReportsMissingModelAndMissingProbe) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;

  EXPECT_EQ(service.Estimate(Request("ghost", cls, 1.0, 0.5)).status,
            EstimateStatus::kNoModel);

  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  // No explicit probe and no tracker for the site → kNoProbe.
  EXPECT_EQ(service.Estimate(Request("a", cls, 1.0)).status,
            EstimateStatus::kNoProbe);

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.no_model, 1u);
  EXPECT_EQ(stats.probe_cache_misses, 1u);
}

TEST(EstimationServiceTest, ServesFromCachedProbe) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));

  std::atomic<double> probe_value{0.5};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  EstimateResponse low = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.state, 0);
  EXPECT_DOUBLE_EQ(low.probing_cost, 0.5);
  EXPECT_NEAR(low.estimate_seconds, 6.0, 1e-6);

  // The environment shifts; the next probe moves the cached state.
  probe_value.store(1.5);
  ASSERT_TRUE(service.ProbeNow("a"));
  EstimateResponse high = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.state, 1);
  EXPECT_NEAR(high.estimate_seconds, 15.0, 1e-6);

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.probe_cache_hits, 2u);
  EXPECT_EQ(stats.probes, 2u);
  // The tracker's own cached state follows the registered partition.
  EXPECT_EQ(service.CurrentProbe("a").state, 1);
}

TEST(EstimationServiceTest, StaleProbeIsServedAndFlagged) {
  FakeClock clock;
  EstimationServiceConfig config;
  config.probe_ttl = seconds(5);
  config.clock = &clock;
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  clock.Advance(seconds(10));
  const EstimateResponse response = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(response.ok());  // last-known-state fallback
  EXPECT_TRUE(response.stale_probe);
  EXPECT_NEAR(response.estimate_seconds, 6.0, 1e-6);
  EXPECT_EQ(service.Stats().probe_cache_stale, 1u);
}

TEST(EstimationServiceTest, BatchMatchesSingleRequests) {
  EstimationServiceConfig config;
  config.worker_threads = 2;
  config.batch_grain = 16;
  EstimationService service(config);
  const auto g1 = QueryClassId::kUnarySeqScan;
  const auto g3 = QueryClassId::kJoinNoIndex;
  service.RegisterModel("a", test::PiecewiseLinearModel(g1, {2.0, 5.0}));
  service.RegisterModel("a", test::PiecewiseLinearModel(g3, {3.0}));
  service.RegisterModel("b", test::PiecewiseLinearModel(g1, {7.0}));
  service.RegisterSite("a", [] { return 0.5; });
  service.RegisterSite("b", [] { return 1.5; });
  service.ProbeNow("a");
  service.ProbeNow("b");

  Rng rng(3);
  std::vector<EstimateRequest> requests;
  for (int i = 0; i < 200; ++i) {
    const bool site_a = rng.NextDouble() < 0.5;
    const auto cls = rng.NextDouble() < 0.5 ? g1 : g3;
    EstimateRequest request =
        Request(site_a ? "a" : "b", cls, rng.Uniform(1.0, 10.0));
    if (rng.NextDouble() < 0.3) request.probing_cost = rng.Uniform(0.0, 2.0);
    requests.push_back(std::move(request));
  }

  const std::vector<EstimateResponse> batched =
      service.EstimateBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const EstimateResponse single = service.Estimate(requests[i]);
    EXPECT_EQ(batched[i].status, single.status) << i;
    EXPECT_EQ(batched[i].state, single.state) << i;
    EXPECT_DOUBLE_EQ(batched[i].estimate_seconds, single.estimate_seconds)
        << i;
  }
  EXPECT_EQ(service.Stats().batches, 1u);
}

TEST(EstimationServiceTest, ChoosePlacementPicksCheapestTotal) {
  EstimationService service;
  const auto cls = QueryClassId::kJoinNoIndex;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterModel("b", test::PiecewiseLinearModel(cls, {3.0}));
  service.RegisterSite("a", [] { return 0.5; });
  service.RegisterSite("b", [] { return 0.5; });
  service.ProbeNow("a");
  service.ProbeNow("b");

  PlacementCandidate cand_a{Request("a", cls, 4.0), 0.0};  // local: 8s
  PlacementCandidate cand_b{Request("b", cls, 4.0), 0.0};  // local: 12s
  PlacementResult local = service.ChoosePlacement({cand_a, cand_b});
  EXPECT_EQ(local.chosen, 0);
  EXPECT_NEAR(local.total_seconds[0], 8.0, 1e-6);
  EXPECT_NEAR(local.total_seconds[1], 12.0, 1e-6);

  // Shipping can flip the decision: a is cheaper locally but far away.
  cand_a.shipping_seconds = 10.0;
  PlacementResult shipped = service.ChoosePlacement({cand_a, cand_b});
  EXPECT_EQ(shipped.chosen, 1);

  // A candidate without a model is skipped, not chosen.
  PlacementCandidate ghost{Request("ghost", cls, 4.0), 0.0};
  PlacementResult with_ghost = service.ChoosePlacement({ghost, cand_b});
  EXPECT_EQ(with_ghost.chosen, 1);
  EXPECT_TRUE(std::isinf(with_ghost.total_seconds[0]));
}

TEST(EstimationServiceTest, ModelReplacementIsVisibleToNewRequests) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  // A long-lived snapshot taken before the replacement …
  const SnapshotCatalog::Snapshot old_snap = service.CatalogSnapshot();
  const core::CostModel* old_model = old_snap->Find("a", cls);
  ASSERT_NE(old_model, nullptr);

  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {5.0}));

  // … still answers with the old coefficients, while the service serves the
  // new ones.
  const auto features = FeatureVector(cls, 3.0);
  EXPECT_NEAR(old_model->Estimate(features, 0.5), 6.0, 1e-6);
  EXPECT_NEAR(service.Estimate(Request("a", cls, 3.0, 0.5)).estimate_seconds,
              15.0, 1e-6);
  EXPECT_EQ(service.Stats().catalog_swaps, 2u);
}

// Regression: RegisterSite used to wire the tracker's state partition from
// whatever Find() returned first among the site's registered classes — an
// arbitrary pick when several classes were registered. It now always uses
// the site's most recently registered model.
TEST(EstimationServiceTest, RegisterSiteWiresNewestModelPartition) {
  EstimationService service;
  const auto g3 = QueryClassId::kJoinNoIndex;
  const auto g1 = QueryClassId::kUnarySeqScan;
  // Two models with different partitions; G1 (single state) is newest.
  service.RegisterModel("a", test::PiecewiseLinearModel(g3, {2.0, 5.0}));
  service.RegisterModel("a", test::PiecewiseLinearModel(g1, {2.0}));

  service.RegisterSite("a", [] { return 1.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  // Under G1's single-state partition, probe 1.5 is state 0. Under G3's
  // two-state partition (the stale wiring) it would be state 1.
  EXPECT_EQ(service.CurrentProbe("a").state, 0);
}

// Regression: RegisterModel could interleave with RegisterSite between its
// tracker publication and its mapper wiring, leaving the tracker mapping
// states with the wrong (or no) partition. Both now serialize on the
// control mutex, and the tracker is published before it is wired. Run under
// MSCM_SANITIZE=thread to verify.
TEST(EstimationServiceTest, ConcurrentRegisterModelAndSiteAlwaysWire) {
  const auto cls = QueryClassId::kUnarySeqScan;
  const core::CostModel model = test::PiecewiseLinearModel(cls, {2.0, 5.0});
  for (int iter = 0; iter < 50; ++iter) {
    EstimationService service;
    std::thread register_model(
        [&] { service.RegisterModel("a", model); });
    std::thread register_site(
        [&] { service.RegisterSite("a", [] { return 1.5; }); });
    register_model.join();
    register_site.join();

    // Whichever order won, the tracker must end up wired with the model's
    // partition: probe 1.5 maps to state 1, never -1.
    ASSERT_TRUE(service.ProbeNow("a"));
    EXPECT_EQ(service.CurrentProbe("a").state, 1) << "iter " << iter;
  }
}

TEST(EstimationServiceTest, StaleModelFlagIsServedAndCounted) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));

  EXPECT_FALSE(service.IsModelStale("a", cls));
  service.SetModelStale("a", cls, true);
  EXPECT_TRUE(service.IsModelStale("a", cls));

  // Estimates still succeed — the old model is the best available — but
  // carry the flag, in both single and batch paths.
  const EstimateResponse single = service.Estimate(Request("a", cls, 3.0, 0.5));
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single.stale_model);
  EXPECT_NEAR(single.estimate_seconds, 6.0, 1e-6);
  const std::vector<EstimateResponse> batch =
      service.EstimateBatch({Request("a", cls, 3.0, 0.5)});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].stale_model);

  RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.stale_models, 1u);
  EXPECT_EQ(stats.stale_model_served, 2u);

  // Registering a replacement model clears the flag.
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  EXPECT_FALSE(service.IsModelStale("a", cls));
  EXPECT_FALSE(service.Estimate(Request("a", cls, 3.0, 0.5)).stale_model);
  EXPECT_EQ(service.Stats().stale_models, 0u);
}

// Regression: a NaN feature used to flow straight into the model (and, with
// the memo enabled, poison the estimate cache with a NaN-keyed entry). The
// service now validates requests at the boundary and rejects them without
// touching any cache.
TEST(EstimationServiceTest, InvalidRequestsAreRejectedAtTheBoundary) {
  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 64;
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();

  EstimateRequest bad_feature = Request("a", cls, 3.0);
  bad_feature.features[0] = nan;
  EXPECT_EQ(service.Estimate(bad_feature).status,
            EstimateStatus::kInvalidRequest);
  bad_feature.features[0] = inf;
  EXPECT_EQ(service.Estimate(bad_feature).status,
            EstimateStatus::kInvalidRequest);

  // NaN probing cost is not "use the cached probe" (that is any finite
  // negative value) — it is a corrupt request.
  EXPECT_EQ(service.Estimate(Request("a", cls, 3.0, nan)).status,
            EstimateStatus::kInvalidRequest);
  EXPECT_EQ(service.Estimate(Request("a", cls, 3.0, inf)).status,
            EstimateStatus::kInvalidRequest);
  // The finite-negative sentinel still means "use the cached probe".
  EXPECT_TRUE(service.Estimate(Request("a", cls, 3.0, -2.0)).ok());

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.invalid_requests, 4u);
  // Rejected requests are not counted as served requests and never consult
  // the response memo.
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.estimate_cache_misses, 1u);
  EXPECT_EQ(stats.estimate_cache_hits, 0u);

  // A valid repeat of the good request hits the memo — the invalid ones left
  // nothing behind.
  EXPECT_TRUE(service.Estimate(Request("a", cls, 3.0, -2.0)).ok());
  EXPECT_EQ(service.Stats().estimate_cache_hits, 1u);
}

TEST(EstimationServiceTest, BatchRejectsInvalidItemsIndividually) {
  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 64;
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));

  EstimateRequest bad = Request("a", cls, 3.0, 0.5);
  bad.features[0] = std::nan("");
  const std::vector<EstimateResponse> batch = service.EstimateBatch(
      {Request("a", cls, 3.0, 0.5), bad, Request("a", cls, 4.0, 0.5)});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[1].status, EstimateStatus::kInvalidRequest);
  EXPECT_TRUE(batch[2].ok());
  EXPECT_NEAR(batch[2].estimate_seconds, 8.0, 1e-6);
  EXPECT_EQ(service.Stats().invalid_requests, 1u);
}

// Tentpole: a site whose probes keep failing trips its circuit breaker.
// Estimates keep flowing from the last known state, flagged degraded; the
// degraded responses are never memoized; a half-open trial probe restores
// clean service once the site recovers.
TEST(EstimationServiceTest, DegradedSiteServesLastStateAndRecovers) {
  FakeClock clock;
  EstimationServiceConfig config;
  config.clock = &clock;
  config.probe_ttl = std::chrono::hours(1);
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration = seconds(5);
  config.cache.capacity_per_thread = 64;
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));

  std::atomic<bool> fail{false};
  service.RegisterSite("a", [&]() -> double {
    if (fail.load()) throw std::runtime_error("site down");
    return 0.5;
  });
  ASSERT_TRUE(service.ProbeNow("a"));
  EXPECT_FALSE(service.IsSiteDegraded("a"));

  fail.store(true);
  EXPECT_FALSE(service.ProbeNow("a"));
  EXPECT_FALSE(service.ProbeNow("a"));  // second consecutive failure → open
  EXPECT_TRUE(service.IsSiteDegraded("a"));
  EXPECT_EQ(service.SiteBreakerState("a"), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(service.ProbeNow("a"));  // suppressed, does not run the probe

  // Estimates still serve the pre-failure state, flagged, in both paths.
  const EstimateResponse single = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single.degraded);
  EXPECT_NEAR(single.estimate_seconds, 6.0, 1e-6);
  const std::vector<EstimateResponse> batch =
      service.EstimateBatch({Request("a", cls, 3.0)});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0].degraded);

  RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.degraded_sites, 1u);
  EXPECT_EQ(stats.degraded_served, 2u);
  EXPECT_EQ(stats.probes_suppressed, 1u);
  EXPECT_EQ(stats.probe_failures, 2u);
  // Degraded responses were never memoized.
  EXPECT_EQ(stats.estimate_cache_hits, 0u);

  // Recovery: past the open window, the next probe is the half-open trial;
  // it succeeds and the breaker closes.
  fail.store(false);
  clock.Advance(seconds(6));
  ASSERT_TRUE(service.ProbeNow("a"));
  EXPECT_FALSE(service.IsSiteDegraded("a"));
  EXPECT_EQ(service.SiteBreakerState("a"), CircuitBreaker::State::kClosed);
  const EstimateResponse healthy = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(service.Stats().degraded_sites, 0u);

  // Unknown sites are simply not degraded.
  EXPECT_FALSE(service.IsSiteDegraded("ghost"));
  EXPECT_EQ(service.SiteBreakerState("ghost"), CircuitBreaker::State::kClosed);
}

TEST(EstimationServiceTest, PlacementPoliciesDivergeNearBoundaries) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  // "steady" costs 1.0; "jitter" costs 0.5 below its boundary at probe 1.0
  // and 4.0 above it. A probe of 0.99 sits inside the soft-membership band.
  service.RegisterModel("steady", test::PiecewiseLinearModel(cls, {1.0}));
  service.RegisterModel("jitter",
                        test::PiecewiseLinearModel(cls, {0.5, 4.0}));
  const PlacementCandidate steady{Request("steady", cls, 1.0, 0.5), 0.0};
  const PlacementCandidate jitter{Request("jitter", cls, 1.0, 0.99), 0.0};

  const PlacementResult point = service.ChoosePlacement({steady, jitter});
  EXPECT_EQ(point.policy, core::PlacementPolicy::kPointEstimate);
  EXPECT_EQ(point.chosen, 1);  // takes the 0.5 bait

  PlacementOptions options;
  options.ranking.policy = core::PlacementPolicy::kExpectedCost;
  const PlacementResult expected =
      service.ChoosePlacement({steady, jitter}, options);
  EXPECT_EQ(expected.policy, core::PlacementPolicy::kExpectedCost);
  EXPECT_EQ(expected.chosen, 0);  // blended jitter mean > 1.0
  ASSERT_EQ(expected.distributions.size(), 2u);
  EXPECT_GT(expected.distributions[1].mean, 1.0);
  ASSERT_EQ(expected.scores.size(), 2u);
  EXPECT_LT(expected.scores[0], expected.scores[1]);

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.placements, 2u);
  // Only the expected-cost call diverged from the point argmin.
  EXPECT_EQ(stats.placement_expected_cost_wins, 1u);
}

TEST(EstimationServiceTest, PlacementDistributionsCarryDegradedAndStale) {
  FakeClock clock;
  EstimationServiceConfig config;
  config.clock = &clock;
  config.probe_ttl = seconds(5);
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration = std::chrono::hours(1);
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("down", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterModel("old", test::PiecewiseLinearModel(cls, {2.0}));

  std::atomic<bool> fail{false};
  service.RegisterSite("down", [&]() -> double {
    if (fail.load()) throw std::runtime_error("site down");
    return 0.5;
  });
  service.RegisterSite("old", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("down"));
  ASSERT_TRUE(service.ProbeNow("old"));
  fail.store(true);
  EXPECT_FALSE(service.ProbeNow("down"));  // breaker opens
  clock.Advance(seconds(6));               // "old"'s probe exceeds its TTL

  PlacementOptions options;
  options.ranking.policy = core::PlacementPolicy::kExpectedCost;
  const PlacementResult result = service.ChoosePlacement(
      {PlacementCandidate{Request("down", cls, 3.0), 0.0},
       PlacementCandidate{Request("old", cls, 3.0), 0.0}},
      options);
  ASSERT_EQ(result.distributions.size(), 2u);
  // "down" is degraded (and its pre-failure probe is now also past TTL —
  // the flags are independent and may coexist); "old" is merely stale.
  EXPECT_TRUE(result.distributions[0].degraded);
  EXPECT_TRUE(result.distributions[1].stale);
  EXPECT_FALSE(result.distributions[1].degraded);
  EXPECT_GE(result.chosen, 0);  // flagged candidates are penalized, not banned
}

TEST(EstimationServiceTest, PlacementWithNoServableCandidateIsMinusOne) {
  EstimationService service;
  const auto cls = QueryClassId::kUnarySeqScan;
  for (const auto policy :
       {core::PlacementPolicy::kPointEstimate,
        core::PlacementPolicy::kExpectedCost,
        core::PlacementPolicy::kRiskAdjusted}) {
    PlacementOptions options;
    options.ranking.policy = policy;
    const PlacementResult result = service.ChoosePlacement(
        {PlacementCandidate{Request("ghost", cls, 1.0, 0.5), 0.0}}, options);
    EXPECT_EQ(result.chosen, -1) << core::ToString(policy);
    ASSERT_EQ(result.scores.size(), 1u);
    EXPECT_TRUE(std::isinf(result.scores[0]));
  }
}

TEST(EstimationServiceTest, NearBoundarySitesGaugeCountsBandProbes) {
  EstimationService service;  // boundary_band_fraction defaults to 0.1
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("near", test::PiecewiseLinearModel(cls, {0.5, 4.0}));
  service.RegisterModel("far", test::PiecewiseLinearModel(cls, {0.5, 4.0}));
  service.RegisterSite("near", [] { return 0.99; });  // 0.01 from boundary 1.0
  service.RegisterSite("far", [] { return 0.5; });    // mid-state
  ASSERT_TRUE(service.ProbeNow("near"));
  ASSERT_TRUE(service.ProbeNow("far"));
  EXPECT_EQ(service.Stats().near_boundary_sites, 1u);
}

TEST(EstimationServiceTest, CacheHitsFeedTheLatencyHistogram) {
  EstimationServiceConfig config;
  config.probe_ttl = std::chrono::hours(1);
  config.cache.capacity_per_thread = 64;
  EstimationService service(config);
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  const EstimateRequest request = Request("a", cls, 3.0);
  constexpr int kCalls = 4 * 64;
  for (int i = 0; i < kCalls; ++i) ASSERT_TRUE(service.Estimate(request).ok());

  const RuntimeStatsSnapshot stats = service.Stats();
  ASSERT_GT(stats.estimate_cache_hits, 200u);
  // One in 64 hits is measured and recorded with weight 64, so hit mass
  // lands in the histogram instead of leaving it entirely to cold misses —
  // the "cached path reports higher latency than uncached" artifact. Over H
  // hits at least floor(H/64) samples fire regardless of the thread-local
  // tick's phase, so the recorded count covers the hits to within one
  // sampling period.
  EXPECT_GE(stats.estimate_latency.count + 64, stats.estimate_cache_hits);
}

}  // namespace
}  // namespace mscm::runtime
