// Chaos stress for the hardened failure paths: a seeded FaultInjector drives
// every fault mode at once — thrown probes, NaN/Inf/negative costs, latency
// spikes, and hangs — through the background probers, explicit probes, and
// the refresh daemon's sampling path, while reader threads estimate
// concurrently. The invariant under all of it: a served estimate is finite,
// a served probing cost is finite and non-negative, and nothing crashes,
// wedges, or leaks a probe thread. Run under both sanitizers:
//
//   MSCM_SANITIZE=thread  tests/run_sanitized.sh
//   MSCM_SANITIZE=address tests/run_sanitized.sh

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"
#include "sim/fault_injector.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr auto kCls = QueryClassId::kUnarySeqScan;
constexpr int kReaders = 3;
constexpr int kRequestsPerReader = 400;
constexpr int kReportsPerReporter = 150;

std::vector<double> FeatureVector(double x0) {
  std::vector<double> f(core::VariableSet::ForClass(kCls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, double x0,
                        double probing_cost = -1.0) {
  EstimateRequest request;
  request.site = site;
  request.class_id = kCls;
  request.features = FeatureVector(x0);
  request.probing_cost = probing_cost;
  return request;
}

// A well-behaved environment for the refresh daemon to sample — the fault
// injector sits between it and the daemon.
class LinearSource : public core::ObservationSource {
 public:
  explicit LinearSource(uint64_t seed) : rng_(seed) {}
  core::Observation Draw() override {
    core::Observation o;
    o.probing_cost = rng_.Uniform(0.3, 0.7);
    o.features.resize(core::VariableSet::ForClass(kCls).size());
    for (auto& f : o.features) f = rng_.Uniform(1.0, 10.0);
    o.cost = 2.0 * o.features[0];
    return o;
  }

 private:
  Rng rng_;
};

TEST(RuntimeChaosTest, AllFaultModesConcurrentlyNeverCorruptEstimates) {
  sim::FaultInjectorConfig fault_config;
  fault_config.seed = 0xc4a05;
  fault_config.throw_rate = 0.10;
  fault_config.nan_rate = 0.10;
  fault_config.inf_rate = 0.05;
  fault_config.negative_rate = 0.05;
  fault_config.hang_rate = 0.02;
  fault_config.delay_rate = 0.10;
  fault_config.delay = milliseconds(1);
  // Declared before the service/daemon so it is destroyed last; its
  // destructor releases any probe or sampler still parked in a hang.
  sim::FaultInjector injector(fault_config);

  EstimationServiceConfig config;
  config.worker_threads = 2;
  config.probe_ttl = seconds(60);
  config.probe_interval = milliseconds(1);
  config.probe_timeout = milliseconds(20);  // << hang duration: hangs abandon
  config.probe_failure_retry = milliseconds(1);
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = milliseconds(50);
  config.cache.capacity_per_thread = 256;
  EstimationService service(config);

  const std::vector<std::string> sites = {"alpha", "beta"};
  for (const std::string& site : sites) {
    service.RegisterModel(site, test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
    // Heap-shared probe state: abandoned probe threads may outlive this
    // stack frame and must not touch freed memory.
    auto value = std::make_shared<std::atomic<double>>(0.5);
    service.RegisterSite(site,
                         injector.WrapProbe([value] { return value->load(); }));
    // Land one clean probe so every site has a last known state; early
    // attempts may be faulted (and may even trip the breaker briefly).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!service.CurrentProbe(site).has_value &&
           std::chrono::steady_clock::now() < deadline) {
      service.ProbeNow(site);
      std::this_thread::sleep_for(milliseconds(1));
    }
    ASSERT_TRUE(service.CurrentProbe(site).has_value) << site;
  }

  // The refresh daemon samples each site through the same fault injector.
  LinearSource inner_alpha(71), inner_beta(73);
  sim::FaultyObservationSource faulty_alpha(&inner_alpha, &injector);
  sim::FaultyObservationSource faulty_beta(&inner_beta, &injector);
  ModelRefreshConfig refresh_config;
  refresh_config.min_reports = 16;
  refresh_config.drift_window = 16;
  refresh_config.refresh_cooldown = milliseconds(1);
  refresh_config.initial_backoff = milliseconds(1);
  refresh_config.rederive.build.algorithm = core::StateAlgorithm::kSingleState;
  refresh_config.rederive.build.sample_size = 30;
  ModelRefreshDaemon daemon(&service, refresh_config);
  daemon.Watch("alpha", kCls, &faulty_alpha);
  daemon.Watch("beta", kCls, &faulty_beta);

  std::atomic<bool> corrupted{false};
  std::vector<std::thread> threads;

  // Readers: single estimates, batches, the occasional explicit probe cost,
  // and a sprinkle of deliberately invalid requests. Every OK response must
  // carry a finite estimate and a sane probing cost, faults or not.
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(200 + static_cast<uint64_t>(t));
      for (int i = 0; i < kRequestsPerReader && !corrupted.load(); ++i) {
        const std::string& site = sites[i % sites.size()];
        EstimateRequest request = Request(site, rng.Uniform(1.0, 10.0));
        if (rng.NextDouble() < 0.2) {
          request.probing_cost = rng.Uniform(0.0, 2.0);
        }
        if (rng.NextDouble() < 0.05) {
          EstimateRequest invalid = request;
          invalid.features[0] = std::nan("");
          if (service.Estimate(invalid).status !=
              EstimateStatus::kInvalidRequest) {
            corrupted.store(true);
            ADD_FAILURE() << "NaN feature was not rejected";
          }
        }
        std::vector<EstimateResponse> responses;
        if (i % 8 == 0) {
          responses = service.EstimateBatch(
              {request, Request(site, rng.Uniform(1.0, 10.0))});
        } else {
          responses = {service.Estimate(request)};
        }
        for (const EstimateResponse& r : responses) {
          if (!r.ok()) continue;  // kNoProbe while degraded-with-no-state etc.
          if (!std::isfinite(r.estimate_seconds) ||
              !std::isfinite(r.probing_cost) || r.probing_cost < 0.0) {
            corrupted.store(true);
            ADD_FAILURE() << "corrupt estimate from " << site << ": est="
                          << r.estimate_seconds << " probe=" << r.probing_cost;
          }
        }
      }
    });
  }

  // Reporters: drive the refresh daemon so faulted sampling paths run
  // concurrently with everything else.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(300 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReportsPerReporter && !corrupted.load(); ++i) {
        const std::string& site = sites[(i + t) % sites.size()];
        const double x = rng.Uniform(1.0, 10.0);
        daemon.ReportObserved(site, kCls, FeatureVector(x), 2.0 * x);
        if (i % 16 == 0) std::this_thread::sleep_for(milliseconds(1));
      }
    });
  }

  // A prodder hammering explicit probes (exercising suppression, timeouts,
  // and half-open trials under contention with the background probers).
  threads.emplace_back([&] {
    for (int i = 0; i < 200 && !corrupted.load(); ++i) {
      service.ProbeNow(sites[i % sites.size()]);
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  for (auto& t : threads) t.join();

  // Unblock anything still parked in an injected hang (abandoned probe
  // threads, an in-flight refresh sample) before tearing down the daemon
  // and service; from here on hangs return immediately.
  injector.ReleaseHangs();

  // The machinery actually exercised its failure paths — and the cached
  // state every site serves from is still sane.
  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.probe_failures, 0u);
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.invalid_requests, 0u);
  EXPECT_GT(injector.injected(sim::FaultKind::kThrow), 0u);
  EXPECT_GT(injector.injected(sim::FaultKind::kNaN), 0u);
  for (const std::string& site : sites) {
    const ProbeReading reading = service.CurrentProbe(site);
    ASSERT_TRUE(reading.has_value) << site;
    EXPECT_TRUE(std::isfinite(reading.probing_cost)) << site;
    EXPECT_GE(reading.probing_cost, 0.0) << site;
  }
  EXPECT_FALSE(corrupted.load());
}

}  // namespace
}  // namespace mscm::runtime
