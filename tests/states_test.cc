#include "core/states.h"

#include <gtest/gtest.h>

namespace mscm::core {
namespace {

TEST(StatesTest, SingleStateMapsEverything) {
  const ContentionStates s = ContentionStates::Single();
  EXPECT_EQ(s.num_states(), 1);
  EXPECT_EQ(s.StateOf(-100.0), 0);
  EXPECT_EQ(s.StateOf(0.0), 0);
  EXPECT_EQ(s.StateOf(1e9), 0);
}

TEST(StatesTest, UniformPartitionBoundaries) {
  const ContentionStates s = ContentionStates::UniformPartition(0.0, 10.0, 4);
  EXPECT_EQ(s.num_states(), 4);
  ASSERT_EQ(s.boundaries().size(), 3u);
  EXPECT_DOUBLE_EQ(s.boundaries()[0], 2.5);
  EXPECT_DOUBLE_EQ(s.boundaries()[1], 5.0);
  EXPECT_DOUBLE_EQ(s.boundaries()[2], 7.5);
}

TEST(StatesTest, StateOfRespectsHalfOpenIntervals) {
  const ContentionStates s = ContentionStates::UniformPartition(0.0, 10.0, 2);
  // Boundary at 5.0; state i covers (b[i-1], b[i]].
  EXPECT_EQ(s.StateOf(4.9), 0);
  EXPECT_EQ(s.StateOf(5.0), 0);
  EXPECT_EQ(s.StateOf(5.0001), 1);
}

TEST(StatesTest, OutOfRangeCostsMapToEdgeStates) {
  const ContentionStates s = ContentionStates::UniformPartition(1.0, 2.0, 3);
  EXPECT_EQ(s.StateOf(0.0), 0);
  EXPECT_EQ(s.StateOf(100.0), 2);
}

TEST(StatesTest, MergeAdjacentRemovesBoundary) {
  ContentionStates s = ContentionStates::UniformPartition(0.0, 10.0, 4);
  s.MergeAdjacent(1);  // merge states 1 and 2 -> boundary 5.0 removed
  EXPECT_EQ(s.num_states(), 3);
  EXPECT_DOUBLE_EQ(s.boundaries()[0], 2.5);
  EXPECT_DOUBLE_EQ(s.boundaries()[1], 7.5);
}

TEST(StatesTest, MergeToSingle) {
  ContentionStates s = ContentionStates::UniformPartition(0.0, 1.0, 2);
  s.MergeAdjacent(0);
  EXPECT_EQ(s.num_states(), 1);
}

TEST(StatesTest, FromClustersUsesMidpoints) {
  std::vector<cluster::Cluster> clusters(2);
  clusters[0].centroid = 1.0;
  clusters[0].min = 0.5;
  clusters[0].max = 1.5;
  clusters[1].centroid = 5.0;
  clusters[1].min = 4.5;
  clusters[1].max = 5.5;
  const ContentionStates s = ContentionStates::FromClusters(clusters);
  EXPECT_EQ(s.num_states(), 2);
  EXPECT_DOUBLE_EQ(s.boundaries()[0], 3.0);  // (1.5 + 4.5) / 2
}

TEST(StatesTest, FromSingleClusterIsSingleState) {
  std::vector<cluster::Cluster> clusters(1);
  clusters[0].centroid = 2.0;
  const ContentionStates s = ContentionStates::FromClusters(clusters);
  EXPECT_EQ(s.num_states(), 1);
}

TEST(StatesTest, DegeneratePartitionRange) {
  // cmin == cmax: all boundaries coincide, but mapping still works.
  const ContentionStates s = ContentionStates::UniformPartition(3.0, 3.0, 3);
  EXPECT_EQ(s.num_states(), 3);
  EXPECT_EQ(s.StateOf(3.0), 0);
  EXPECT_EQ(s.StateOf(3.1), 2);
}

TEST(StatesTest, ToStringMentionsBoundaries) {
  const ContentionStates s = ContentionStates::UniformPartition(0.0, 2.0, 2);
  EXPECT_NE(s.ToString().find("1.0"), std::string::npos);
  EXPECT_EQ(ContentionStates::Single().ToString(), "[single state]");
}

}  // namespace
}  // namespace mscm::core
