#include "stats/correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mscm::stats {
namespace {

TEST(CorrelationTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(CorrelationTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationTest, ShiftAndScaleInvariant) {
  const std::vector<double> x = {1, 5, 2, 8, 3};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  const double base = PearsonCorrelation(x, y);
  std::vector<double> x2;
  for (double v : x) x2.push_back(10.0 * v - 3.0);
  EXPECT_NEAR(PearsonCorrelation(x2, y), base, 1e-12);
}

TEST(CorrelationTest, ConstantSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(CorrelationTest, TooFewPointsGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(CorrelationTest, KnownValue) {
  // Hand-computed: x = {1,2,3}, y = {1,2,4} -> r = 3/sqrt(2*4.666...)
  const double r = PearsonCorrelation({1, 2, 3}, {1, 2, 4});
  EXPECT_NEAR(r, 3.0 / std::sqrt(2.0 * (14.0 / 3.0)), 1e-12);
}

TEST(CorrelationTest, IndependentSamplesNearZero) {
  Rng rng(99);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Gaussian());
    y.push_back(rng.Gaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(CorrelationTest, Symmetric) {
  const std::vector<double> x = {1, 4, 2, 7};
  const std::vector<double> y = {3, 1, 5, 2};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), PearsonCorrelation(y, x));
}

TEST(CorrelationTest, BoundedByOne) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 10; ++i) {
      x.push_back(rng.Uniform(-5, 5));
      y.push_back(rng.Uniform(-5, 5));
    }
    const double r = PearsonCorrelation(x, y);
    EXPECT_LE(r, 1.0 + 1e-12);
    EXPECT_GE(r, -1.0 - 1e-12);
  }
}

}  // namespace
}  // namespace mscm::stats
