#include "core/cost_model.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

TEST(CostModelTest, RecoversPiecewiseCoefficientsExactly) {
  // Two states with very different intercepts and slopes, no noise.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 10.0};
  truth.slopes = {{0.5, 2.0}, {3.0, -1.0}};
  Rng rng(1);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1}, states,
                   QualitativeForm::kGeneral);
  EXPECT_NEAR(model.CoefficientFor(-1, 0), 1.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(-1, 1), 10.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(0, 0), 0.5, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(1, 0), 2.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(0, 1), 3.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(1, 1), -1.0, 1e-8);
  EXPECT_NEAR(model.r_squared(), 1.0, 1e-10);
}

TEST(CostModelTest, EstimateUsesProbingCostToPickState) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {0.0, 100.0};
  truth.slopes = {{1.0}, {1.0}};
  Rng rng(2);
  const ObservationSet obs = test::SyntheticObservations(truth, 120, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kGeneral);
  const std::vector<double> features = {5.0};
  EXPECT_NEAR(model.Estimate(features, 0.1), 5.0, 0.1);
  EXPECT_NEAR(model.Estimate(features, 0.9), 105.0, 0.1);
}

TEST(CostModelTest, EstimateFastMatchesEstimateEverywhere) {
  // The fused hot-path estimator must agree with the reference path across
  // states, forms, and feature values — including the negative clamp.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {-2.0, 10.0, 40.0};
  truth.slopes = {{0.5, 2.0}, {3.0, -1.0}, {7.0, 0.25}};
  Rng rng(11);
  const ObservationSet obs = test::SyntheticObservations(truth, 300, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 3);
  for (const QualitativeForm form :
       {QualitativeForm::kGeneral, QualitativeForm::kParallel}) {
    const CostModel model = FitCostModel(QueryClassId::kUnarySeqScan, obs,
                                         {0, 1}, states, form);
    for (double probe : {0.05, 0.4, 0.95}) {
      for (double f0 : {0.0, 1.0, 123.456}) {
        for (double f1 : {-4.0, 0.5, 88.0}) {
          const std::vector<double> features = {f0, f1};
          EXPECT_DOUBLE_EQ(model.EstimateFast(features, probe),
                           model.Estimate(features, probe));
        }
      }
    }
  }
}

TEST(CostModelTest, EstimateClampsNegativePredictions) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {-50.0};
  truth.slopes = {{1.0}};
  Rng rng(3);
  const ObservationSet obs = test::SyntheticObservations(truth, 60, rng);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  EXPECT_DOUBLE_EQ(model.Estimate({0.0}, 0.5), 0.0);
}

TEST(CostModelTest, SingleStateEqualsPlainRegression) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {2.0};
  truth.slopes = {{1.5, 0.5}};
  truth.noise_stddev = 0.1;
  Rng rng(4);
  const ObservationSet obs = test::SyntheticObservations(truth, 150, rng);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  EXPECT_NEAR(model.CoefficientFor(-1, 0), 2.0, 0.15);
  EXPECT_NEAR(model.CoefficientFor(0, 0), 1.5, 0.05);
  EXPECT_NEAR(model.CoefficientFor(1, 0), 0.5, 0.05);
}

TEST(CostModelTest, MultiStateBeatsSingleStateOnPiecewiseData) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 5.0, 20.0};
  truth.slopes = {{0.2}, {1.0}, {4.0}};
  truth.noise_stddev = 0.3;
  Rng rng(5);
  const ObservationSet obs = test::SyntheticObservations(truth, 400, rng);
  const CostModel single =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  const CostModel multi = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 3),
      QualitativeForm::kGeneral);
  EXPECT_GT(multi.r_squared(), single.r_squared() + 0.05);
  EXPECT_LT(multi.standard_error(), single.standard_error());
}

TEST(CostModelTest, GeneralFormBeatsParallelWhenSlopesChange) {
  // Slopes differ across states; intercept identical — parallel cannot fit.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 1.0};
  truth.slopes = {{0.5}, {5.0}};
  truth.noise_stddev = 0.1;
  Rng rng(6);
  const ObservationSet obs = test::SyntheticObservations(truth, 300, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel parallel =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kParallel);
  const CostModel general =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kGeneral);
  EXPECT_GT(general.r_squared(), parallel.r_squared() + 0.01);
}

TEST(CostModelTest, FTestSignificantOnRealRelationship) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 3.0};
  truth.slopes = {{2.0}, {4.0}};
  truth.noise_stddev = 0.5;
  Rng rng(7);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  EXPECT_LT(model.f_pvalue(), 0.01);  // significance level in the paper
}

TEST(CostModelTest, ToStringShowsPerStateEquations) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 2.0};
  truth.slopes = {{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}};
  Rng rng(8);
  const ObservationSet obs = test::SyntheticObservations(truth, 150, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0, 1, 2},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  const std::string s =
      model.ToString(VariableSet::ForClass(QueryClassId::kUnarySeqScan));
  EXPECT_NE(s.find("state 0"), std::string::npos);
  EXPECT_NE(s.find("state 1"), std::string::npos);
  EXPECT_NE(s.find("N_t"), std::string::npos);
  EXPECT_NE(s.find("R^2"), std::string::npos);
}

CostModel TwoStateModel(Rng& rng) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 4.0};
  truth.slopes = {{0.5, 0.2}, {1.5, 0.6}};
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  return FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1},
                      ContentionStates::UniformPartition(0.0, 1.0, 2),
                      QualitativeForm::kGeneral);
}

TEST(CostModelTest, ApplyFeedbackBumpsGenerationAndMovesOnlyThatState) {
  Rng rng(21);
  const CostModel base = TwoStateModel(rng);
  EXPECT_EQ(base.generation(), 0u);

  const std::vector<double> features = {3.0, 4.0};
  const auto adapted = base.ApplyFeedback(/*state=*/1, features,
                                          /*actual=*/100.0);
  ASSERT_TRUE(adapted.has_value());
  EXPECT_EQ(adapted->generation(), 1u);
  EXPECT_EQ(adapted->adaptation().states.count(1), 1u);
  EXPECT_EQ(adapted->adaptation().states.count(0), 0u);

  // The untouched state's compiled row is bit-identical: cached estimates
  // for other states survive an adaptation swap value-correct.
  const double* row0_before = base.compiled().row(0);
  const double* row0_after = adapted->compiled().row(0);
  for (size_t j = 0; j < 3; ++j) EXPECT_EQ(row0_before[j], row0_after[j]);

  // The fed state's equation moved toward the reported actual.
  const double before = base.EstimateFast(features, 0.9);
  const double after = adapted->EstimateFast(features, 0.9);
  EXPECT_GT(after, before);
}

TEST(CostModelTest, AdaptedEstimateMatchesEstimateFastBitExact) {
  Rng rng(22);
  CostModel model = TwoStateModel(rng);
  stats::RlsConfig config;
  config.forgetting = 0.98;
  for (int i = 0; i < 40; ++i) {
    const std::vector<double> features = {rng.Uniform(1, 10),
                                          rng.Uniform(1, 10)};
    const int state = i % 2;
    const double actual = 2.0 + 3.0 * features[0] + 0.5 * features[1];
    auto next = model.ApplyFeedback(state, features, actual, config);
    ASSERT_TRUE(next.has_value());
    model = std::move(*next);
  }
  EXPECT_EQ(model.generation(), 40u);
  // Reference and compiled paths stay bit-identical on adapted states.
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> features = {rng.Uniform(0, 12),
                                          rng.Uniform(0, 12)};
    const double probe = rng.NextDouble();
    EXPECT_EQ(model.Estimate(features, probe),
              model.EstimateFast(features, probe));
  }
}

// The ISSUE's parity pin: at λ = 1 under a diffuse prior, a state's
// RLS-adapted row must match a batch OLS refit over the same feedback
// window (different floating-point orderings, so a tight numeric
// differential rather than bit equality).
TEST(CostModelTest, ApplyFeedbackLambda1MatchesBatchRefitOnWindow) {
  Rng rng(23);
  CostModel model = TwoStateModel(rng);
  stats::RlsConfig config;
  config.forgetting = 1.0;
  config.initial_variance = 1e10;

  std::vector<std::vector<double>> window_rows;
  std::vector<double> window_actuals;
  for (int i = 0; i < 150; ++i) {
    const std::vector<double> features = {rng.Uniform(1, 10),
                                          rng.Uniform(1, 10)};
    const double actual =
        7.0 + 2.5 * features[0] - 0.75 * features[1] + rng.Gaussian(0.0, 0.1);
    auto next = model.ApplyFeedback(/*state=*/0, features, actual, config);
    ASSERT_TRUE(next.has_value());
    model = std::move(*next);
    window_rows.push_back({1.0, features[0], features[1]});
    window_actuals.push_back(actual);
  }

  const stats::OlsResult batch =
      stats::FitOls(stats::Matrix::FromRows(window_rows), window_actuals);
  const double* adapted_row = model.compiled().row(0);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(adapted_row[j], batch.coefficients[j], 1e-5)
        << "coefficient " << j;
  }
}

TEST(CostModelTest, ApplyFeedbackRejectsBadObservations) {
  Rng rng(24);
  const CostModel model = TwoStateModel(rng);
  EXPECT_FALSE(
      model.ApplyFeedback(0, {1.0, 2.0}, std::nan("")).has_value());
  EXPECT_FALSE(model
                   .ApplyFeedback(
                       0, {std::numeric_limits<double>::infinity(), 2.0}, 5.0)
                   .has_value());
}

}  // namespace
}  // namespace mscm::core
