#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

TEST(CostModelTest, RecoversPiecewiseCoefficientsExactly) {
  // Two states with very different intercepts and slopes, no noise.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 10.0};
  truth.slopes = {{0.5, 2.0}, {3.0, -1.0}};
  Rng rng(1);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1}, states,
                   QualitativeForm::kGeneral);
  EXPECT_NEAR(model.CoefficientFor(-1, 0), 1.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(-1, 1), 10.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(0, 0), 0.5, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(1, 0), 2.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(0, 1), 3.0, 1e-8);
  EXPECT_NEAR(model.CoefficientFor(1, 1), -1.0, 1e-8);
  EXPECT_NEAR(model.r_squared(), 1.0, 1e-10);
}

TEST(CostModelTest, EstimateUsesProbingCostToPickState) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {0.0, 100.0};
  truth.slopes = {{1.0}, {1.0}};
  Rng rng(2);
  const ObservationSet obs = test::SyntheticObservations(truth, 120, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kGeneral);
  const std::vector<double> features = {5.0};
  EXPECT_NEAR(model.Estimate(features, 0.1), 5.0, 0.1);
  EXPECT_NEAR(model.Estimate(features, 0.9), 105.0, 0.1);
}

TEST(CostModelTest, EstimateFastMatchesEstimateEverywhere) {
  // The fused hot-path estimator must agree with the reference path across
  // states, forms, and feature values — including the negative clamp.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {-2.0, 10.0, 40.0};
  truth.slopes = {{0.5, 2.0}, {3.0, -1.0}, {7.0, 0.25}};
  Rng rng(11);
  const ObservationSet obs = test::SyntheticObservations(truth, 300, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 3);
  for (const QualitativeForm form :
       {QualitativeForm::kGeneral, QualitativeForm::kParallel}) {
    const CostModel model = FitCostModel(QueryClassId::kUnarySeqScan, obs,
                                         {0, 1}, states, form);
    for (double probe : {0.05, 0.4, 0.95}) {
      for (double f0 : {0.0, 1.0, 123.456}) {
        for (double f1 : {-4.0, 0.5, 88.0}) {
          const std::vector<double> features = {f0, f1};
          EXPECT_DOUBLE_EQ(model.EstimateFast(features, probe),
                           model.Estimate(features, probe));
        }
      }
    }
  }
}

TEST(CostModelTest, EstimateClampsNegativePredictions) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {-50.0};
  truth.slopes = {{1.0}};
  Rng rng(3);
  const ObservationSet obs = test::SyntheticObservations(truth, 60, rng);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  EXPECT_DOUBLE_EQ(model.Estimate({0.0}, 0.5), 0.0);
}

TEST(CostModelTest, SingleStateEqualsPlainRegression) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {2.0};
  truth.slopes = {{1.5, 0.5}};
  truth.noise_stddev = 0.1;
  Rng rng(4);
  const ObservationSet obs = test::SyntheticObservations(truth, 150, rng);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  EXPECT_NEAR(model.CoefficientFor(-1, 0), 2.0, 0.15);
  EXPECT_NEAR(model.CoefficientFor(0, 0), 1.5, 0.05);
  EXPECT_NEAR(model.CoefficientFor(1, 0), 0.5, 0.05);
}

TEST(CostModelTest, MultiStateBeatsSingleStateOnPiecewiseData) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 5.0, 20.0};
  truth.slopes = {{0.2}, {1.0}, {4.0}};
  truth.noise_stddev = 0.3;
  Rng rng(5);
  const ObservationSet obs = test::SyntheticObservations(truth, 400, rng);
  const CostModel single =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  const CostModel multi = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 3),
      QualitativeForm::kGeneral);
  EXPECT_GT(multi.r_squared(), single.r_squared() + 0.05);
  EXPECT_LT(multi.standard_error(), single.standard_error());
}

TEST(CostModelTest, GeneralFormBeatsParallelWhenSlopesChange) {
  // Slopes differ across states; intercept identical — parallel cannot fit.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 1.0};
  truth.slopes = {{0.5}, {5.0}};
  truth.noise_stddev = 0.1;
  Rng rng(6);
  const ObservationSet obs = test::SyntheticObservations(truth, 300, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const CostModel parallel =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kParallel);
  const CostModel general =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0}, states,
                   QualitativeForm::kGeneral);
  EXPECT_GT(general.r_squared(), parallel.r_squared() + 0.01);
}

TEST(CostModelTest, FTestSignificantOnRealRelationship) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 3.0};
  truth.slopes = {{2.0}, {4.0}};
  truth.noise_stddev = 0.5;
  Rng rng(7);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  EXPECT_LT(model.f_pvalue(), 0.01);  // significance level in the paper
}

TEST(CostModelTest, ToStringShowsPerStateEquations) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 2.0};
  truth.slopes = {{1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}};
  Rng rng(8);
  const ObservationSet obs = test::SyntheticObservations(truth, 150, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0, 1, 2},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  const std::string s =
      model.ToString(VariableSet::ForClass(QueryClassId::kUnarySeqScan));
  EXPECT_NE(s.find("state 0"), std::string::npos);
  EXPECT_NE(s.find("state 1"), std::string::npos);
  EXPECT_NE(s.find("N_t"), std::string::npos);
  EXPECT_NE(s.find("R^2"), std::string::npos);
}

}  // namespace
}  // namespace mscm::core
