#include "sim/system_monitor.h"

#include <gtest/gtest.h>

namespace mscm::sim {
namespace {

MachineLoad LoadFor(double processes) {
  MachineLoad load;
  load.num_processes = processes;
  load.cpu_demand = processes * 0.22;
  load.io_rate = processes * 5.5;
  load.memory_mb = processes * 9.0;
  return load;
}

TEST(SystemMonitorTest, StatsScaleWithLoad) {
  SystemMonitor mon(MachineSpec{}, 1);
  const SystemStats idle = mon.Snapshot(LoadFor(2.0));
  const SystemStats busy = mon.Snapshot(LoadFor(100.0));
  EXPECT_GT(busy.reads_per_sec, idle.reads_per_sec);
  EXPECT_GT(busy.pct_disk_util, idle.pct_disk_util);
  EXPECT_GT(busy.mem_used, idle.mem_used);
  EXPECT_GT(busy.context_switches_per_sec, idle.context_switches_per_sec);
  EXPECT_LT(busy.pct_idle, idle.pct_idle);
}

TEST(SystemMonitorTest, PercentagesWithinBounds) {
  SystemMonitor mon(MachineSpec{}, 2);
  for (double p : {0.0, 10.0, 50.0, 120.0, 500.0}) {
    const SystemStats s = mon.Snapshot(LoadFor(p));
    EXPECT_GE(s.pct_idle, 0.0);
    EXPECT_GE(s.pct_user, 0.0);
    EXPECT_GE(s.pct_system, 0.0);
    EXPECT_LE(s.pct_disk_util, 120.0);  // noisy but near [0, 100]
    EXPECT_GE(s.mem_free, 0.0);
  }
}

TEST(SystemMonitorTest, MemoryAccounting) {
  MachineSpec machine;
  machine.memory_mb = 512.0;
  SystemMonitor mon(machine, 3);
  const SystemStats s = mon.Snapshot(LoadFor(10.0));
  EXPECT_DOUBLE_EQ(s.mem_total, 512.0);
  EXPECT_NEAR(s.mem_used + s.mem_free, 512.0, 1e-9);
}

TEST(SystemMonitorTest, SwapOnlyUnderOvercommit) {
  MachineSpec machine;
  machine.memory_mb = 512.0;
  SystemMonitor mon(machine, 4);
  const SystemStats light = mon.Snapshot(LoadFor(5.0));
  EXPECT_DOUBLE_EQ(light.swap_used, 0.0);
  const SystemStats heavy = mon.Snapshot(LoadFor(120.0));
  EXPECT_GT(heavy.swap_used, 0.0);
}

TEST(SystemMonitorTest, LoadAveragesConvergeWithTicks) {
  SystemMonitor mon(MachineSpec{}, 5);
  const MachineLoad load = LoadFor(40.0);
  for (int i = 0; i < 600; ++i) mon.Tick(load, 1.0);
  const SystemStats s = mon.Snapshot(load);
  // After 10 minutes at constant load, the 1- and 5-minute averages are
  // close to the process count.
  EXPECT_NEAR(s.load_avg_1, 40.0, 8.0);
  EXPECT_NEAR(s.load_avg_5, 40.0, 8.0);
}

TEST(SystemMonitorTest, FifteenMinuteAverageLags) {
  SystemMonitor mon(MachineSpec{}, 6);
  for (int i = 0; i < 60; ++i) mon.Tick(LoadFor(80.0), 1.0);
  const SystemStats s = mon.Snapshot(LoadFor(80.0));
  EXPECT_LT(s.load_avg_15, s.load_avg_1);
}

TEST(SystemMonitorTest, SnapshotsAreNoisy) {
  SystemMonitor mon(MachineSpec{}, 7);
  const MachineLoad load = LoadFor(50.0);
  const SystemStats a = mon.Snapshot(load);
  const SystemStats b = mon.Snapshot(load);
  EXPECT_NE(a.reads_per_sec, b.reads_per_sec);
}

}  // namespace
}  // namespace mscm::sim
