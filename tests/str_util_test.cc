#include "common/str_util.h"

#include <gtest/gtest.h>

namespace mscm {
namespace {

TEST(FormatTest, BasicSubstitution) {
  EXPECT_EQ(Format("x=%d y=%s", 42, "ok"), "x=42 y=ok");
}

TEST(FormatTest, EmptyFormat) { EXPECT_EQ(Format("%s", ""), ""); }

TEST(FormatTest, LongOutput) {
  const std::string s = Format("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleElement) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(JoinTest, Empty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(CompactDoubleTest, Zero) { EXPECT_EQ(CompactDouble(0.0), "0"); }

TEST(CompactDoubleTest, MidRangeUsesFixed) {
  EXPECT_EQ(CompactDouble(1.5), "1.500");
  EXPECT_EQ(CompactDouble(123.456), "123.5");
}

TEST(CompactDoubleTest, TinyUsesScientific) {
  const std::string s = CompactDouble(1.2e-7);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(CompactDoubleTest, HugeUsesScientific) {
  const std::string s = CompactDouble(3.4e9);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(CompactDoubleTest, NegativeValues) {
  EXPECT_EQ(CompactDouble(-2.25), "-2.250");
}

// Regression: decimals used to be significant_digits - integer_digits, with
// zero integer digits for sub-1 values — so 0.001234 at 3 significant digits
// printed "0.001" (one significant figure). Leading zeros after the decimal
// point must not consume significant figures.
TEST(CompactDoubleTest, SubOneValuesKeepSignificantFigures) {
  EXPECT_EQ(CompactDouble(0.001234, 3), "0.00123");
  EXPECT_EQ(CompactDouble(0.5), "0.5000");        // 4 sig figs (default)
  EXPECT_EQ(CompactDouble(0.09876, 3), "0.0988");
  EXPECT_EQ(CompactDouble(-0.001234, 3), "-0.00123");
  // The smallest fixed-notation magnitude still gets full precision.
  EXPECT_EQ(CompactDouble(0.001, 3), "0.00100");
}

}  // namespace
}  // namespace mscm
