// Property tests (parameterized) over the qualitative design layouts: for
// every (form, state count, variable count) combination, the layout must
// have the Table 2 column structure, rows must activate exactly the right
// terms, and ColumnOf must be consistent with Row.

#include <gtest/gtest.h>

#include "core/qualitative.h"
#include "common/rng.h"

namespace mscm::core {
namespace {

struct LayoutCase {
  QualitativeForm form;
  int num_states;
  int num_vars;
};

void PrintTo(const LayoutCase& c, std::ostream* os) {
  *os << ToString(c.form) << "/s" << c.num_states << "/v" << c.num_vars;
}

class QualitativePropertyTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(QualitativePropertyTest, ColumnCountMatchesTable2) {
  const auto [form, s, k] = GetParam();
  const DesignLayout layout = DesignLayout::Make(k, form, s);
  size_t expected = 0;
  const bool per_state_intercept =
      s > 1 && (form == QualitativeForm::kParallel ||
                form == QualitativeForm::kGeneral);
  const bool per_state_slopes =
      s > 1 && (form == QualitativeForm::kConcurrent ||
                form == QualitativeForm::kGeneral);
  expected += per_state_intercept ? static_cast<size_t>(s) : 1u;
  expected += static_cast<size_t>(k) * (per_state_slopes
                                            ? static_cast<size_t>(s)
                                            : 1u);
  EXPECT_EQ(layout.num_columns(), expected);
}

TEST_P(QualitativePropertyTest, RowActivatesExactlyOneTermPerVariable) {
  const auto [form, s, k] = GetParam();
  const DesignLayout layout = DesignLayout::Make(k, form, s);
  Rng rng(11);
  for (int state = 0; state < s; ++state) {
    std::vector<double> values;
    for (int v = 0; v < k; ++v) values.push_back(rng.Uniform(1.0, 9.0));
    const std::vector<double> row = layout.Row(values, state);
    ASSERT_EQ(row.size(), layout.num_columns());
    // Exactly one intercept-like entry equals 1.
    int intercept_hits = 0;
    std::vector<int> var_hits(static_cast<size_t>(k), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      const DesignTerm& t = layout.terms()[c];
      if (row[c] == 0.0) continue;
      if (t.variable == -1) {
        EXPECT_DOUBLE_EQ(row[c], 1.0);
        ++intercept_hits;
      } else {
        EXPECT_DOUBLE_EQ(row[c],
                         values[static_cast<size_t>(t.variable)]);
        ++var_hits[static_cast<size_t>(t.variable)];
      }
    }
    EXPECT_EQ(intercept_hits, 1) << "state " << state;
    for (int v = 0; v < k; ++v) {
      EXPECT_EQ(var_hits[static_cast<size_t>(v)], 1)
          << "variable " << v << " state " << state;
    }
  }
}

TEST_P(QualitativePropertyTest, ColumnOfConsistentWithRow) {
  const auto [form, s, k] = GetParam();
  const DesignLayout layout = DesignLayout::Make(k, form, s);
  for (int state = 0; state < s; ++state) {
    std::vector<double> values(static_cast<size_t>(k), 3.5);
    const std::vector<double> row = layout.Row(values, state);
    for (int v = -1; v < k; ++v) {
      const int col = layout.ColumnOf(v, state);
      ASSERT_GE(col, 0);
      // The column ColumnOf names must be active in this state's row.
      EXPECT_NE(row[static_cast<size_t>(col)], 0.0)
          << "var " << v << " state " << state;
    }
  }
}

TEST_P(QualitativePropertyTest, PredictionDecomposesPerState) {
  // For any coefficient vector, the prediction for a row in state s must
  // equal intercept(s) + sum_v coef(v, s) * x_v — i.e. the cell-means
  // parameterization reads back exactly.
  const auto [form, s, k] = GetParam();
  const DesignLayout layout = DesignLayout::Make(k, form, s);
  Rng rng(13);
  std::vector<double> beta(layout.num_columns());
  for (auto& b : beta) b = rng.Uniform(-2.0, 2.0);
  for (int state = 0; state < s; ++state) {
    std::vector<double> values;
    for (int v = 0; v < k; ++v) values.push_back(rng.Uniform(0.0, 5.0));
    const std::vector<double> row = layout.Row(values, state);
    double via_row = 0.0;
    for (size_t c = 0; c < row.size(); ++c) via_row += beta[c] * row[c];
    double via_coeffs =
        beta[static_cast<size_t>(layout.ColumnOf(-1, state))];
    for (int v = 0; v < k; ++v) {
      via_coeffs += beta[static_cast<size_t>(layout.ColumnOf(v, state))] *
                    values[static_cast<size_t>(v)];
    }
    EXPECT_NEAR(via_row, via_coeffs, 1e-12);
  }
}

std::vector<LayoutCase> AllCases() {
  std::vector<LayoutCase> cases;
  for (QualitativeForm form :
       {QualitativeForm::kCoincident, QualitativeForm::kParallel,
        QualitativeForm::kConcurrent, QualitativeForm::kGeneral}) {
    for (int s : {1, 2, 4, 6}) {
      for (int k : {1, 3, 6}) {
        cases.push_back({form, s, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFormsStatesVars, QualitativePropertyTest,
                         ::testing::ValuesIn(AllCases()));

}  // namespace
}  // namespace mscm::core
