#include "sim/network.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/global_planner.h"
#include "stats/descriptive.h"
#include "tests/test_util.h"

namespace mscm::sim {
namespace {

TEST(NetworkLinkTest, UtilizationStaysInBounds) {
  NetworkLinkConfig config;
  NetworkLink link(config, 1);
  for (int i = 0; i < 500; ++i) {
    link.Advance(10.0);
    EXPECT_GE(link.utilization(), 0.0);
    EXPECT_LE(link.utilization(), config.max_utilization);
  }
}

TEST(NetworkLinkTest, EffectiveBandwidthShrinksWithUtilization) {
  NetworkLinkConfig config;
  NetworkLink link(config, 2);
  link.SetUtilization(0.0);
  const double idle = link.EffectiveBandwidth();
  link.SetUtilization(0.8);
  const double busy = link.EffectiveBandwidth();
  EXPECT_DOUBLE_EQ(idle, config.bandwidth_bytes_per_sec);
  EXPECT_NEAR(busy, 0.2 * config.bandwidth_bytes_per_sec, 1e-9);
}

TEST(NetworkLinkTest, TransferTimeScalesWithBytes) {
  NetworkLinkConfig config;
  config.noise_cv = 0.0;
  NetworkLink link(config, 3);
  link.SetUtilization(0.0);
  const double small = link.Transfer(1e5);
  link.SetUtilization(0.0);
  const double big = link.Transfer(1e7);
  EXPECT_GT(big, small * 10.0);
}

TEST(NetworkLinkTest, CongestionSlowsTransfers) {
  NetworkLinkConfig config;
  config.noise_cv = 0.0;
  NetworkLink link(config, 4);
  link.SetUtilization(0.0);
  const double idle = link.Transfer(1e6);
  link.SetUtilization(0.9);
  const double busy = link.Transfer(1e6);
  EXPECT_GT(busy, idle * 5.0);
}

TEST(NetworkLinkTest, ProbeGaugesCongestion) {
  NetworkLinkConfig config;
  NetworkLink link(config, 5);
  std::vector<double> low;
  std::vector<double> high;
  for (int i = 0; i < 30; ++i) {
    link.SetUtilization(0.1);
    low.push_back(link.Probe());
    link.SetUtilization(0.85);
    high.push_back(link.Probe());
  }
  EXPECT_GT(stats::Mean(high), 2.0 * stats::Mean(low));
}

TEST(NetworkLinkTest, MeanReversionPullsTowardConfiguredMean) {
  NetworkLinkConfig config;
  config.mean_utilization = 0.5;
  config.utilization_walk_stddev = 0.0;  // pure reversion
  NetworkLink link(config, 6);
  link.SetUtilization(0.05);
  for (int i = 0; i < 100; ++i) link.Advance(60.0);
  EXPECT_NEAR(link.utilization(), 0.5, 0.02);
}

TEST(NetworkLinkTest, ZeroByteTransferStillPaysLatency) {
  NetworkLinkConfig config;
  config.noise_cv = 0.0;
  NetworkLink link(config, 7);
  link.SetUtilization(0.0);
  EXPECT_NEAR(link.Transfer(0.0), config.base_latency_seconds, 1e-9);
}

TEST(NetworkPlannerTest, ShippingCostCanFlipPlacement) {
  // Identical local models at two sites; the slower link loses.
  core::GlobalCatalog catalog;
  auto make_model = []() {
    core::ObservationSet obs;
    Rng rng(8);
    const size_t n = core::VariableSet::ForClass(
                          core::QueryClassId::kUnarySeqScan)
                          .size();
    for (int i = 0; i < 40; ++i) {
      core::Observation o;
      o.probing_cost = 0.5;
      o.features.assign(n, 0.0);
      o.features[0] = rng.Uniform(1.0, 10.0);
      o.cost = 2.0 * o.features[0];
      obs.push_back(o);
    }
    return core::FitCostModel(core::QueryClassId::kUnarySeqScan, obs, {0},
                              core::ContentionStates::Single(),
                              core::QualitativeForm::kGeneral);
  };
  catalog.Register("near", make_model());
  catalog.Register("far", make_model());

  core::ComponentQueryCandidate near_site;
  near_site.site = "near";
  near_site.features.assign(7, 0.0);
  near_site.features[0] = 5.0;
  near_site.probing_cost = 0.5;
  near_site.shipping_seconds = 0.2;
  core::ComponentQueryCandidate far_site = near_site;
  far_site.site = "far";
  far_site.shipping_seconds = 30.0;

  const core::PlacementDecision d =
      core::ChoosePlacement(catalog, {far_site, near_site});
  EXPECT_EQ(d.chosen, 1);
  EXPECT_NEAR(d.estimates[0] - d.estimates[1], 29.8, 1e-9);
}

}  // namespace
}  // namespace mscm::sim
