#include "engine/executor.h"

#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace mscm::engine {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(test::TinyDatabase(/*seed=*/11));
    executor_ = std::make_unique<Executor>(db_.get());
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
  PlannerRules rules_;
};

TEST_F(ExecutorTest, SeqScanResultMatchesNaiveCount) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    SelectQuery q;
    q.table = "R2";
    const Table* t = db_->FindTable("R2");
    const int col = static_cast<int>(
        rng.UniformInt(3, static_cast<int64_t>(t->schema().num_columns()) - 1));
    const auto& s = t->column_stats(static_cast<size_t>(col));
    const int64_t lo = rng.UniformInt(s.min, s.max);
    q.predicate.Add({col, CompareOp::kBetween, lo,
                     lo + rng.UniformInt(0, s.max - lo)});
    const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
    const SelectExecution exec = executor_->ExecuteSelect(q, plan);
    EXPECT_EQ(exec.result_rows, executor_->NaiveSelectCount(q));
  }
}

TEST_F(ExecutorTest, ClusteredScanResultMatchesNaiveCount) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    SelectQuery q;
    q.table = "R1";
    const Table* t = db_->FindTable("R1");
    const auto& s = t->column_stats(0);
    const int64_t lo = rng.UniformInt(s.min, s.max);
    q.predicate.Add({0, CompareOp::kBetween, lo,
                     lo + rng.UniformInt(0, s.max - lo)});
    // Extra residual condition half the time.
    if (trial % 2 == 0) {
      q.predicate.Add({3, CompareOp::kLe, t->column_stats(3).max / 2, 0});
    }
    const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
    ASSERT_EQ(plan.method, AccessMethod::kClusteredIndexScan);
    const SelectExecution exec = executor_->ExecuteSelect(q, plan);
    EXPECT_EQ(exec.result_rows, executor_->NaiveSelectCount(q));
    // Intermediate rows is what the index delivered; result can't exceed it.
    EXPECT_GE(exec.intermediate_rows, exec.result_rows);
  }
}

TEST_F(ExecutorTest, NonClusteredScanResultMatchesNaiveCount) {
  const Table* t = db_->FindTable("R3");
  const auto& s = t->column_stats(1);
  SelectQuery q;
  q.table = "R3";
  const int64_t span = s.max - s.min + 1;
  q.predicate.Add({1, CompareOp::kBetween, s.min, s.min + span / 60});
  const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
  ASSERT_EQ(plan.method, AccessMethod::kNonClusteredIndexScan);
  const SelectExecution exec = executor_->ExecuteSelect(q, plan);
  EXPECT_EQ(exec.result_rows, executor_->NaiveSelectCount(q));
  // Non-clustered scans pay one random I/O per *distinct* heap page touched:
  // bounded above by the fetched-tuple count and below by the minimum pages
  // that could hold them, and actually counted from the row placement.
  EXPECT_LE(exec.work.random_pages,
            static_cast<double>(exec.intermediate_rows));
  EXPECT_GE(exec.work.random_pages,
            std::ceil(static_cast<double>(exec.intermediate_rows) /
                      static_cast<double>(t->RowsPerPage())));
  std::unordered_set<size_t> pages;
  const auto& idx_cond = q.predicate.conditions()[0];
  for (size_t i = 0; i < t->num_rows(); ++i) {
    if (idx_cond.Matches(t->row(i))) pages.insert(t->PageOfRow(i));
  }
  EXPECT_DOUBLE_EQ(exec.work.random_pages,
                   static_cast<double>(pages.size()));
}

TEST_F(ExecutorTest, SeqScanWorkCountersMatchTableGeometry) {
  SelectQuery q;
  q.table = "R2";
  q.predicate.Add({3, CompareOp::kGe, 0, 0});
  const SelectExecution exec = executor_->ExecuteSelect(
      q, SelectPlan{AccessMethod::kSequentialScan, -1});
  const Table* t = db_->FindTable("R2");
  EXPECT_DOUBLE_EQ(exec.work.sequential_pages,
                   static_cast<double>(t->NumPages()));
  EXPECT_DOUBLE_EQ(exec.work.tuples_read,
                   static_cast<double>(t->num_rows()));
  EXPECT_EQ(exec.operand_rows, t->num_rows());
}

TEST_F(ExecutorTest, ProjectionControlsResultBytes) {
  SelectQuery narrow;
  narrow.table = "R2";
  narrow.projection = {0};
  SelectQuery wide;
  wide.table = "R2";
  const SelectPlan plan{AccessMethod::kSequentialScan, -1};
  const SelectExecution e_narrow = executor_->ExecuteSelect(narrow, plan);
  const SelectExecution e_wide = executor_->ExecuteSelect(wide, plan);
  EXPECT_LT(e_narrow.result_tuple_bytes, e_wide.result_tuple_bytes);
  EXPECT_EQ(e_narrow.result_rows, e_wide.result_rows);
  EXPECT_LT(e_narrow.work.result_bytes, e_wide.work.result_bytes);
}

TEST_F(ExecutorTest, JoinResultMatchesNaiveForAllMethods) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  const Table* l = db_->FindTable("R1");
  const Table* r = db_->FindTable("R2");
  q.left_predicate.Add(
      {3, CompareOp::kLe, l->column_stats(3).max / 2, 0});
  q.right_predicate.Add(
      {3, CompareOp::kLe, r->column_stats(3).max / 3, 0});

  const size_t naive = executor_->NaiveJoinCount(q);
  for (JoinMethod m : {JoinMethod::kBlockNestedLoop, JoinMethod::kSortMerge,
                       JoinMethod::kHashJoin}) {
    const JoinExecution exec = executor_->ExecuteJoin(q, JoinPlan{m, 0});
    EXPECT_EQ(exec.result_rows, naive) << ToString(m);
  }
}

TEST_F(ExecutorTest, IndexNestedLoopJoinMatchesNaive) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R3";
  q.left_column = 1;
  q.right_column = 1;  // right side has a non-clustered index on column 1
  const Table* l = db_->FindTable("R1");
  q.left_predicate.Add({3, CompareOp::kLe, l->column_stats(3).min + 5, 0});
  const JoinExecution exec =
      executor_->ExecuteJoin(q, JoinPlan{JoinMethod::kIndexNestedLoop, 0});
  EXPECT_EQ(exec.result_rows, executor_->NaiveJoinCount(q));
}

TEST_F(ExecutorTest, JoinQualifiedCountsAreFilterCounts) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  const Table* l = db_->FindTable("R1");
  q.left_predicate.Add({3, CompareOp::kLe, l->column_stats(3).max / 2, 0});
  const JoinExecution exec =
      executor_->ExecuteJoin(q, JoinPlan{JoinMethod::kHashJoin, 0});
  size_t expected_left = 0;
  for (const Row& row : l->rows()) {
    if (q.left_predicate.Matches(row)) ++expected_left;
  }
  EXPECT_EQ(exec.left_qualified, expected_left);
  EXPECT_EQ(exec.right_qualified, db_->FindTable("R2")->num_rows());
}

TEST_F(ExecutorTest, BlockNestedLoopChargesQuadraticCompares) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  const JoinExecution exec =
      executor_->ExecuteJoin(q, JoinPlan{JoinMethod::kBlockNestedLoop, 0});
  EXPECT_DOUBLE_EQ(exec.work.compare_ops,
                   static_cast<double>(exec.left_qualified) *
                       static_cast<double>(exec.right_qualified));
}

TEST_F(ExecutorTest, HashJoinChargesLinearHashOps) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  const JoinExecution exec =
      executor_->ExecuteJoin(q, JoinPlan{JoinMethod::kHashJoin, 0});
  EXPECT_DOUBLE_EQ(exec.work.hash_ops,
                   static_cast<double>(exec.left_qualified) +
                       static_cast<double>(exec.right_qualified));
  EXPECT_DOUBLE_EQ(exec.work.compare_ops, 0.0);
}

TEST_F(ExecutorTest, EmptyResultJoin) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  // Impossible predicate on the left side.
  q.left_predicate.Add({3, CompareOp::kLt, -1000, 0});
  const JoinExecution exec =
      executor_->ExecuteJoin(q, JoinPlan{JoinMethod::kHashJoin, 0});
  EXPECT_EQ(exec.result_rows, 0u);
  EXPECT_EQ(exec.left_qualified, 0u);
}

}  // namespace
}  // namespace mscm::engine
