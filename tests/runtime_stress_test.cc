// Multithreaded stress for the online runtime: writer threads re-register
// models (each registration publishes a fresh catalog snapshot) while
// reader threads estimate in batches and a background prober refreshes the
// contention cache. Run under MSCM_SANITIZE=thread to verify the
// snapshot/copy-on-write discipline is race-free:
//
//   cmake -B build-tsan -S . -DMSCM_SANITIZE=thread
//   cmake --build build-tsan -j --target runtime_stress_test
//   ./build-tsan/tests/runtime_stress_test

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/estimation_service.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;

constexpr int kWriters = 2;
constexpr int kReaders = 3;
constexpr int kRegistersPerWriter = 20;
constexpr int kBatchesPerReader = 30;
constexpr size_t kBatchSize = 64;

EstimateRequest MakeRequest(const std::string& site, QueryClassId cls,
                            double x0) {
  EstimateRequest request;
  request.site = site;
  request.class_id = cls;
  request.features.assign(core::VariableSet::ForClass(cls).size(), 0.0);
  request.features[0] = x0;
  return request;
}

TEST(RuntimeStressTest, ConcurrentWritersReadersAndProber) {
  EstimationServiceConfig config;
  // A tiny TTL + a fast background prober: readers hit fresh, stale, and
  // in-flight-swap paths all at once.
  config.probe_ttl = std::chrono::microseconds(500);
  config.probe_interval = std::chrono::milliseconds(1);
  config.worker_threads = 0;  // readers are the concurrency under test
  EstimationService service(config);

  const std::vector<std::string> sites = {"alpha", "beta"};
  const std::vector<QueryClassId> classes = {QueryClassId::kUnarySeqScan,
                                             QueryClassId::kJoinNoIndex};
  for (const std::string& site : sites) {
    for (QueryClassId cls : classes) {
      service.RegisterModel(site, test::PiecewiseLinearModel(cls, {2.0, 5.0}));
    }
    // Probe costs jitter around the state boundary so cached states flip.
    service.RegisterSite(site, [counter = std::make_shared<std::atomic<int>>(0)] {
      const int n = counter->fetch_add(1, std::memory_order_relaxed);
      return 0.8 + 0.4 * ((n % 2 == 0) ? 0.0 : 1.0);  // 0.8 or 1.2
    });
    ASSERT_TRUE(service.ProbeNow(site));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&service, &sites, &classes, w] {
      Rng rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < kRegistersPerWriter; ++i) {
        const std::string& site = sites[i % sites.size()];
        const QueryClassId cls = classes[(i + w) % classes.size()];
        const double slope = rng.Uniform(1.0, 9.0);
        service.RegisterModel(
            site, test::PiecewiseLinearModel(cls, {slope, slope * 2.0},
                                             /*seed=*/1 + i));
      }
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&service, &sites, &classes, &failed, r] {
      Rng rng(200 + static_cast<uint64_t>(r));
      for (int b = 0; b < kBatchesPerReader; ++b) {
        std::vector<EstimateRequest> requests;
        requests.reserve(kBatchSize);
        for (size_t i = 0; i < kBatchSize; ++i) {
          requests.push_back(
              MakeRequest(sites[i % sites.size()],
                          classes[(i / 2) % classes.size()],
                          rng.Uniform(1.0, 10.0)));
        }
        const std::vector<EstimateResponse> responses =
            service.EstimateBatch(requests);
        for (const EstimateResponse& response : responses) {
          // Models exist for every (site, class) and probes never fail, so
          // every response must be a finite, non-negative estimate.
          if (!response.ok() || !std::isfinite(response.estimate_seconds) ||
              response.estimate_seconds < 0.0 || response.state < 0) {
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const RuntimeStatsSnapshot stats = service.Stats();
  const uint64_t expected_requests =
      static_cast<uint64_t>(kReaders) * kBatchesPerReader * kBatchSize;
  EXPECT_EQ(stats.requests, expected_requests);
  EXPECT_EQ(stats.batches,
            static_cast<uint64_t>(kReaders) * kBatchesPerReader);
  EXPECT_EQ(stats.no_model, 0u);
  EXPECT_EQ(stats.probe_cache_misses, 0u);
  // Every served request consumed either a fresh or a stale cached probe.
  EXPECT_EQ(stats.probe_cache_hits + stats.probe_cache_stale,
            expected_requests);
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_GE(stats.probes, 2u);
  // Initial registrations + every writer registration published a snapshot.
  EXPECT_EQ(stats.catalog_swaps,
            sites.size() * classes.size() + kWriters * kRegistersPerWriter);
  EXPECT_EQ(stats.estimate_latency.count, expected_requests);
}

}  // namespace
}  // namespace mscm::runtime
