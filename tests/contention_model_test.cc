#include "sim/contention_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mscm::sim {
namespace {

MachineLoad LoadFor(double processes) {
  MachineLoad load;
  load.num_processes = processes;
  load.cpu_demand = processes * 0.22;
  load.io_rate = processes * 5.5;
  load.memory_mb = processes * 9.0;
  return load;
}

TEST(ContentionModelTest, IdleMachineNearUnityFactors) {
  const SlowdownFactors f =
      ComputeSlowdown(LoadFor(0.0), PerformanceProfile::Alpha());
  EXPECT_NEAR(f.cpu_factor, 1.0, 0.01);
  EXPECT_NEAR(f.rand_io_factor, 1.0, 0.01);
  EXPECT_NEAR(f.seq_io_factor, 1.0, 0.01);
  EXPECT_NEAR(f.init_factor, 1.0, 0.01);
  EXPECT_NEAR(f.buffer_hit, PerformanceProfile::Alpha().base_buffer_hit,
              0.01);
}

TEST(ContentionModelTest, FactorsMonotoneInLoad) {
  const PerformanceProfile profile = PerformanceProfile::Alpha();
  double prev_cpu = 0.0;
  double prev_io = 0.0;
  double prev_hit = 1e9;
  for (double p : {0.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    const SlowdownFactors f = ComputeSlowdown(LoadFor(p), profile);
    EXPECT_GE(f.cpu_factor, prev_cpu);
    EXPECT_GE(f.rand_io_factor, prev_io);
    EXPECT_LE(f.buffer_hit, prev_hit);
    prev_cpu = f.cpu_factor;
    prev_io = f.rand_io_factor;
    prev_hit = f.buffer_hit;
  }
}

TEST(ContentionModelTest, IoQueueingIsNonlinear) {
  // Equal process increments must produce growing I/O-factor increments —
  // the convexity that makes piecewise (multi-state) linear modelling win.
  const PerformanceProfile profile = PerformanceProfile::Alpha();
  const double f20 = ComputeSlowdown(LoadFor(20), profile).rand_io_factor;
  const double f60 = ComputeSlowdown(LoadFor(60), profile).rand_io_factor;
  const double f100 = ComputeSlowdown(LoadFor(100), profile).rand_io_factor;
  EXPECT_GT(f100 - f60, f60 - f20);
}

TEST(ContentionModelTest, UtilizationCapKeepsFactorsFinite) {
  // Both the utilization cap and the overcommit clamp must hold: even an
  // absurd background load produces bounded slowdowns.
  const SlowdownFactors f =
      ComputeSlowdown(LoadFor(10000.0), PerformanceProfile::Alpha());
  EXPECT_LT(f.rand_io_factor, 500.0);
  EXPECT_TRUE(std::isfinite(f.cpu_factor));
}

TEST(ContentionModelTest, BufferHitFloor) {
  const SlowdownFactors f =
      ComputeSlowdown(LoadFor(10000.0), PerformanceProfile::Alpha());
  EXPECT_GE(f.buffer_hit, 0.10);
}

TEST(ContentionModelTest, SequentialDegradesLessThanRandom) {
  const SlowdownFactors f =
      ComputeSlowdown(LoadFor(90.0), PerformanceProfile::Alpha());
  EXPECT_LT(f.seq_io_factor, f.rand_io_factor);
  EXPECT_GT(f.seq_io_factor, 1.0);
}

TEST(ContentionModelTest, ProfilesDifferInBuffering) {
  const MachineLoad load = LoadFor(30.0);
  const SlowdownFactors a =
      ComputeSlowdown(load, PerformanceProfile::Alpha());
  const SlowdownFactors b = ComputeSlowdown(load, PerformanceProfile::Beta());
  EXPECT_NE(a.buffer_hit, b.buffer_hit);
}

TEST(ContentionModelTest, MoreCoresReduceCpuFactor) {
  MachineSpec small;
  small.cpu_cores = 1.0;
  MachineSpec big;
  big.cpu_cores = 8.0;
  const MachineLoad load = LoadFor(40.0);
  const PerformanceProfile profile = PerformanceProfile::Alpha();
  EXPECT_GT(ComputeSlowdown(load, profile, small).cpu_factor,
            ComputeSlowdown(load, profile, big).cpu_factor);
}

}  // namespace
}  // namespace mscm::sim
