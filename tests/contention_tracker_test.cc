#include "runtime/contention_tracker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/clock.h"

namespace mscm::runtime {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

ContentionTrackerConfig ManualConfig(FakeClock* clock,
                                     std::chrono::nanoseconds ttl) {
  ContentionTrackerConfig config;
  config.site = "s";
  config.ttl = ttl;
  config.probe_interval = std::chrono::nanoseconds{0};  // manual probing
  config.clock = clock;
  return config;
}

TEST(ContentionTrackerTest, NoReadingBeforeFirstProbe) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  const ProbeReading reading = tracker.Current();
  EXPECT_FALSE(reading.has_value);
  EXPECT_EQ(reading.sequence, 0u);
}

TEST(ContentionTrackerTest, ProbeOnceCachesReading) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  EXPECT_TRUE(tracker.ProbeOnce());
  const ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_FALSE(reading.stale);
  EXPECT_EQ(reading.state, -1);  // no mapper installed
  EXPECT_EQ(reading.sequence, 1u);
  EXPECT_EQ(tracker.probes(), 1u);
}

TEST(ContentionTrackerTest, TtlMarksReadingStaleButStillServesIt) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  ASSERT_TRUE(tracker.ProbeOnce());

  clock.Advance(seconds(4));
  EXPECT_FALSE(tracker.Current().stale);  // within TTL

  clock.Advance(seconds(2));  // age 6s > 5s TTL
  ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);  // last-known state is still served …
  EXPECT_TRUE(reading.stale);      // … but flagged
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_GE(reading.age, seconds(6));

  // A fresh probe clears the staleness.
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_FALSE(tracker.Current().stale);
}

TEST(ContentionTrackerTest, FailedProbeKeepsLastKnownReading) {
  FakeClock clock;
  std::atomic<bool> fail{false};
  ContentionTracker tracker(
      ManualConfig(&clock, seconds(5)),
      [&fail] { return fail.load() ? std::nan("") : 0.7; });
  ASSERT_TRUE(tracker.ProbeOnce());

  fail.store(true);
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.failures(), 1u);

  // The dead probe did not clobber the cached reading.
  const ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_EQ(reading.sequence, 1u);

  // Negative costs are failures too.
  ContentionTracker negative(ManualConfig(&clock, seconds(5)),
                             [] { return -1.0; });
  EXPECT_FALSE(negative.ProbeOnce());
  EXPECT_FALSE(negative.Current().has_value);
}

TEST(ContentionTrackerTest, StateMapperRemapsCachedReading) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 1.4; });
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.Current().state, -1);

  tracker.SetStateMapper([](double cost) { return cost > 1.0 ? 1 : 0; });
  EXPECT_EQ(tracker.Current().state, 1);  // cached value remapped in place
}

TEST(ContentionTrackerTest, BackgroundProberRunsUntilStopped) {
  ContentionTrackerConfig config;
  config.site = "bg";
  config.ttl = seconds(5);
  config.probe_interval = milliseconds(1);
  // Real system clock: this exercises the actual thread lifecycle.
  ContentionTracker tracker(config, [] { return 0.3; });
  tracker.Start();

  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  while (tracker.probes() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GE(tracker.probes(), 3u);

  // After Stop, no further probes happen.
  const uint64_t frozen = tracker.probes();
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(tracker.probes(), frozen);
  EXPECT_TRUE(tracker.Current().has_value);
}

// Regression: Start and Stop used to race — Stop could read/join thread_
// while a concurrent Start was assigning it (a TSan-visible data race), and
// a Stop racing a Start could leave the new loop running with stop_ reset.
// Start/Stop now serialize on a mutex and a generation counter supersedes
// older loops. Run under MSCM_SANITIZE=thread to verify.
TEST(ContentionTrackerTest, ConcurrentStartStopIsSafe) {
  ContentionTrackerConfig config;
  config.site = "race";
  config.ttl = seconds(5);
  config.probe_interval = std::chrono::microseconds(200);
  ContentionTracker tracker(config, [] { return 0.3; });

  constexpr int kIters = 200;
  std::thread starter([&] {
    for (int i = 0; i < kIters; ++i) tracker.Start();
  });
  std::thread stopper([&] {
    for (int i = 0; i < kIters; ++i) tracker.Stop();
  });
  starter.join();
  stopper.join();

  // Whatever interleaving happened, a final Stop leaves no loop running.
  tracker.Stop();
  const uint64_t frozen = tracker.probes() + tracker.failures();
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(tracker.probes() + tracker.failures(), frozen);
}

TEST(ContentionTrackerTest, RestartAfterStopResumesProbing) {
  ContentionTrackerConfig config;
  config.site = "restart";
  config.ttl = seconds(5);
  config.probe_interval = milliseconds(1);
  ContentionTracker tracker(config, [] { return 0.3; });

  tracker.Start();
  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  while (tracker.probes() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  const uint64_t after_first_run = tracker.probes();
  EXPECT_GE(after_first_run, 1u);

  tracker.Start();
  while (tracker.probes() < after_first_run + 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GT(tracker.probes(), after_first_run);
}

// Regression: a probe that started earlier but finished later used to
// overwrite the fresher reading (and its timestamp) published by a faster,
// newer probe. Readings now carry the probe-*start* sequence and publication
// is skipped when the cached reading is newer.
TEST(ContentionTrackerTest, SlowProbeDoesNotClobberNewerReading) {
  FakeClock clock;
  std::atomic<int> calls{0};
  std::atomic<bool> release_slow{false};
  ContentionTracker tracker(ManualConfig(&clock, seconds(60)),
                            [&]() -> double {
                              if (calls.fetch_add(1) == 0) {
                                // First (slow) probe: measured under the old
                                // environment, delivered late.
                                while (!release_slow.load()) {
                                  std::this_thread::yield();
                                }
                                return 0.1;
                              }
                              return 0.9;
                            });

  std::thread slow([&] { EXPECT_TRUE(tracker.ProbeOnce()); });
  while (calls.load() < 1) std::this_thread::yield();

  // A newer, faster probe completes and publishes first.
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_DOUBLE_EQ(tracker.Current().probing_cost, 0.9);
  EXPECT_EQ(tracker.Current().sequence, 2u);

  clock.Advance(seconds(3));  // age accrues on the published reading

  release_slow.store(true);
  slow.join();

  // The late result was discarded: value, sequence and age all belong to
  // the newer probe.
  const ProbeReading reading = tracker.Current();
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.9);
  EXPECT_EQ(reading.sequence, 2u);
  EXPECT_GE(reading.age, seconds(3));
  EXPECT_EQ(tracker.probes(), 2u);
  EXPECT_EQ(tracker.discarded(), 1u);
}

TEST(ContentionTrackerTest, AdaptIntervalHalvesOnFlipGrowsWhenStable) {
  using std::chrono::nanoseconds;
  const nanoseconds min(1000), max(16000);

  // A state flip halves the interval, clamped at min.
  EXPECT_EQ(ContentionTracker::AdaptInterval(nanoseconds(8000), true, min, max),
            nanoseconds(4000));
  EXPECT_EQ(ContentionTracker::AdaptInterval(nanoseconds(1500), true, min, max),
            min);
  EXPECT_EQ(ContentionTracker::AdaptInterval(min, true, min, max), min);

  // Stability grows it by a quarter, clamped at max.
  EXPECT_EQ(
      ContentionTracker::AdaptInterval(nanoseconds(8000), false, min, max),
      nanoseconds(10000));
  EXPECT_EQ(
      ContentionTracker::AdaptInterval(nanoseconds(15000), false, min, max),
      max);
  EXPECT_EQ(ContentionTracker::AdaptInterval(max, false, min, max), max);

  // Sustained flapping walks any interval down to min; sustained quiet walks
  // it back up to max.
  nanoseconds interval = max;
  for (int i = 0; i < 10; ++i) {
    interval = ContentionTracker::AdaptInterval(interval, true, min, max);
  }
  EXPECT_EQ(interval, min);
  for (int i = 0; i < 40; ++i) {
    interval = ContentionTracker::AdaptInterval(interval, false, min, max);
  }
  EXPECT_EQ(interval, max);
}

TEST(ContentionTrackerTest, StateVersionTracksFlipsRemapsAndStaleness) {
  FakeClock clock;
  std::atomic<double> cost{0.5};
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [&cost] { return cost.load(); });
  tracker.SetStateMapper([](double c) { return c > 1.0 ? 1 : 0; });
  EXPECT_EQ(tracker.state_version(), 0u);
  EXPECT_TRUE(std::isnan(tracker.published_probing_cost()));

  // First reading publishes a state: version moves.
  ASSERT_TRUE(tracker.ProbeOnce());
  const uint64_t after_first = tracker.state_version();
  EXPECT_GT(after_first, 0u);
  EXPECT_DOUBLE_EQ(tracker.published_probing_cost(), 0.5);

  // Same state re-probed: no version movement, cost republished.
  cost.store(0.9);
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.state_version(), after_first);
  EXPECT_DOUBLE_EQ(tracker.published_probing_cost(), 0.9);

  // Crossing a partition boundary bumps.
  cost.store(1.5);
  ASSERT_TRUE(tracker.ProbeOnce());
  const uint64_t after_flip = tracker.state_version();
  EXPECT_GT(after_flip, after_first);

  // A remap that changes the mapped state bumps.
  tracker.SetStateMapper([](double c) { return c > 2.0 ? 1 : 0; });
  const uint64_t after_remap = tracker.state_version();
  EXPECT_GT(after_remap, after_flip);

  // Crossing the TTL bumps when the staleness is evaluated…
  clock.Advance(seconds(6));
  EXPECT_TRUE(tracker.Current().stale);
  const uint64_t after_stale = tracker.state_version();
  EXPECT_GT(after_stale, after_remap);
  // …and only once per transition.
  EXPECT_TRUE(tracker.Current().stale);
  EXPECT_EQ(tracker.state_version(), after_stale);

  // A successful same-state probe restores freshness without a bump.
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_FALSE(tracker.Current().stale);
  EXPECT_EQ(tracker.state_version(), after_stale);
}

TEST(ContentionTrackerTest, StateChangeCallbackFiresOnTransitionsOnly) {
  FakeClock clock;
  std::atomic<double> cost{0.5};
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [&cost] { return cost.load(); });
  tracker.SetStateMapper([](double c) { return c > 1.0 ? 1 : 0; });
  std::vector<std::pair<int, int>> transitions;
  tracker.SetStateChangeCallback([&transitions](int old_state, int new_state) {
    transitions.emplace_back(old_state, new_state);
  });

  ASSERT_TRUE(tracker.ProbeOnce());  // first reading: -1 → 0
  ASSERT_TRUE(tracker.ProbeOnce());  // same state: no callback
  cost.store(1.5);
  ASSERT_TRUE(tracker.ProbeOnce());  // flip: 0 → 1
  tracker.SetStateMapper([](double c) { return c > 2.0 ? 1 : 0; });  // 1 → 0

  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], std::make_pair(-1, 0));
  EXPECT_EQ(transitions[1], std::make_pair(0, 1));
  EXPECT_EQ(transitions[2], std::make_pair(1, 0));
}

// Regression: the failure check used to be `isnan(cost) || cost < 0`, which
// let +inf through — bit-cast into the published cost it was then served as
// a real probing cost (and mapped into the top contention state) forever.
TEST(ContentionTrackerTest, NonFiniteProbeCostsAreRejected) {
  FakeClock clock;
  for (const double bad :
       {std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(), std::nan("")}) {
    ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                              [bad] { return bad; });
    EXPECT_FALSE(tracker.ProbeOnce());
    EXPECT_EQ(tracker.failures(), 1u);
    EXPECT_FALSE(tracker.Current().has_value);
    EXPECT_TRUE(std::isnan(tracker.published_probing_cost()));
  }
}

// Regression: an exception thrown by the probe callable used to escape
// ProbeOnce — on the background loop that unwound (and with no handler,
// terminated) the prober thread, silently freezing the site's reading.
TEST(ContentionTrackerTest, ThrowingProbeIsAFailureNotADeadProber) {
  FakeClock clock;
  std::atomic<bool> fail{false};
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [&fail]() -> double {
                              if (fail.load()) throw std::runtime_error("dead");
                              return 0.7;
                            });
  ASSERT_TRUE(tracker.ProbeOnce());
  fail.store(true);
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.failures(), 1u);
  EXPECT_DOUBLE_EQ(tracker.Current().probing_cost, 0.7);  // reading kept
}

TEST(ContentionTrackerTest, BackgroundLoopSurvivesThrowingProbe) {
  ContentionTrackerConfig config;
  config.site = "flaky";
  config.ttl = seconds(5);
  config.probe_interval = milliseconds(1);
  std::atomic<int> calls{0};
  ContentionTracker tracker(config, [&calls]() -> double {
    if (calls.fetch_add(1) % 2 == 0) throw std::runtime_error("flaky");
    return 0.7;
  });
  tracker.Start();
  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  // The loop must keep alternating failure/success: a dead prober thread
  // would freeze both counters after the first throw.
  while ((tracker.probes() < 3 || tracker.failures() < 3) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GE(tracker.probes(), 3u);
  EXPECT_GE(tracker.failures(), 3u);
  EXPECT_DOUBLE_EQ(tracker.Current().probing_cost, 0.7);
}

TEST(ContentionTrackerTest, ProbeTimeoutAbandonsHungProbe) {
  FakeClock clock;
  ContentionTrackerConfig config = ManualConfig(&clock, seconds(5));
  config.probe_timeout = milliseconds(30);

  std::mutex hang_mutex;
  std::condition_variable hang_cv;
  bool release = false;
  ContentionTracker tracker(config, [&]() -> double {
    std::unique_lock<std::mutex> lock(hang_mutex);
    hang_cv.wait(lock, [&] { return release; });
    return 0.9;
  });

  // The hung probe is abandoned at the deadline: failure, timeout, no
  // publication — and ProbeOnce returned instead of blocking forever.
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.failures(), 1u);
  EXPECT_EQ(tracker.timeouts(), 1u);
  EXPECT_FALSE(tracker.Current().has_value);

  // Release the stranded probe thread; its late result must not publish
  // (the sequence ticket was burned at abandonment).
  {
    std::lock_guard<std::mutex> lock(hang_mutex);
    release = true;
    hang_cv.notify_all();
  }
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(tracker.Current().has_value);
}

// A probe that never returns must not wedge Stop() or the destructor: the
// deadline abandons it and all communication goes through heap-shared state
// the tracker never waits on.
TEST(ContentionTrackerTest, PermanentlyHungProbeNeverWedgesStop) {
  std::mutex hang_mutex;
  std::condition_variable hang_cv;
  bool release = false;
  {
    ContentionTrackerConfig config;
    config.site = "tarpit";
    config.ttl = seconds(5);
    config.probe_interval = milliseconds(1);
    config.probe_timeout = milliseconds(5);
    ContentionTracker tracker(config, [&]() -> double {
      std::unique_lock<std::mutex> lock(hang_mutex);
      hang_cv.wait(lock, [&] { return release; });
      return 0.9;
    });
    tracker.Start();
    const auto deadline = std::chrono::steady_clock::now() + seconds(10);
    while (tracker.timeouts() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EXPECT_GE(tracker.timeouts(), 2u);
    tracker.Stop();  // must return despite probes still blocked
  }
  // Tracker destroyed; release the stranded probe threads so they exit
  // before the test (and its captured locals) go away.
  {
    std::lock_guard<std::mutex> lock(hang_mutex);
    release = true;
    hang_cv.notify_all();
  }
  std::this_thread::sleep_for(milliseconds(20));
}

TEST(ContentionTrackerTest, FailedProbesRetryWithBackoffBeforeInterval) {
  ContentionTrackerConfig config;
  config.site = "retry";
  config.ttl = seconds(5);
  // The regular cadence is far too slow to accumulate failures in test
  // time: only the failure-retry backoff can drive the loop this fast.
  config.probe_interval = seconds(30);
  config.failure_retry = milliseconds(1);
  ContentionTracker tracker(config, []() -> double { return -1.0; });
  tracker.Start();
  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  while (tracker.failures() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GE(tracker.failures(), 4u);
}

TEST(ContentionTrackerTest, BreakerOpensSuppressesProbingAndRecovers) {
  FakeClock clock;
  ContentionTrackerConfig config = ManualConfig(&clock, seconds(60));
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration = seconds(5);
  std::atomic<bool> fail{false};
  ContentionTracker tracker(
      config, [&fail] { return fail.load() ? std::nan("") : 0.7; });
  std::atomic<int> callbacks{0};
  tracker.SetStateChangeCallback(
      [&callbacks](int, int) { callbacks.fetch_add(1); });

  ASSERT_TRUE(tracker.ProbeOnce());  // healthy reading published
  const uint64_t healthy_version = tracker.state_version();
  const int callbacks_after_first = callbacks.load();

  // Two consecutive failures open the breaker: the tracker is degraded, the
  // version moved (cached estimates must retire), the reading is kept.
  fail.store(true);
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_FALSE(tracker.degraded());
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_TRUE(tracker.degraded());
  EXPECT_EQ(tracker.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_GT(tracker.state_version(), healthy_version);
  EXPECT_GT(callbacks.load(), callbacks_after_first);
  ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);
  EXPECT_TRUE(reading.degraded);
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);

  // While open, probes are suppressed — the probe callable never runs.
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.suppressed(), 1u);
  EXPECT_EQ(tracker.failures(), 2u);  // unchanged: nothing actually probed

  // After the cooling-off period, the half-open trial runs and a success
  // closes the breaker: service restored, degraded flag cleared, version
  // bumped again so degraded-free responses replace the old cached ones.
  clock.Advance(seconds(6));
  fail.store(false);
  const uint64_t degraded_version = tracker.state_version();
  EXPECT_TRUE(tracker.ProbeOnce());
  EXPECT_FALSE(tracker.degraded());
  EXPECT_EQ(tracker.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_GT(tracker.state_version(), degraded_version);
  EXPECT_FALSE(tracker.Current().degraded);
}

TEST(ContentionTrackerTest, FailedHalfOpenTrialReopensBreaker) {
  FakeClock clock;
  ContentionTrackerConfig config = ManualConfig(&clock, seconds(60));
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration = seconds(5);
  ContentionTracker tracker(config, [] { return std::nan(""); });

  EXPECT_FALSE(tracker.ProbeOnce());  // opens
  EXPECT_TRUE(tracker.degraded());
  clock.Advance(seconds(6));
  EXPECT_FALSE(tracker.ProbeOnce());  // half-open trial runs and fails
  EXPECT_EQ(tracker.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(tracker.failures(), 2u);
  EXPECT_EQ(tracker.breaker().opens(), 2u);
}

TEST(ContentionTrackerTest, BackgroundAdaptiveCadenceBacksOffWhenStable) {
  ContentionTrackerConfig config;
  config.site = "adaptive";
  config.ttl = seconds(5);
  config.probe_interval = milliseconds(1);
  config.min_probe_interval = milliseconds(1);
  config.max_probe_interval = milliseconds(64);
  ContentionTracker tracker(config, [] { return 0.3; });
  EXPECT_EQ(tracker.current_probe_interval(), milliseconds(1));

  tracker.Start();
  // A constant probe value is maximally stable: the loop should back its
  // cadence off beyond the starting interval within a few probes.
  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  while (tracker.current_probe_interval() <= milliseconds(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GT(tracker.current_probe_interval(), milliseconds(1));
  EXPECT_LE(tracker.current_probe_interval(), milliseconds(64));
}

}  // namespace
}  // namespace mscm::runtime
