#include "runtime/contention_tracker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "runtime/clock.h"

namespace mscm::runtime {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

ContentionTrackerConfig ManualConfig(FakeClock* clock,
                                     std::chrono::nanoseconds ttl) {
  ContentionTrackerConfig config;
  config.site = "s";
  config.ttl = ttl;
  config.probe_interval = std::chrono::nanoseconds{0};  // manual probing
  config.clock = clock;
  return config;
}

TEST(ContentionTrackerTest, NoReadingBeforeFirstProbe) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  const ProbeReading reading = tracker.Current();
  EXPECT_FALSE(reading.has_value);
  EXPECT_EQ(reading.sequence, 0u);
}

TEST(ContentionTrackerTest, ProbeOnceCachesReading) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  EXPECT_TRUE(tracker.ProbeOnce());
  const ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_FALSE(reading.stale);
  EXPECT_EQ(reading.state, -1);  // no mapper installed
  EXPECT_EQ(reading.sequence, 1u);
  EXPECT_EQ(tracker.probes(), 1u);
}

TEST(ContentionTrackerTest, TtlMarksReadingStaleButStillServesIt) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 0.7; });
  ASSERT_TRUE(tracker.ProbeOnce());

  clock.Advance(seconds(4));
  EXPECT_FALSE(tracker.Current().stale);  // within TTL

  clock.Advance(seconds(2));  // age 6s > 5s TTL
  ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);  // last-known state is still served …
  EXPECT_TRUE(reading.stale);      // … but flagged
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_GE(reading.age, seconds(6));

  // A fresh probe clears the staleness.
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_FALSE(tracker.Current().stale);
}

TEST(ContentionTrackerTest, FailedProbeKeepsLastKnownReading) {
  FakeClock clock;
  std::atomic<bool> fail{false};
  ContentionTracker tracker(
      ManualConfig(&clock, seconds(5)),
      [&fail] { return fail.load() ? std::nan("") : 0.7; });
  ASSERT_TRUE(tracker.ProbeOnce());

  fail.store(true);
  EXPECT_FALSE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.failures(), 1u);

  // The dead probe did not clobber the cached reading.
  const ProbeReading reading = tracker.Current();
  EXPECT_TRUE(reading.has_value);
  EXPECT_DOUBLE_EQ(reading.probing_cost, 0.7);
  EXPECT_EQ(reading.sequence, 1u);

  // Negative costs are failures too.
  ContentionTracker negative(ManualConfig(&clock, seconds(5)),
                             [] { return -1.0; });
  EXPECT_FALSE(negative.ProbeOnce());
  EXPECT_FALSE(negative.Current().has_value);
}

TEST(ContentionTrackerTest, StateMapperRemapsCachedReading) {
  FakeClock clock;
  ContentionTracker tracker(ManualConfig(&clock, seconds(5)),
                            [] { return 1.4; });
  ASSERT_TRUE(tracker.ProbeOnce());
  EXPECT_EQ(tracker.Current().state, -1);

  tracker.SetStateMapper([](double cost) { return cost > 1.0 ? 1 : 0; });
  EXPECT_EQ(tracker.Current().state, 1);  // cached value remapped in place
}

TEST(ContentionTrackerTest, BackgroundProberRunsUntilStopped) {
  ContentionTrackerConfig config;
  config.site = "bg";
  config.ttl = seconds(5);
  config.probe_interval = milliseconds(1);
  // Real system clock: this exercises the actual thread lifecycle.
  ContentionTracker tracker(config, [] { return 0.3; });
  tracker.Start();

  const auto deadline = std::chrono::steady_clock::now() + seconds(10);
  while (tracker.probes() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  tracker.Stop();
  EXPECT_GE(tracker.probes(), 3u);

  // After Stop, no further probes happen.
  const uint64_t frozen = tracker.probes();
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(tracker.probes(), frozen);
  EXPECT_TRUE(tracker.Current().has_value);
}

}  // namespace
}  // namespace mscm::runtime
