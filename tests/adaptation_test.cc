// AdaptationController: the fast RLS tier of the two-tier adaptation path.
// Covers the publish path (generation bump, per-state row swap, estimate
// convergence), the shared-nothing record contract (zero shared atomic RMWs
// on the ring path, pinned with RmwProbe), per-state estimate-cache
// survival, lineage resets against full re-derivations, escalation into the
// refresh daemon, and the feedback ring's bounded-drop behaviour.

#include "runtime/adaptation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"
#include "runtime/rmw_probe.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

constexpr auto kCls = core::QueryClassId::kUnarySeqScan;

std::vector<double> FeatureVector(double x0) {
  std::vector<double> f(core::VariableSet::ForClass(kCls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, double x0,
                        double probing_cost) {
  EstimateRequest request;
  request.site = site;
  request.class_id = kCls;
  request.features = FeatureVector(x0);
  request.probing_cost = probing_cost;
  return request;
}

FeedbackReport Report(const std::string& site, double x0, double actual,
                      double probing_cost) {
  FeedbackReport report;
  report.site = site;
  report.class_id = kCls;
  report.features = FeatureVector(x0);
  report.actual_cost = actual;
  report.probing_cost = probing_cost;
  return report;
}

// Tight deterministic config: tiny publish threshold, generous escalation
// thresholds so only the paths under test fire.
AdaptationConfig TestConfig() {
  AdaptationConfig config;
  config.min_updates_to_publish = 8;
  config.rls.forgetting = 0.98;
  config.stall_window = 100000;
  config.drift_threshold = 1.1;  // unreachable: total variation is <= 1
  config.min_samples_for_drift = 100000;
  return config;
}

TEST(AdaptationControllerTest, PublishesAdaptedRowAndBumpsGeneration) {
  EstimationService service;
  // State 0 serves 2x; the environment has drifted to 3x.
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
  AdaptationController controller(&service, nullptr, TestConfig());

  EXPECT_EQ(service.Estimate(Request("a", 4.0, 0.5)).model_generation, 0u);

  Rng rng(11);
  for (int i = 0; i < 32; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    ASSERT_TRUE(controller.Record(Report("a", x, 3.0 * x, 0.5)));
  }
  EXPECT_EQ(controller.DrainOnce(), 32u);

  const AdaptationStats stats = controller.Stats();
  EXPECT_EQ(stats.accepted, 32u);
  EXPECT_EQ(stats.drained, 32u);
  EXPECT_GE(stats.updates_applied, 8u);
  EXPECT_GE(stats.adaptations_published, 1u);
  EXPECT_EQ(stats.escalations, 0u);

  const EstimateResponse adapted = service.Estimate(Request("a", 4.0, 0.5));
  ASSERT_TRUE(adapted.ok());
  EXPECT_GE(adapted.model_generation, 1u);
  // The adapted row tracks the new environment, not the seed fit.
  EXPECT_NEAR(adapted.estimate_seconds, 12.0, 1.0);

  EXPECT_EQ(service.Stats().adaptations_applied,
            controller.Stats().adaptations_published);
}

TEST(AdaptationControllerTest, OnlyFedStateMovesOthersStayBitIdentical) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
  AdaptationController controller(&service, nullptr, TestConfig());

  const double before_state1 =
      service.Estimate(Request("a", 4.0, 1.5)).estimate_seconds;

  Rng rng(13);
  for (int i = 0; i < 32; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 3.0 * x, 0.5));  // state 0 only
  }
  controller.DrainOnce();
  ASSERT_GE(controller.Stats().adaptations_published, 1u);

  // State 1's row was not part of the swap: bit-identical serving.
  EXPECT_EQ(service.Estimate(Request("a", 4.0, 1.5)).estimate_seconds,
            before_state1);
  // State 0 moved.
  EXPECT_NE(service.Estimate(Request("a", 4.0, 0.5)).estimate_seconds, 8.0);
}

TEST(AdaptationControllerTest, RecordPathIsZeroSharedRmw) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationConfig config = TestConfig();
  config.buffer_capacity = 4096;
  AdaptationController controller(&service, nullptr, config);

  // Warm-up: creates this thread's ring (owner-created, one-time).
  ASSERT_TRUE(controller.Record(Report("a", 1.0, 2.0, 0.5)));

  const FeedbackReport report = Report("a", 2.0, 4.0, 0.5);
  const uint64_t before = RmwProbe::Current();
  for (int i = 0; i < 1000; ++i) controller.Record(report);
  EXPECT_EQ(RmwProbe::Current(), before);  // the PR 7 shared-nothing contract
}

TEST(AdaptationControllerTest, CacheEntriesForOtherStatesSurviveSwap) {
  EstimationServiceConfig service_config;
  service_config.cache.capacity_per_thread = 64;
  EstimationService service(service_config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
  std::atomic<double> probe{1.5};
  service.RegisterSite("a", [&] { return probe.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  // Prime a cached state-1 response (tracker-resolved probe).
  const EstimateRequest cached = Request("a", 4.0, -1.0);
  const double primed = service.Estimate(cached).estimate_seconds;
  ASSERT_TRUE(service.Estimate(cached).ok());
  const uint64_t hits_before = service.Stats().estimate_cache_hits;
  ASSERT_GE(hits_before, 1u);

  // Adapt state 0 only (explicit probing cost keeps the drain off the
  // tracker path).
  AdaptationController controller(&service, nullptr, TestConfig());
  Rng rng(17);
  for (int i = 0; i < 32; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 3.0 * x, 0.5));
  }
  controller.DrainOnce();
  ASSERT_GE(controller.Stats().adaptations_published, 1u);

  // The state-1 entry survived the swap: same value, served from the cache.
  EXPECT_EQ(service.Estimate(cached).estimate_seconds, primed);
  EXPECT_GT(service.Stats().estimate_cache_hits, hits_before);
}

TEST(AdaptationControllerTest, FullRederivePublishResetsLineage) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationController controller(&service, nullptr, TestConfig());

  Rng rng(19);
  for (int i = 0; i < 16; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 3.0 * x, 0.5));
  }
  controller.DrainOnce();
  ASSERT_GE(controller.Stats().adaptations_published, 1u);
  ASSERT_GE(service.Estimate(Request("a", 1.0, 0.5)).model_generation, 1u);

  // The slow tier lands: a full re-derivation resets the lineage to 0.
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {3.0}));
  EXPECT_EQ(service.Estimate(Request("a", 1.0, 0.5)).model_generation, 0u);

  // The next drain notices the new lineage, re-seeds, and keeps adapting
  // against it rather than resurrecting the orphaned accumulators.
  for (int i = 0; i < 16; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 4.0 * x, 0.5));
  }
  controller.DrainOnce();
  EXPECT_GE(controller.Stats().lineage_resets, 1u);
  const EstimateResponse after = service.Estimate(Request("a", 4.0, 0.5));
  EXPECT_GE(after.model_generation, 1u);
  EXPECT_NEAR(after.estimate_seconds, 16.0, 2.0);
}

TEST(AdaptationControllerTest, ErrorStallEscalatesToRefreshDaemon) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  ModelRefreshConfig daemon_config;
  daemon_config.rederive.build.algorithm = core::StateAlgorithm::kSingleState;
  daemon_config.rederive.build.sample_size = 60;
  ModelRefreshDaemon daemon(&service, daemon_config);
  // Watched source: the re-derivation samples the drifted environment.
  class : public core::ObservationSource {
   public:
    std::optional<core::Observation> TryDraw() override { return Draw(); }
    core::Observation Draw() override {
      core::Observation o;
      o.probing_cost = 0.5;
      o.features.resize(core::VariableSet::ForClass(kCls).size());
      for (auto& f : o.features) f = rng_.Uniform(1.0, 10.0);
      o.cost = 40.0 * o.features[0] * o.features[0];  // structurally different
      return o;
    }

   private:
    Rng rng_{23};
  } source;
  daemon.Watch("a", kCls, &source);

  AdaptationConfig config = TestConfig();
  config.stall_window = 8;
  config.stall_error_threshold = 0.5;
  config.min_updates_to_publish = 100000;  // never publish, only stall
  AdaptationController controller(&service, &daemon, config);

  // A quadratic environment a linear row cannot fit: the EWMA never
  // improves past the threshold, so the fast tier must hand over.
  Rng rng(29);
  for (int round = 0; round < 8 && controller.Stats().escalations == 0;
       ++round) {
    for (int i = 0; i < 16; ++i) {
      const double x = rng.Uniform(1.0, 10.0);
      controller.Record(Report("a", x, 40.0 * x * x, 0.5));
    }
    controller.DrainOnce();
  }
  EXPECT_GE(controller.Stats().escalations, 1u);
  EXPECT_GE(daemon.Stats().refreshes_scheduled, 1u);
  // Inline pool (zero workers): the re-derivation already ran.
  EXPECT_GE(daemon.Stats().refreshes_succeeded, 1u);
  // Escalation resets the lineage; the next report re-seeds.
  EXPECT_FALSE(controller.Status("a", kCls).seeded);
}

TEST(AdaptationControllerTest, StateDistributionDriftEscalates) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
  AdaptationConfig config = TestConfig();
  config.min_updates_to_publish = 100000;
  config.min_samples_for_drift = 8;
  config.drift_window = 8;
  config.drift_threshold = 0.6;
  AdaptationController controller(&service, nullptr, config);

  Rng rng(31);
  // Baseline: all state 0 (estimates are accurate — no error stall).
  for (int i = 0; i < 8; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 2.0 * x, 0.5));
  }
  controller.DrainOnce();
  EXPECT_EQ(controller.Stats().escalations, 0u);
  // The environment moves to state 1: recent window fully disjoint.
  for (int i = 0; i < 8; ++i) {
    const double x = rng.Uniform(1.0, 10.0);
    controller.Record(Report("a", x, 5.0 * x, 1.5));
  }
  controller.DrainOnce();
  EXPECT_GE(controller.Stats().escalations, 1u);
}

TEST(AdaptationControllerTest, CovarianceBlowUpEscalates) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationConfig config = TestConfig();
  config.min_updates_to_publish = 100000;
  config.rls.forgetting = 0.5;            // aggressive forgetting
  config.rls.covariance_trace_limit = 1e6;
  AdaptationController controller(&service, nullptr, config);

  // A persistently non-exciting regressor (x0 = 0) winds the covariance up
  // under heavy forgetting until the trace guard latches.
  for (int round = 0; round < 20 && controller.Stats().escalations == 0;
       ++round) {
    for (int i = 0; i < 16; ++i) {
      controller.Record(Report("a", 0.0, 1.0, 0.5));
    }
    controller.DrainOnce();
  }
  EXPECT_GE(controller.Stats().escalations, 1u);
}

TEST(AdaptationControllerTest, FullRingDropsInsteadOfBlocking) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationConfig config = TestConfig();
  config.buffer_capacity = 4;
  AdaptationController controller(&service, nullptr, config);

  for (int i = 0; i < 10; ++i) {
    controller.Record(Report("a", 1.0, 2.0, 0.5));
  }
  const AdaptationStats stats = controller.Stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.dropped, 6u);

  // Draining frees the ring for the next burst.
  EXPECT_EQ(controller.DrainOnce(), 4u);
  EXPECT_TRUE(controller.Record(Report("a", 1.0, 2.0, 0.5)));
}

TEST(AdaptationControllerTest, RejectsInvalidReportsFailClosed) {
  EstimationService service;
  AdaptationController controller(&service, nullptr, TestConfig());

  FeedbackReport nan_cost = Report("a", 1.0, 2.0, 0.5);
  nan_cost.actual_cost = std::nan("");
  EXPECT_FALSE(controller.Record(nan_cost));

  FeedbackReport negative = Report("a", 1.0, -1.0, 0.5);
  EXPECT_FALSE(controller.Record(negative));

  FeedbackReport inf_feature = Report("a", 1.0, 2.0, 0.5);
  inf_feature.features[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(controller.Record(inf_feature));

  FeedbackReport long_site = Report(std::string(100, 's'), 1.0, 2.0, 0.5);
  EXPECT_FALSE(controller.Record(long_site));

  FeedbackReport wide = Report("a", 1.0, 2.0, 0.5);
  wide.features.assign(AdaptationController::kMaxFeatures + 1, 1.0);
  EXPECT_FALSE(controller.Record(wide));

  EXPECT_EQ(controller.Stats().rejected, 5u);
  EXPECT_EQ(controller.Stats().accepted, 0u);
}

TEST(AdaptationControllerTest, ConcurrentRecordersWithBackgroundDrain) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
  AdaptationConfig config = TestConfig();
  config.start_thread = true;
  config.drain_interval = std::chrono::milliseconds(1);
  AdaptationController controller(&service, nullptr, config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&controller, &service, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const double x = rng.Uniform(1.0, 10.0);
        const double probe = (i % 2 == 0) ? 0.5 : 1.5;
        const double slope = (i % 2 == 0) ? 3.0 : 6.0;
        FeedbackReport report = Report("a", x, slope * x, probe);
        // Echo the generation the estimate was priced under (the client
        // contract); the background drain publishes concurrently, so an
        // unstamped report would read as ever-staler lineage.
        report.model_generation =
            service.Estimate(Request("a", x, probe)).model_generation;
        controller.Record(report);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  controller.Stop();  // drains once more

  const AdaptationStats stats = controller.Stats();
  EXPECT_EQ(stats.accepted + stats.dropped,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.drained, stats.accepted);
  EXPECT_GE(stats.adaptations_published, 1u);
  // Both fed states converged toward the shifted environment.
  EXPECT_NEAR(service.Estimate(Request("a", 4.0, 0.5)).estimate_seconds, 12.0,
              2.0);
  EXPECT_NEAR(service.Estimate(Request("a", 4.0, 1.5)).estimate_seconds, 24.0,
              4.0);
}

// Bumps "a"'s serving generation by `n` via direct adapted publishes.
void BumpGenerations(EstimationService& service, int n) {
  for (int i = 0; i < n; ++i) {
    const auto snapshot = service.CatalogSnapshot();
    const core::CostModel* current = snapshot->Find("a", kCls);
    ASSERT_NE(current, nullptr);
    const auto adapted = current->ApplyFeedback(0, FeatureVector(2.0), 7.0);
    ASSERT_TRUE(adapted.has_value());
    ASSERT_TRUE(service.ApplyAdaptedModel("a", *adapted,
                                          current->generation(), {0}));
  }
}

TEST(AdaptationControllerTest, StaleGenerationReportsDiscarded) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationConfig config = TestConfig();
  config.generation_discard_lag = 2;
  AdaptationController controller(&service, nullptr, config);

  BumpGenerations(service, 3);  // serving lineage is now generation 3

  // A straggler priced under the base fit: 3 generations behind, past the
  // discard threshold — it must never reach an estimator.
  FeedbackReport stale = Report("a", 2.0, 4.0, 0.5);
  stale.model_generation = 0;
  ASSERT_TRUE(controller.Record(stale));
  EXPECT_EQ(controller.DrainOnce(), 1u);

  const AdaptationStats stats = controller.Stats();
  EXPECT_EQ(stats.stale_gen_discarded, 1u);
  EXPECT_EQ(stats.updates_applied, 0u);
  EXPECT_EQ(stats.max_generation_lag, 3u);
  // Discard happens before group creation: nothing was pinned.
  EXPECT_EQ(controller.NumGroups(), 0u);
}

TEST(AdaptationControllerTest, LaggedReportsFoldInDownweighted) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  AdaptationConfig config = TestConfig();
  config.generation_discard_lag = 4;
  AdaptationController controller(&service, nullptr, config);

  BumpGenerations(service, 1);  // serving lineage is now generation 1

  // One generation behind: tolerated, but folded at reduced RLS weight.
  FeedbackReport lagged = Report("a", 2.0, 4.0, 0.5);
  lagged.model_generation = 0;
  ASSERT_TRUE(controller.Record(lagged));
  // A fresh report at the serving generation: full weight.
  FeedbackReport fresh = Report("a", 3.0, 6.0, 0.5);
  fresh.model_generation = 1;
  ASSERT_TRUE(controller.Record(fresh));
  EXPECT_EQ(controller.DrainOnce(), 2u);

  const AdaptationStats stats = controller.Stats();
  EXPECT_EQ(stats.stale_gen_discarded, 0u);
  EXPECT_EQ(stats.stale_gen_downweighted, 1u);
  EXPECT_EQ(stats.updates_applied, 2u);
  EXPECT_EQ(stats.max_generation_lag, 1u);
  // The key status surfaces the lag of the most recent fold.
  EXPECT_EQ(controller.Status("a", kCls).generation_lag, 0u);
}

TEST(AdaptationControllerTest, DetachSiteDropsGroupsAndStragglersDoNotLeak) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterModel("b", test::PiecewiseLinearModel(kCls, {3.0}));
  AdaptationController controller(&service, nullptr, TestConfig());

  controller.Record(Report("a", 2.0, 4.0, 0.5));
  controller.Record(Report("b", 2.0, 6.0, 0.5));
  controller.DrainOnce();
  EXPECT_EQ(controller.NumGroups(), 2u);

  controller.DetachSite("a");
  EXPECT_EQ(controller.NumGroups(), 1u);
  EXPECT_FALSE(controller.Status("a", kCls).seeded);
  EXPECT_TRUE(controller.Status("b", kCls).seeded);

  // Site retired for real: straggling feedback drains as ignored without
  // re-pinning a group (the pre-fix behaviour leaked one per key, forever).
  service.UnregisterSite("a");
  controller.Record(Report("a", 2.0, 4.0, 0.5));
  controller.DrainOnce();
  EXPECT_EQ(controller.NumGroups(), 1u);
  EXPECT_GE(controller.Stats().ignored, 1u);
}

TEST(EstimationServiceAdaptationTest, ApplyAdaptedModelGuardsLineage) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));

  const auto snapshot = service.CatalogSnapshot();
  const core::CostModel* current = snapshot->Find("a", kCls);
  ASSERT_NE(current, nullptr);
  const auto adapted =
      current->ApplyFeedback(0, FeatureVector(2.0), 7.0);
  ASSERT_TRUE(adapted.has_value());

  // Wrong expected generation: the publish is refused, nothing swaps.
  EXPECT_FALSE(service.ApplyAdaptedModel("a", *adapted, 5, {0}));
  EXPECT_EQ(service.Stats().adaptations_applied, 0u);
  // Unknown site: refused.
  EXPECT_FALSE(service.ApplyAdaptedModel("ghost", *adapted, 0, {0}));

  EXPECT_TRUE(service.ApplyAdaptedModel("a", *adapted, 0, {0}));
  EXPECT_EQ(service.Stats().adaptations_applied, 1u);
  EXPECT_EQ(service.Estimate(Request("a", 1.0, 0.5)).model_generation, 1u);

  // Replaying against the old lineage loses the race.
  EXPECT_FALSE(service.ApplyAdaptedModel("a", *adapted, 0, {0}));
}

TEST(EstimationServiceAdaptationTest, GenerationStampedOnBatchResponses) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));

  const auto snapshot = service.CatalogSnapshot();
  const auto adapted =
      snapshot->Find("a", kCls)->ApplyFeedback(0, FeatureVector(2.0), 7.0);
  ASSERT_TRUE(adapted.has_value());
  ASSERT_TRUE(service.ApplyAdaptedModel("a", *adapted, 0, {0}));

  std::vector<EstimateRequest> requests = {Request("a", 1.0, 0.5),
                                           Request("a", 2.0, 0.5),
                                           Request("a", 3.0, 0.5)};
  const auto responses = service.EstimateBatch(requests);
  for (const EstimateResponse& response : responses) {
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.model_generation, 1u);
  }
}

}  // namespace
}  // namespace mscm::runtime
