// Tests for prediction standard errors, t quantiles, and cost-model
// prediction intervals.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "stats/distributions.h"
#include "stats/ols.h"
#include "tests/test_util.h"

namespace mscm {
namespace {

TEST(StudentTQuantileTest, MatchesTables) {
  // t(0.975; 10) = 2.2281 -> upper quantile at alpha = 0.025.
  EXPECT_NEAR(stats::StudentTUpperQuantile(0.025, 10), 2.2281, 1e-3);
  EXPECT_NEAR(stats::StudentTUpperQuantile(0.05, 30), 1.6973, 1e-3);
  // Large df approaches the normal quantile 1.96.
  EXPECT_NEAR(stats::StudentTUpperQuantile(0.025, 100000), 1.96, 0.01);
}

TEST(StudentTQuantileTest, InvertsCdf) {
  for (double alpha : {0.1, 0.05, 0.01}) {
    const double t = stats::StudentTUpperQuantile(alpha, 17);
    EXPECT_NEAR(1.0 - stats::StudentTCdf(t, 17), alpha, 1e-6);
  }
}

TEST(PredictionSeTest, GrowsAwayFromDataCenter) {
  Rng rng(1);
  stats::Matrix x(60, 2);
  std::vector<double> y(60);
  for (size_t i = 0; i < 60; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = rng.Uniform(4.0, 6.0);  // data centered at 5
    y[i] = 2.0 + x(i, 1) + rng.Gaussian(0, 0.5);
  }
  const stats::OlsResult fit = stats::FitOls(x, y);
  const double se_center = fit.PredictionStandardError({1.0, 5.0});
  const double se_far = fit.PredictionStandardError({1.0, 50.0});
  EXPECT_GT(se_far, se_center * 2.0);
  // At the center, prediction SE is close to (slightly above) the SEE.
  EXPECT_GT(se_center, fit.standard_error);
  EXPECT_LT(se_center, fit.standard_error * 1.1);
}

TEST(PredictionSeTest, ZeroWhenCovarianceAbsent) {
  stats::OlsResult fit;
  fit.coefficients = {1.0, 2.0};
  fit.standard_error = 3.0;
  EXPECT_DOUBLE_EQ(fit.PredictionStandardError({1.0, 1.0}), 0.0);
}

TEST(CostModelIntervalTest, CoversTrueCostsAtNominalRate) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {2.0, 10.0};
  truth.slopes = {{1.0}, {4.0}};
  truth.noise_stddev = 0.8;
  Rng rng(2);
  const core::ObservationSet train =
      test::SyntheticObservations(truth, 300, rng);
  const core::CostModel model = core::FitCostModel(
      core::QueryClassId::kUnarySeqScan, train, {0},
      core::ContentionStates::UniformPartition(0.0, 1.0, 2),
      core::QualitativeForm::kGeneral);

  const core::ObservationSet test =
      test::SyntheticObservations(truth, 400, rng);
  int covered = 0;
  for (const auto& obs : test) {
    const auto interval =
        model.EstimateWithInterval(obs.features, obs.probing_cost, 0.05);
    ASSERT_TRUE(interval.has_value());
    EXPECT_LE(interval->low, interval->estimate + 1e-9);
    EXPECT_GE(interval->high, interval->estimate - 1e-9);
    if (obs.cost >= interval->low && obs.cost <= interval->high) ++covered;
  }
  // Nominal 95% coverage; allow sampling slack.
  const double coverage = static_cast<double>(covered) / 400.0;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.995);
}

TEST(CostModelIntervalTest, TighterAlphaWidensInterval) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0};
  truth.slopes = {{2.0}};
  truth.noise_stddev = 0.5;
  Rng rng(3);
  const core::ObservationSet train =
      test::SyntheticObservations(truth, 150, rng);
  const core::CostModel model = core::FitCostModel(
      core::QueryClassId::kUnarySeqScan, train, {0},
      core::ContentionStates::Single(), core::QualitativeForm::kGeneral);
  const std::vector<double> features = {5.0};
  const auto wide = model.EstimateWithInterval(features, 0.5, 0.01);
  const auto narrow = model.EstimateWithInterval(features, 0.5, 0.20);
  ASSERT_TRUE(wide.has_value());
  ASSERT_TRUE(narrow.has_value());
  EXPECT_GT(wide->high - wide->low, narrow->high - narrow->low);
}

TEST(CostModelIntervalTest, NulloptForPersistedModels) {
  // A model reconstructed without covariance structure has no interval to
  // offer — nullopt, not a silently degenerate point interval.
  stats::OlsResult fit;
  fit.coefficients = {1.0, 2.0};
  fit.standard_error = 1.0;
  fit.n = 100;
  fit.p = 2;
  const core::CostModel model(
      core::QueryClassId::kUnarySeqScan, {0}, core::ContentionStates::Single(),
      core::DesignLayout::Make(1, core::QualitativeForm::kGeneral, 1),
      std::move(fit));
  EXPECT_FALSE(model.EstimateWithInterval({3.0}, 0.5).has_value());
}

}  // namespace
}  // namespace mscm
