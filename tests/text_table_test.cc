#include "common/text_table.h"

#include <gtest/gtest.h>

namespace mscm {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"h", "i"});
  t.AddRow({"longvalue", "1"});
  t.AddRow({"s", "2"});
  const std::string out = t.Render();
  // Every line has the same length in an aligned table.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const size_t len = eol - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = eol + 1;
  }
}

TEST(TextTableTest, SeparatorRendered) {
  TextTable t({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // 3 frame separators + 1 explicit one.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TextTableTest, NumRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace mscm
