#include "core/catalog.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

CostModel MakeModel(QueryClassId cls, double slope) {
  ObservationSet obs;
  Rng rng(1);
  const size_t n_features = VariableSet::ForClass(cls).size();
  for (int i = 0; i < 40; ++i) {
    Observation o;
    o.probing_cost = 0.5;
    o.features.assign(n_features, 0.0);
    o.features[0] = rng.Uniform(1.0, 10.0);
    o.cost = slope * o.features[0];
    obs.push_back(o);
  }
  return FitCostModel(cls, obs, {0}, ContentionStates::Single(),
                      QualitativeForm::kGeneral);
}

TEST(CatalogTest, RegisterAndFind) {
  GlobalCatalog catalog;
  catalog.Register("siteA", MakeModel(QueryClassId::kUnarySeqScan, 2.0));
  EXPECT_NE(catalog.Find("siteA", QueryClassId::kUnarySeqScan), nullptr);
  EXPECT_EQ(catalog.Find("siteA", QueryClassId::kJoinNoIndex), nullptr);
  EXPECT_EQ(catalog.Find("siteB", QueryClassId::kUnarySeqScan), nullptr);
}

TEST(CatalogTest, ReplaceOverwrites) {
  GlobalCatalog catalog;
  catalog.Register("s", MakeModel(QueryClassId::kUnarySeqScan, 2.0));
  catalog.Register("s", MakeModel(QueryClassId::kUnarySeqScan, 5.0));
  EXPECT_EQ(catalog.size(), 1u);
  const CostModel* m = catalog.Find("s", QueryClassId::kUnarySeqScan);
  ASSERT_NE(m, nullptr);
  std::vector<double> features(
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size(), 0.0);
  features[0] = 2.0;
  EXPECT_NEAR(m->Estimate(features, 0.5), 10.0, 0.01);
}

TEST(CatalogTest, FindCopyOutlivesReplacement) {
  GlobalCatalog catalog;
  catalog.Register("s", MakeModel(QueryClassId::kUnarySeqScan, 2.0));
  const std::optional<CostModel> copy =
      catalog.FindCopy("s", QueryClassId::kUnarySeqScan);
  ASSERT_TRUE(copy.has_value());
  EXPECT_FALSE(
      catalog.FindCopy("s", QueryClassId::kJoinNoIndex).has_value());

  // Replacing the model invalidates Find() pointers for the key, but the
  // copy keeps the old coefficients.
  catalog.Register("s", MakeModel(QueryClassId::kUnarySeqScan, 5.0));
  std::vector<double> features(
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size(), 0.0);
  features[0] = 2.0;
  EXPECT_NEAR(copy->Estimate(features, 0.5), 4.0, 0.01);
}

TEST(CatalogTest, MultipleSitesAndClasses) {
  GlobalCatalog catalog;
  catalog.Register("a", MakeModel(QueryClassId::kUnarySeqScan, 1.0));
  catalog.Register("a", MakeModel(QueryClassId::kJoinNoIndex, 1.0));
  catalog.Register("b", MakeModel(QueryClassId::kUnarySeqScan, 1.0));
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.Entries().size(), 3u);
}

}  // namespace
}  // namespace mscm::core
