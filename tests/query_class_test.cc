#include "core/query_class.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

class QueryClassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>(test::TinyDatabase(/*seed=*/21));
  }
  std::unique_ptr<engine::Database> db_;
  engine::PlannerRules rules_;
};

TEST_F(QueryClassTest, SeqScanQueryIsG1) {
  engine::SelectQuery q;
  q.table = "R2";
  q.predicate.Add({4, engine::CompareOp::kGt, 100, 0});
  EXPECT_EQ(ClassifySelect(*db_, q, rules_), QueryClassId::kUnarySeqScan);
}

TEST_F(QueryClassTest, ClusteredRangeQueryIsClusteredClass) {
  engine::SelectQuery q;
  q.table = "R1";
  q.predicate.Add({0, engine::CompareOp::kBetween, 0, 100});
  EXPECT_EQ(ClassifySelect(*db_, q, rules_),
            QueryClassId::kUnaryClusteredIndex);
}

TEST_F(QueryClassTest, SelectiveNonClusteredRangeIsG2) {
  const engine::Table* t = db_->FindTable("R1");
  const auto& s = t->column_stats(1);
  engine::SelectQuery q;
  q.table = "R1";
  q.predicate.Add({1, engine::CompareOp::kBetween, s.min,
                   s.min + (s.max - s.min) / 60});
  EXPECT_EQ(ClassifySelect(*db_, q, rules_),
            QueryClassId::kUnaryNonClusteredIndex);
}

TEST_F(QueryClassTest, UnindexedJoinIsG3) {
  engine::JoinQuery q;
  q.left_table = "R3";
  q.right_table = "R4";
  q.left_column = 4;
  q.right_column = 4;
  EXPECT_EQ(ClassifyJoin(*db_, q, rules_), QueryClassId::kJoinNoIndex);
}

TEST_F(QueryClassTest, IndexedJoinWithSmallOuterIsIndexClass) {
  engine::JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R4";
  q.left_column = 1;
  q.right_column = 1;
  const engine::Table* l = db_->FindTable("R1");
  q.left_predicate.Add({4, engine::CompareOp::kBetween,
                        l->column_stats(4).min,
                        l->column_stats(4).min + 20});
  EXPECT_EQ(ClassifyJoin(*db_, q, rules_), QueryClassId::kJoinIndex);
}

TEST(QueryClassMetaTest, LabelsAndNames) {
  EXPECT_STREQ(Label(QueryClassId::kUnarySeqScan), "G1");
  EXPECT_STREQ(Label(QueryClassId::kUnaryNonClusteredIndex), "G2");
  EXPECT_STREQ(Label(QueryClassId::kJoinNoIndex), "G3");
  EXPECT_TRUE(IsJoinClass(QueryClassId::kJoinNoIndex));
  EXPECT_TRUE(IsJoinClass(QueryClassId::kJoinIndex));
  EXPECT_FALSE(IsJoinClass(QueryClassId::kUnarySeqScan));
  EXPECT_NE(std::string(ToString(QueryClassId::kUnarySeqScan)), "?");
}

}  // namespace
}  // namespace mscm::core
