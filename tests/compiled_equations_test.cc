// Differential tests for the compiled serving representation: for models
// over all four qualitative forms, CompiledEquations::Evaluate must agree
// *bit for bit* with the derivation-side reference (CostModel::Estimate,
// which rebuilds a design row per call), the retired per-term walk
// (CostModel::EstimateTermWalk), and the delegating hot path
// (CostModel::EstimateFast) — including the negative-clamp-to-zero edge and
// probing costs exactly on state boundaries. Also pins the compile-time
// remap contract: a short feature vector dies with a clear diagnostic
// before the dot product runs, not mid-loop.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "core/compiled_equations.h"
#include "core/cost_model.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

// Asserts the four evaluators agree bit for bit at one point.
void ExpectAllAgree(const CostModel& model, const std::vector<double>& features,
                    double probe) {
  const double reference = model.Estimate(features, probe);
  EXPECT_EQ(Bits(model.EstimateTermWalk(features, probe)), Bits(reference))
      << "term walk diverged at probe " << probe;
  EXPECT_EQ(Bits(model.EstimateFast(features, probe)), Bits(reference))
      << "EstimateFast diverged at probe " << probe;
  EXPECT_EQ(Bits(model.compiled().Evaluate(features, probe)), Bits(reference))
      << "compiled table diverged at probe " << probe;
  EXPECT_EQ(model.compiled().StateOf(probe), model.states().StateOf(probe))
      << "state lookup diverged at probe " << probe;
}

TEST(CompiledEquationsTest, DifferentialAgreementAcrossAllForms) {
  Rng rng(2024);
  const QualitativeForm forms[] = {
      QualitativeForm::kCoincident, QualitativeForm::kParallel,
      QualitativeForm::kConcurrent, QualitativeForm::kGeneral};
  for (const QualitativeForm form : forms) {
    for (int trial = 0; trial < 8; ++trial) {
      // Randomized ground truth: 1–4 states, 1–3 selected variables,
      // coefficients spanning signs and magnitudes.
      const int num_states = 1 + static_cast<int>(rng.Uniform(0.0, 3.999));
      const size_t num_vars = 1 + static_cast<size_t>(rng.Uniform(0.0, 2.999));
      test::SyntheticGroundTruth truth;
      for (int s = 0; s < num_states; ++s) {
        truth.intercepts.push_back(rng.Uniform(-20.0, 40.0));
        std::vector<double> slopes;
        for (size_t v = 0; v < num_vars; ++v) {
          slopes.push_back(rng.Uniform(-5.0, 8.0));
        }
        truth.slopes.push_back(std::move(slopes));
      }
      truth.noise_stddev = 0.2;
      const ObservationSet obs = test::SyntheticObservations(truth, 250, rng);
      std::vector<int> selected;
      for (size_t v = 0; v < num_vars; ++v) {
        selected.push_back(static_cast<int>(v));
      }
      const ContentionStates states =
          num_states == 1
              ? ContentionStates::Single()
              : ContentionStates::UniformPartition(0.0, 1.0, num_states);
      const CostModel model = FitCostModel(QueryClassId::kUnarySeqScan, obs,
                                           selected, states, form);

      for (int probe_trial = 0; probe_trial < 12; ++probe_trial) {
        const double probe = rng.Uniform(-0.5, 1.5);
        std::vector<double> features(num_vars);
        for (size_t v = 0; v < num_vars; ++v) {
          features[v] = rng.Uniform(-10.0, 200.0);
        }
        ExpectAllAgree(model, features, probe);
      }
    }
  }
}

// The grouped batch kernel (GatherSelected + EvaluateRowsInState, the
// state-major contiguous loop EstimateBatch streams over) must be bit-exact
// with the retired per-term walk — same additions in the same order, same
// negative clamp — for every qualitative form, on blocks mixing items
// across states and including clamp-to-zero rows.
TEST(CompiledEquationsTest, GroupedRowsMatchTermWalkBitForBitAcrossForms) {
  Rng rng(31337);
  const QualitativeForm forms[] = {
      QualitativeForm::kCoincident, QualitativeForm::kParallel,
      QualitativeForm::kConcurrent, QualitativeForm::kGeneral};
  for (const QualitativeForm form : forms) {
    const int num_states = 3;
    const size_t num_vars = 1 + static_cast<size_t>(rng.Uniform(0.0, 2.999));
    test::SyntheticGroundTruth truth;
    for (int s = 0; s < num_states; ++s) {
      // Strongly negative intercepts in state 0 so some rows clamp to zero.
      truth.intercepts.push_back(s == 0 ? -200.0 : rng.Uniform(-20.0, 40.0));
      std::vector<double> slopes;
      for (size_t v = 0; v < num_vars; ++v) {
        slopes.push_back(rng.Uniform(-5.0, 8.0));
      }
      truth.slopes.push_back(std::move(slopes));
    }
    const ObservationSet obs = test::SyntheticObservations(truth, 240, rng);
    std::vector<int> selected;
    for (size_t v = 0; v < num_vars; ++v) {
      selected.push_back(static_cast<int>(v));
    }
    const CostModel model = FitCostModel(
        QueryClassId::kUnarySeqScan, obs, selected,
        ContentionStates::UniformPartition(0.0, 1.0, num_states), form);
    const CompiledEquations& compiled = model.compiled();
    const size_t k = compiled.num_selected();

    // A batch of 96 items with probes spanning every state; group exactly
    // the way the batch path does, then evaluate each group's packed rows.
    constexpr size_t kBatch = 96;
    std::vector<std::vector<double>> features(kBatch);
    std::vector<double> probes(kBatch);
    std::vector<std::vector<size_t>> groups(
        static_cast<size_t>(compiled.num_states()));
    for (size_t i = 0; i < kBatch; ++i) {
      features[i].resize(num_vars);
      for (size_t v = 0; v < num_vars; ++v) {
        features[i][v] = rng.Uniform(-10.0, 200.0);
      }
      probes[i] = rng.Uniform(-0.5, 1.5);
      groups[static_cast<size_t>(compiled.StateOf(probes[i]))].push_back(i);
    }
    for (int state = 0; state < compiled.num_states(); ++state) {
      const std::vector<size_t>& group = groups[static_cast<size_t>(state)];
      if (group.empty()) continue;
      std::vector<double> packed(group.size() * k);
      for (size_t j = 0; j < group.size(); ++j) {
        compiled.GatherSelected(features[group[j]].data(), &packed[j * k]);
      }
      std::vector<double> out(group.size());
      compiled.EvaluateRowsInState(state, packed.data(), group.size(),
                                   out.data());
      for (size_t j = 0; j < group.size(); ++j) {
        const size_t i = group[j];
        EXPECT_EQ(Bits(out[j]),
                  Bits(model.EstimateTermWalk(features[i], probes[i])))
            << "form " << static_cast<int>(form) << " state " << state
            << " item " << i;
        EXPECT_EQ(Bits(out[j]),
                  Bits(compiled.EvaluateInState(features[i].data(), state)))
            << "scalar/grouped divergence at item " << i;
      }
    }
  }
}

TEST(CompiledEquationsTest, AgreesExactlyOnStateBoundaries) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 10.0, 100.0};
  truth.slopes = {{0.5}, {3.0}, {-1.0}};
  Rng rng(7);
  const ObservationSet obs = test::SyntheticObservations(truth, 240, rng);
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 3);
  const CostModel model = FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                                       states, QualitativeForm::kGeneral);
  // A probing cost exactly equal to a boundary belongs to the state below
  // it ((lo, hi] partitioning); a hair above flips to the next state. All
  // evaluators must agree at, just below, and just above each boundary —
  // and far outside the training range (ends open to ±infinity).
  for (const double boundary : model.states().boundaries()) {
    for (const double probe :
         {boundary, std::nextafter(boundary, -1e300),
          std::nextafter(boundary, 1e300)}) {
      ExpectAllAgree(model, {12.5}, probe);
    }
  }
  ExpectAllAgree(model, {12.5}, -1e9);
  ExpectAllAgree(model, {12.5}, 1e9);
  ExpectAllAgree(model, {12.5}, std::numeric_limits<double>::infinity());
}

TEST(CompiledEquationsTest, NegativePredictionsClampToZeroEverywhere) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {-50.0, -20.0};
  truth.slopes = {{1.0}, {2.0}};
  Rng rng(3);
  const ObservationSet obs = test::SyntheticObservations(truth, 120, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  for (const double probe : {0.25, 0.75}) {
    EXPECT_EQ(Bits(model.compiled().Evaluate({0.0}, probe)), Bits(0.0));
    ExpectAllAgree(model, {0.0}, probe);
  }
}

TEST(CompiledEquationsTest, CompiledTableMatchesAdjustedCoefficients) {
  // The table rows are exactly the per-state adjusted coefficients the
  // derivation artifact exposes via CoefficientFor.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {2.0, 8.0};
  truth.slopes = {{1.5, -0.5}, {4.0, 2.0}};
  Rng rng(5);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0, 1},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  const CompiledEquations& compiled = model.compiled();
  ASSERT_EQ(compiled.num_states(), 2);
  ASSERT_EQ(compiled.num_selected(), 2u);
  for (int s = 0; s < 2; ++s) {
    const double* row = compiled.row(s);
    EXPECT_EQ(Bits(row[0]), Bits(model.CoefficientFor(-1, s)));
    EXPECT_EQ(Bits(row[1]), Bits(model.CoefficientFor(0, s)));
    EXPECT_EQ(Bits(row[2]), Bits(model.CoefficientFor(1, s)));
  }
}

TEST(CompiledEquationsTest, SharedCoefficientsResolvedIntoEveryState) {
  // Parallel form: slopes shared across states; the compiled table must
  // replicate the shared slope into each state's row.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 50.0};
  truth.slopes = {{2.0}, {2.0}};
  Rng rng(6);
  const ObservationSet obs = test::SyntheticObservations(truth, 160, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kParallel);
  const CompiledEquations& compiled = model.compiled();
  EXPECT_EQ(Bits(compiled.row(0)[1]), Bits(compiled.row(1)[1]));
  EXPECT_NE(Bits(compiled.row(0)[0]), Bits(compiled.row(1)[0]));
}

TEST(CompiledEquationsTest, StateIntervalMatchesPartition) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 2.0, 3.0};
  truth.slopes = {{1.0}, {1.0}, {1.0}};
  Rng rng(8);
  const ObservationSet obs = test::SyntheticObservations(truth, 200, rng);
  const CostModel model = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::FromBoundaries({0.4, 0.8}),
      QualitativeForm::kGeneral);
  double lo = 0.0;
  double hi = 0.0;
  model.compiled().StateInterval(0, &lo, &hi);
  EXPECT_EQ(lo, -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(hi, 0.4);
  model.compiled().StateInterval(1, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 0.4);
  EXPECT_DOUBLE_EQ(hi, 0.8);
  model.compiled().StateInterval(2, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 0.8);
  EXPECT_EQ(hi, std::numeric_limits<double>::infinity());
}

TEST(CompiledEquationsDeathTest, ShortFeatureVectorRejectedUpFront) {
  // The width check runs once per request, before the dot product — a short
  // vector must die with the remap diagnostic, never fault mid-loop.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0};
  truth.slopes = {{1.0, 2.0, 3.0}};
  Rng rng(9);
  const ObservationSet obs = test::SyntheticObservations(truth, 100, rng);
  const CostModel model =
      FitCostModel(QueryClassId::kUnarySeqScan, obs, {0, 1, 2},
                   ContentionStates::Single(), QualitativeForm::kGeneral);
  ASSERT_EQ(model.compiled().min_features(), 3u);
  const std::vector<double> short_features = {1.0, 2.0};
  EXPECT_DEATH(model.compiled().Evaluate(short_features, 0.5),
               "selected-variable remap");
  EXPECT_DEATH(model.EstimateFast(short_features, 0.5),
               "selected-variable remap");
}

}  // namespace
}  // namespace mscm::core
