#include "core/report.h"

#include <gtest/gtest.h>

#include "common/str_util.h"

#include "tests/test_util.h"

namespace mscm::core {
namespace {

BuildReport MakeReport() {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 6.0, 20.0};
  truth.slopes = {{0.5, 0.1, 0, 0, 0, 0, 0},
                  {2.0, 0.4, 0, 0, 0, 0, 0},
                  {7.0, 1.5, 0, 0, 0, 0, 0}};
  truth.noise_stddev = 0.1;
  Rng rng(1);
  const ObservationSet obs = test::SyntheticObservations(truth, 400, rng);
  ModelBuildOptions options;
  return BuildCostModelFromObservations(QueryClassId::kUnarySeqScan, obs,
                                        options);
}

TEST(ReportTest, ContainsAllSections) {
  const BuildReport report = MakeReport();
  const std::string s = RenderBuildReport(report);
  EXPECT_NE(s.find("derivation report: class G1"), std::string::npos);
  EXPECT_NE(s.find("training sample : 400 observations"), std::string::npos);
  EXPECT_NE(s.find("state search"), std::string::npos);
  EXPECT_NE(s.find("selected vars"), std::string::npos);
  EXPECT_NE(s.find("R^2 ="), std::string::npos);
}

TEST(ReportTest, ShowsStateSearchProgress) {
  const BuildReport report = MakeReport();
  const std::string s = RenderBuildReport(report);
  EXPECT_NE(s.find("R^2 by tried m"), std::string::npos);
  EXPECT_NE(s.find(Format("settled on %d state(s)",
                          report.model.states().num_states())),
            std::string::npos);
}

TEST(ReportTest, NamesSelectedVariables) {
  const BuildReport report = MakeReport();
  const std::string s = RenderBuildReport(report);
  // The signal variables (N_t and N_it are collinear in this synthetic
  // setup only if identical; here features are independent, so the true
  // drivers 0 and 1 should both be named).
  EXPECT_NE(s.find("N_t"), std::string::npos);
}

TEST(ReportTest, ProbingRangeReflectsData) {
  const BuildReport report = MakeReport();
  const std::string s = RenderBuildReport(report);
  // Synthetic probes are uniform in [0, 1).
  EXPECT_NE(s.find("probing costs in [0.0"), std::string::npos);
}

}  // namespace
}  // namespace mscm::core
