#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace mscm::runtime {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int ran = 0;
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // inline: visible immediately, same thread
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", workers " << workers;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsGrain) {
  ThreadPool pool(4);
  // n below the grain → exactly one chunk [0, n).
  std::atomic<int> chunks{0};
  pool.ParallelFor(3, 64, [&](size_t begin, size_t end) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Regression (use-after-free): ParallelFor's completion state used to live
// on the caller's stack. A worker's final fetch_sub could release the
// waiting caller — which returned and destroyed the mutex/cv — before the
// worker acquired that mutex to notify, a use-after-free on the caller's
// dead frame. The fix moves the completion state to the heap, shared by
// every chunk's task. The window is between one fetch_sub and one mutex
// lock, so single-shot calls rarely trip it; back-to-back calls reusing the
// same stack address trip it reliably under TSan/ASan on the old code.
TEST(ThreadPoolTest, ParallelForChurnDoesNotRaceCompletion) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  constexpr int kCalls = 2000;
  constexpr size_t kN = 64;
  for (int call = 0; call < kCalls; ++call) {
    // Grain 8 over 64 items on 3 workers → 4 chunks, 3 of them submitted.
    pool.ParallelFor(kN, 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      }
    });
  }
  // Every index of every call covered exactly once.
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kCalls) * (kN * (kN + 1) / 2));
}

// Same race, crossed with pool construction/destruction churn: the final
// notify of the last ParallelFor must complete before the pool's join, even
// when the pool dies immediately after the call returns.
TEST(ThreadPoolTest, PoolChurnWithParallelForShutsDownCleanly) {
  std::atomic<uint64_t> covered{0};
  for (int round = 0; round < 60; ++round) {
    ThreadPool pool(2);
    for (int call = 0; call < 5; ++call) {
      pool.ParallelFor(48, 8, [&](size_t begin, size_t end) {
        covered.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }
  }  // pool destructor joins while the last completion may still be in flight
  EXPECT_EQ(covered.load(), 60u * 5u * 48u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 200);
}

}  // namespace
}  // namespace mscm::runtime
