#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace mscm::runtime {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int ran = 0;
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // inline: visible immediately, same thread
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int workers : {0, 1, 4}) {
    ThreadPool pool(workers);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", workers " << workers;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsGrain) {
  ThreadPool pool(4);
  // n below the grain → exactly one chunk [0, n).
  std::atomic<int> chunks{0};
  pool.ParallelFor(3, 64, [&](size_t begin, size_t end) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 200);
}

}  // namespace
}  // namespace mscm::runtime
