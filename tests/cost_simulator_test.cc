#include "sim/cost_simulator.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace mscm::sim {
namespace {

engine::WorkCounters SomeWork() {
  engine::WorkCounters w;
  w.sequential_pages = 100;
  w.random_pages = 50;
  w.tuples_read = 10000;
  w.predicate_evals = 10000;
  w.result_tuples = 500;
  w.result_bytes = 20000;
  return w;
}

SlowdownFactors Idle(const PerformanceProfile& p) {
  SlowdownFactors f;
  f.buffer_hit = p.base_buffer_hit;
  return f;
}

TEST(CostSimulatorTest, NoiselessCostMatchesHandComputation) {
  PerformanceProfile p;
  p.init_seconds = 0.01;
  p.seq_page_seconds = 0.001;
  p.rand_page_seconds = 0.01;
  p.tuple_cpu_seconds = 1e-6;
  p.pred_eval_seconds = 1e-6;
  p.compare_seconds = 0;
  p.hash_seconds = 0;
  p.result_tuple_seconds = 1e-6;
  p.result_byte_seconds = 0;
  p.base_buffer_hit = 0.5;

  SlowdownFactors f;
  f.buffer_hit = 0.5;

  engine::WorkCounters w;
  w.init_ops = 1;
  w.sequential_pages = 100;
  w.random_pages = 40;  // 20 misses at 0.5 hit rate
  w.tuples_read = 1000;
  w.predicate_evals = 2000;
  w.result_tuples = 100;

  const double expected = 0.01 + 100 * 0.001 + 20 * 0.01 +
                          (1000 + 2000 + 100) * 1e-6;
  EXPECT_NEAR(NoiselessElapsedSeconds(w, f, p), expected, 1e-12);
}

TEST(CostSimulatorTest, CostGrowsWithEachSlowdownFactor) {
  const PerformanceProfile p = PerformanceProfile::Alpha();
  const engine::WorkCounters w = SomeWork();
  const double base = NoiselessElapsedSeconds(w, Idle(p), p);

  SlowdownFactors cpu = Idle(p);
  cpu.cpu_factor = 3.0;
  EXPECT_GT(NoiselessElapsedSeconds(w, cpu, p), base);

  SlowdownFactors io = Idle(p);
  io.rand_io_factor = 3.0;
  EXPECT_GT(NoiselessElapsedSeconds(w, io, p), base);

  SlowdownFactors seq = Idle(p);
  seq.seq_io_factor = 3.0;
  EXPECT_GT(NoiselessElapsedSeconds(w, seq, p), base);

  SlowdownFactors init = Idle(p);
  init.init_factor = 3.0;
  EXPECT_GT(NoiselessElapsedSeconds(w, init, p), base);
}

TEST(CostSimulatorTest, BetterBufferHitReducesCost) {
  const PerformanceProfile p = PerformanceProfile::Alpha();
  const engine::WorkCounters w = SomeWork();
  SlowdownFactors low = Idle(p);
  low.buffer_hit = 0.1;
  SlowdownFactors high = Idle(p);
  high.buffer_hit = 0.9;
  EXPECT_GT(NoiselessElapsedSeconds(w, low, p),
            NoiselessElapsedSeconds(w, high, p));
}

TEST(CostSimulatorTest, NoiseIsMeanPreservingAndBounded) {
  const PerformanceProfile p = PerformanceProfile::Alpha();
  const engine::WorkCounters w = SomeWork();
  const SlowdownFactors f = Idle(p);
  const double base = NoiselessElapsedSeconds(w, f, p);
  Rng rng(77);
  std::vector<double> costs;
  for (int i = 0; i < 20000; ++i) {
    costs.push_back(SimulateElapsedSeconds(w, f, p, rng));
  }
  EXPECT_NEAR(stats::Mean(costs), base, base * 0.01);
  // cv ~6%: observed relative spread should be close.
  EXPECT_NEAR(stats::StdDev(costs) / base, p.noise_cv, 0.01);
  for (double c : costs) EXPECT_GT(c, 0.0);
}

TEST(CostSimulatorTest, ZeroWorkCostsOnlyInit) {
  const PerformanceProfile p = PerformanceProfile::Alpha();
  engine::WorkCounters w;  // init_ops = 1 by default
  const double c = NoiselessElapsedSeconds(w, Idle(p), p);
  EXPECT_NEAR(c, p.init_seconds, 1e-12);
}

TEST(CostSimulatorTest, ProfilesProduceDifferentCosts) {
  const engine::WorkCounters w = SomeWork();
  const PerformanceProfile a = PerformanceProfile::Alpha();
  const PerformanceProfile b = PerformanceProfile::Beta();
  EXPECT_NE(NoiselessElapsedSeconds(w, Idle(a), a),
            NoiselessElapsedSeconds(w, Idle(b), b));
}

}  // namespace
}  // namespace mscm::sim
