#!/usr/bin/env bash
# Bounded-time loopback smoke for the serving binaries: start mscm_served on
# an ephemeral port, drive it with mscm_loadgen for a couple of seconds,
# assert work completed, then SIGTERM the server and assert a clean (exit 0)
# graceful shutdown. Usage:
#
#   tests/net_smoke.sh [BUILD_DIR]     # default build dir: ./build
#
# Exits non-zero if the server fails to start within 10s, the load run
# completes nothing, or shutdown is not clean within 15s.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
SERVED="${BUILD_DIR}/src/net/mscm_served"
LOADGEN="${BUILD_DIR}/src/net/mscm_loadgen"

for bin in "${SERVED}" "${LOADGEN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "net_smoke: missing binary ${bin} (build mscm_served mscm_loadgen first)" >&2
    exit 1
  fi
done

WORKDIR="$(mktemp -d)"
SERVER_LOG="${WORKDIR}/served.log"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

"${SERVED}" --port 0 --sites 2 --io-threads 2 --workers 2 > "${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

# Wait for the announced ephemeral port.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^mscm_served listening on [0-9.]*:\([0-9]*\)$/\1/p' "${SERVER_LOG}" | head -1)"
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "net_smoke: server died during startup:" >&2
    cat "${SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "net_smoke: server never announced its port" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
fi
echo "net_smoke: server up on port ${PORT}"

# Closed-loop and open-loop runs; mscm_loadgen exits non-zero when nothing
# completed, which fails the script via set -e.
"${LOADGEN}" --port "${PORT}" --mode closed --connections 2 --duration-s 1.5 \
  --sites 2 --json "${WORKDIR}/closed.json"
"${LOADGEN}" --port "${PORT}" --mode open --rate 500 --connections 2 \
  --duration-s 1.5 --sites 2 --batch 8 --stats

# Drift-recovery over the wire: --feedback reports ground-truth costs whose
# scale drifts away from the served models, driving the server's RLS fast
# tier. The run must land accepted kReportActual frames.
"${LOADGEN}" --port "${PORT}" --mode closed --connections 2 --duration-s 1.5 \
  --sites 2 --feedback --feedback-drift 0.5 --json "${WORKDIR}/feedback.json"
if ! grep -q '"feedback_accepted": [1-9]' "${WORKDIR}/feedback.json"; then
  echo "net_smoke: feedback run reported no accepted kReportActual frames" >&2
  cat "${WORKDIR}/feedback.json" >&2
  exit 1
fi

# Graceful SIGTERM shutdown must exit 0 within the deadline.
kill -TERM "${SERVER_PID}"
DEADLINE=$((SECONDS + 15))
while kill -0 "${SERVER_PID}" 2>/dev/null; do
  if (( SECONDS >= DEADLINE )); then
    echo "net_smoke: server did not shut down within 15s" >&2
    cat "${SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.2
done
wait "${SERVER_PID}"
STATUS=$?
SERVER_PID=""
if [[ "${STATUS}" -ne 0 ]]; then
  echo "net_smoke: server exited ${STATUS} on SIGTERM" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
fi

echo "net_smoke: OK (clean shutdown, closed+open loop completed work)"
