#include "core/model_builder.h"

#include <gtest/gtest.h>

#include "core/agent_source.h"
#include "core/validation.h"
#include "mdbs/local_dbs.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

// Synthetic source with a piecewise ground truth over unary-class features.
class SyntheticSource : public ObservationSource {
 public:
  explicit SyntheticSource(uint64_t seed) : rng_(seed) {}

  Observation Draw() override { return At(rng_.NextDouble()); }

  std::optional<Observation> DrawInProbingRange(double lo, double hi,
                                                int) override {
    return At(rng_.Uniform(std::max(0.0, lo), std::min(1.0, hi)));
  }

  Observation At(double probe) {
    Observation o;
    o.probing_cost = probe;
    o.features.resize(7);
    for (auto& f : o.features) f = rng_.Uniform(0.0, 10.0);
    const double scale = probe < 0.33 ? 1.0 : (probe < 0.66 ? 3.0 : 8.0);
    o.cost = scale * (0.5 + 1.2 * o.features[0] + 0.7 * o.features[2]) +
             rng_.Gaussian(0.0, 0.1);
    return o;
  }

 private:
  Rng rng_;
};

TEST(ModelBuilderTest, DrawObservationsCount) {
  SyntheticSource source(1);
  EXPECT_EQ(DrawObservations(source, 37).size(), 37u);
}

TEST(ModelBuilderTest, IupmaPipelineProducesGoodModel) {
  SyntheticSource source(2);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIupma;
  const BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, source, options);
  EXPECT_GE(report.model.states().num_states(), 3);
  EXPECT_GT(report.model.r_squared(), 0.97);
  // Variables 0 and 2 carry the signal.
  const auto& sel = report.model.selected_variables();
  EXPECT_NE(std::find(sel.begin(), sel.end(), 0), sel.end());
  EXPECT_NE(std::find(sel.begin(), sel.end(), 2), sel.end());
}

TEST(ModelBuilderTest, SingleStateAlgorithmYieldsOneState) {
  SyntheticSource source(3);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kSingleState;
  options.sample_size = 150;
  const BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, source, options);
  EXPECT_EQ(report.model.states().num_states(), 1);
}

TEST(ModelBuilderTest, MultiStateBeatsSingleStateOutOfSample) {
  SyntheticSource train_source(4);
  ModelBuildOptions multi;
  multi.algorithm = StateAlgorithm::kIupma;
  const BuildReport m =
      BuildCostModel(QueryClassId::kUnarySeqScan, train_source, multi);

  SyntheticSource train_source2(4);  // same stream for fairness
  ModelBuildOptions single;
  single.algorithm = StateAlgorithm::kSingleState;
  const BuildReport s =
      BuildCostModel(QueryClassId::kUnarySeqScan, train_source2, single);

  SyntheticSource test_source(99);
  const ObservationSet test = DrawObservations(test_source, 200);
  const ValidationReport vm = Validate(m.model, test);
  const ValidationReport vs = Validate(s.model, test);
  EXPECT_GT(vm.pct_very_good, vs.pct_very_good);
  EXPECT_GT(vm.pct_good, vs.pct_good + 0.05);
}

TEST(ModelBuilderTest, IcmaPipelineRunsOnClusteredSource) {
  class ClusteredSource : public SyntheticSource {
   public:
    explicit ClusteredSource(uint64_t seed)
        : SyntheticSource(seed), rng2_(seed ^ 0xabc) {}
    Observation Draw() override {
      const double pick = rng2_.NextDouble();
      const double probe = pick < 0.4   ? rng2_.Uniform(0.05, 0.15)
                           : pick < 0.8 ? rng2_.Uniform(0.45, 0.55)
                                        : rng2_.Uniform(0.85, 0.95);
      return At(probe);
    }

   private:
    Rng rng2_;
  };
  ClusteredSource source(5);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIcma;
  const BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, source, options);
  EXPECT_GE(report.model.states().num_states(), 3);
  EXPECT_GT(report.model.r_squared(), 0.97);
}

TEST(ModelBuilderTest, FromObservationsMatchesSourcePipeline) {
  SyntheticSource source(6);
  const ObservationSet obs = DrawObservations(source, 400);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIupma;
  const BuildReport report = BuildCostModelFromObservations(
      QueryClassId::kUnarySeqScan, obs, options);
  EXPECT_GT(report.model.r_squared(), 0.95);
  EXPECT_EQ(report.training.size(), 400u);
}

TEST(ModelBuilderTest, EndToEndAgainstLiveSite) {
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 4;
  config.tables.scale = 0.05;
  config.load.regime = sim::LoadRegime::kUniform;
  config.load.max_processes = 100.0;
  config.seed = 7;
  mdbs::LocalDbs site(config);
  AgentObservationSource source(&site, QueryClassId::kUnarySeqScan, 8);
  ModelBuildOptions options;
  options.sample_size = 250;
  const BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, source, options);
  EXPECT_GT(report.model.r_squared(), 0.8);
  EXPECT_GE(report.model.states().num_states(), 2);
  // F-test significant at the paper's alpha = 0.01.
  EXPECT_LT(report.model.f_pvalue(), 0.01);
}

TEST(ModelBuilderTest, StateAlgorithmNames) {
  EXPECT_STREQ(ToString(StateAlgorithm::kIupma), "IUPMA");
  EXPECT_STREQ(ToString(StateAlgorithm::kIcma), "ICMA");
  EXPECT_STREQ(ToString(StateAlgorithm::kSingleState), "single-state");
}

}  // namespace
}  // namespace mscm::core
