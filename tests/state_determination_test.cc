#include "core/state_determination.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

constexpr QueryClassId kCls = QueryClassId::kUnarySeqScan;

TEST(StateCountsTest, CountsPerState) {
  ObservationSet obs(4);
  obs[0].probing_cost = 0.1;
  obs[1].probing_cost = 0.2;
  obs[2].probing_cost = 0.8;
  obs[3].probing_cost = 0.9;
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  EXPECT_EQ(StateCounts(obs, states), (std::vector<int>{2, 2}));
}

TEST(IupmaTest, FindsMultipleStatesOnPiecewiseData) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 6.0, 25.0};
  truth.slopes = {{0.3}, {1.5}, {6.0}};
  truth.noise_stddev = 0.2;
  Rng rng(1);
  const ObservationSet obs = test::SyntheticObservations(truth, 500, rng);
  const auto result = DetermineStatesIupma(kCls, obs, {0},
                                           StateDeterminationOptions{});
  EXPECT_GE(result.model.states().num_states(), 3);
  EXPECT_GT(result.model.r_squared(), 0.97);
  EXPECT_GE(result.growth_iterations, 2);
}

TEST(IupmaTest, SingleRegimeDataCollapsesToFewStates) {
  // Homogeneous relationship: no dependence on the probing cost at all.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {2.0};
  truth.slopes = {{1.0}};
  truth.noise_stddev = 0.05;
  Rng rng(2);
  const ObservationSet obs = test::SyntheticObservations(truth, 300, rng);
  const auto result = DetermineStatesIupma(kCls, obs, {0},
                                           StateDeterminationOptions{});
  // Growth finds no real improvement; merging removes indistinct states.
  EXPECT_LE(result.model.states().num_states(), 2);
}

TEST(IupmaTest, RecordsR2Progression) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 10.0};
  truth.slopes = {{0.5}, {4.0}};
  truth.noise_stddev = 0.2;
  Rng rng(3);
  const ObservationSet obs = test::SyntheticObservations(truth, 400, rng);
  const auto result = DetermineStatesIupma(kCls, obs, {0},
                                           StateDeterminationOptions{});
  ASSERT_GE(result.r2_by_state_count.size(), 2u);
  // More states never hurt in-sample R^2 by much; the 2-state fit must beat
  // the 1-state fit decisively on this data.
  EXPECT_GT(result.r2_by_state_count[1], result.r2_by_state_count[0] + 0.05);
}

TEST(IupmaTest, MaxStatesRespected) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1, 3, 7, 15, 31, 63, 127, 255};
  truth.slopes = {{1}, {2}, {4}, {8}, {16}, {32}, {64}, {128}};
  truth.noise_stddev = 0.05;
  Rng rng(4);
  const ObservationSet obs = test::SyntheticObservations(truth, 900, rng);
  StateDeterminationOptions options;
  options.max_states = 4;
  const auto result = DetermineStatesIupma(kCls, obs, {0}, options);
  EXPECT_LE(result.model.states().num_states(), 4);
}

TEST(IupmaTest, MergingCollapsesIdenticalNeighbors) {
  // 4 latent subranges but only two truly distinct behaviours.
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 1.0, 20.0, 20.0};
  truth.slopes = {{0.5}, {0.5}, {5.0}, {5.0}};
  truth.noise_stddev = 0.1;
  Rng rng(5);
  const ObservationSet obs = test::SyntheticObservations(truth, 600, rng);
  StateDeterminationOptions options;
  const auto result = DetermineStatesIupma(kCls, obs, {0}, options);
  EXPECT_LE(result.model.states().num_states(), 3);
  EXPECT_GT(result.model.r_squared(), 0.95);
}

TEST(IcmaTest, ClusteredProbingCostsYieldClusterBoundaries) {
  // Probing costs concentrated in two tight clusters; behaviours differ.
  Rng rng(6);
  ObservationSet obs;
  for (int i = 0; i < 150; ++i) {
    Observation o;
    o.probing_cost = rng.Gaussian(0.2, 0.02);
    o.features = {rng.Uniform(0, 10)};
    o.cost = 1.0 + 0.5 * o.features[0] + rng.Gaussian(0, 0.05);
    obs.push_back(o);
  }
  for (int i = 0; i < 150; ++i) {
    Observation o;
    o.probing_cost = rng.Gaussian(2.0, 0.05);
    o.features = {rng.Uniform(0, 10)};
    o.cost = 15.0 + 4.0 * o.features[0] + rng.Gaussian(0, 0.05);
    obs.push_back(o);
  }
  ObservationSet working = obs;
  const auto result = DetermineStatesIcma(
      kCls, working, {0}, StateDeterminationOptions{}, nullptr);
  ASSERT_EQ(result.model.states().num_states(), 2);
  // The boundary must fall in the wide gap between the clusters.
  const double boundary = result.model.states().boundaries()[0];
  EXPECT_GT(boundary, 0.4);
  EXPECT_LT(boundary, 1.8);
  EXPECT_GT(result.model.r_squared(), 0.99);
}

TEST(IcmaTest, TopsUpUndersampledClustersThroughSource) {
  // A tiny third cluster that alone cannot support regression; the source
  // must be asked for targeted draws.
  class CountingSource : public ObservationSource {
   public:
    explicit CountingSource(Rng* rng) : rng_(rng) {}
    Observation Draw() override { return Make(rng_->NextDouble() * 3.0); }
    std::optional<Observation> DrawInProbingRange(double lo, double hi,
                                                  int) override {
      ++targeted_draws;
      return Make(rng_->Uniform(lo, hi));
    }
    Observation Make(double probe) const {
      Observation o;
      o.probing_cost = probe;
      o.features = {rng_->Uniform(0, 10)};
      const double scale = probe < 1.0 ? 1.0 : (probe < 2.0 ? 3.0 : 9.0);
      o.cost = scale * (1.0 + o.features[0]);
      return o;
    }
    int targeted_draws = 0;

   private:
    Rng* rng_;
  };

  Rng rng(7);
  CountingSource source(&rng);
  ObservationSet obs;
  for (int i = 0; i < 80; ++i) obs.push_back(source.Make(rng.Uniform(0.1, 0.4)));
  for (int i = 0; i < 80; ++i) obs.push_back(source.Make(rng.Uniform(1.4, 1.7)));
  for (int i = 0; i < 3; ++i) obs.push_back(source.Make(rng.Uniform(2.6, 2.8)));

  const size_t before = obs.size();
  const auto result = DetermineStatesIcma(
      kCls, obs, {0}, StateDeterminationOptions{}, &source);
  EXPECT_GT(source.targeted_draws, 0);
  EXPECT_GT(obs.size(), before);
  EXPECT_GE(result.model.states().num_states(), 2);
}

TEST(IcmaTest, WithoutSourceStopsGrowthAtSupportableStates) {
  Rng rng(8);
  ObservationSet obs;
  for (int i = 0; i < 100; ++i) {
    Observation o;
    o.probing_cost = rng.Uniform(0.1, 0.4);
    o.features = {rng.Uniform(0, 10)};
    o.cost = 1.0 + o.features[0];
    obs.push_back(o);
  }
  // Two stray points far away — not enough for their own state.
  for (int i = 0; i < 2; ++i) {
    Observation o;
    o.probing_cost = 5.0;
    o.features = {rng.Uniform(0, 10)};
    o.cost = 50.0 + 9.0 * o.features[0];
    obs.push_back(o);
  }
  ObservationSet working = obs;
  const auto result = DetermineStatesIcma(
      kCls, working, {0}, StateDeterminationOptions{}, nullptr);
  EXPECT_EQ(result.model.states().num_states(), 1);
}

}  // namespace
}  // namespace mscm::core
