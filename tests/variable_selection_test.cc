#include "core/variable_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

constexpr QueryClassId kCls = QueryClassId::kUnarySeqScan;

// Builds unary-class observations (7 features per VariableSet::ForClass)
// where the cost depends on a chosen subset of features.
ObservationSet MakeObservations(
    size_t n, Rng& rng,
    const std::vector<std::pair<int, double>>& true_terms,
    double noise = 0.05) {
  ObservationSet out;
  for (size_t i = 0; i < n; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.resize(7);
    for (auto& f : o.features) f = rng.Uniform(0.0, 10.0);
    o.cost = 1.0;
    for (auto [idx, coef] : true_terms) {
      o.cost += coef * o.features[static_cast<size_t>(idx)];
    }
    o.cost += rng.Gaussian(0.0, noise);
    out.push_back(std::move(o));
  }
  return out;
}

TEST(CorrelationHelpersTest, AverageAndMaxAgreeOnSingleState) {
  Rng rng(1);
  const ObservationSet obs = MakeObservations(100, rng, {{0, 2.0}});
  const ContentionStates single = ContentionStates::Single();
  std::vector<double> costs;
  for (const auto& o : obs) costs.push_back(o.cost);
  const double avg = AverageStateCorrelation(obs, single, 0, costs);
  const double mx = MaxStateCorrelation(obs, single, 0, costs);
  EXPECT_DOUBLE_EQ(avg, mx);
  EXPECT_GT(avg, 0.9);
}

TEST(CorrelationHelpersTest, IrrelevantVariableLowCorrelation) {
  Rng rng(2);
  const ObservationSet obs = MakeObservations(300, rng, {{0, 2.0}});
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  std::vector<double> costs;
  for (const auto& o : obs) costs.push_back(o.cost);
  EXPECT_LT(MaxStateCorrelation(obs, states, 3, costs), 0.3);
  EXPECT_GT(MaxStateCorrelation(obs, states, 0, costs), 0.9);
}

TEST(MaxStateVifTest, IndependentFeaturesLowVif) {
  Rng rng(3);
  const ObservationSet obs = MakeObservations(200, rng, {{0, 1.0}});
  const ContentionStates single = ContentionStates::Single();
  EXPECT_LT(MaxStateVif(obs, single, 1, {0, 2}), 2.0);
}

TEST(MaxStateVifTest, DerivedFeatureHighVif) {
  Rng rng(4);
  ObservationSet obs = MakeObservations(200, rng, {{0, 1.0}});
  // Make feature 5 an exact linear function of features 0 and 1.
  for (auto& o : obs) o.features[5] = 2.0 * o.features[0] - o.features[1];
  EXPECT_GT(MaxStateVif(obs, ContentionStates::Single(), 5, {0, 1}), 100.0);
}

TEST(SelectVariablesTest, KeepsTrueBasicDropsIrrelevant) {
  Rng rng(5);
  // Cost depends on basic variables 0 and 2 only.
  const ObservationSet obs =
      MakeObservations(400, rng, {{0, 2.0}, {2, 3.0}});
  VariableSelectionTrace trace;
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{}, &trace);
  EXPECT_NE(std::find(selected.begin(), selected.end(), 0), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), 2), selected.end());
  // Basic variable 1 carries no signal: screened or eliminated.
  EXPECT_EQ(std::find(selected.begin(), selected.end(), 1), selected.end());
}

TEST(SelectVariablesTest, ForwardAddsInformativeSecondary) {
  Rng rng(6);
  // Secondary variable 4 (TL_rt) carries real signal on top of basic 0.
  const ObservationSet obs =
      MakeObservations(400, rng, {{0, 2.0}, {4, 5.0}});
  VariableSelectionTrace trace;
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{}, &trace);
  EXPECT_NE(std::find(selected.begin(), selected.end(), 4), selected.end());
  EXPECT_NE(std::find(trace.added_forward.begin(), trace.added_forward.end(),
                      4),
            trace.added_forward.end());
}

TEST(SelectVariablesTest, UninformativeSecondaryNotAdded) {
  Rng rng(7);
  const ObservationSet obs = MakeObservations(400, rng, {{0, 2.0}});
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{});
  for (int v : {3, 4, 5, 6}) {
    EXPECT_EQ(std::find(selected.begin(), selected.end(), v), selected.end())
        << "secondary variable " << v << " should not be selected";
  }
}

TEST(SelectVariablesTest, CollinearSecondaryRejectedByVif) {
  Rng rng(8);
  ObservationSet obs = MakeObservations(400, rng, {{0, 2.0}});
  // Secondary 5 duplicates basic 0 exactly (plus signal would be circular):
  // it correlates perfectly with the model variable, so VIF must reject it
  // before SEE comparison even matters.
  for (auto& o : obs) {
    o.features[5] = o.features[0];
    // give feature 5 genuine residual correlation by adding tiny noise signal
    o.cost += 0.001 * o.features[5];
  }
  VariableSelectionTrace trace;
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{}, &trace);
  EXPECT_EQ(std::find(selected.begin(), selected.end(), 5), selected.end());
}

TEST(SelectVariablesTest, PerStateSelectionWorksWithMultipleStates) {
  Rng rng(9);
  ObservationSet obs;
  // Two states, same relevant variable set.
  for (int i = 0; i < 400; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.resize(7);
    for (auto& f : o.features) f = rng.Uniform(0.0, 10.0);
    const double scale = o.probing_cost < 0.5 ? 1.0 : 6.0;
    o.cost = scale * (1.0 + 2.0 * o.features[0] + 1.0 * o.features[2]) +
             rng.Gaussian(0.0, 0.05);
    obs.push_back(std::move(o));
  }
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const std::vector<int> selected =
      SelectVariables(kCls, obs, VariableSet::ForClass(kCls), states,
                      VariableSelectionOptions{});
  EXPECT_NE(std::find(selected.begin(), selected.end(), 0), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), 2), selected.end());
}

TEST(SelectVariablesTest, NeverReturnsEmpty) {
  Rng rng(10);
  // Pure noise cost: even then one variable must remain.
  ObservationSet obs;
  for (int i = 0; i < 200; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.resize(7);
    for (auto& f : o.features) f = rng.Uniform(0.0, 10.0);
    o.cost = rng.Gaussian(5.0, 1.0);
    obs.push_back(std::move(o));
  }
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{});
  EXPECT_FALSE(selected.empty());
}

// Pinned regression (fleet soak): cost dominated by an *unmodeled* factor.
// Observations are priced by a steep per-state slope (0.4x .. 6.5x) but
// selection runs under a forced single state, so the marginal correlation
// of every variable — including the true one — lands under the screening
// bar, and the secondary variables are all constant zero (no correlation at
// all). Screening used to come up empty and CHECK-abort the process; a
// background model refresh drawing such a sample from one autonomous site
// would take down the whole server. Selection must instead fall back to the
// strongest variable and return a usable (if weak) set.
TEST(SelectVariablesTest, StateDominatedCostUnderSingleStateDoesNotAbort) {
  const std::vector<double> slopes = {0.42, 1.7, 3.4, 6.5};
  ObservationSet obs;
  for (int i = 0; i < 24; ++i) {
    Observation o;
    const size_t state = static_cast<size_t>(i) % slopes.size();
    o.probing_cost = static_cast<double>(state) + 0.5;
    o.features.assign(7, 0.0);  // other variables constant: corr exactly 0
    // The operand size moves inversely with the state's slope, so under the
    // forced single state the priced cost is identical everywhere — x0
    // varies 8x yet shows zero marginal correlation with cost.
    o.features[0] = 8.4 / slopes[state];
    o.cost = slopes[state] * o.features[0];
    obs.push_back(std::move(o));
  }
  const std::vector<int> selected = SelectVariables(
      kCls, obs, VariableSet::ForClass(kCls), ContentionStates::Single(),
      VariableSelectionOptions{});
  EXPECT_FALSE(selected.empty());
}

}  // namespace
}  // namespace mscm::core
