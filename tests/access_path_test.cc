#include "engine/access_path.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::engine {
namespace {

class AccessPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(test::TinyDatabase(/*seed=*/5));
  }
  std::unique_ptr<Database> db_;
  PlannerRules rules_;
};

TEST_F(AccessPathTest, ClusteredIndexPreferredWhenUsable) {
  SelectQuery q;
  q.table = "R1";
  q.predicate.Add({0, CompareOp::kBetween, 0, 50});
  const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, AccessMethod::kClusteredIndexScan);
  EXPECT_EQ(plan.driving_condition, 0);
}

TEST_F(AccessPathTest, SelectiveNonClusteredIndexUsed) {
  const Table* t = db_->FindTable("R1");
  const auto& stats = t->column_stats(1);
  const int64_t span = stats.max - stats.min + 1;
  SelectQuery q;
  q.table = "R1";
  // ~2% selectivity on the non-clustered column a2.
  q.predicate.Add({1, CompareOp::kBetween, stats.min,
                   stats.min + span / 50});
  const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, AccessMethod::kNonClusteredIndexScan);
}

TEST_F(AccessPathTest, UnselectiveIndexConditionFallsBackToSeqScan) {
  const Table* t = db_->FindTable("R1");
  const auto& stats = t->column_stats(1);
  SelectQuery q;
  q.table = "R1";
  // ~80% selectivity: above the non-clustered limit.
  q.predicate.Add({1, CompareOp::kBetween, stats.min,
                   stats.min + (stats.max - stats.min) * 4 / 5});
  const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, AccessMethod::kSequentialScan);
}

TEST_F(AccessPathTest, NoConditionMeansSeqScan) {
  SelectQuery q;
  q.table = "R2";
  q.predicate.Add({4, CompareOp::kGt, 100, 0});  // non-indexed column
  const SelectPlan plan = ChooseSelectPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, AccessMethod::kSequentialScan);
  EXPECT_EQ(plan.driving_condition, -1);
}

TEST_F(AccessPathTest, IndexNestedLoopWhenOuterSmallAndInnerIndexed) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R4";
  q.left_column = 1;
  q.right_column = 1;  // indexed on both sides
  // Make the left side tiny.
  const Table* left = db_->FindTable("R1");
  const auto& stats = left->column_stats(4);
  q.left_predicate.Add({4, CompareOp::kBetween, stats.min, stats.min + 10});
  const JoinPlan plan = ChooseJoinPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, JoinMethod::kIndexNestedLoop);
  EXPECT_EQ(plan.outer_side, 0);
}

TEST_F(AccessPathTest, HashJoinForLargeUnindexedJoin) {
  // Needs tables big enough that the qualified product exceeds the
  // block-nested-loop cutoff.
  const Database big = test::TinyDatabase(/*seed=*/6, /*num_tables=*/4,
                                          /*scale=*/0.2);
  JoinQuery q;
  q.left_table = "R3";
  q.right_table = "R4";
  q.left_column = 4;
  q.right_column = 4;  // unindexed join columns
  rules_.prefer_hash_join = true;
  const JoinPlan plan = ChooseJoinPlan(big, q, rules_);
  EXPECT_EQ(plan.method, JoinMethod::kHashJoin);
}

TEST_F(AccessPathTest, SortMergePreferenceRespected) {
  const Database big = test::TinyDatabase(/*seed=*/6, /*num_tables=*/4,
                                          /*scale=*/0.2);
  JoinQuery q;
  q.left_table = "R3";
  q.right_table = "R4";
  q.left_column = 4;
  q.right_column = 4;
  rules_.prefer_hash_join = false;
  const JoinPlan plan = ChooseJoinPlan(big, q, rules_);
  EXPECT_EQ(plan.method, JoinMethod::kSortMerge);
}

TEST_F(AccessPathTest, TinyInputsUseBlockNestedLoop) {
  JoinQuery q;
  q.left_table = "R1";
  q.right_table = "R2";
  q.left_column = 4;
  q.right_column = 4;
  // Both sides filtered down hard.
  const Table* l = db_->FindTable("R1");
  const Table* r = db_->FindTable("R2");
  q.left_predicate.Add({3, CompareOp::kBetween, l->column_stats(3).min,
                        l->column_stats(3).min + 1});
  q.right_predicate.Add({3, CompareOp::kBetween, r->column_stats(3).min,
                         r->column_stats(3).min + 1});
  const JoinPlan plan = ChooseJoinPlan(*db_, q, rules_);
  EXPECT_EQ(plan.method, JoinMethod::kBlockNestedLoop);
}

TEST(AccessPathToStringTest, AllEnumeratorsNamed) {
  EXPECT_STREQ(ToString(AccessMethod::kSequentialScan), "seq-scan");
  EXPECT_STREQ(ToString(AccessMethod::kClusteredIndexScan),
               "clustered-index-scan");
  EXPECT_STREQ(ToString(AccessMethod::kNonClusteredIndexScan),
               "nonclustered-index-scan");
  EXPECT_STREQ(ToString(JoinMethod::kHashJoin), "hash-join");
  EXPECT_STREQ(ToString(JoinMethod::kSortMerge), "sort-merge");
  EXPECT_STREQ(ToString(JoinMethod::kIndexNestedLoop), "index-nested-loop");
  EXPECT_STREQ(ToString(JoinMethod::kBlockNestedLoop), "block-nested-loop");
}

}  // namespace
}  // namespace mscm::engine
