#include "engine/database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::engine {
namespace {

TEST(DatabaseTest, AddAndFindTable) {
  Database db;
  db.AddTable(test::SequentialTable("T1", 10));
  EXPECT_NE(db.FindTable("T1"), nullptr);
  EXPECT_EQ(db.FindTable("T2"), nullptr);
}

TEST(DatabaseTest, AddTableComputesStats) {
  Database db;
  db.AddTable(test::SequentialTable("T1", 10));
  EXPECT_TRUE(db.FindTable("T1")->has_stats());
}

TEST(DatabaseTest, CreateClusteredIndexSortsTable) {
  Database db;
  Table t("T", Schema({{"k", 8}, {"v", 8}}));
  t.AddRow({3, 0});
  t.AddRow({1, 1});
  t.AddRow({2, 2});
  db.AddTable(std::move(t));
  db.CreateIndex("T", 0, /*clustered=*/true);
  const Table* sorted = db.FindTable("T");
  EXPECT_EQ(sorted->row(0)[0], 1);
  EXPECT_EQ(sorted->sorted_by(), 0);
  EXPECT_NE(db.ClusteredIndexOn("T"), nullptr);
}

TEST(DatabaseTest, FindIndexByColumn) {
  Database db;
  db.AddTable(test::SequentialTable("T", 20));
  db.CreateIndex("T", 0, true);
  db.CreateIndex("T", 1, false);
  EXPECT_NE(db.FindIndex("T", 0), nullptr);
  EXPECT_NE(db.FindIndex("T", 1), nullptr);
  EXPECT_EQ(db.FindIndex("T", 5), nullptr);
  EXPECT_TRUE(db.FindIndex("T", 0)->clustered());
  EXPECT_FALSE(db.FindIndex("T", 1)->clustered());
}

TEST(DatabaseTest, IndexesOnUnknownTableEmpty) {
  Database db;
  EXPECT_TRUE(db.IndexesOn("nope").empty());
  EXPECT_EQ(db.ClusteredIndexOn("nope"), nullptr);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  db.AddTable(test::SequentialTable("B", 5));
  db.AddTable(test::SequentialTable("A", 5));
  const auto names = db.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");
  EXPECT_EQ(names[1], "B");
}

}  // namespace
}  // namespace mscm::engine
