#include "core/probing_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mdbs/local_dbs.h"
#include "stats/correlation.h"

namespace mscm::core {
namespace {

TEST(ProbingEstimatorTest, StatFeatureOrderMatchesNames) {
  EXPECT_EQ(ProbingCostEstimator::StatNames().size(),
            ProbingCostEstimator::StatFeatures(sim::SystemStats{}).size());
}

class ProbingEstimatorFitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mdbs::LocalDbsConfig config;
    config.tables.num_tables = 2;
    config.tables.scale = 0.02;
    config.seed = 3;
    site_ = std::make_unique<mdbs::LocalDbs>(config);
    // Paired (stats snapshot, observed probing cost) samples across the
    // whole contention range.
    Rng rng(4);
    for (int i = 0; i < 150; ++i) {
      site_->SetLoadProcesses(rng.Uniform(0.0, 120.0));
      snapshots_.push_back(site_->MonitorSnapshot());
      probes_.push_back(site_->RunProbingQuery());
    }
  }
  std::unique_ptr<mdbs::LocalDbs> site_;
  std::vector<sim::SystemStats> snapshots_;
  std::vector<double> probes_;
};

TEST_F(ProbingEstimatorFitTest, FitExplainsProbingCosts) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  EXPECT_GT(est.r_squared(), 0.7);  // linear Eq. 2 on a mildly convex target
}

TEST_F(ProbingEstimatorFitTest, InsignificantStatsEliminated) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  EXPECT_LT(est.selected_stats().size(),
            ProbingCostEstimator::StatNames().size());
  EXPECT_GE(est.selected_stats().size(), 1u);
}

TEST_F(ProbingEstimatorFitTest, EstimatesTrackObservations) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  std::vector<double> estimates;
  estimates.reserve(snapshots_.size());
  for (const auto& s : snapshots_) estimates.push_back(est.Estimate(s));
  EXPECT_GT(stats::PearsonCorrelation(estimates, probes_), 0.85);
}

TEST_F(ProbingEstimatorFitTest, EstimateOnFreshSnapshots) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  // New contention points not in the training set.
  Rng rng(5);
  std::vector<double> errors;
  for (int i = 0; i < 40; ++i) {
    site_->SetLoadProcesses(rng.Uniform(0.0, 120.0));
    const auto snap = site_->MonitorSnapshot();
    const double observed = site_->RunProbingQuery();
    errors.push_back(std::fabs(est.Estimate(snap) - observed));
  }
  double mean_err = 0.0;
  for (double e : errors) mean_err += e;
  mean_err /= static_cast<double>(errors.size());
  double mean_probe = 0.0;
  for (double p : probes_) mean_probe += p;
  mean_probe /= static_cast<double>(probes_.size());
  // Mean absolute error well under the mean probing cost. (The linear Eq. 2
  // underfits the swap-thrash convexity, so the band is generous.)
  EXPECT_LT(mean_err, 0.65 * mean_probe);
}

TEST_F(ProbingEstimatorFitTest, EstimatesNonNegative) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  sim::SystemStats idle{};  // all-zero stats
  EXPECT_GE(est.Estimate(idle), 0.0);
}

TEST_F(ProbingEstimatorFitTest, ToStringListsEquation) {
  const ProbingCostEstimator est =
      ProbingCostEstimator::Fit(snapshots_, probes_);
  const std::string s = est.ToString();
  EXPECT_NE(s.find("probing_cost ="), std::string::npos);
  EXPECT_NE(s.find("R^2"), std::string::npos);
}

}  // namespace
}  // namespace mscm::core
