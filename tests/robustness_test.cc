// Failure-injection / degenerate-input robustness across the pipeline: the
// sampling procedure can encounter pathological environments (no contention
// variance, constant features, minimum-size samples) and must degrade
// gracefully rather than crash or emit garbage.

#include <cmath>

#include <gtest/gtest.h>

#include "core/model_builder.h"
#include "core/validation.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

constexpr QueryClassId kCls = QueryClassId::kUnarySeqScan;

ObservationSet ConstantProbeObservations(size_t n, uint64_t seed) {
  Rng rng(seed);
  ObservationSet obs;
  for (size_t i = 0; i < n; ++i) {
    Observation o;
    o.probing_cost = 0.25;  // a perfectly static environment
    o.features.resize(7);
    for (auto& f : o.features) f = rng.Uniform(0.0, 10.0);
    o.cost = 1.0 + 2.0 * o.features[0] + rng.Gaussian(0.0, 0.05);
    obs.push_back(std::move(o));
  }
  return obs;
}

TEST(RobustnessTest, ConstantProbeCollapsesToOneState) {
  const ObservationSet obs = ConstantProbeObservations(150, 1);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIupma;
  const BuildReport report =
      BuildCostModelFromObservations(kCls, obs, options);
  EXPECT_EQ(report.model.states().num_states(), 1);
  EXPECT_GT(report.model.r_squared(), 0.95);
}

TEST(RobustnessTest, ConstantProbeIcmaAlsoCollapses) {
  ObservationSet obs = ConstantProbeObservations(150, 2);
  ModelBuildOptions options;
  options.algorithm = StateAlgorithm::kIcma;
  const BuildReport report =
      BuildCostModelFromObservations(kCls, obs, options);
  EXPECT_EQ(report.model.states().num_states(), 1);
}

TEST(RobustnessTest, ConstantFeatureSurvivesFitting) {
  // One feature never varies: screening drops it, the fit proceeds.
  Rng rng(3);
  ObservationSet obs;
  for (int i = 0; i < 200; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.assign(7, 0.0);
    o.features[0] = rng.Uniform(0.0, 10.0);
    o.features[1] = 42.0;  // constant
    o.cost = 1.0 + o.features[0] * (o.probing_cost < 0.5 ? 1.0 : 3.0);
    obs.push_back(std::move(o));
  }
  ModelBuildOptions options;
  const BuildReport report =
      BuildCostModelFromObservations(kCls, obs, options);
  const auto& sel = report.model.selected_variables();
  EXPECT_EQ(std::find(sel.begin(), sel.end(), 1), sel.end());
  EXPECT_GT(report.model.r_squared(), 0.95);
}

TEST(RobustnessTest, MinimumViableSampleFits) {
  // Exactly as many observations as design columns: the fit is exact and
  // must not crash (dof = 0 => SEE undefined, reported as 0).
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0};
  truth.slopes = {{2.0}};
  Rng rng(4);
  const ObservationSet obs = test::SyntheticObservations(truth, 2, rng);
  const CostModel model = FitCostModel(kCls, obs, {0},
                                       ContentionStates::Single(),
                                       QualitativeForm::kGeneral);
  EXPECT_NEAR(model.CoefficientFor(0, 0), 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(model.standard_error(), 0.0);
}

TEST(RobustnessTest, DuplicatedFeatureHandledByRankGuard) {
  // Two identical features force exact collinearity through the raw fit
  // path (no selection); the ridge fallback must produce finite estimates.
  Rng rng(5);
  ObservationSet obs;
  for (int i = 0; i < 100; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.assign(7, 0.0);
    o.features[0] = rng.Uniform(0.0, 10.0);
    o.features[1] = o.features[0];
    o.cost = 3.0 * o.features[0];
    obs.push_back(std::move(o));
  }
  const CostModel model = FitCostModel(kCls, obs, {0, 1},
                                       ContentionStates::Single(),
                                       QualitativeForm::kGeneral);
  EXPECT_TRUE(model.fit().rank_deficient);
  const double est = model.Estimate({5.0, 5.0, 0, 0, 0, 0, 0}, 0.5);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_NEAR(est, 15.0, 0.5);
}

TEST(RobustnessTest, ExtrapolatedProbeMapsToEdgeState) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 5.0};
  truth.slopes = {{1.0}, {3.0}};
  Rng rng(6);
  const ObservationSet obs = test::SyntheticObservations(truth, 150, rng);
  const CostModel model = FitCostModel(
      kCls, obs, {0}, ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  // Probes far outside the training range use the nearest state.
  const double inside_low = model.Estimate({4.0}, 0.1);
  const double way_below = model.Estimate({4.0}, -100.0);
  EXPECT_DOUBLE_EQ(inside_low, way_below);
  const double inside_high = model.Estimate({4.0}, 0.9);
  const double way_above = model.Estimate({4.0}, 1e9);
  EXPECT_DOUBLE_EQ(inside_high, way_above);
}

TEST(RobustnessTest, AllZeroCostsProduceZeroModel) {
  Rng rng(7);
  ObservationSet obs;
  for (int i = 0; i < 80; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.assign(7, 0.0);
    o.features[0] = rng.Uniform(0.0, 10.0);
    o.cost = 0.0;
    obs.push_back(std::move(o));
  }
  const CostModel model = FitCostModel(kCls, obs, {0},
                                       ContentionStates::Single(),
                                       QualitativeForm::kGeneral);
  EXPECT_NEAR(model.Estimate({5.0, 0, 0, 0, 0, 0, 0}, 0.5), 0.0, 1e-9);
}

TEST(RobustnessTest, ValidationHandlesZeroObservedCosts) {
  const CostModel model = [] {
    Rng rng(8);
    test::SyntheticGroundTruth truth;
    truth.intercepts = {1.0};
    truth.slopes = {{1.0}};
    const ObservationSet obs = test::SyntheticObservations(truth, 50, rng);
    return FitCostModel(kCls, obs, {0}, ContentionStates::Single(),
                        QualitativeForm::kGeneral);
  }();
  ObservationSet test(3);
  for (auto& o : test) {
    o.features = {0.0};
    o.probing_cost = 0.5;
    o.cost = 0.0;
  }
  const ValidationReport r = Validate(model, test);
  EXPECT_EQ(r.n_test, 3u);
  EXPECT_TRUE(std::isfinite(r.mean_relative_error));
}

TEST(RobustnessTest, PureNoiseEnvironmentStillProducesUsableArtifact) {
  // Cost unrelated to anything: the pipeline must terminate with a model
  // whose F-test correctly reports insignificance.
  Rng rng(9);
  ObservationSet obs;
  for (int i = 0; i < 200; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.resize(7);
    for (auto& f : o.features) f = rng.Uniform(0.0, 10.0);
    o.cost = rng.Uniform(1.0, 2.0);
    obs.push_back(std::move(o));
  }
  ModelBuildOptions options;
  const BuildReport report =
      BuildCostModelFromObservations(kCls, obs, options);
  EXPECT_LT(report.model.r_squared(), 0.2);
  EXPECT_GT(report.model.f_pvalue(), 1e-4);
}

}  // namespace
}  // namespace mscm::core
