#include "core/cross_validation.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

constexpr QueryClassId kCls = QueryClassId::kUnarySeqScan;

ObservationSet PiecewiseData(size_t n, double noise, uint64_t seed) {
  test::SyntheticGroundTruth truth;
  truth.intercepts = {1.0, 8.0};
  truth.slopes = {{0.5, 0.2}, {3.0, 1.0}};
  truth.noise_stddev = noise;
  Rng rng(seed);
  return test::SyntheticObservations(truth, n, rng);
}

TEST(CrossValidationTest, CleanDataScoresNearPerfect) {
  const ObservationSet obs = PiecewiseData(300, 0.0, 1);
  Rng rng(2);
  const CrossValidationReport report = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral, 5, rng);
  EXPECT_EQ(report.folds, 5);
  EXPECT_NEAR(report.pct_good, 1.0, 0.02);
  EXPECT_NEAR(report.mean_rmse, 0.0, 1e-6);
}

TEST(CrossValidationTest, CorrectStatesBeatWrongStates) {
  const ObservationSet obs = PiecewiseData(400, 0.3, 3);
  Rng rng_a(4);
  const CrossValidationReport right = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral, 5, rng_a);
  Rng rng_b(4);
  const CrossValidationReport wrong = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::Single(),
      QualitativeForm::kGeneral, 5, rng_b);
  EXPECT_LT(right.mean_rmse, wrong.mean_rmse);
  EXPECT_GT(right.pct_good, wrong.pct_good);
}

TEST(CrossValidationTest, DetectsOverfitExtraStates) {
  // Ground truth has 2 regimes; an 8-state model fits noise in-sample but
  // cross-validation should show no real generalization gain over 2 states.
  const ObservationSet obs = PiecewiseData(240, 0.5, 5);
  Rng rng_a(6);
  const CrossValidationReport two = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral, 4, rng_a);
  Rng rng_b(6);
  const CrossValidationReport eight = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::UniformPartition(0.0, 1.0, 8),
      QualitativeForm::kGeneral, 4, rng_b);
  // The eight-state model cannot be meaningfully better out of sample.
  EXPECT_LT(two.mean_rmse, eight.mean_rmse * 1.25);
}

TEST(CrossValidationTest, AveragesAreWithinBands) {
  const ObservationSet obs = PiecewiseData(300, 0.4, 7);
  Rng rng(8);
  const CrossValidationReport report = CrossValidate(
      kCls, obs, {0, 1}, ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral, 3, rng);
  EXPECT_GE(report.pct_very_good, 0.0);
  EXPECT_LE(report.pct_very_good, 1.0);
  EXPECT_GE(report.pct_good, report.pct_very_good);
  EXPECT_LE(report.pct_good, 1.0);
  EXPECT_GT(report.mean_rmse, 0.0);
}

}  // namespace
}  // namespace mscm::core
