#include <gtest/gtest.h>

#include "engine/schema.h"
#include "engine/table.h"
#include "tests/test_util.h"

namespace mscm::engine {
namespace {

TEST(SchemaTest, ColumnLookup) {
  const Schema s({{"a1", 8}, {"a2", 16}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.ColumnIndex("a2"), 1);
  EXPECT_EQ(s.ColumnIndex("zz"), -1);
}

TEST(SchemaTest, TupleBytesSumsWidths) {
  const Schema s({{"a1", 8}, {"a2", 16}, {"a3", 20}});
  EXPECT_EQ(s.TupleBytes(), 44);
}

TEST(TableTest, AddAndAccessRows) {
  Table t = test::SequentialTable("T", 5);
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.row(3)[0], 3);
}

TEST(TableTest, RowsPerPageFromTupleWidth) {
  // 16-byte tuples -> 512 rows in an 8192-byte page.
  Table t = test::SequentialTable("T", 10);
  EXPECT_EQ(t.RowsPerPage(), 512u);
}

TEST(TableTest, NumPagesRoundsUp) {
  Table t = test::SequentialTable("T", 513);
  EXPECT_EQ(t.NumPages(), 2u);
  Table t2 = test::SequentialTable("T2", 512);
  EXPECT_EQ(t2.NumPages(), 1u);
  Table empty("E", Schema({{"x", 8}}));
  EXPECT_EQ(empty.NumPages(), 0u);
}

TEST(TableTest, PageOfRow) {
  Table t = test::SequentialTable("T", 1100);
  EXPECT_EQ(t.PageOfRow(0), 0u);
  EXPECT_EQ(t.PageOfRow(511), 0u);
  EXPECT_EQ(t.PageOfRow(512), 1u);
  EXPECT_EQ(t.PageOfRow(1099), 2u);
}

TEST(TableTest, StatsMinMaxDistinct) {
  Table t = test::SequentialTable("T", 100, /*mod=*/7);
  t.RecomputeStats();
  EXPECT_EQ(t.column_stats(0).min, 0);
  EXPECT_EQ(t.column_stats(0).max, 99);
  EXPECT_EQ(t.column_stats(0).distinct, 100);
  EXPECT_EQ(t.column_stats(1).distinct, 7);
}

TEST(TableTest, SortByColumnSetsSortedBy) {
  Table t("T", Schema({{"c0", 8}}));
  t.AddRow({5});
  t.AddRow({1});
  t.AddRow({3});
  EXPECT_EQ(t.sorted_by(), -1);
  t.SortByColumn(0);
  EXPECT_EQ(t.sorted_by(), 0);
  EXPECT_EQ(t.row(0)[0], 1);
  EXPECT_EQ(t.row(2)[0], 5);
}

TEST(TableTest, SortIsStable) {
  Table t("T", Schema({{"k", 8}, {"v", 8}}));
  t.AddRow({1, 100});
  t.AddRow({0, 200});
  t.AddRow({1, 300});
  t.SortByColumn(0);
  EXPECT_EQ(t.row(1)[1], 100);
  EXPECT_EQ(t.row(2)[1], 300);
}

}  // namespace
}  // namespace mscm::engine
