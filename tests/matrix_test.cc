#include "stats/matrix.h"

#include <gtest/gtest.h>

namespace mscm::stats {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.Transpose().AlmostEqual(m));
}

TEST(MatrixTest, Product) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_TRUE(c.AlmostEqual(Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatrixTest, ProductWithIdentity) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE((a * Matrix::Identity(2)).AlmostEqual(a));
  EXPECT_TRUE((Matrix::Identity(2) * a).AlmostEqual(a));
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> x = {1.0, -1.0};
  const std::vector<double> y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(MatrixTest, AddSubtract) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  EXPECT_TRUE((a + b).AlmostEqual(Matrix::FromRows({{5, 5}, {5, 5}})));
  EXPECT_TRUE((a - a).AlmostEqual(Matrix(2, 2)));
}

TEST(MatrixTest, Column) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<double> c = a.Column(1);
  EXPECT_EQ(c, (std::vector<double>{2, 4, 6}));
}

TEST(MatrixTest, WithoutColumn) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = a.WithoutColumn(1);
  EXPECT_TRUE(b.AlmostEqual(Matrix::FromRows({{1, 3}, {4, 6}})));
}

TEST(MatrixTest, AppendColumn) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  a.AppendColumn({9, 10});
  EXPECT_TRUE(a.AlmostEqual(Matrix::FromRows({{1, 2, 9}, {3, 4, 10}})));
}

TEST(MatrixTest, AppendColumnToEmpty) {
  Matrix a;
  a.AppendColumn({1, 2, 3});
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 1u);
}

TEST(MatrixTest, AlmostEqualShapeMismatch) {
  EXPECT_FALSE(Matrix(2, 2).AlmostEqual(Matrix(2, 3)));
}

TEST(MatrixTest, AlmostEqualTolerance) {
  Matrix a(1, 1, 1.0);
  Matrix b(1, 1, 1.0 + 1e-12);
  EXPECT_TRUE(a.AlmostEqual(b));
  Matrix c(1, 1, 1.1);
  EXPECT_FALSE(a.AlmostEqual(c));
}

}  // namespace
}  // namespace mscm::stats
