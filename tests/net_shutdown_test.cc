// Graceful-shutdown regression tests: a SIGTERM-style ordered teardown
// (server drain → refresh daemon → probers → pool) under in-flight batched
// requests must never deadlock and never drop an accepted request silently —
// every dispatched request is answered before its connection closes, and the
// dispatched/completed counters must balance.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/explanatory.h"
#include "net/client.h"
#include "net/served_runtime.h"
#include "net/server.h"

namespace mscm::net {
namespace {

using runtime::EstimateRequest;
using runtime::EstimateResponse;
using runtime::EstimateStatus;

EstimateRequest ValidRequest(const std::string& site) {
  EstimateRequest req;
  req.site = site;
  req.class_id = core::QueryClassId::kUnarySeqScan;
  const size_t n =
      core::VariableSet::ForClass(core::QueryClassId::kUnarySeqScan).size();
  req.features.assign(n, 2.0);
  req.probing_cost = 1.5;
  return req;
}

// The core regression: shut the full stack down while clients are pumping
// batched requests. The test itself is the deadlock detector (ctest's
// per-test timeout fails it if any teardown step hangs), and the counters
// are the no-silent-drop detector.
TEST(NetShutdownTest, ShutdownUnderInflightBatchesDrainsCleanly) {
  ServedRuntimeConfig config;
  config.sites = 2;
  config.worker_threads = 2;
  config.refresh = true;  // the full stack, daemon included
  config.probe_interval = std::chrono::milliseconds(10);
  auto served = std::make_unique<ServedRuntime>(config);
  std::string error;
  ASSERT_TRUE(served->Start(&error)) << error;
  const uint16_t port = served->port();

  constexpr int kClients = 4;
  std::atomic<bool> go{true};
  std::atomic<uint64_t> answered{0};      // data responses received
  std::atomic<uint64_t> shed{0};          // kShuttingDown / kOverloaded
  std::atomic<uint64_t> cut_off{0};       // transport/EOF after drain
  std::atomic<uint64_t> bad{0};           // anything protocol-broken

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", port)) {
        bad.fetch_add(1);
        return;
      }
      std::vector<EstimateRequest> batch;
      for (int i = 0; i < 32; ++i) {
        batch.push_back(ValidRequest(i % 2 == 0 ? "site0" : "site1"));
        batch.back().features[0] = 1.0 + ((c + i) % 5);
      }
      while (go.load(std::memory_order_relaxed)) {
        std::vector<EstimateResponse> responses;
        const RpcStatus status = client.EstimateBatch(batch, &responses);
        if (status.ok()) {
          if (responses.size() == batch.size()) {
            answered.fetch_add(1);
          } else {
            bad.fetch_add(1);
          }
        } else if (status.code == RpcStatus::Code::kErrorFrame) {
          // During drain the server may refuse new work — that is the
          // contract (typed shed, not silence).
          if (status.wire_error == WireError::kShuttingDown ||
              status.wire_error == WireError::kOverloaded) {
            shed.fetch_add(1);
          } else {
            bad.fetch_add(1);
          }
        } else {
          // Clean EOF / reset once the server is gone.
          cut_off.fetch_add(1);
          return;
        }
      }
    });
  }

  // Let traffic build, then tear down mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_GT(served->server().inflight() + answered.load(), 0u);
  const auto shutdown_start = std::chrono::steady_clock::now();
  served->Shutdown();
  const auto shutdown_elapsed =
      std::chrono::steady_clock::now() - shutdown_start;
  go.store(false);
  for (auto& t : clients) t.join();

  // Drain must be prompt (bounded by flush_timeout + epsilon), not a hang
  // that only ctest's timeout would catch.
  EXPECT_LT(shutdown_elapsed, std::chrono::seconds(10));

  EXPECT_GT(answered.load(), 0u) << "no traffic flowed before shutdown";
  EXPECT_EQ(bad.load(), 0u);

  // No silent drops: every admitted request ran to completion, and every
  // computed response either went out or was counted as dropped because the
  // peer itself had gone (well-behaved clients ⇒ zero).
  const NetServerStatsSnapshot stats = served->server().Stats();
  EXPECT_EQ(stats.requests_dispatched, stats.requests_completed);
  EXPECT_EQ(stats.dropped_responses, 0u);
  EXPECT_EQ(served->server().inflight(), 0u);
}

TEST(NetShutdownTest, ShutdownIsIdempotentAndReentrantSafe) {
  ServedRuntimeConfig config;
  config.sites = 1;
  config.worker_threads = 1;
  config.refresh = false;
  config.probe_interval = std::chrono::milliseconds(0);
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;
  served.Shutdown();
  served.Shutdown();  // second call is a no-op
  // Destructor will call it a third time.
}

TEST(NetShutdownTest, StopWithNoTrafficIsImmediate) {
  ServedRuntimeConfig config;
  config.sites = 1;
  config.worker_threads = 1;
  config.refresh = false;
  config.probe_interval = std::chrono::milliseconds(0);
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  const auto start = std::chrono::steady_clock::now();
  served.Shutdown();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(2));
}

TEST(NetShutdownTest, ClientsSeeEofNotHangAfterStop) {
  ServedRuntimeConfig config;
  config.sites = 1;
  config.worker_threads = 1;
  config.refresh = false;
  config.probe_interval = std::chrono::milliseconds(0);
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served.port()));
  EstimateResponse resp;
  ASSERT_TRUE(client.Estimate(ValidRequest("site0"), &resp).ok());

  served.Shutdown();

  // The next RPC on the now-closed connection fails promptly as a
  // transport/protocol error — no typed lie, no indefinite block.
  const RpcStatus status = client.Estimate(ValidRequest("site0"), &resp);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.code, RpcStatus::Code::kErrorFrame);
}

TEST(NetShutdownTest, RepeatedFullStackCyclesDoNotLeakOrWedge) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    ServedRuntimeConfig config;
    config.sites = 2;
    config.worker_threads = 2;
    config.refresh = true;
    config.probe_interval = std::chrono::milliseconds(5);
    ServedRuntime served(config);
    std::string error;
    ASSERT_TRUE(served.Start(&error)) << error << " cycle " << cycle;

    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", served.port()));
    std::vector<EstimateResponse> responses;
    std::vector<EstimateRequest> batch(8, ValidRequest("site0"));
    ASSERT_TRUE(client.EstimateBatch(batch, &responses).ok());
    ASSERT_EQ(responses.size(), batch.size());
    served.Shutdown();
  }
}

}  // namespace
}  // namespace mscm::net
