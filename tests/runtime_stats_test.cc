#include "runtime/runtime_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "runtime/thread_registry.h"

namespace mscm::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::nanoseconds;

TEST(LatencyHistogramTest, EmptyHistogramReportsZeroes) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 0.0);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_seconds, 0.0);
}

TEST(LatencyHistogramTest, FullMassInOneBucketPinsEveryPercentile) {
  LatencyHistogram h;
  // All samples land in the [1024, 2048) ns bucket.
  for (int i = 0; i < 100; ++i) h.Record(nanoseconds(1500));
  const double p50 = h.PercentileSeconds(0.5);
  const double p100 = h.PercentileSeconds(1.0);
  EXPECT_GT(p50, 0.0);
  // p=1.0 must resolve to the same (only) occupied bucket, not run off the
  // end of the cumulative scan.
  EXPECT_DOUBLE_EQ(p100, p50);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.0), p50);
  // The bucket midpoint lies inside the bucket's range.
  EXPECT_GE(p50, 1024e-9);
  EXPECT_LT(p50, 2048e-9);
}

TEST(LatencyHistogramTest, RecordNWithHugeCountStaysConsistent) {
  LatencyHistogram h;
  const uint64_t n = 1000000000ull;  // 1e9 samples in one call
  h.RecordN(microseconds(2), n);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, n);
  EXPECT_NEAR(snap.mean_seconds, 2e-6, 1e-12);
  // Every percentile sits in the single occupied bucket.
  EXPECT_GE(snap.p50_seconds, 1024e-9);
  EXPECT_LT(snap.p50_seconds, 4096e-9);
  EXPECT_DOUBLE_EQ(snap.p99_seconds, snap.p50_seconds);
}

TEST(LatencyHistogramTest, MajorityMassDrivesTheMedian) {
  // Pins the cached-path latency fix: the estimate hot path samples one in
  // 64 cache hits and records it with RecordN(latency, 64), so hit mass has
  // to dominate the quantiles. Before the fix, hits recorded nothing and
  // "hot cached" p50 reported the cold-miss latency — *above* the uncached
  // path. 99% fast mass + 1% slow mass must put p50 in the fast bucket and
  // p99 at the fast/slow boundary, never the reverse.
  LatencyHistogram h;
  for (int i = 0; i < 98; ++i) h.RecordN(nanoseconds(100), 64);
  h.RecordN(microseconds(10), 64);
  h.RecordN(microseconds(10), 64);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 100u * 64u);
  EXPECT_LT(snap.p50_seconds, 256e-9);   // fast bucket
  EXPECT_LT(snap.p90_seconds, 256e-9);   // still fast at p90
  EXPECT_GE(snap.p99_seconds, 1e-6);     // the slow 2% surfaces only at p99
  EXPECT_LT(snap.mean_seconds, 400e-9);  // mean ~ 298ns: hit mass dominates
}

TEST(LatencyHistogramTest, RecordNZeroIsANoOp) {
  LatencyHistogram h;
  h.RecordN(microseconds(5), 0);
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST(LatencyHistogramTest, SnapAfterResetIsEmpty) {
  LatencyHistogram h;
  h.Record(microseconds(10));
  h.RecordN(microseconds(3), 42);
  ASSERT_EQ(h.Snap().count, 43u);
  h.Reset();
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_bucket_seconds, 0.0);
  // The histogram remains usable after a reset.
  h.Record(microseconds(10));
  EXPECT_EQ(h.Snap().count, 1u);
}

TEST(RuntimeCountersTest, AggregateFoldsCacheHitsIntoRequests) {
  RuntimeCounters counters;
  RuntimeCounters::Shard& shard = counters.Local();
  shard.requests.fetch_add(3, std::memory_order_relaxed);
  shard.estimate_cache_hits.fetch_add(5, std::memory_order_relaxed);
  shard.estimate_cache_misses.fetch_add(3, std::memory_order_relaxed);

  RuntimeStatsSnapshot out;
  counters.AggregateInto(out);
  // The hit path bumps only estimate_cache_hits; aggregation reconstructs
  // the total request count.
  EXPECT_EQ(out.requests, 8u);
  EXPECT_EQ(out.estimate_cache_hits, 5u);
  EXPECT_EQ(out.estimate_cache_misses, 3u);
}

TEST(LatencyHistogramTest, PercentileOnePinsToHighestOccupiedBucket) {
  LatencyHistogram h;
  // Two occupied buckets far apart: 99 fast samples, 1 slow one.
  h.RecordN(nanoseconds(1500), 99);
  h.Record(microseconds(900));
  const double p50 = h.PercentileSeconds(0.5);
  const double p100 = h.PercentileSeconds(1.0);
  EXPECT_GE(p50, 1024e-9);
  EXPECT_LT(p50, 2048e-9);
  // p = 1.0 must land in the slow sample's bucket — never past the end of
  // the cumulative scan, never the fast bucket.
  EXPECT_GE(p100, 524288e-9);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_LE(p100, snap.max_bucket_seconds);
}

// Concurrent recorders against a concurrent snapshotter: every intermediate
// snapshot must be internally consistent (the count is derived from the
// same summed bucket pass that ranks percentiles, so percentiles can never
// run off the end), and the final count must conserve every sample across
// recorder-thread churn.
TEST(LatencyHistogramTest, ConcurrentRecordersSnapshotConsistently) {
  LatencyHistogram h;
  constexpr int kWaves = 4;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread snapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const LatencyHistogram::Snapshot snap = h.Snap();
      if (snap.count > 0) {
        EXPECT_GT(snap.p50_seconds, 0.0);
        EXPECT_LE(snap.p50_seconds, snap.max_bucket_seconds);
        EXPECT_LE(snap.p99_seconds, snap.max_bucket_seconds);
      }
      std::this_thread::yield();
    }
  });
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> recorders;
    for (int t = 0; t < kThreads; ++t) {
      recorders.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.Record(nanoseconds(500 + 997 * ((i + t) % 64)));
        }
      });
    }
    for (auto& r : recorders) r.join();
  }
  stop.store(true);
  snapper.join();
  // Thread churn (kWaves generations of recorders) loses nothing: exited
  // threads' stripes stay behind for the slots' next owners.
  EXPECT_EQ(h.Snap().count,
            static_cast<uint64_t>(kWaves) * kThreads * kPerThread);
}

TEST(RuntimeCountersTest, AggregationConservesAcrossThreadChurn) {
  RuntimeCounters counters;
  constexpr int kWaves = 5;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  std::atomic<bool> stop{false};
  // Aggregate concurrently with the churn: intermediate sums are monotone
  // garbage-free reads, never a crash or a torn shard.
  std::thread aggregator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      RuntimeStatsSnapshot snap;
      counters.AggregateInto(snap);
      std::this_thread::yield();
    }
  });
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> bumpers;
    for (int t = 0; t < kThreads; ++t) {
      bumpers.emplace_back([&counters] {
        RuntimeCounters::Shard& shard = counters.Local();
        for (uint64_t i = 0; i < kPerThread; ++i) {
          shard.Add(shard.requests);
          if (i % 2 == 0) shard.Add(shard.probe_cache_hits);
        }
      });
    }
    for (auto& b : bumpers) b.join();
  }
  stop.store(true);
  aggregator.join();
  RuntimeStatsSnapshot out;
  counters.AggregateInto(out);
  // Five generations of threads reused the same registry slots; cumulative
  // shards must conserve every increment.
  EXPECT_EQ(out.requests, kWaves * kThreads * kPerThread);
  EXPECT_EQ(out.probe_cache_hits, kWaves * kThreads * kPerThread / 2);
}

TEST(ThreadRegistryTest, LiveThreadsHoldDistinctSlots) {
  constexpr int kThreads = 24;
  std::vector<int> slots(kThreads, -2);
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      slots[static_cast<size_t>(t)] = ThreadRegistry::CurrentSlot();
      arrived.fetch_add(1);
      // Stay alive until everyone has a slot: uniqueness is only promised
      // among concurrently live threads.
      while (!release.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    });
  }
  while (arrived.load() < kThreads) std::this_thread::yield();
  std::set<int> distinct(slots.begin(), slots.end());
  release.store(true);
  for (auto& t : threads) t.join();
  // Far below kMaxSlots, so every thread got a real slot, and no two live
  // threads shared one.
  for (int slot : slots) EXPECT_GE(slot, 0);
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(distinct.count(ThreadRegistry::CurrentSlot()), 0u);
}

TEST(RuntimeStatsSnapshotTest, ToStringMentionsCacheAndCadence) {
  RuntimeStatsSnapshot snap;
  snap.estimate_cache_hits = 7;
  snap.estimate_cache_misses = 2;
  snap.estimate_cache_invalidations = 1;
  snap.probe_interval_ns = 2000000;
  const std::string s = snap.ToString();
  EXPECT_NE(s.find("estimate_cache"), std::string::npos);
  EXPECT_NE(s.find("hit=7"), std::string::npos);
  EXPECT_NE(s.find("probe_interval"), std::string::npos);
}

}  // namespace
}  // namespace mscm::runtime
