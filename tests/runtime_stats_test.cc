#include "runtime/runtime_stats.h"

#include <gtest/gtest.h>

#include <chrono>

namespace mscm::runtime {
namespace {

using std::chrono::microseconds;
using std::chrono::nanoseconds;

TEST(LatencyHistogramTest, EmptyHistogramReportsZeroes) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.5), 0.0);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_seconds, 0.0);
}

TEST(LatencyHistogramTest, FullMassInOneBucketPinsEveryPercentile) {
  LatencyHistogram h;
  // All samples land in the [1024, 2048) ns bucket.
  for (int i = 0; i < 100; ++i) h.Record(nanoseconds(1500));
  const double p50 = h.PercentileSeconds(0.5);
  const double p100 = h.PercentileSeconds(1.0);
  EXPECT_GT(p50, 0.0);
  // p=1.0 must resolve to the same (only) occupied bucket, not run off the
  // end of the cumulative scan.
  EXPECT_DOUBLE_EQ(p100, p50);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.0), p50);
  // The bucket midpoint lies inside the bucket's range.
  EXPECT_GE(p50, 1024e-9);
  EXPECT_LT(p50, 2048e-9);
}

TEST(LatencyHistogramTest, RecordNWithHugeCountStaysConsistent) {
  LatencyHistogram h;
  const uint64_t n = 1000000000ull;  // 1e9 samples in one call
  h.RecordN(microseconds(2), n);
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, n);
  EXPECT_NEAR(snap.mean_seconds, 2e-6, 1e-12);
  // Every percentile sits in the single occupied bucket.
  EXPECT_GE(snap.p50_seconds, 1024e-9);
  EXPECT_LT(snap.p50_seconds, 4096e-9);
  EXPECT_DOUBLE_EQ(snap.p99_seconds, snap.p50_seconds);
}

TEST(LatencyHistogramTest, RecordNZeroIsANoOp) {
  LatencyHistogram h;
  h.RecordN(microseconds(5), 0);
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST(LatencyHistogramTest, SnapAfterResetIsEmpty) {
  LatencyHistogram h;
  h.Record(microseconds(10));
  h.RecordN(microseconds(3), 42);
  ASSERT_EQ(h.Snap().count, 43u);
  h.Reset();
  const LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_bucket_seconds, 0.0);
  // The histogram remains usable after a reset.
  h.Record(microseconds(10));
  EXPECT_EQ(h.Snap().count, 1u);
}

TEST(RuntimeCountersTest, AggregateFoldsCacheHitsIntoRequests) {
  RuntimeCounters counters;
  RuntimeCounters::Shard& shard = counters.Local();
  shard.requests.fetch_add(3, std::memory_order_relaxed);
  shard.estimate_cache_hits.fetch_add(5, std::memory_order_relaxed);
  shard.estimate_cache_misses.fetch_add(3, std::memory_order_relaxed);

  RuntimeStatsSnapshot out;
  counters.AggregateInto(out);
  // The hit path bumps only estimate_cache_hits; aggregation reconstructs
  // the total request count.
  EXPECT_EQ(out.requests, 8u);
  EXPECT_EQ(out.estimate_cache_hits, 5u);
  EXPECT_EQ(out.estimate_cache_misses, 3u);
}

TEST(RuntimeStatsSnapshotTest, ToStringMentionsCacheAndCadence) {
  RuntimeStatsSnapshot snap;
  snap.estimate_cache_hits = 7;
  snap.estimate_cache_misses = 2;
  snap.estimate_cache_invalidations = 1;
  snap.probe_interval_ns = 2000000;
  const std::string s = snap.ToString();
  EXPECT_NE(s.find("estimate_cache"), std::string::npos);
  EXPECT_NE(s.find("hit=7"), std::string::npos);
  EXPECT_NE(s.find("probe_interval"), std::string::npos);
}

}  // namespace
}  // namespace mscm::runtime
