#include "core/maintenance.h"

#include "core/validation.h"

#include <gtest/gtest.h>

#include "core/agent_source.h"
#include "mdbs/local_dbs.h"
#include "tests/test_util.h"

namespace mscm::core {
namespace {

TEST(DriftMonitorTest, EmptyMonitorReportsHealthy) {
  DriftMonitor monitor;
  EXPECT_DOUBLE_EQ(monitor.RecentGoodFraction(), 1.0);
  EXPECT_FALSE(monitor.RebuildRecommended());
}

TEST(DriftMonitorTest, TracksGoodFraction) {
  DriftMonitorOptions options;
  options.window = 10;
  options.min_outcomes = 4;
  DriftMonitor monitor(options);
  // 3 good, 1 bad.
  monitor.Record(10.0, 10.0);
  monitor.Record(11.0, 10.0);
  monitor.Record(9.0, 10.0);
  monitor.Record(100.0, 10.0);
  EXPECT_DOUBLE_EQ(monitor.RecentGoodFraction(), 0.75);
}

TEST(DriftMonitorTest, WindowSlidesOldOutcomesOut) {
  DriftMonitorOptions options;
  options.window = 5;
  DriftMonitor monitor(options);
  for (int i = 0; i < 5; ++i) monitor.Record(100.0, 10.0);  // all bad
  EXPECT_DOUBLE_EQ(monitor.RecentGoodFraction(), 0.0);
  for (int i = 0; i < 5; ++i) monitor.Record(10.0, 10.0);  // all good
  EXPECT_DOUBLE_EQ(monitor.RecentGoodFraction(), 1.0);
  EXPECT_EQ(monitor.size(), 5u);
}

TEST(DriftMonitorTest, NoRecommendationBeforeMinOutcomes) {
  DriftMonitorOptions options;
  options.min_outcomes = 10;
  DriftMonitor monitor(options);
  for (int i = 0; i < 9; ++i) monitor.Record(100.0, 1.0);
  EXPECT_FALSE(monitor.RebuildRecommended());
  monitor.Record(100.0, 1.0);
  EXPECT_TRUE(monitor.RebuildRecommended());
}

TEST(DriftMonitorTest, ResetClearsHistory) {
  DriftMonitorOptions options;
  options.min_outcomes = 2;
  DriftMonitor monitor(options);
  monitor.Record(100.0, 1.0);
  monitor.Record(100.0, 1.0);
  EXPECT_TRUE(monitor.RebuildRecommended());
  monitor.Reset();
  EXPECT_FALSE(monitor.RebuildRecommended());
  EXPECT_EQ(monitor.size(), 0u);
}

class ManagedModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mdbs::LocalDbsConfig config;
    config.tables.num_tables = 4;
    config.tables.scale = 0.1;
    config.load.regime = sim::LoadRegime::kUniform;
    config.load.min_processes = 10.0;
    config.load.max_processes = 90.0;
    config.seed = 61;
    site_ = std::make_unique<mdbs::LocalDbs>(config);
    source_ = std::make_unique<AgentObservationSource>(
        site_.get(), QueryClassId::kUnarySeqScan, 62);
  }
  std::unique_ptr<mdbs::LocalDbs> site_;
  std::unique_ptr<AgentObservationSource> source_;
};

TEST_F(ManagedModelTest, NoRebuildWhileAccurate) {
  ModelBuildOptions options;
  options.sample_size = 200;
  BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, *source_, options);
  ManagedCostModel managed(std::move(report.model),
                           QueryClassId::kUnarySeqScan, options);
  for (int i = 0; i < 60; ++i) {
    const Observation obs = source_->Draw();
    const double est = managed.Estimate(obs.features, obs.probing_cost);
    managed.ReportOutcome(est, obs.cost);
    managed.RebuildIfDrifting(*source_);
  }
  EXPECT_EQ(managed.rebuild_count(), 0);
}

TEST_F(ManagedModelTest, RebuildsAfterMachineReconfiguration) {
  ModelBuildOptions options;
  options.sample_size = 200;
  BuildReport report =
      BuildCostModel(QueryClassId::kUnarySeqScan, *source_, options);
  ManagedCostModel managed(std::move(report.model),
                           QueryClassId::kUnarySeqScan, options);

  // Severe hardware downgrade: the old model drifts out of band.
  sim::MachineSpec downgraded;
  downgraded.memory_mb = 128.0;
  downgraded.cpu_cores = 0.5;
  downgraded.disk_io_capacity = 200.0;
  site_->ReconfigureMachine(downgraded);

  int i = 0;
  for (; i < 120 && managed.rebuild_count() == 0; ++i) {
    const Observation obs = source_->Draw();
    const double est = managed.Estimate(obs.features, obs.probing_cost);
    managed.ReportOutcome(est, obs.cost);
    managed.RebuildIfDrifting(*source_);
  }
  EXPECT_EQ(managed.rebuild_count(), 1);
  // The rebuilt model should estimate well on the new machine.
  int good = 0;
  constexpr int kCheck = 40;
  for (int j = 0; j < kCheck; ++j) {
    const Observation obs = source_->Draw();
    const double est = managed.Estimate(obs.features, obs.probing_cost);
    if (IsGoodEstimate(est, obs.cost)) ++good;
  }
  EXPECT_GT(good, kCheck / 2);
}

// A source whose TryDraw can report failure (unreachable site) without
// exceptions: cost = 3 * x0, single contention band.
class FallibleLinearSource : public ObservationSource {
 public:
  explicit FallibleLinearSource(bool fail) : fail_(fail), rng_(19) {}

  Observation Draw() override {
    Observation o;
    o.probing_cost = rng_.Uniform(0.2, 0.8);
    o.features.assign(
        VariableSet::ForClass(QueryClassId::kUnarySeqScan).size(), 0.0);
    o.features[0] = rng_.Uniform(1.0, 10.0);
    o.cost = 3.0 * o.features[0];
    return o;
  }

  std::optional<Observation> TryDraw() override {
    if (fail_) return std::nullopt;
    return Draw();
  }

 private:
  bool fail_;
  Rng rng_;
};

// Regression: RederiveModel used to wrap its whole body in a catch-all that
// converted a throwing source into nullopt — masking programmer errors from
// the build pipeline and violating the no-exceptions convention. Failure now
// flows through ObservationSource::TryDraw returning nullopt.
TEST(RederiveModelTest, FailingSourceYieldsNulloptWithoutExceptions) {
  FallibleLinearSource source(/*fail=*/true);
  RederiveOptions options;
  options.build.algorithm = StateAlgorithm::kSingleState;
  options.build.sample_size = 40;
  EXPECT_FALSE(
      RederiveModel(QueryClassId::kUnarySeqScan, source, options).has_value());
}

TEST(RederiveModelTest, HealthySourceStillRederives) {
  FallibleLinearSource source(/*fail=*/false);
  RederiveOptions options;
  options.build.algorithm = StateAlgorithm::kSingleState;
  options.build.sample_size = 40;
  const std::optional<BuildReport> report =
      RederiveModel(QueryClassId::kUnarySeqScan, source, options);
  ASSERT_TRUE(report.has_value());
  EXPECT_GT(report->model.r_squared(), 0.99);
}

}  // namespace
}  // namespace mscm::core
