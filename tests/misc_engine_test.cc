// Small-surface coverage: query rendering, work-counter arithmetic, planner
// defaults, and performance-profile invariants.

#include <gtest/gtest.h>

#include "engine/query.h"
#include "engine/work_counters.h"
#include "sim/performance_profile.h"
#include "tests/test_util.h"

namespace mscm {
namespace {

TEST(SelectQueryToStringTest, RendersProjectionAndPredicate) {
  const engine::Schema schema({{"a1", 8}, {"a2", 8}, {"a3", 8}});
  engine::SelectQuery q;
  q.table = "T";
  q.projection = {0, 2};
  q.predicate.Add({1, engine::CompareOp::kGe, 5, 0});
  EXPECT_EQ(q.ToString(schema), "select a1, a3 from T where a2 >= 5");
}

TEST(SelectQueryToStringTest, StarForEmptyProjection) {
  const engine::Schema schema({{"a1", 8}});
  engine::SelectQuery q;
  q.table = "T";
  EXPECT_EQ(q.ToString(schema), "select * from T where true");
}

TEST(WorkCountersTest, AccumulateSumsEveryField) {
  engine::WorkCounters a;
  a.sequential_pages = 1;
  a.random_pages = 2;
  a.tuples_read = 3;
  a.predicate_evals = 4;
  a.compare_ops = 5;
  a.hash_ops = 6;
  a.result_tuples = 7;
  a.result_bytes = 8;
  a.init_ops = 9;
  engine::WorkCounters b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.sequential_pages, 2);
  EXPECT_DOUBLE_EQ(b.random_pages, 4);
  EXPECT_DOUBLE_EQ(b.tuples_read, 6);
  EXPECT_DOUBLE_EQ(b.predicate_evals, 8);
  EXPECT_DOUBLE_EQ(b.compare_ops, 10);
  EXPECT_DOUBLE_EQ(b.hash_ops, 12);
  EXPECT_DOUBLE_EQ(b.result_tuples, 14);
  EXPECT_DOUBLE_EQ(b.result_bytes, 16);
  EXPECT_DOUBLE_EQ(b.init_ops, 18);
}

TEST(WorkCountersTest, DefaultHasOneInitOp) {
  const engine::WorkCounters w;
  EXPECT_DOUBLE_EQ(w.init_ops, 1.0);
  EXPECT_DOUBLE_EQ(w.sequential_pages, 0.0);
}

TEST(PerformanceProfileTest, ProfilesAreDistinctAndPositive) {
  const sim::PerformanceProfile a = sim::PerformanceProfile::Alpha();
  const sim::PerformanceProfile b = sim::PerformanceProfile::Beta();
  EXPECT_EQ(a.name, "alpha");
  EXPECT_EQ(b.name, "beta");
  for (const sim::PerformanceProfile& p : {a, b}) {
    EXPECT_GT(p.init_seconds, 0.0);
    EXPECT_GT(p.seq_page_seconds, 0.0);
    EXPECT_GT(p.rand_page_seconds, p.seq_page_seconds);  // seeks cost more
    EXPECT_GT(p.tuple_cpu_seconds, 0.0);
    EXPECT_GT(p.base_buffer_hit, 0.0);
    EXPECT_LT(p.base_buffer_hit, 1.0);
    EXPECT_GT(p.noise_cv, 0.0);
    EXPECT_LT(p.noise_cv, 0.3);
  }
  EXPECT_NE(a.init_seconds, b.init_seconds);
  EXPECT_NE(a.planner.prefer_hash_join, b.planner.prefer_hash_join);
}

TEST(PlannerRulesTest, DefaultsAreSane) {
  const engine::PlannerRules rules;
  EXPECT_GT(rules.nonclustered_selectivity_limit, 0.0);
  EXPECT_LT(rules.nonclustered_selectivity_limit, 0.5);
  EXPECT_GT(rules.index_join_outer_limit, 0.0);
  EXPECT_GT(rules.buffer_pages, 1);
}

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ MSCM_CHECK_MSG(1 == 2, "intentional"); }, "intentional");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  MSCM_CHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace mscm
