#include "stats/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mscm::stats {
namespace {

TEST(CholeskySolveTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  const Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  const auto x = CholeskySolve(a, {10, 9});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(CholeskySolveTest, RejectsIndefinite) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).has_value());
}

TEST(CholeskySolveTest, IdentityIsNoOp) {
  const auto x = CholeskySolve(Matrix::Identity(3), {1, 2, 3});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-14);
  EXPECT_NEAR((*x)[2], 3.0, 1e-14);
}

TEST(SpdInverseTest, InverseTimesMatrixIsIdentity) {
  const Matrix a = Matrix::FromRows({{5, 1, 0}, {1, 4, 1}, {0, 1, 3}});
  const auto inv = SpdInverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE((a * (*inv)).AlmostEqual(Matrix::Identity(3), 1e-10));
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  // Full-rank square system: least squares == exact solve.
  const Matrix x = Matrix::FromRows({{1, 1}, {1, 2}});
  const auto r = SolveLeastSquares(x, {3, 5});
  EXPECT_FALSE(r.rank_deficient);
  EXPECT_NEAR(r.coefficients[0], 1.0, 1e-10);
  EXPECT_NEAR(r.coefficients[1], 2.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedKnownSolution) {
  // y = 2 + 3t at t = 0..4, exactly.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int t = 0; t <= 4; ++t) {
    rows.push_back({1.0, static_cast<double>(t)});
    y.push_back(2.0 + 3.0 * t);
  }
  const auto r = SolveLeastSquares(Matrix::FromRows(rows), y);
  EXPECT_NEAR(r.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(r.coefficients[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, MinimizesResidualNorm) {
  // Perturbing the LS solution should never lower the residual norm.
  const Matrix x =
      Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}});
  const std::vector<double> y = {1.1, 1.9, 3.2, 3.8, 5.1};
  const auto r = SolveLeastSquares(x, y);

  auto rss = [&](const std::vector<double>& beta) {
    const std::vector<double> f = x * beta;
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i) acc += (y[i] - f[i]) * (y[i] - f[i]);
    return acc;
  };
  const double base = rss(r.coefficients);
  for (const double d : {-0.01, 0.01}) {
    std::vector<double> b0 = r.coefficients;
    b0[0] += d;
    EXPECT_GE(rss(b0), base);
    std::vector<double> b1 = r.coefficients;
    b1[1] += d;
    EXPECT_GE(rss(b1), base);
  }
}

TEST(LeastSquaresTest, MatchesNormalEquations) {
  Rng rng(3);
  const size_t n = 40;
  const size_t p = 4;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) x(i, j) = rng.Uniform(-1, 1);
    y[i] = rng.Uniform(-1, 1);
  }
  const auto qr = SolveLeastSquares(x, y);
  // Normal-equation route.
  const Matrix xt = x.Transpose();
  const auto ne = CholeskySolve(xt * x, xt * y);
  ASSERT_TRUE(ne.has_value());
  for (size_t j = 0; j < p; ++j) {
    EXPECT_NEAR(qr.coefficients[j], (*ne)[j], 1e-8);
  }
}

TEST(LeastSquaresTest, DetectsRankDeficiency) {
  // Third column = first + second.
  const Matrix x = Matrix::FromRows(
      {{1, 0, 1}, {1, 1, 2}, {1, 2, 3}, {1, 3, 4}, {1, 4, 5}});
  const auto r = SolveLeastSquares(x, {1, 2, 3, 4, 5});
  EXPECT_TRUE(r.rank_deficient);
  // Coefficients are still produced and finite.
  for (double c : r.coefficients) EXPECT_TRUE(std::isfinite(c));
}

TEST(LeastSquaresTest, XtxInverseDiagonalMatchesExplicitInverse) {
  const Matrix x =
      Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  const auto r = SolveLeastSquares(x, {0, 1, 2, 3});
  const Matrix xt = x.Transpose();
  const auto inv = SpdInverse(xt * x);
  ASSERT_TRUE(inv.has_value());
  EXPECT_NEAR(r.xtx_inverse_diagonal[0], (*inv)(0, 0), 1e-10);
  EXPECT_NEAR(r.xtx_inverse_diagonal[1], (*inv)(1, 1), 1e-10);
}

}  // namespace
}  // namespace mscm::stats
