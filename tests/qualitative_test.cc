#include "core/qualitative.h"

#include <gtest/gtest.h>

namespace mscm::core {
namespace {

TEST(DesignLayoutTest, ColumnCountsPerForm) {
  // 2 variables, 3 states (paper Table 2 structure).
  EXPECT_EQ(DesignLayout::Make(2, QualitativeForm::kCoincident, 3)
                .num_columns(),
            3u);  // intercept + 2 slopes
  EXPECT_EQ(DesignLayout::Make(2, QualitativeForm::kParallel, 3)
                .num_columns(),
            5u);  // 3 intercepts + 2 shared slopes
  EXPECT_EQ(DesignLayout::Make(2, QualitativeForm::kConcurrent, 3)
                .num_columns(),
            7u);  // 1 intercept + 2*3 slopes
  EXPECT_EQ(DesignLayout::Make(2, QualitativeForm::kGeneral, 3)
                .num_columns(),
            9u);  // (2+1)*3
}

TEST(DesignLayoutTest, SingleStateAllFormsCoincide) {
  for (QualitativeForm f :
       {QualitativeForm::kCoincident, QualitativeForm::kParallel,
        QualitativeForm::kConcurrent, QualitativeForm::kGeneral}) {
    EXPECT_EQ(DesignLayout::Make(3, f, 1).num_columns(), 4u);
  }
}

TEST(DesignLayoutTest, GeneralFormRowActivatesOnlyOwnState) {
  const DesignLayout layout =
      DesignLayout::Make(1, QualitativeForm::kGeneral, 2);
  // Columns: intercept(s0), intercept(s1), x(s0), x(s1).
  const std::vector<double> row0 = layout.Row({7.0}, 0);
  const std::vector<double> row1 = layout.Row({7.0}, 1);
  EXPECT_EQ(row0, (std::vector<double>{1, 0, 7, 0}));
  EXPECT_EQ(row1, (std::vector<double>{0, 1, 0, 7}));
}

TEST(DesignLayoutTest, ParallelFormSharesSlopes) {
  const DesignLayout layout =
      DesignLayout::Make(1, QualitativeForm::kParallel, 2);
  const std::vector<double> row0 = layout.Row({7.0}, 0);
  const std::vector<double> row1 = layout.Row({7.0}, 1);
  // Intercepts differ by state; the slope column is identical.
  EXPECT_EQ(row0, (std::vector<double>{1, 0, 7}));
  EXPECT_EQ(row1, (std::vector<double>{0, 1, 7}));
}

TEST(DesignLayoutTest, ConcurrentFormSharesIntercept) {
  const DesignLayout layout =
      DesignLayout::Make(1, QualitativeForm::kConcurrent, 2);
  EXPECT_EQ(layout.Row({7.0}, 0), (std::vector<double>{1, 7, 0}));
  EXPECT_EQ(layout.Row({7.0}, 1), (std::vector<double>{1, 0, 7}));
}

TEST(DesignLayoutTest, ColumnOfFindsSharedAndPerStateTerms) {
  const DesignLayout general =
      DesignLayout::Make(2, QualitativeForm::kGeneral, 3);
  // Intercepts occupy columns 0..2, then var0 states 0..2, var1 states 0..2.
  EXPECT_EQ(general.ColumnOf(-1, 1), 1);
  EXPECT_EQ(general.ColumnOf(0, 2), 5);
  EXPECT_EQ(general.ColumnOf(1, 0), 6);

  const DesignLayout parallel =
      DesignLayout::Make(2, QualitativeForm::kParallel, 3);
  // Shared slope column matches any state.
  EXPECT_EQ(parallel.ColumnOf(0, 0), parallel.ColumnOf(0, 2));
}

TEST(SelectValuesTest, PicksByIndex) {
  const std::vector<double> features = {10, 20, 30, 40};
  EXPECT_EQ(SelectValues(features, {2, 0}),
            (std::vector<double>{30, 10}));
  EXPECT_TRUE(SelectValues(features, {}).empty());
}

TEST(BuildDesignMatrixTest, RowsMatchObservations) {
  ObservationSet obs(3);
  obs[0] = {{1.0, 2.0}, 10.0, 0.1};
  obs[1] = {{3.0, 4.0}, 20.0, 0.9};
  obs[2] = {{5.0, 6.0}, 30.0, 0.5};
  const ContentionStates states =
      ContentionStates::UniformPartition(0.0, 1.0, 2);
  const DesignLayout layout =
      DesignLayout::Make(1, QualitativeForm::kGeneral, 2);
  const stats::Matrix x = BuildDesignMatrix(obs, {1}, states, layout);
  ASSERT_EQ(x.rows(), 3u);
  ASSERT_EQ(x.cols(), 4u);
  // obs0: probe 0.1 -> state 0, variable value = features[1] = 2.
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(x(0, 3), 0.0);
  // obs1: probe 0.9 -> state 1.
  EXPECT_DOUBLE_EQ(x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 3), 4.0);
}

TEST(ResponseVectorTest, ExtractsCosts) {
  ObservationSet obs(2);
  obs[0].cost = 1.5;
  obs[1].cost = 2.5;
  EXPECT_EQ(ResponseVector(obs), (std::vector<double>{1.5, 2.5}));
}

TEST(QualitativeFormTest, Names) {
  EXPECT_STREQ(ToString(QualitativeForm::kGeneral), "general");
  EXPECT_STREQ(ToString(QualitativeForm::kCoincident), "coincident");
  EXPECT_STREQ(ToString(QualitativeForm::kParallel), "parallel");
  EXPECT_STREQ(ToString(QualitativeForm::kConcurrent), "concurrent");
}

}  // namespace
}  // namespace mscm::core
