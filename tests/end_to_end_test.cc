// Integration tests across the full stack: live simulated sites, the
// sampling procedure, state determination, and validation — checking the
// paper's headline qualitative findings at reduced scale.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/agent_source.h"
#include "core/model_builder.h"
#include "core/validation.h"
#include "mdbs/local_dbs.h"

namespace mscm::core {
namespace {

mdbs::LocalDbsConfig DynamicSite(uint64_t seed,
                                 sim::LoadRegime regime =
                                     sim::LoadRegime::kUniform) {
  mdbs::LocalDbsConfig config;
  config.tables.num_tables = 5;
  config.tables.scale = 0.2;
  config.load.regime = regime;
  config.load.min_processes = 20.0;
  config.load.max_processes = 110.0;
  config.seed = seed;
  return config;
}

BuildReport Build(mdbs::LocalDbs& site, QueryClassId cls,
                  StateAlgorithm algorithm, int sample_size,
                  uint64_t seed) {
  AgentObservationSource source(&site, cls, seed);
  ModelBuildOptions options;
  options.algorithm = algorithm;
  options.sample_size = sample_size;
  return BuildCostModel(cls, source, options);
}

TEST(EndToEndTest, MultiStatesBeatsOneStateInDynamicEnvironment) {
  // The paper's central claim (Table 5): in a dynamic environment the
  // multi-states model gives materially more good estimates than the
  // one-state model trained on the same dynamic data.
  mdbs::LocalDbs site(DynamicSite(11));
  const QueryClassId cls = QueryClassId::kUnarySeqScan;

  const BuildReport multi = Build(site, cls, StateAlgorithm::kIupma, 300, 1);
  const BuildReport one =
      Build(site, cls, StateAlgorithm::kSingleState, 300, 1);

  AgentObservationSource test_source(&site, cls, 999);
  const ObservationSet test = DrawObservations(test_source, 120);

  const ValidationReport vm = Validate(multi.model, test);
  const ValidationReport vo = Validate(one.model, test);

  EXPECT_GT(multi.model.r_squared(), one.model.r_squared());
  EXPECT_GT(vm.pct_good, vo.pct_good);
  EXPECT_GE(vm.pct_very_good, vo.pct_very_good);
  EXPECT_GT(vm.pct_good, 0.6);  // paper: 62–81% good for multi-states
}

TEST(EndToEndTest, StaticModelFailsInDynamicEnvironment) {
  // Static Approach 1: model trained in a *quiet* environment gives poor
  // estimates once the environment turns dynamic (paper: ~8% good).
  mdbs::LocalDbsConfig quiet = DynamicSite(13);
  quiet.load.regime = sim::LoadRegime::kSteady;
  quiet.load.min_processes = 0.0;  // a genuinely idle machine
  quiet.load.steady_processes = 2.0;
  mdbs::LocalDbs quiet_site(quiet);
  const QueryClassId cls = QueryClassId::kUnarySeqScan;
  const BuildReport static_model =
      Build(quiet_site, cls, StateAlgorithm::kSingleState, 250, 2);
  // High in-sample fit in the static environment…
  EXPECT_GT(static_model.model.r_squared(), 0.9);

  // …but poor accuracy on queries run in the dynamic environment.
  mdbs::LocalDbs dynamic_site(DynamicSite(13));
  AgentObservationSource test_source(&dynamic_site, cls, 3);
  const ObservationSet test = DrawObservations(test_source, 120);
  const ValidationReport v = Validate(static_model.model, test);
  EXPECT_LT(v.pct_good, 0.45);

  // And the multi-states model on the same dynamic site does far better.
  const BuildReport multi =
      Build(dynamic_site, cls, StateAlgorithm::kIupma, 300, 4);
  const ValidationReport vm = Validate(multi.model, test);
  EXPECT_GT(vm.pct_good, v.pct_good + 0.2);
}

TEST(EndToEndTest, NonClusteredIndexClassModelsWell) {
  mdbs::LocalDbs site(DynamicSite(17));
  const QueryClassId cls = QueryClassId::kUnaryNonClusteredIndex;
  const BuildReport report = Build(site, cls, StateAlgorithm::kIupma, 300, 5);
  EXPECT_GT(report.model.r_squared(), 0.8);
  AgentObservationSource test_source(&site, cls, 6);
  const ObservationSet test = DrawObservations(test_source, 80);
  const ValidationReport v = Validate(report.model, test);
  EXPECT_GT(v.pct_good, 0.5);
}

TEST(EndToEndTest, JoinClassModelsWell) {
  mdbs::LocalDbs site(DynamicSite(19));
  const QueryClassId cls = QueryClassId::kJoinNoIndex;
  const BuildReport report = Build(site, cls, StateAlgorithm::kIupma, 250, 7);
  // Small-scale joins are cheap, so relative noise is high (the paper's
  // small-cost-queries-estimate-worse observation); at bench scale the same
  // pipeline reaches R^2 ~0.96.
  EXPECT_GT(report.model.r_squared(), 0.65);
  AgentObservationSource test_source(&site, cls, 8);
  const ObservationSet test = DrawObservations(test_source, 60);
  const ValidationReport v = Validate(report.model, test);
  EXPECT_GT(v.pct_good, 0.5);
}

TEST(EndToEndTest, LargeCostQueriesEstimateBetterThanSmallCost) {
  // Paper §5: small-cost queries have worse relative estimates because small
  // momentary environment changes dominate them.
  mdbs::LocalDbs site(DynamicSite(23));
  const QueryClassId cls = QueryClassId::kUnarySeqScan;
  const BuildReport report = Build(site, cls, StateAlgorithm::kIupma, 300, 9);
  AgentObservationSource test_source(&site, cls, 10);
  const ObservationSet test = DrawObservations(test_source, 200);

  // Split at the median observed cost.
  std::vector<double> costs;
  for (const auto& o : test) costs.push_back(o.cost);
  std::nth_element(costs.begin(), costs.begin() + costs.size() / 2,
                   costs.end());
  const double median = costs[costs.size() / 2];
  ObservationSet small;
  ObservationSet large;
  for (const auto& o : test) {
    (o.cost < median ? small : large).push_back(o);
  }
  const ValidationReport vs = Validate(report.model, small);
  const ValidationReport vl = Validate(report.model, large);
  EXPECT_GE(vl.pct_good, vs.pct_good);
}

TEST(EndToEndTest, IcmaAtLeastMatchesIupmaOnClusteredRegime) {
  // Paper Table 6: in a clustered contention environment ICMA derives an
  // equal-or-better set of states than IUPMA.
  mdbs::LocalDbs site(DynamicSite(29, sim::LoadRegime::kClustered));
  const QueryClassId cls = QueryClassId::kUnarySeqScan;
  const BuildReport iupma = Build(site, cls, StateAlgorithm::kIupma, 300, 11);
  const BuildReport icma = Build(site, cls, StateAlgorithm::kIcma, 300, 11);

  AgentObservationSource test_source(&site, cls, 12);
  const ObservationSet test = DrawObservations(test_source, 120);
  const ValidationReport vi = Validate(iupma.model, test);
  const ValidationReport vc = Validate(icma.model, test);
  // Allow a small tolerance: both should be close, ICMA not worse by much.
  EXPECT_GE(vc.pct_good + 0.08, vi.pct_good);
  EXPECT_GT(icma.model.r_squared(), 0.9);
}

TEST(EndToEndTest, TwoProfilesYieldDifferentModels) {
  // Alpha vs beta sites (the Oracle/DB2 stand-ins) produce different
  // coefficient magnitudes for the same query class.
  mdbs::LocalDbsConfig ca = DynamicSite(31);
  ca.profile = sim::PerformanceProfile::Alpha();
  mdbs::LocalDbsConfig cb = DynamicSite(31);
  cb.profile = sim::PerformanceProfile::Beta();
  mdbs::LocalDbs site_a(ca);
  mdbs::LocalDbs site_b(cb);
  const QueryClassId cls = QueryClassId::kUnarySeqScan;
  const BuildReport ra = Build(site_a, cls, StateAlgorithm::kIupma, 250, 13);
  const BuildReport rb = Build(site_b, cls, StateAlgorithm::kIupma, 250, 13);
  // Compare the slope of the first shared selected variable in state 0.
  const auto& sa = ra.model.selected_variables();
  const auto& sb = rb.model.selected_variables();
  int shared = -1;
  for (int v : sa) {
    if (std::find(sb.begin(), sb.end(), v) != sb.end()) {
      shared = static_cast<int>(std::find(sa.begin(), sa.end(), v) -
                                sa.begin());
      break;
    }
  }
  ASSERT_GE(shared, 0);
  const int vb = static_cast<int>(
      std::find(sb.begin(), sb.end(), sa[static_cast<size_t>(shared)]) -
      sb.begin());
  const double coef_a = ra.model.CoefficientFor(shared, 0);
  const double coef_b = rb.model.CoefficientFor(vb, 0);
  EXPECT_NE(coef_a, coef_b);
}

}  // namespace
}  // namespace mscm::core
