// Fleet population generator: determinism from the seed, heterogeneity and
// bounds of the generated sites, the layered contention regimes (diurnal
// sweep, correlated group spikes, per-site jitter) and the piecewise
// state/cost mapping harnesses derive models from.

#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

namespace mscm::sim {
namespace {

TEST(FleetTest, IdenticalSeedsProduceIdenticalFleets) {
  FleetConfig config;
  config.num_sites = 64;
  Fleet a(config);
  Fleet b(config);

  ASSERT_EQ(a.num_sites(), b.num_sites());
  for (size_t i = 0; i < a.num_sites(); ++i) {
    const FleetSiteSpec& sa = a.spec(i);
    const FleetSiteSpec& sb = b.spec(i);
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.group, sb.group);
    EXPECT_EQ(sa.num_states, sb.num_states);
    EXPECT_EQ(sa.state_slopes, sb.state_slopes);  // bit-exact
    EXPECT_EQ(sa.base_probing, sb.base_probing);
    EXPECT_EQ(sa.profile_mix, sb.profile_mix);
  }

  // Same advance sequence -> bit-identical trajectories (the jitter stream
  // is a pure function of (site seed, tick), never of wall time).
  for (int step = 0; step < 50; ++step) {
    a.Advance(0.03);
    b.Advance(0.03);
  }
  for (size_t i = 0; i < a.num_sites(); ++i) {
    EXPECT_EQ(a.probing_cost(i), b.probing_cost(i)) << "site " << i;
  }

  // A different seed moves the population.
  config.seed ^= 0x1234;
  Fleet c(config);
  size_t differing = 0;
  for (size_t i = 0; i < a.num_sites(); ++i) {
    if (a.spec(i).base_probing != c.spec(i).base_probing) ++differing;
  }
  EXPECT_GT(differing, a.num_sites() / 2);
}

TEST(FleetTest, PopulationIsHeterogeneousAndInBounds) {
  Fleet fleet;  // default config: 208 sites, 8 groups
  ASSERT_GE(fleet.num_sites(), 200u);

  std::set<std::string> names;
  std::set<double> base_slopes;
  std::vector<size_t> group_sizes(8, 0);
  for (size_t i = 0; i < fleet.num_sites(); ++i) {
    const FleetSiteSpec& spec = fleet.spec(i);
    names.insert(spec.name);
    ASSERT_LT(spec.group, group_sizes.size());
    ++group_sizes[spec.group];

    ASSERT_GE(spec.num_states, 2);
    ASSERT_LE(spec.num_states, 4);
    ASSERT_EQ(spec.state_slopes.size(), static_cast<size_t>(spec.num_states));
    // Contention makes work strictly more expensive state over state.
    for (int s = 0; s + 1 < spec.num_states; ++s) {
      EXPECT_LT(spec.state_slopes[static_cast<size_t>(s)],
                spec.state_slopes[static_cast<size_t>(s + 1)]);
    }
    for (double slope : spec.state_slopes) {
      EXPECT_TRUE(std::isfinite(slope));
      EXPECT_GT(slope, 0.0);
    }
    base_slopes.insert(spec.state_slopes[0]);

    // Resting point strictly inside the state range, so regimes can push
    // the site across boundaries in both directions.
    EXPECT_GE(spec.base_probing, 0.25);
    EXPECT_LE(spec.base_probing,
              static_cast<double>(spec.num_states) - 0.25);
    EXPECT_GE(spec.profile_mix, 0.0);
    EXPECT_LE(spec.profile_mix, 1.0);
  }
  // Unique identities, distinct cost surfaces, balanced groups.
  EXPECT_EQ(names.size(), fleet.num_sites());
  EXPECT_GT(base_slopes.size(), fleet.num_sites() / 2);
  for (size_t g = 0; g < group_sizes.size(); ++g) {
    EXPECT_EQ(group_sizes[g], fleet.num_sites() / group_sizes.size())
        << "group " << g;
  }
}

TEST(FleetTest, RegimesMoveCostsWithinTheClampedRange) {
  FleetConfig config;
  config.num_sites = 32;
  config.diurnal_period_seconds = 1.0;
  Fleet fleet(config);

  std::vector<double> lo(config.num_sites,
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(config.num_sites,
                         -std::numeric_limits<double>::infinity());
  // Two full diurnal cycles in small steps.
  for (int step = 0; step < 200; ++step) {
    fleet.Advance(0.01);
    for (size_t i = 0; i < fleet.num_sites(); ++i) {
      const double p = fleet.probing_cost(i);
      const double range_hi =
          static_cast<double>(fleet.spec(i).num_states) - 0.05;
      ASSERT_GE(p, 0.05);
      ASSERT_LE(p, range_hi);
      lo[i] = std::min(lo[i], p);
      hi[i] = std::max(hi[i], p);
    }
  }
  // The diurnal swing plus jitter actually moves every site.
  for (size_t i = 0; i < fleet.num_sites(); ++i) {
    EXPECT_GT(hi[i] - lo[i], 0.2) << "site " << i << " never moved";
  }
}

TEST(FleetTest, SpikeLiftsOnlyTheTargetGroupAndDecays) {
  FleetConfig config;
  config.num_sites = 24;
  config.num_groups = 4;
  config.diurnal_amplitude = 0.0;  // isolate the spike component
  config.jitter_amplitude = 0.0;
  Fleet fleet(config);

  // With no diurnal or jitter component, costs sit exactly at rest.
  fleet.Advance(0.1);
  for (size_t i = 0; i < fleet.num_sites(); ++i) {
    EXPECT_DOUBLE_EQ(fleet.probing_cost(i), fleet.spec(i).base_probing);
  }

  // Magnitude 0.5 over 1s, sampled 0.25s in: 0.375 remains, clamped to
  // each site's range. Only group 1 feels it.
  fleet.TriggerSpike(/*group=*/1, /*magnitude=*/0.5, /*duration_seconds=*/1.0);
  fleet.Advance(0.25);
  for (size_t i = 0; i < fleet.num_sites(); ++i) {
    const FleetSiteSpec& spec = fleet.spec(i);
    const double range_hi = static_cast<double>(spec.num_states) - 0.05;
    const double expected =
        spec.group == 1
            ? std::min(spec.base_probing + 0.5 * (1.0 - 0.25), range_hi)
            : spec.base_probing;
    EXPECT_DOUBLE_EQ(fleet.probing_cost(i), expected) << "site " << i;
  }

  // Past the spike duration everything is back at rest.
  fleet.Advance(1.0);
  for (size_t i = 0; i < fleet.num_sites(); ++i) {
    EXPECT_DOUBLE_EQ(fleet.probing_cost(i), fleet.spec(i).base_probing);
  }
}

TEST(FleetTest, OverlappingSpikesKeepTheStrongerRemainder) {
  FleetConfig config;
  config.num_sites = 8;
  config.num_groups = 2;
  config.diurnal_amplitude = 0.0;
  config.jitter_amplitude = 0.0;
  Fleet fleet(config);

  fleet.TriggerSpike(0, 0.8, 2.0);
  fleet.Advance(0.5);  // 0.8 * (1 - 0.25) = 0.6 remains
  // A weaker incident must not erase the active one...
  fleet.TriggerSpike(0, 0.1, 2.0);
  fleet.Advance(0.5);  // original spike: 0.8 * (1 - 0.5) = 0.4 remains
  const FleetSiteSpec& spec = fleet.spec(0);
  const double range_hi = static_cast<double>(spec.num_states) - 0.05;
  EXPECT_DOUBLE_EQ(
      fleet.probing_cost(0),
      std::min(spec.base_probing + 0.8 * (1.0 - 0.5), range_hi));

  // ...but a stronger one replaces it.
  fleet.TriggerSpike(0, 0.9, 1.0);
  fleet.Advance(0.5);
  EXPECT_DOUBLE_EQ(
      fleet.probing_cost(0),
      std::min(spec.base_probing + 0.9 * (1.0 - 0.5), range_hi));
}

TEST(FleetTest, StateMappingMatchesThePiecewisePartition) {
  Fleet fleet;
  for (size_t i = 0; i < std::min<size_t>(fleet.num_sites(), 16); ++i) {
    const FleetSiteSpec& spec = fleet.spec(i);
    // State s covers (s, s+1]: integer boundaries belong to the state
    // below, matching test::PiecewiseLinearModel's derived partition.
    EXPECT_EQ(fleet.StateForProbing(i, 0.5), 0);
    EXPECT_EQ(fleet.StateForProbing(i, 1.0), 0);
    EXPECT_EQ(fleet.StateForProbing(i, 1.0001), 1);
    // Clamped at both ends of the site's own range.
    EXPECT_EQ(fleet.StateForProbing(i, 0.0001), 0);
    EXPECT_EQ(fleet.StateForProbing(i, 1000.0), spec.num_states - 1);

    // Ground truth prices from the state's slope, linearly in x0.
    for (int s = 0; s < spec.num_states; ++s) {
      const double probing = static_cast<double>(s) + 0.5;
      EXPECT_DOUBLE_EQ(fleet.ActualCost(i, 3.0, probing),
                       spec.state_slopes[static_cast<size_t>(s)] * 3.0);
    }
  }
}

}  // namespace
}  // namespace mscm::sim
