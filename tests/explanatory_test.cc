#include "core/explanatory.h"

#include <gtest/gtest.h>

namespace mscm::core {
namespace {

TEST(VariableSetTest, UnaryClassHasPaperVariables) {
  const VariableSet v = VariableSet::ForClass(QueryClassId::kUnarySeqScan);
  EXPECT_EQ(v.size(), 7u);
  EXPECT_EQ(v.BasicIndices().size(), 3u);
  EXPECT_EQ(v.SecondaryIndices().size(), 4u);
}

TEST(VariableSetTest, JoinClassHasPaperVariables) {
  const VariableSet v = VariableSet::ForClass(QueryClassId::kJoinNoIndex);
  EXPECT_EQ(v.size(), 12u);
  EXPECT_EQ(v.BasicIndices().size(), 6u);
  EXPECT_EQ(v.SecondaryIndices().size(), 6u);
}

TEST(VariableSetTest, BasicAndSecondaryPartitionAllVariables) {
  for (QueryClassId id : {QueryClassId::kUnarySeqScan,
                          QueryClassId::kUnaryNonClusteredIndex,
                          QueryClassId::kJoinNoIndex}) {
    const VariableSet v = VariableSet::ForClass(id);
    EXPECT_EQ(v.BasicIndices().size() + v.SecondaryIndices().size(),
              v.size());
  }
}

TEST(VariableSetTest, UnaryClassesShareVariableSet) {
  const VariableSet a = VariableSet::ForClass(QueryClassId::kUnarySeqScan);
  const VariableSet b =
      VariableSet::ForClass(QueryClassId::kUnaryClusteredIndex);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.name(i), b.name(i));
}

TEST(ExtractFeaturesTest, UnaryFeatureValues) {
  engine::SelectExecution exec;
  exec.operand_rows = 50000;
  exec.intermediate_rows = 20000;
  exec.result_rows = 10000;
  exec.operand_tuple_bytes = 64;
  exec.result_tuple_bytes = 24;
  const std::vector<double> f = ExtractUnaryFeatures(exec);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f[0], 50.0);   // N_t in ktuples
  EXPECT_DOUBLE_EQ(f[1], 20.0);   // N_it
  EXPECT_DOUBLE_EQ(f[2], 10.0);   // N_rt
  EXPECT_DOUBLE_EQ(f[3], 64.0);   // TL_t
  EXPECT_DOUBLE_EQ(f[4], 24.0);   // TL_rt
  EXPECT_DOUBLE_EQ(f[5], 50.0 * 64.0);  // L_t in KB
  EXPECT_DOUBLE_EQ(f[6], 10.0 * 24.0);  // L_rt in KB
}

TEST(ExtractFeaturesTest, JoinFeatureValues) {
  engine::JoinExecution exec;
  exec.left_rows = 100000;
  exec.right_rows = 50000;
  exec.left_qualified = 10000;
  exec.right_qualified = 5000;
  exec.result_rows = 2000;
  exec.left_tuple_bytes = 40;
  exec.right_tuple_bytes = 80;
  exec.result_tuple_bytes = 32;
  const std::vector<double> f = ExtractJoinFeatures(exec);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f[0], 100.0);
  EXPECT_DOUBLE_EQ(f[1], 50.0);
  EXPECT_DOUBLE_EQ(f[2], 10.0);
  EXPECT_DOUBLE_EQ(f[3], 5.0);
  EXPECT_DOUBLE_EQ(f[4], 2.0);
  EXPECT_DOUBLE_EQ(f[5], 10.0 * 5.0 * 1e-3);  // Mtuple-pairs
  EXPECT_DOUBLE_EQ(f[9], 100.0 * 40.0);
}

TEST(ExtractFeaturesTest, FeatureCountMatchesVariableSet) {
  engine::SelectExecution se;
  EXPECT_EQ(ExtractUnaryFeatures(se).size(),
            VariableSet::ForClass(QueryClassId::kUnarySeqScan).size());
  engine::JoinExecution je;
  EXPECT_EQ(ExtractJoinFeatures(je).size(),
            VariableSet::ForClass(QueryClassId::kJoinNoIndex).size());
}

}  // namespace
}  // namespace mscm::core
