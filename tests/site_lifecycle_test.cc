// Site lifecycle: UnregisterSite and everything that must not survive it.
//
// A dynamic multidatabase federation churns — sites join, serve, degrade and
// leave — so retirement is a first-class runtime operation, not a teardown
// special case (DESIGN §7). These tests pin the retirement contract:
// models, tracker, stale flags and cached estimates all go; monotone
// counters (probes, breaker opens, latency samples) all stay; nothing a
// retiring site left in flight — estimates, refreshes, feedback stragglers —
// can crash, resurrect the site, or bend a conservation invariant.
//
// Also pins two stats-conservation bugs this PR fixed:
//   * sampled cache-hit latency weighted by the attempt clock instead of the
//     hit clock, overcounting estimate_latency past requests;
//   * batch latency amortized over every batch item including the invalid
//     ones it never priced.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/observation_source.h"
#include "runtime/estimation_service.h"
#include "runtime/model_refresh.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

constexpr auto kCls = core::QueryClassId::kUnarySeqScan;

std::vector<double> FeatureVector(double x0) {
  std::vector<double> f(core::VariableSet::ForClass(kCls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, double x0,
                        double probing_cost) {
  EstimateRequest request;
  request.site = site;
  request.class_id = kCls;
  request.features = FeatureVector(x0);
  request.probing_cost = probing_cost;
  return request;
}

// The wire "counter" list carries three gauge-like fields that legitimately
// move both ways; everything else must be monotone across any lifecycle.
bool IsMonotoneCounter(const std::string& name) {
  return name != "degraded_sites" && name != "stale_models" &&
         name != "near_boundary_sites";
}

TEST(SiteLifecycleTest, UnregisterRetiresModelsTrackerAndStaleFlags) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));
  ASSERT_TRUE(service.Estimate(Request("a", 3.0, -1.0)).ok());
  service.SetModelStale("a", kCls, true);
  ASSERT_TRUE(service.IsModelStale("a", kCls));
  ASSERT_EQ(service.Stats().stale_models, 1u);

  service.UnregisterSite("a");

  // Models gone: the catalog entry cannot be found and estimates fail
  // closed, with or without an explicit probing cost.
  EXPECT_EQ(service.CatalogSnapshot()->Find("a", kCls), nullptr);
  EXPECT_EQ(service.Estimate(Request("a", 3.0, 0.5)).status,
            EstimateStatus::kNoModel);
  EXPECT_EQ(service.Estimate(Request("a", 3.0, -1.0)).status,
            EstimateStatus::kNoModel);
  // Tracker gone: no cached reading, no degraded state, probes refused.
  EXPECT_FALSE(service.ProbeNow("a"));
  EXPECT_FALSE(service.CurrentProbe("a").has_value);
  EXPECT_FALSE(service.IsSiteDegraded("a"));
  // Stale flag gone (nothing will ever refresh the key now).
  EXPECT_FALSE(service.IsModelStale("a", kCls));
  EXPECT_EQ(service.Stats().stale_models, 0u);
  EXPECT_EQ(service.Stats().sites_retired, 1u);
}

TEST(SiteLifecycleTest, UnregisterIsIdempotentAndCountsKnownSitesOnce) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.UnregisterSite("a");
  service.UnregisterSite("a");          // second retirement: no-op
  service.UnregisterSite("never-was");  // unknown site: no-op
  EXPECT_EQ(service.Stats().sites_retired, 1u);

  // A site that was only a tracker (no models) still counts as retired.
  service.RegisterSite("probe-only", [] { return 0.5; });
  service.UnregisterSite("probe-only");
  EXPECT_EQ(service.Stats().sites_retired, 2u);
}

TEST(SiteLifecycleTest, ProbeCountersNeverRegressAcrossChurn) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.ProbeNow("a"));
  const uint64_t before = service.Stats().probes;
  ASSERT_GE(before, 3u);

  // Replacing the tracker folds the old one's counts...
  service.RegisterSite("a", [] { return 1.5; });
  ASSERT_TRUE(service.ProbeNow("a"));
  const uint64_t after_replace = service.Stats().probes;
  EXPECT_GE(after_replace, before + 1);

  // ...and retiring the site folds the replacement's.
  service.UnregisterSite("a");
  const uint64_t after_retire = service.Stats().probes;
  EXPECT_GE(after_retire, after_replace);

  // Rebirth under the same name keeps extending the same totals.
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {3.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));
  EXPECT_GE(service.Stats().probes, after_retire + 1);
}

TEST(SiteLifecycleTest, CachedEstimatesCannotOutliveTheSite) {
  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 64;
  EstimationService service(config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  // Prime a cached response (tracker-resolved probe).
  const EstimateRequest request = Request("a", 4.0, -1.0);
  const double old_estimate = service.Estimate(request).estimate_seconds;
  ASSERT_TRUE(service.Estimate(request).ok());
  ASSERT_GE(service.Stats().estimate_cache_hits, 1u);

  // Retire and re-register the same name with a different ground truth.
  service.UnregisterSite("a");
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {7.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  // The reborn site serves its own model; the old cached value is
  // unreachable (revision-bumping catalog swap at retirement).
  const EstimateResponse reborn = service.Estimate(request);
  ASSERT_TRUE(reborn.ok());
  EXPECT_NE(reborn.estimate_seconds, old_estimate);
  EXPECT_NEAR(reborn.estimate_seconds, 28.0, 1.0);
}

// Pinned regression: the sampled cache-hit latency path used to advance its
// sampling clock on every attempt but weight the recorded sample by the full
// period of *hits*, so mostly-miss traffic overcounted estimate_latency —
// the count could exceed requests, breaking stats conservation.
TEST(SiteLifecycleTest, HitLatencySamplesNeverExceedRequests) {
  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 256;
  EstimationService service(config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  // Interleave hits (repeated key) and misses (fresh keys): 4096 requests,
  // enough hit-sampling windows to expose any weighting error.
  const EstimateRequest hot = Request("a", 4.0, -1.0);
  Rng rng(53);
  for (int i = 0; i < 4096; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(service.Estimate(hot).ok());
    } else {
      ASSERT_TRUE(
          service.Estimate(Request("a", rng.Uniform(1.0, 1e6), -1.0)).ok());
    }
  }

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, 4096u);
  EXPECT_EQ(stats.estimate_cache_hits + stats.estimate_cache_misses,
            stats.requests);
  // Conservation: a sampled histogram can undercount (sampling deficit, at
  // most one period per thread) but must never overcount.
  EXPECT_LE(stats.estimate_latency.count, stats.requests);
  EXPECT_GT(stats.estimate_latency.count, 0u);
}

// Pinned regression: EstimateBatch used to amortize the batch's elapsed time
// over every item — including invalid ones it never priced — so a batch with
// rejects recorded more latency samples than priced requests.
TEST(SiteLifecycleTest, BatchLatencyCountsOnlyPricedItems) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));

  std::vector<EstimateRequest> requests;
  for (int i = 0; i < 10; ++i) requests.push_back(Request("a", 2.0, 0.5));
  // NaN features are rejected at the boundary without being priced.
  const EstimateRequest invalid =
      Request("a", std::numeric_limits<double>::quiet_NaN(), 0.5);
  for (int i = 0; i < 6; ++i) requests.push_back(invalid);
  const auto responses = service.EstimateBatch(requests);
  ASSERT_EQ(responses.size(), 16u);
  for (int i = 10; i < 16; ++i) {
    EXPECT_EQ(responses[static_cast<size_t>(i)].status,
              EstimateStatus::kInvalidRequest);
  }

  RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.invalid_requests, 6u);
  EXPECT_EQ(stats.estimate_latency.count, 10u);

  // An all-invalid batch prices nothing and records nothing.
  std::vector<EstimateRequest> all_invalid(4, invalid);
  service.EstimateBatch(all_invalid);
  stats = service.Stats();
  EXPECT_EQ(stats.invalid_requests, 10u);
  EXPECT_EQ(stats.estimate_latency.count, 10u);
}

TEST(SiteLifecycleTest, StaleFlagRefusedForUnregisteredModel) {
  EstimationService service;
  // No model for the key: the flag must not latch (a refresh daemon racing
  // UnregisterSite would otherwise leak a stale_models gauge entry that
  // nothing can ever clear).
  service.SetModelStale("ghost", kCls, true);
  EXPECT_FALSE(service.IsModelStale("ghost", kCls));
  EXPECT_EQ(service.Stats().stale_models, 0u);
}

TEST(SiteLifecycleTest, RegisterModelIfActiveRefusesRetiredSite) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  // Live site: publish goes through.
  EXPECT_TRUE(
      service.RegisterModelIfActive("a", test::PiecewiseLinearModel(kCls, {3.0})));
  service.UnregisterSite("a");
  // Retired site: the publish is refused and nothing reappears.
  EXPECT_FALSE(
      service.RegisterModelIfActive("a", test::PiecewiseLinearModel(kCls, {4.0})));
  EXPECT_EQ(service.CatalogSnapshot()->Find("a", kCls), nullptr);
  // A tracker alone (no models yet) counts as live — registration works.
  service.RegisterSite("b", [] { return 0.5; });
  EXPECT_TRUE(
      service.RegisterModelIfActive("b", test::PiecewiseLinearModel(kCls, {2.0})));
}

// An observation source whose first TryDraw blocks until released: holds a
// re-derivation in flight while the test retires the site underneath it.
class GatedSource : public core::ObservationSource {
 public:
  std::optional<core::Observation> TryDraw() override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!gate_used_) {
        started_ = true;
        cv_.notify_all();
        cv_.wait(lock, [this] { return released_; });
        gate_used_ = true;
      }
    }
    return Draw();
  }

  core::Observation Draw() override {
    core::Observation o;
    o.probing_cost = 0.5;
    o.features.assign(core::VariableSet::ForClass(kCls).size(), 0.0);
    o.features[0] = rng_.Uniform(1.0, 10.0);
    o.cost = 3.0 * o.features[0];
    return o;
  }

  void WaitUntilSamplingStarted() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return started_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool started_ = false;
  bool released_ = false;
  bool gate_used_ = false;
  Rng rng_{61};
};

TEST(SiteLifecycleTest, InFlightRefreshAbandonsInsteadOfResurrecting) {
  EstimationServiceConfig config;
  config.worker_threads = 1;  // the refresh truly runs in the background
  EstimationService service(config);
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  ModelRefreshConfig refresh_config;
  refresh_config.rederive.build.algorithm = core::StateAlgorithm::kSingleState;
  refresh_config.rederive.build.sample_size = 20;
  GatedSource source;
  {
    ModelRefreshDaemon daemon(&service, refresh_config);
    daemon.Watch("a", kCls, &source);
    ASSERT_TRUE(daemon.RequestRefresh("a", kCls));
    source.WaitUntilSamplingStarted();

    // The re-derivation is blocked mid-sample; retire the site under it.
    service.UnregisterSite("a");
    daemon.UnwatchSite("a");
    source.Release();

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (daemon.Stats().refreshes_abandoned == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(daemon.Stats().refreshes_abandoned, 1u);
    EXPECT_EQ(daemon.Stats().refreshes_succeeded, 0u);
  }  // daemon dtor drains the in-flight task before the service goes away

  // The finished re-derivation was dropped: the retired site stayed dead.
  EXPECT_EQ(service.CatalogSnapshot()->Find("a", kCls), nullptr);
  EXPECT_FALSE(service.IsModelStale("a", kCls));
  EXPECT_EQ(service.Stats().stale_models, 0u);
}

TEST(SiteLifecycleTest, UnwatchSiteStopsReportsAndRefuseRefresh) {
  EstimationService service;
  service.RegisterModel("a", test::PiecewiseLinearModel(kCls, {2.0}));
  ModelRefreshDaemon daemon(&service);
  GatedSource source;
  source.Release();  // never gate in this test
  daemon.Watch("a", kCls, &source);
  ASSERT_TRUE(daemon.Status("a", kCls).watched);

  service.SetModelStale("a", kCls, true);
  daemon.UnwatchSite("a");

  EXPECT_FALSE(daemon.Status("a", kCls).watched);
  // Unwatching clears the key's stale flag: nothing will refresh it now.
  EXPECT_FALSE(service.IsModelStale("a", kCls));
  // Straggling feedback for the unwatched key is ignored, not resurrected.
  const uint64_t ignored_before = daemon.Stats().ignored_reports;
  daemon.ReportObserved("a", kCls, FeatureVector(2.0), 4.0);
  EXPECT_EQ(daemon.Stats().ignored_reports, ignored_before + 1);
  EXPECT_FALSE(daemon.RequestRefresh("a", kCls));
}

// Churn under fire: one thread retires and re-registers sites while readers
// estimate and a prober probes. Pins that no lifecycle interleaving crashes,
// serves an impossible status, or makes a monotone counter regress.
TEST(SiteLifecycleTest, UnregisterRacesRegistrationProbesAndReaders) {
  EstimationServiceConfig config;
  config.cache.capacity_per_thread = 32;
  EstimationService service(config);
  const std::vector<std::string> sites = {"s0", "s1", "s2", "s3"};
  for (const auto& site : sites) {
    service.RegisterModel(site, test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
    service.RegisterSite(site, [] { return 0.5; });
    service.ProbeNow(site);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> explicit_requests{0};
  std::thread churner([&] {
    for (int i = 0; i < 200; ++i) {
      const std::string& site = sites[static_cast<size_t>(i) % sites.size()];
      service.UnregisterSite(site);
      service.RegisterSite(site, [] { return 0.5; });
      service.RegisterModel(site,
                            test::PiecewiseLinearModel(kCls, {2.0, 5.0}));
      service.ProbeNow(site);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(71 + t);
      uint64_t i = 0;
      uint64_t local_explicit = 0;
      while (!stop.load()) {
        const std::string& site = sites[i++ % sites.size()];
        const double probe = (i % 2 == 0) ? -1.0 : 0.5;
        if (probe >= 0.0) ++local_explicit;
        const EstimateResponse r =
            service.Estimate(Request(site, rng.Uniform(1.0, 10.0), probe));
        // Mid-churn a request may find no model or no probe — never an
        // invalid-request or a torn response.
        ASSERT_TRUE(r.status == EstimateStatus::kOk ||
                    r.status == EstimateStatus::kNoModel ||
                    r.status == EstimateStatus::kNoProbe);
      }
      explicit_requests.fetch_add(local_explicit);
    });
  }
  std::thread prober([&] {
    uint64_t i = 0;
    while (!stop.load()) {
      service.ProbeNow(sites[i++ % sites.size()]);
    }
  });

  // Monotonicity watchdog: every counter field only ever moves forward.
  RuntimeStatsSnapshot last = service.Stats();
  while (!stop.load()) {
    const RuntimeStatsSnapshot now = service.Stats();
    for (const auto& field : StatsCounterFields()) {
      if (!IsMonotoneCounter(field.name)) continue;
      EXPECT_GE(now.*(field.field), last.*(field.field)) << field.name;
    }
    last = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  churner.join();
  prober.join();
  for (auto& reader : readers) reader.join();

  // Quiesced: every site ends registered and serving.
  for (const auto& site : sites) {
    ASSERT_TRUE(service.ProbeNow(site));
    EXPECT_TRUE(service.Estimate(Request(site, 4.0, -1.0)).ok());
  }
  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_GE(stats.sites_retired, 200u);
  // Conservation: tracker-resolved requests are exactly a cache hit or a
  // counted miss; explicit-probe requests consult the cache on neither
  // path, so they are the only gap between the two sides.
  EXPECT_EQ(stats.requests, stats.estimate_cache_hits +
                                stats.estimate_cache_misses +
                                explicit_requests.load());
  EXPECT_LE(stats.estimate_latency.count, stats.requests);
}

}  // namespace
}  // namespace mscm::runtime
