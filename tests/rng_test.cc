#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mscm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(14);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(15);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(19);
  Rng child = a.Fork();
  // Child and parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformityChiSquaredSanity) {
  Rng rng(21);
  constexpr int kBuckets = 16;
  constexpr int kN = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<size_t>(rng.NextDouble() * kBuckets)];
  }
  const double expected = static_cast<double>(kN) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 15 dof; the 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 40.0);
}

}  // namespace
}  // namespace mscm
