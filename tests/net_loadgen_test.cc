// Bounded-time smoke tests for the load generator against a live loopback
// server: both driving disciplines complete work, latency percentiles are
// sane, overload shows up as kOverloaded sheds (with the server staying up),
// and a dead port yields transport errors rather than a hang.

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/loadgen.h"
#include "net/served_runtime.h"

namespace mscm::net {
namespace {

ServedRuntimeConfig TestConfig() {
  ServedRuntimeConfig config;
  config.sites = 2;
  config.worker_threads = 2;
  config.refresh = false;
  config.probe_interval = std::chrono::milliseconds(0);
  return config;
}

LoadGenConfig BaseLoad(uint16_t port) {
  LoadGenConfig load;
  load.host = "127.0.0.1";
  load.port = port;
  load.connections = 2;
  load.duration = std::chrono::milliseconds(300);
  load.workload = MakeUniformWorkload(/*n_requests=*/64, /*n_sites=*/2,
                                      /*seed=*/11);
  return load;
}

TEST(NetLoadGenTest, WorkloadMatchesServedFederation) {
  const auto workload = MakeUniformWorkload(32, 2, 7);
  ASSERT_EQ(workload.size(), 32u);
  for (const auto& req : workload) {
    EXPECT_TRUE(req.site == "site0" || req.site == "site1") << req.site;
    EXPECT_FALSE(req.features.empty());
  }
}

TEST(NetLoadGenTest, ClosedLoopCompletesWork) {
  ServedRuntime served(TestConfig());
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  load.mode = LoadGenConfig::Mode::kClosed;
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.items, result.completed);  // batch_size 1
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(result.error_frames, 0u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GT(result.p50_us, 0.0);
  EXPECT_LE(result.p50_us, result.p99_us);
  EXPECT_LE(result.p99_us, result.max_us);
}

TEST(NetLoadGenTest, ClosedLoopBatchedCountsItems) {
  ServedRuntime served(TestConfig());
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  load.batch_size = 8;
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.items, result.completed * 8);
  EXPECT_GT(result.items_per_sec, result.qps);
}

TEST(NetLoadGenTest, FeedbackTrafficClosesTheAdaptationLoop) {
  ServedRuntime served(TestConfig());  // adaptation on by default
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  load.duration = std::chrono::milliseconds(500);
  load.feedback = true;
  load.feedback_noise = 0.02;
  load.feedback_drift = 0.5;  // truth inflates ~25% over the run
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(result.error_frames, 0u);
  // Every completed estimate produced a report, and the served controller
  // consumed them (ring overflow would show as rejected).
  EXPECT_EQ(result.feedback_accepted + result.feedback_rejected,
            result.completed);
  EXPECT_GT(result.feedback_accepted, 0u);
  EXPECT_GE(served.server().Stats().feedback_reports,
            result.feedback_accepted + result.feedback_rejected);
  const runtime::AdaptationStats stats = served.adaptation()->Stats();
  EXPECT_EQ(stats.accepted, result.feedback_accepted);
  EXPECT_GT(stats.updates_applied, 0u);
}

TEST(NetLoadGenTest, PlacementTrafficChoosesSites) {
  ServedRuntime served(TestConfig());
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  load.placement_candidates = 3;
  load.placement_policy = core::PlacementPolicy::kExpectedCost;
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.items, result.completed * 3);  // candidates per frame
  EXPECT_EQ(result.error_frames, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  // Every frame prices registered sites with valid probes: a site must be
  // chosen on each completed placement.
  EXPECT_EQ(result.placements_chosen, result.completed);
}

TEST(NetLoadGenTest, OpenLoopHoldsASchedule) {
  ServedRuntime served(TestConfig());
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  load.mode = LoadGenConfig::Mode::kOpen;
  load.target_rate = 400.0;  // well under loopback capacity
  load.duration = std::chrono::milliseconds(500);
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  // At 400/s for 0.5s the schedule carries ~200 sends; an unsaturated
  // loopback generator should land most of them (loose bound — CI jitter).
  EXPECT_GE(result.completed, 50u);
}

TEST(NetLoadGenTest, OverloadShedsAreVisibleAndServerSurvives) {
  ServedRuntimeConfig config = TestConfig();
  config.server.max_inflight = 0;  // force the kOverloaded path
  ServedRuntime served(config);
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;

  LoadGenConfig load = BaseLoad(served.port());
  const LoadGenResult result = RunLoadGen(load);

  EXPECT_EQ(result.completed, 0u);
  EXPECT_GT(result.overloaded, 0u);
  EXPECT_GE(served.server().Stats().overload_shed, result.overloaded);

  // Recovery: the server is shedding, not broken — it still accepts and
  // still answers the (unadmitted-path) connection handshake, and a fresh
  // client sees a typed kOverloaded, not a dead socket.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", served.port()));
  runtime::EstimateResponse resp;
  const RpcStatus status = client.Estimate(load.workload.front(), &resp);
  EXPECT_TRUE(status.overloaded());
  EXPECT_TRUE(served.server().running());
}

TEST(NetLoadGenTest, DeadPortYieldsTransportErrorsNotAHang) {
  // Grab an ephemeral port, then shut the server down so nothing listens.
  ServedRuntime served(TestConfig());
  std::string error;
  ASSERT_TRUE(served.Start(&error)) << error;
  const uint16_t dead_port = served.port();
  served.Shutdown();

  LoadGenConfig load = BaseLoad(dead_port);
  load.duration = std::chrono::milliseconds(200);
  const auto start = std::chrono::steady_clock::now();
  const LoadGenResult result = RunLoadGen(load);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
  EXPECT_EQ(result.completed, 0u);
  EXPECT_GT(result.transport_errors, 0u);
}

}  // namespace
}  // namespace mscm::net
