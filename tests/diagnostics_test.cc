#include "stats/diagnostics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mscm::stats {
namespace {

OlsResult FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  Matrix design(x.size(), 2);
  for (size_t i = 0; i < x.size(); ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = x[i];
  }
  return FitOls(design, y);
}

TEST(StandardizedResidualsTest, UnitScaleUnderOwnSee) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.Uniform(0, 10));
    y.push_back(1.0 + 2.0 * x.back() + rng.Gaussian(0, 1.5));
  }
  const OlsResult fit = FitLine(x, y);
  const std::vector<double> z = StandardizedResiduals(fit);
  ASSERT_EQ(z.size(), x.size());
  double ss = 0.0;
  for (double v : z) ss += v * v;
  // Sum of squared standardized residuals ~ n - p.
  EXPECT_NEAR(ss, static_cast<double>(x.size() - 2), 1.0);
}

TEST(FlagOutliersTest, DetectsInjectedOutlier) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.Uniform(0, 10));
    y.push_back(3.0 * x.back() + rng.Gaussian(0, 0.5));
  }
  y[37] += 25.0;  // gross outlier
  const OlsResult fit = FitLine(x, y);
  const auto flagged = FlagOutliers(StandardizedResiduals(fit));
  ASSERT_FALSE(flagged.empty());
  EXPECT_EQ(flagged.front(), 37u);
}

TEST(FlagOutliersTest, CleanDataBarelyFlags) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.Uniform(0, 10));
    y.push_back(x.back() + rng.Gaussian(0, 1.0));
  }
  const OlsResult fit = FitLine(x, y);
  // P(|z| > 3) ~ 0.0027; expect at most a couple of flags in 300.
  EXPECT_LE(FlagOutliers(StandardizedResiduals(fit)).size(), 3u);
}

TEST(DurbinWatsonTest, UncorrelatedResidualsNearTwo) {
  Rng rng(4);
  std::vector<double> r;
  for (int i = 0; i < 5000; ++i) r.push_back(rng.Gaussian());
  EXPECT_NEAR(DurbinWatson(r), 2.0, 0.1);
}

TEST(DurbinWatsonTest, PositiveAutocorrelationLowersStatistic) {
  Rng rng(5);
  std::vector<double> r;
  double prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    prev = 0.9 * prev + rng.Gaussian(0, 0.3);
    r.push_back(prev);
  }
  EXPECT_LT(DurbinWatson(r), 0.6);
}

TEST(DurbinWatsonTest, AlternatingResidualsRaiseStatistic) {
  std::vector<double> r;
  for (int i = 0; i < 100; ++i) r.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(DurbinWatson(r), 3.5);
}

TEST(DurbinWatsonTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(DurbinWatson({}), 2.0);
  EXPECT_DOUBLE_EQ(DurbinWatson({1.0}), 2.0);
  EXPECT_DOUBLE_EQ(DurbinWatson({0.0, 0.0, 0.0}), 2.0);
}

TEST(NormalityTest, GaussianSamplePasses) {
  Rng rng(6);
  std::vector<double> r;
  for (int i = 0; i < 2000; ++i) r.push_back(rng.Gaussian(0, 2.0));
  const NormalityReport report = TestNormality(r);
  EXPECT_NEAR(report.skewness, 0.0, 0.15);
  EXPECT_NEAR(report.excess_kurtosis, 0.0, 0.3);
  EXPECT_GT(report.p_value, 0.01);
}

TEST(NormalityTest, ExponentialSampleFails) {
  Rng rng(7);
  std::vector<double> r;
  for (int i = 0; i < 2000; ++i) r.push_back(rng.Exponential(1.0));
  const NormalityReport report = TestNormality(r);
  EXPECT_GT(report.skewness, 1.0);  // exponential skewness = 2
  EXPECT_LT(report.p_value, 1e-6);
}

TEST(NormalityTest, TinySampleIsNeutral) {
  const NormalityReport report = TestNormality({1.0, 2.0});
  EXPECT_DOUBLE_EQ(report.p_value, 1.0);
}

}  // namespace
}  // namespace mscm::stats
