// Tests of the epoch-based reclamation protocol behind the estimate hot
// path (runtime/epoch.h): a pinned reader keeps a retired object alive, a
// released reader lets it die, fresh pins can never resurrect an old
// record, and the concurrent publish/read hammer stays clean under the
// tier-2 sanitizers.

#include "runtime/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace mscm::runtime {
namespace {

// An object whose constructor/destructor maintain a live count, so tests
// can observe exactly when the domain frees a retired record.
struct Tracked {
  explicit Tracked(std::atomic<int>* live, int value = 0)
      : live_count(live), value(value) {
    live_count->fetch_add(1);
  }
  ~Tracked() { live_count->fetch_sub(1); }
  std::atomic<int>* live_count;
  int value;
};

TEST(EpochTest, ReadSeesLatestPublishedValue) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    {
      EpochGuard guard;
      EXPECT_EQ(published.Read(guard), nullptr);  // nothing published yet
    }
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    published.Publish(std::make_shared<const Tracked>(&live, 2));
    EpochGuard guard;
    const Tracked* current = published.Read(guard);
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(current->value, 2);
    EXPECT_EQ(published.load()->value, 2);  // cold path agrees
  }
  EXPECT_EQ(live.load(), 0);  // destructor drained every retired record
}

TEST(EpochTest, PinnedReaderBlocksReclamationUntilReleased) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    {
      EpochGuard guard;
      const Tracked* old = published.Read(guard);
      ASSERT_NE(old, nullptr);
      // Retire the value this reader holds. The pin predates the retire
      // stamp, so reclamation must keep it alive — and dereferenceable.
      published.Publish(std::make_shared<const Tracked>(&live, 2));
      EpochDomain::Global().Reclaim();
      EXPECT_EQ(live.load(), 2);
      EXPECT_EQ(old->value, 1);
    }
    // Reader released: the grace period has passed for the old record.
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, FreshPinCannotResurrectARetiredRecord) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    published.Publish(std::make_shared<const Tracked>(&live, 2));
    // A guard taken after the retire reads the current epoch, which is past
    // the retire stamp: it sees only the new value and does not block the
    // old record's reclamation.
    EpochGuard guard;
    EXPECT_EQ(published.Read(guard)->value, 2);
    EpochDomain::Global().Reclaim();
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedGuardsPiggybackOnTheOutermostPin) {
  std::atomic<int> live{0};
  EpochPublished<Tracked> published;
  published.Publish(std::make_shared<const Tracked>(&live, 7));
  EpochGuard outer;
  {
    EpochGuard inner;
    EXPECT_EQ(published.Read(inner)->value, 7);
  }
  // The inner guard's release must not unpin the outer one.
  const Tracked* held = published.Read(outer);
  published.Publish(std::make_shared<const Tracked>(&live, 8));
  EpochDomain::Global().Reclaim();
  EXPECT_EQ(held->value, 7);  // still alive under the outer pin
  EXPECT_EQ(live.load(), 2);
}

// Concurrent hammer for the tier-2 sanitizers: readers dereference raw
// pointers under guards while a publisher continuously swaps and retires.
// Every read must observe a fully-constructed value with its canary intact.
TEST(EpochTest, ConcurrentReadersSurvivePublishStorm) {
  std::atomic<int> live{0};
  constexpr int kCanary = 0x5ca1ab1e;
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, kCanary));
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          EpochGuard guard;
          const Tracked* current = published.Read(guard);
          ASSERT_NE(current, nullptr);
          ASSERT_EQ(current->value, kCanary);
        }
      });
    }
    for (int i = 0; i < 3000; ++i) {
      published.Publish(std::make_shared<const Tracked>(&live, kCanary));
    }
    stop.store(true);
    for (auto& r : readers) r.join();
    // With every reader gone, a draining reclaim leaves only the current
    // value alive.
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

// Regression for the reclaim ordering race: publishers are only serialized
// per-object, so two objects retire into the domain concurrently, and each
// Retire runs Reclaim. The old Reclaim scanned reader slots *before*
// snapshotting the retired list, so a record retired by the other publisher
// after the scan could be freed against a scan that missed its readers —
// a use-after-free the sanitizer jobs catch here. Readers continuously pin
// and dereference both objects while both publishers storm.
TEST(EpochTest, ConcurrentPublishersCannotFreeAPinnedRecord) {
  std::atomic<int> live{0};
  constexpr int kCanary = 0x0ddba11;
  {
    EpochPublished<Tracked> first;
    EpochPublished<Tracked> second;
    first.Publish(std::make_shared<const Tracked>(&live, kCanary));
    second.Publish(std::make_shared<const Tracked>(&live, kCanary));
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          EpochGuard guard;
          const Tracked* a = first.Read(guard);
          const Tracked* b = second.Read(guard);
          ASSERT_NE(a, nullptr);
          ASSERT_NE(b, nullptr);
          ASSERT_EQ(a->value, kCanary);
          ASSERT_EQ(b->value, kCanary);
        }
      });
    }
    std::thread first_publisher([&] {
      for (int i = 0; i < 2000; ++i) {
        first.Publish(std::make_shared<const Tracked>(&live, kCanary));
      }
    });
    std::thread second_publisher([&] {
      for (int i = 0; i < 2000; ++i) {
        second.Publish(std::make_shared<const Tracked>(&live, kCanary));
      }
    });
    first_publisher.join();
    second_publisher.join();
    stop.store(true);
    for (auto& r : readers) r.join();
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
    EXPECT_EQ(live.load(), 2);  // only the two current values survive
  }
  EXPECT_EQ(live.load(), 0);
}

// Regression for the drain guarantee: a slotted reader pinned on one
// published slot blocks the whole domain, so destroying a *different*
// EpochPublished must wait that reader out — its keepalive may not survive
// the destructor (the old drain only waited for overflow readers).
TEST(EpochTest, DrainWaitsOutSlottedReadersPinnedOnOtherObjects) {
  std::atomic<int> live_held{0};
  std::atomic<int> live_dying{0};
  {
    EpochPublished<Tracked> held;
    held.Publish(std::make_shared<const Tracked>(&live_held, 1));
    auto dying = std::make_unique<EpochPublished<Tracked>>();
    dying->Publish(std::make_shared<const Tracked>(&live_dying, 2));

    std::atomic<bool> pinned{false};
    std::atomic<bool> release{false};
    std::thread reader([&] {
      EpochGuard guard;
      const Tracked* value = held.Read(guard);
      ASSERT_NE(value, nullptr);
      pinned.store(true);
      while (!release.load()) std::this_thread::yield();
      ASSERT_EQ(value->value, 1);  // still dereferenceable under the pin
    });
    while (!pinned.load()) std::this_thread::yield();

    // Destroy the other object while the reader is pinned. Its final retire
    // stamp postdates the reader's pin, so the drain must block until the
    // reader releases.
    std::thread destroyer([&] { dying.reset(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(live_dying.load(), 1);  // pinned reader still blocks the free
    release.store(true);
    reader.join();
    destroyer.join();
    // The destructor has returned, so the keepalive did not outlive it.
    EXPECT_EQ(live_dying.load(), 0);
  }
  EXPECT_EQ(live_held.load(), 0);
}

}  // namespace
}  // namespace mscm::runtime
