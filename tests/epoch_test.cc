// Tests of the epoch-based reclamation protocol behind the estimate hot
// path (runtime/epoch.h): a pinned reader keeps a retired object alive, a
// released reader lets it die, fresh pins can never resurrect an old
// record, and the concurrent publish/read hammer stays clean under the
// tier-2 sanitizers.

#include "runtime/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace mscm::runtime {
namespace {

// An object whose constructor/destructor maintain a live count, so tests
// can observe exactly when the domain frees a retired record.
struct Tracked {
  explicit Tracked(std::atomic<int>* live, int value = 0)
      : live_count(live), value(value) {
    live_count->fetch_add(1);
  }
  ~Tracked() { live_count->fetch_sub(1); }
  std::atomic<int>* live_count;
  int value;
};

TEST(EpochTest, ReadSeesLatestPublishedValue) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    {
      EpochGuard guard;
      EXPECT_EQ(published.Read(guard), nullptr);  // nothing published yet
    }
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    published.Publish(std::make_shared<const Tracked>(&live, 2));
    EpochGuard guard;
    const Tracked* current = published.Read(guard);
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(current->value, 2);
    EXPECT_EQ(published.load()->value, 2);  // cold path agrees
  }
  EXPECT_EQ(live.load(), 0);  // destructor drained every retired record
}

TEST(EpochTest, PinnedReaderBlocksReclamationUntilReleased) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    {
      EpochGuard guard;
      const Tracked* old = published.Read(guard);
      ASSERT_NE(old, nullptr);
      // Retire the value this reader holds. The pin predates the retire
      // stamp, so reclamation must keep it alive — and dereferenceable.
      published.Publish(std::make_shared<const Tracked>(&live, 2));
      EpochDomain::Global().Reclaim();
      EXPECT_EQ(live.load(), 2);
      EXPECT_EQ(old->value, 1);
    }
    // Reader released: the grace period has passed for the old record.
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, FreshPinCannotResurrectARetiredRecord) {
  std::atomic<int> live{0};
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, 1));
    published.Publish(std::make_shared<const Tracked>(&live, 2));
    // A guard taken after the retire reads the current epoch, which is past
    // the retire stamp: it sees only the new value and does not block the
    // old record's reclamation.
    EpochGuard guard;
    EXPECT_EQ(published.Read(guard)->value, 2);
    EpochDomain::Global().Reclaim();
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedGuardsPiggybackOnTheOutermostPin) {
  std::atomic<int> live{0};
  EpochPublished<Tracked> published;
  published.Publish(std::make_shared<const Tracked>(&live, 7));
  EpochGuard outer;
  {
    EpochGuard inner;
    EXPECT_EQ(published.Read(inner)->value, 7);
  }
  // The inner guard's release must not unpin the outer one.
  const Tracked* held = published.Read(outer);
  published.Publish(std::make_shared<const Tracked>(&live, 8));
  EpochDomain::Global().Reclaim();
  EXPECT_EQ(held->value, 7);  // still alive under the outer pin
  EXPECT_EQ(live.load(), 2);
}

// Concurrent hammer for the tier-2 sanitizers: readers dereference raw
// pointers under guards while a publisher continuously swaps and retires.
// Every read must observe a fully-constructed value with its canary intact.
TEST(EpochTest, ConcurrentReadersSurvivePublishStorm) {
  std::atomic<int> live{0};
  constexpr int kCanary = 0x5ca1ab1e;
  {
    EpochPublished<Tracked> published;
    published.Publish(std::make_shared<const Tracked>(&live, kCanary));
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          EpochGuard guard;
          const Tracked* current = published.Read(guard);
          ASSERT_NE(current, nullptr);
          ASSERT_EQ(current->value, kCanary);
        }
      });
    }
    for (int i = 0; i < 3000; ++i) {
      published.Publish(std::make_shared<const Tracked>(&live, kCanary));
    }
    stop.store(true);
    for (auto& r : readers) r.join();
    // With every reader gone, a draining reclaim leaves only the current
    // value alive.
    EpochDomain::Global().Reclaim(/*wait_for_readers=*/true);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

}  // namespace
}  // namespace mscm::runtime
