#include "sim/load_builder.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace mscm::sim {
namespace {

TEST(LoadBuilderTest, SteadyRegimeStaysAtLevel) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kSteady;
  config.steady_processes = 12.0;
  LoadBuilder lb(config, 1);
  for (int i = 0; i < 20; ++i) {
    lb.Resample();
    EXPECT_DOUBLE_EQ(lb.Current().num_processes, 12.0);
  }
}

TEST(LoadBuilderTest, UniformRegimeCoversRange) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kUniform;
  config.min_processes = 10.0;
  config.max_processes = 110.0;
  LoadBuilder lb(config, 2);
  std::vector<double> draws;
  for (int i = 0; i < 2000; ++i) {
    lb.Resample();
    const double p = lb.Current().num_processes;
    EXPECT_GE(p, 10.0);
    EXPECT_LE(p, 110.0);
    draws.push_back(p);
  }
  // Uniform over [10, 110]: mean ~60, both halves populated.
  EXPECT_NEAR(stats::Mean(draws), 60.0, 3.0);
  EXPECT_LT(stats::Min(draws), 20.0);
  EXPECT_GT(stats::Max(draws), 100.0);
}

TEST(LoadBuilderTest, ClusteredRegimeProducesClusters) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kClustered;
  config.clusters = {{10.0, 1.0, 0.5}, {90.0, 1.0, 0.5}};
  LoadBuilder lb(config, 3);
  int low = 0;
  int high = 0;
  int middle = 0;
  for (int i = 0; i < 2000; ++i) {
    lb.Resample();
    const double p = lb.Current().num_processes;
    if (p < 20) {
      ++low;
    } else if (p > 80) {
      ++high;
    } else {
      ++middle;
    }
  }
  EXPECT_GT(low, 700);
  EXPECT_GT(high, 700);
  EXPECT_LT(middle, 50);  // almost nothing between the clusters
}

TEST(LoadBuilderTest, ClusterWeightsRespected) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kClustered;
  config.clusters = {{10.0, 1.0, 0.8}, {90.0, 1.0, 0.2}};
  LoadBuilder lb(config, 4);
  int low = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    lb.Resample();
    if (lb.Current().num_processes < 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kN, 0.8, 0.04);
}

TEST(LoadBuilderTest, AdvanceKeepsWithinBounds) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kRandomWalk;
  config.min_processes = 0.0;
  config.max_processes = 50.0;
  LoadBuilder lb(config, 5);
  for (int i = 0; i < 500; ++i) {
    lb.Advance(10.0);
    EXPECT_GE(lb.Current().num_processes, 0.0);
    EXPECT_LE(lb.Current().num_processes, 50.0);
  }
}

TEST(LoadBuilderTest, RandomWalkActuallyMoves) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kRandomWalk;
  LoadBuilder lb(config, 6);
  const double start = lb.Current().num_processes;
  double max_dev = 0.0;
  for (int i = 0; i < 200; ++i) {
    lb.Advance(5.0);
    max_dev = std::max(max_dev,
                       std::fabs(lb.Current().num_processes - start));
  }
  EXPECT_GT(max_dev, 5.0);
}

TEST(LoadBuilderTest, SetProcessCountClampsAndApplies) {
  LoadRegimeConfig config;
  config.max_processes = 100.0;
  LoadBuilder lb(config, 7);
  lb.SetProcessCount(42.0);
  EXPECT_DOUBLE_EQ(lb.Current().num_processes, 42.0);
  lb.SetProcessCount(1e9);
  EXPECT_DOUBLE_EQ(lb.Current().num_processes, 100.0);
  lb.SetProcessCount(-5.0);
  EXPECT_DOUBLE_EQ(lb.Current().num_processes, 0.0);
}

TEST(LoadBuilderTest, DemandsScaleWithProcesses) {
  LoadRegimeConfig config;
  LoadBuilder lb(config, 8);
  lb.SetProcessCount(10.0);
  const MachineLoad light = lb.Current();
  lb.SetProcessCount(100.0);
  const MachineLoad heavy = lb.Current();
  EXPECT_GT(heavy.cpu_demand, light.cpu_demand);
  EXPECT_GT(heavy.io_rate, light.io_rate);
  EXPECT_GT(heavy.memory_mb, light.memory_mb);
}

TEST(LoadBuilderTest, SameProcessCountGivesNoisyDemands) {
  LoadRegimeConfig config;
  LoadBuilder lb(config, 9);
  lb.SetProcessCount(50.0);
  const double a = lb.Current().cpu_demand;
  lb.SetProcessCount(50.0);
  const double b = lb.Current().cpu_demand;
  EXPECT_NE(a, b);  // population jitter
}


TEST(LoadBuilderTest, PeriodicRegimeCyclesBetweenBounds) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kPeriodic;
  config.min_processes = 10.0;
  config.max_processes = 90.0;
  config.period_seconds = 3600.0;
  LoadBuilder lb(config, 10);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 400; ++i) {
    lb.Advance(30.0);  // ~3.3 full cycles
    lo = std::min(lo, lb.Current().num_processes);
    hi = std::max(hi, lb.Current().num_processes);
  }
  // The cycle must visit both the trough and the crest regions.
  EXPECT_LT(lo, 20.0);
  EXPECT_GT(hi, 80.0);
}

TEST(LoadBuilderTest, PeriodicRegimeIsActuallyPeriodic) {
  LoadRegimeConfig config;
  config.regime = LoadRegime::kPeriodic;
  config.min_processes = 0.0;
  config.max_processes = 100.0;
  config.period_seconds = 1000.0;
  LoadBuilder lb(config, 11);
  // Sample one cycle at 10 s resolution; the next cycle must look similar.
  std::vector<double> first;
  std::vector<double> second;
  for (int i = 0; i < 100; ++i) {
    lb.Advance(10.0);
    first.push_back(lb.Current().num_processes);
  }
  for (int i = 0; i < 100; ++i) {
    lb.Advance(10.0);
    second.push_back(lb.Current().num_processes);
  }
  double max_dev = 0.0;
  for (size_t i = 0; i < first.size(); ++i) {
    max_dev = std::max(max_dev, std::fabs(first[i] - second[i]));
  }
  // Walk noise aside, consecutive cycles track each other.
  EXPECT_LT(max_dev, 25.0);
}

}  // namespace
}  // namespace mscm::sim
