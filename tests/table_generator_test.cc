#include "engine/table_generator.h"

#include <gtest/gtest.h>

namespace mscm::engine {
namespace {

TEST(TableGeneratorTest, PaperCardinalitiesSpanPaperRange) {
  EXPECT_EQ(PaperCardinality(1), 3000u);
  EXPECT_EQ(PaperCardinality(12), 250000u);
  for (int i = 1; i < 12; ++i) {
    EXPECT_LT(PaperCardinality(i), PaperCardinality(i + 1));
  }
}

TEST(TableGeneratorTest, GeneratesRequestedTables) {
  TableGeneratorConfig config;
  config.num_tables = 5;
  config.scale = 0.01;
  Rng rng(1);
  const Database db = GenerateDatabase(config, rng);
  EXPECT_EQ(db.TableNames().size(), 5u);
  EXPECT_NE(db.FindTable("R1"), nullptr);
  EXPECT_NE(db.FindTable("R5"), nullptr);
  EXPECT_EQ(db.FindTable("R6"), nullptr);
}

TEST(TableGeneratorTest, ScaleControlsCardinality) {
  TableGeneratorConfig config;
  config.num_tables = 1;
  config.scale = 0.1;
  Rng rng(2);
  const Database db = GenerateDatabase(config, rng);
  EXPECT_EQ(db.FindTable("R1")->num_rows(), 300u);
}

TEST(TableGeneratorTest, MinimumCardinalityEnforced) {
  TableGeneratorConfig config;
  config.num_tables = 1;
  config.scale = 1e-9;
  Rng rng(3);
  const Database db = GenerateDatabase(config, rng);
  EXPECT_GE(db.FindTable("R1")->num_rows(), 64u);
}

TEST(TableGeneratorTest, IndexesCreatedPerConfig) {
  TableGeneratorConfig config;
  config.num_tables = 2;
  config.scale = 0.01;
  Rng rng(4);
  const Database db = GenerateDatabase(config, rng);
  for (const std::string name : {"R1", "R2"}) {
    EXPECT_NE(db.ClusteredIndexOn(name), nullptr) << name;
    EXPECT_NE(db.FindIndex(name, 1), nullptr) << name;
    EXPECT_NE(db.FindIndex(name, 2), nullptr) << name;
    EXPECT_EQ(db.IndexesOn(name).size(), 3u) << name;
  }
}

TEST(TableGeneratorTest, NoIndexesWhenDisabled) {
  TableGeneratorConfig config;
  config.num_tables = 1;
  config.scale = 0.01;
  config.clustered_indexes = false;
  config.nonclustered_indexes = false;
  Rng rng(5);
  const Database db = GenerateDatabase(config, rng);
  EXPECT_TRUE(db.IndexesOn("R1").empty());
}

TEST(TableGeneratorTest, TupleWidthsVaryAcrossTables) {
  TableGeneratorConfig config;
  config.num_tables = 6;
  config.scale = 0.01;
  Rng rng(6);
  const Database db = GenerateDatabase(config, rng);
  std::set<int> widths;
  for (const std::string& name : db.TableNames()) {
    widths.insert(db.FindTable(name)->schema().TupleBytes());
  }
  EXPECT_GT(widths.size(), 1u);
}

TEST(TableGeneratorTest, JoinColumnDomainSharedAcrossTables) {
  // Column a5 (index 4) must have the same domain in every table so
  // cross-table equijoins are meaningful.
  TableGeneratorConfig config;
  config.num_tables = 4;
  config.scale = 0.05;
  Rng rng(7);
  const Database db = GenerateDatabase(config, rng);
  for (const std::string& name : db.TableNames()) {
    const auto& s = db.FindTable(name)->column_stats(4);
    EXPECT_GE(s.min, 0) << name;
    EXPECT_LT(s.max, 5000) << name;
  }
}

TEST(TableGeneratorTest, DeterministicForSameSeed) {
  TableGeneratorConfig config;
  config.num_tables = 2;
  config.scale = 0.01;
  Rng rng_a(8);
  Rng rng_b(8);
  const Database a = GenerateDatabase(config, rng_a);
  const Database b = GenerateDatabase(config, rng_b);
  const Table* ta = a.FindTable("R2");
  const Table* tb = b.FindTable("R2");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t i = 0; i < ta->num_rows(); i += 17) {
    EXPECT_EQ(ta->row(i), tb->row(i));
  }
}

TEST(TableGeneratorTest, ProbingTableShape) {
  Database db;
  Rng rng(9);
  AddProbingTable(db, rng);
  const Table* p = db.FindTable("P0");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_rows(), 2000u);
  EXPECT_EQ(p->schema().num_columns(), 3u);
  // The probing workload uses a non-clustered index on p2 so its cost also
  // registers random-I/O contention.
  EXPECT_NE(db.FindIndex("P0", 1), nullptr);
  EXPECT_EQ(db.ClusteredIndexOn("P0"), nullptr);
}

}  // namespace
}  // namespace mscm::engine
