#include "runtime/estimate_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/clock.h"
#include "runtime/estimation_service.h"
#include "tests/test_util.h"

namespace mscm::runtime {
namespace {

using core::QueryClassId;
using std::chrono::seconds;

std::vector<double> FeatureVector(QueryClassId cls, double x0) {
  std::vector<double> f(core::VariableSet::ForClass(cls).size(), 0.0);
  f[0] = x0;
  return f;
}

EstimateRequest Request(const std::string& site, QueryClassId cls, double x0,
                        double probing_cost = -1.0) {
  EstimateRequest request;
  request.site = site;
  request.class_id = cls;
  request.features = FeatureVector(cls, x0);
  request.probing_cost = probing_cost;
  return request;
}

EstimationServiceConfig CachedConfig(Clock* clock = Clock::System()) {
  EstimationServiceConfig config;
  config.probe_ttl = seconds(5);
  config.cache.capacity_per_thread = 256;
  config.clock = clock;
  return config;
}

// ---- Service integration ---------------------------------------------------

TEST(EstimateCacheServiceTest, DisabledByDefault) {
  EstimationService service;  // default config: capacity_per_thread 0
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service.Estimate(Request("a", cls, 3.0)).ok());
  }
  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.estimate_cache_hits, 0u);
  EXPECT_EQ(stats.estimate_cache_misses, 0u);
}

TEST(EstimateCacheServiceTest, RepeatedRequestHitsAndMatchesUncachedAnswer) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  const EstimateResponse first = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.state, 0);
  EXPECT_NEAR(first.estimate_seconds, 6.0, 1e-6);

  const EstimateResponse second = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second.estimate_seconds, first.estimate_seconds);
  EXPECT_EQ(second.state, first.state);
  EXPECT_DOUBLE_EQ(second.probing_cost, first.probing_cost);
  EXPECT_FALSE(second.stale_probe);

  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.estimate_cache_misses, 1u);
  EXPECT_EQ(stats.estimate_cache_hits, 1u);
  // A hit still counts as a served request (fused counter).
  EXPECT_EQ(stats.requests, 2u);
  // Different features are a different key.
  EXPECT_TRUE(service.Estimate(Request("a", cls, 4.0)).ok());
  EXPECT_EQ(service.Stats().estimate_cache_misses, 2u);
}

TEST(EstimateCacheServiceTest, BatchWarmsAndHitsTheSameCache) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  std::vector<EstimateRequest> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(Request("a", cls, 1.0 + static_cast<double>(i % 4)));
  }
  const std::vector<EstimateResponse> cold = service.EstimateBatch(batch);
  const std::vector<EstimateResponse> warm = service.EstimateBatch(batch);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ASSERT_TRUE(cold[i].ok());
    ASSERT_TRUE(warm[i].ok());
    EXPECT_DOUBLE_EQ(warm[i].estimate_seconds, cold[i].estimate_seconds);
  }
  const RuntimeStatsSnapshot stats = service.Stats();
  // The first batch misses on every item: lookups happen in the scan pass,
  // inserts at the grouped flush, so intra-batch duplicates are priced by
  // the grouped kernel rather than the memo. The second batch is all hits.
  EXPECT_EQ(stats.estimate_cache_misses, 8u);
  EXPECT_EQ(stats.estimate_cache_hits, 8u);
  EXPECT_EQ(stats.requests, 16u);
  // The single-request path shares the same cache.
  EXPECT_TRUE(service.Estimate(Request("a", cls, 1.0)).ok());
  EXPECT_EQ(service.Stats().estimate_cache_hits, 9u);
}

TEST(EstimateCacheServiceTest, StateTransitionInvalidatesAndRepricesExactly) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  // State 0: cost = 2x. State 1: cost = 5x (boundary at probe 1.0).
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));
  std::atomic<double> probe_value{0.5};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  EXPECT_NEAR(service.Estimate(Request("a", cls, 3.0)).estimate_seconds, 6.0,
              1e-6);
  EXPECT_NEAR(service.Estimate(Request("a", cls, 3.0)).estimate_seconds, 6.0,
              1e-6);  // cached
  ASSERT_GE(service.Stats().estimate_cache_hits, 1u);

  // The environment shifts across the partition boundary: the tracker's
  // state-change callback must evict the site's entries, and the next
  // estimate must price under state 1 — not serve the state-0 memo.
  probe_value.store(1.5);
  ASSERT_TRUE(service.ProbeNow("a"));
  const EstimateResponse after = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.state, 1);
  EXPECT_NEAR(after.estimate_seconds, 15.0, 1e-6);
  EXPECT_GE(service.Stats().estimate_cache_invalidations, 1u);
}

TEST(EstimateCacheServiceTest, WithinStateDriftKeepsServingCachedValue) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));
  std::atomic<double> probe_value{0.3};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));
  ASSERT_TRUE(service.Estimate(Request("a", cls, 3.0)).ok());

  // Cost moves but stays inside state 0's interval (-inf, 1.0]: the estimate
  // is a pure function of the state, so the entry stays valid and hits.
  probe_value.store(0.8);
  ASSERT_TRUE(service.ProbeNow("a"));
  const EstimateResponse response = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.state, 0);
  EXPECT_NEAR(response.estimate_seconds, 6.0, 1e-6);
  EXPECT_EQ(service.Stats().estimate_cache_hits, 1u);
}

TEST(EstimateCacheServiceTest, ModelRegistrationInvalidatesByEpoch) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));
  EXPECT_NEAR(service.Estimate(Request("a", cls, 3.0)).estimate_seconds, 6.0,
              1e-6);

  // Re-deriving the model publishes a new catalog revision; the memoized
  // response priced under the old one must not survive.
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {4.0}));
  const EstimateResponse repriced = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(repriced.ok());
  EXPECT_NEAR(repriced.estimate_seconds, 12.0, 1e-6);
}

TEST(EstimateCacheServiceTest, StaleProbeResponsesAreNeverCached) {
  FakeClock clock;
  EstimationService service(CachedConfig(&clock));
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  clock.Advance(seconds(10));  // past the 5 s TTL
  const EstimateResponse stale = service.Estimate(Request("a", cls, 3.0));
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.stale_probe);
  // Served again, still priced the long way — a stale reading is not a
  // function of the published contention state.
  EXPECT_TRUE(service.Estimate(Request("a", cls, 3.0)).stale_probe);
  EXPECT_EQ(service.Stats().estimate_cache_hits, 0u);
}

TEST(EstimateCacheServiceTest, ExplicitProbingCostBypassesTheCache) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));

  for (int i = 0; i < 3; ++i) {
    const EstimateResponse response =
        service.Estimate(Request("a", cls, 3.0, /*probing_cost=*/0.5));
    ASSERT_TRUE(response.ok());
    EXPECT_NEAR(response.estimate_seconds, 6.0, 1e-6);
  }
  const RuntimeStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.estimate_cache_hits, 0u);
  EXPECT_EQ(stats.estimate_cache_misses, 0u);
}

TEST(EstimateCacheServiceTest, StaleModelFlagFlipRetiresCachedResponses) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0}));
  service.RegisterSite("a", [] { return 0.5; });
  ASSERT_TRUE(service.ProbeNow("a"));

  EXPECT_FALSE(service.Estimate(Request("a", cls, 3.0)).stale_model);
  service.SetModelStale("a", cls, true);
  // The cached stale_model=false response must not be served.
  EXPECT_TRUE(service.Estimate(Request("a", cls, 3.0)).stale_model);
  service.SetModelStale("a", cls, false);
  EXPECT_FALSE(service.Estimate(Request("a", cls, 3.0)).stale_model);
}

TEST(EstimateCacheServiceTest, CachedAnswersStayExactAcrossFlappingStates) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));
  std::atomic<double> probe_value{0.5};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  for (int i = 0; i < 500; ++i) {
    if (i % 100 == 50) {
      // Flap the contention state mid-stream.
      probe_value.store(probe_value.load() < 1.0 ? 1.5 : 0.5);
      ASSERT_TRUE(service.ProbeNow("a"));
    }
    const double x0 = 1.0 + static_cast<double>(i % 7);
    const double slope = probe_value.load() < 1.0 ? 2.0 : 5.0;
    const EstimateResponse response = service.Estimate(Request("a", cls, x0));
    ASSERT_TRUE(response.ok());
    ASSERT_NEAR(response.estimate_seconds, slope * x0, 1e-6)
        << "iteration " << i;
  }
  // The repeated working set should mostly hit.
  EXPECT_GT(service.Stats().estimate_cache_hits, 400u);
}

// ---- Direct cache unit tests ----------------------------------------------

TEST(EstimateCacheTest, DisabledCacheMissesAndDropsInserts) {
  EstimateCache cache(EstimateCacheConfig{});  // capacity_per_thread 0
  EXPECT_FALSE(cache.enabled());
  EstimateResponse response;
  EXPECT_FALSE(cache.Lookup("a", 0, {1.0}, 0, &response));
  cache.Insert("a", 0, {1.0}, 0, {}, response);
  EXPECT_FALSE(cache.Lookup("a", 0, {1.0}, 0, &response));
  cache.InvalidateAll();  // no-op on a disabled cache
  EXPECT_EQ(cache.invalidations(), 0u);
}

class EstimateCacheUnitTest : public ::testing::Test {
 protected:
  EstimateCacheUnitTest() {
    EstimateCacheConfig config;
    config.capacity_per_thread = 64;
    cache_ = std::make_unique<EstimateCache>(config);
    ContentionTrackerConfig tracker_config;
    tracker_config.site = "a";
    tracker_config.ttl = seconds(5);
    tracker_config.clock = &clock_;
    tracker_ = std::make_shared<ContentionTracker>(
        tracker_config, [this] { return probe_value_.load(); });
  }

  EstimateCache::InsertContext Context(double lo, double hi) {
    EstimateCache::InsertContext context;
    context.tracker = tracker_;
    context.state_version = tracker_->state_version();
    context.state_lo = lo;
    context.state_hi = hi;
    return context;
  }

  static EstimateResponse OkResponse(double estimate) {
    EstimateResponse response;
    response.status = EstimateStatus::kOk;
    response.estimate_seconds = estimate;
    response.state = 0;
    return response;
  }

  FakeClock clock_;
  std::atomic<double> probe_value_{0.5};
  std::unique_ptr<EstimateCache> cache_;
  std::shared_ptr<ContentionTracker> tracker_;
};

TEST_F(EstimateCacheUnitTest, HitRequiresExactKeyMatch) {
  ASSERT_TRUE(tracker_->ProbeOnce());
  cache_->Insert("a", 0, {1.0, 2.0}, 7, Context(0.0, 1.0), OkResponse(6.0));

  EstimateResponse response;
  EXPECT_TRUE(cache_->Lookup("a", 0, {1.0, 2.0}, 7, &response));
  EXPECT_DOUBLE_EQ(response.estimate_seconds, 6.0);
  EXPECT_FALSE(cache_->Lookup("b", 0, {1.0, 2.0}, 7, &response));  // site
  EXPECT_FALSE(cache_->Lookup("a", 1, {1.0, 2.0}, 7, &response));  // class
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0, 2.5}, 7, &response));  // features
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0}, 7, &response));       // arity
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0, 2.0}, 8, &response));  // epoch
}

TEST_F(EstimateCacheUnitTest, CostDriftOutsideStateBoundsInvalidates) {
  ASSERT_TRUE(tracker_->ProbeOnce());  // publishes 0.5
  cache_->Insert("a", 0, {1.0}, 7, Context(0.0, 1.0), OkResponse(6.0));
  EstimateResponse response;
  ASSERT_TRUE(cache_->Lookup("a", 0, {1.0}, 7, &response));

  // Without a state mapper the mapped state never changes (no version bump),
  // but the published cost leaves the entry's own state interval — the
  // value-correctness guard must reject the entry.
  probe_value_.store(5.0);
  ASSERT_TRUE(tracker_->ProbeOnce());
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0}, 7, &response));
  EXPECT_EQ(cache_->invalidations(), 1u);
}

TEST_F(EstimateCacheUnitTest, StateVersionBumpInvalidates) {
  tracker_->SetStateMapper([](double c) { return c > 1.0 ? 1 : 0; });
  ASSERT_TRUE(tracker_->ProbeOnce());
  cache_->Insert("a", 0, {1.0}, 7,
                 Context(-std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::infinity()),
                 OkResponse(6.0));
  EstimateResponse response;
  ASSERT_TRUE(cache_->Lookup("a", 0, {1.0}, 7, &response));

  // The flip bumps the tracker's state version; even with infinite bounds
  // the version check retires the entry.
  probe_value_.store(1.5);
  ASSERT_TRUE(tracker_->ProbeOnce());
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0}, 7, &response));
}

TEST_F(EstimateCacheUnitTest, EntryBornBeforeTransitionIsBornInvalid) {
  ASSERT_TRUE(tracker_->ProbeOnce());
  // Version captured, then the world moves before the insert lands.
  EstimateCache::InsertContext context = Context(0.0, 10.0);
  tracker_->SetStateMapper([](double) { return 3; });  // bumps the version
  cache_->Insert("a", 0, {1.0}, 7, context, OkResponse(6.0));
  EstimateResponse response;
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0}, 7, &response));
}

TEST_F(EstimateCacheUnitTest, InvalidateSiteEvictsOnlyThatSite) {
  ASSERT_TRUE(tracker_->ProbeOnce());
  cache_->Insert("a", 0, {1.0}, 7, Context(0.0, 1.0), OkResponse(6.0));
  cache_->Insert("a", 1, {2.0}, 7, Context(0.0, 1.0), OkResponse(8.0));
  cache_->Insert("b", 0, {1.0}, 7, Context(0.0, 1.0), OkResponse(9.0));

  cache_->InvalidateSite("a");
  EstimateResponse response;
  // Invalidation is lazy (a version-cell bump): entries retire — and count —
  // when the owning thread next looks them up.
  EXPECT_FALSE(cache_->Lookup("a", 0, {1.0}, 7, &response));
  EXPECT_FALSE(cache_->Lookup("a", 1, {2.0}, 7, &response));
  EXPECT_TRUE(cache_->Lookup("b", 0, {1.0}, 7, &response));
  EXPECT_EQ(cache_->invalidations(), 2u);
  cache_->InvalidateAll();
  EXPECT_FALSE(cache_->Lookup("b", 0, {1.0}, 7, &response));
  EXPECT_EQ(cache_->invalidations(), 3u);
}

TEST_F(EstimateCacheUnitTest, FeatureQuantizationSharesNearbyKeys) {
  EstimateCacheConfig config;
  config.capacity_per_thread = 64;
  config.feature_quantum = 0.01;
  EstimateCache cache(config);
  ASSERT_TRUE(tracker_->ProbeOnce());
  cache.Insert("a", 0, {1.000}, 7, Context(0.0, 1.0), OkResponse(6.0));

  EstimateResponse response;
  EXPECT_TRUE(cache.Lookup("a", 0, {1.002}, 7, &response));  // same grid cell
  EXPECT_FALSE(cache.Lookup("a", 0, {1.02}, 7, &response));  // different cell
}

// Concurrent hammer: estimate threads against state flips, model re-
// registrations and stale-flag flips. Run under tsan/asan (tier-2) to verify
// the lock-free validity protocol and eviction paths.
TEST(EstimateCacheStressTest, ConcurrentEstimatesSurviveInvalidationStorm) {
  EstimationService service(CachedConfig());
  const auto cls = QueryClassId::kUnarySeqScan;
  service.RegisterModel("a", test::PiecewiseLinearModel(cls, {2.0, 5.0}));
  std::atomic<double> probe_value{0.5};
  service.RegisterSite("a", [&] { return probe_value.load(); });
  ASSERT_TRUE(service.ProbeNow("a"));

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 0;
    while (!stop.load()) {
      probe_value.store((i % 2 == 0) ? 1.5 : 0.5);
      service.ProbeNow("a");
      if (i % 5 == 0) {
        service.RegisterModel("a",
                              test::PiecewiseLinearModel(cls, {2.0, 5.0}));
      }
      service.SetModelStale("a", cls, i % 3 == 0);
      ++i;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> estimators;
  std::atomic<uint64_t> served{0};
  for (int t = 0; t < 3; ++t) {
    estimators.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const double x0 = 1.0 + static_cast<double>((i + t) % 5);
        const EstimateResponse response =
            service.Estimate(Request("a", cls, x0));
        if (response.ok()) {
          // Whatever state priced it, the answer must match one of the two
          // per-state equations exactly.
          const bool matches_state0 =
              std::fabs(response.estimate_seconds - 2.0 * x0) < 1e-6;
          const bool matches_state1 =
              std::fabs(response.estimate_seconds - 5.0 * x0) < 1e-6;
          ASSERT_TRUE(matches_state0 || matches_state1)
              << "estimate " << response.estimate_seconds << " for x0=" << x0;
          served.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : estimators) thread.join();
  stop.store(true);
  churn.join();
  EXPECT_GT(served.load(), 0u);
}

}  // namespace
}  // namespace mscm::runtime
