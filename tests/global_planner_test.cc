#include "core/global_planner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

CostModel LinearModel(double slope) {
  ObservationSet obs;
  Rng rng(1);
  const size_t n_features =
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size();
  for (int i = 0; i < 40; ++i) {
    Observation o;
    o.probing_cost = 0.5;
    o.features.assign(n_features, 0.0);
    o.features[0] = rng.Uniform(1.0, 10.0);
    o.cost = slope * o.features[0];
    obs.push_back(o);
  }
  return FitCostModel(QueryClassId::kUnarySeqScan, obs, {0},
                      ContentionStates::Single(), QualitativeForm::kGeneral);
}

ComponentQueryCandidate Candidate(const std::string& site, double x) {
  ComponentQueryCandidate c;
  c.site = site;
  c.class_id = QueryClassId::kUnarySeqScan;
  c.features.assign(
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size(), 0.0);
  c.features[0] = x;
  c.probing_cost = 0.5;
  return c;
}

TEST(GlobalPlannerTest, PicksCheapestSite) {
  GlobalCatalog catalog;
  catalog.Register("fast", LinearModel(1.0));
  catalog.Register("slow", LinearModel(10.0));
  const PlacementDecision d = ChoosePlacement(
      catalog, {Candidate("slow", 5.0), Candidate("fast", 5.0)});
  EXPECT_EQ(d.chosen, 1);
  ASSERT_EQ(d.estimates.size(), 2u);
  EXPECT_GT(d.estimates[0], d.estimates[1]);
}

TEST(GlobalPlannerTest, SkipsSitesWithoutModels) {
  GlobalCatalog catalog;
  catalog.Register("known", LinearModel(3.0));
  const PlacementDecision d = ChoosePlacement(
      catalog, {Candidate("unknown", 1.0), Candidate("known", 1.0)});
  EXPECT_EQ(d.chosen, 1);
  EXPECT_TRUE(std::isinf(d.estimates[0]));
}

TEST(GlobalPlannerTest, NoModelsAnywhere) {
  GlobalCatalog catalog;
  const PlacementDecision d =
      ChoosePlacement(catalog, {Candidate("x", 1.0)});
  EXPECT_EQ(d.chosen, -1);
}

TEST(GlobalPlannerTest, EmptyCandidateList) {
  GlobalCatalog catalog;
  const PlacementDecision d = ChoosePlacement(catalog, {});
  EXPECT_EQ(d.chosen, -1);
  EXPECT_TRUE(d.estimates.empty());
}

TEST(GlobalPlannerTest, DifferentWorkloadsCanFlipDecision) {
  // Site "fast" is cheap per tuple but in a heavy contention state; site
  // "slow" is idle. The planner's choice depends on both the model and the
  // current probing cost.
  ObservationSet obs;
  Rng rng(2);
  const size_t n_features =
      VariableSet::ForClass(QueryClassId::kUnarySeqScan).size();
  for (int i = 0; i < 200; ++i) {
    Observation o;
    o.probing_cost = rng.NextDouble();
    o.features.assign(n_features, 0.0);
    o.features[0] = rng.Uniform(1.0, 10.0);
    const double scale = o.probing_cost <= 0.5 ? 1.0 : 8.0;
    o.cost = scale * o.features[0];
    obs.push_back(o);
  }
  CostModel contended = FitCostModel(
      QueryClassId::kUnarySeqScan, obs, {0},
      ContentionStates::UniformPartition(0.0, 1.0, 2),
      QualitativeForm::kGeneral);
  GlobalCatalog catalog;
  catalog.Register("siteA", std::move(contended));
  catalog.Register("siteB", LinearModel(3.0));

  // siteA idle (probe 0.2): 1*x beats siteB's 3*x.
  ComponentQueryCandidate a = Candidate("siteA", 5.0);
  a.probing_cost = 0.2;
  ComponentQueryCandidate b = Candidate("siteB", 5.0);
  EXPECT_EQ(ChoosePlacement(catalog, {a, b}).chosen, 0);

  // siteA contended (probe 0.9): 8*x loses to 3*x.
  a.probing_cost = 0.9;
  EXPECT_EQ(ChoosePlacement(catalog, {a, b}).chosen, 1);
}

}  // namespace
}  // namespace mscm::core
