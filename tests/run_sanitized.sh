#!/usr/bin/env bash
# Tier-2 concurrency check: build the tree under a sanitizer and run the
# concurrency-sensitive suites (thread pool, snapshot catalog, contention
# tracker, estimation service, model-refresh daemon, RLS/adaptation
# controller feedback loop, circuit breaker, fault injection, stress, chaos,
# epoch reclamation, thread registry, per-thread stats, site lifecycle /
# churn, the fleet simulator, the fleet-scale churn soak, and the net
# serving boundary — wire codec fuzz, loopback server, shutdown ordering,
# load generator). One command:
#
# The soak's scale knobs (MSCM_SOAK_SITES / MSCM_SOAK_SECONDS /
# MSCM_SOAK_SEED) pass through, so CI can bound wall-clock time.
#
#   tests/run_sanitized.sh            # thread sanitizer (default)
#   MSCM_SANITIZE=address tests/run_sanitized.sh   # asan instead
#
# Exits non-zero on any test failure or sanitizer report.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZER="${MSCM_SANITIZE:-thread}"
case "${SANITIZER}" in
  thread) BUILD_DIR="${REPO_ROOT}/build-tsan" ;;
  address) BUILD_DIR="${REPO_ROOT}/build-asan" ;;
  *) BUILD_DIR="${REPO_ROOT}/build-${SANITIZER}" ;;
esac
FILTER='(ThreadPool|SnapshotCatalog|ContentionTracker|EstimationService|ModelRefresh|RuntimeStress|EstimateCache|CircuitBreaker|FaultInjector|FaultyObservationSource|RuntimeChaos|Epoch|ThreadRegistry|LatencyHistogram|RuntimeCounters|Rls|Adaptation|WireReader|WireMessages|WireValidation|WireGeneration|WireFuzz|FrameAssembler|StatsCodec|NetServer|NetShutdown|NetLoadGen|PlacementPolicy|CostDistribution|SiteLifecycle|FleetTest|RuntimeSoak)'

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DMSCM_SANITIZE="${SANITIZER}" \
  > /dev/null

cmake --build "${BUILD_DIR}" -j \
  --target thread_pool_test snapshot_catalog_test contention_tracker_test \
           runtime_service_test runtime_refresh_test runtime_stress_test \
           estimate_cache_test circuit_breaker_test fault_injector_test \
           runtime_chaos_test epoch_test runtime_stats_test \
           rls_test adaptation_test \
           wire_format_test net_server_test \
           net_shutdown_test net_loadgen_test placement_policy_test \
           site_lifecycle_test fleet_test runtime_soak_test

# halt_on_error makes a sanitizer report fail the test, not just print.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
ctest --test-dir "${BUILD_DIR}" -R "${FILTER}" --output-on-failure -j "$(nproc)"
