#include "engine/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::engine {
namespace {

TEST(ConditionTest, AllOperatorsMatchCorrectly) {
  const Row row = {5, 10};
  EXPECT_TRUE((Condition{0, CompareOp::kEq, 5, 0}).Matches(row));
  EXPECT_FALSE((Condition{0, CompareOp::kEq, 6, 0}).Matches(row));
  EXPECT_TRUE((Condition{0, CompareOp::kLt, 6, 0}).Matches(row));
  EXPECT_FALSE((Condition{0, CompareOp::kLt, 5, 0}).Matches(row));
  EXPECT_TRUE((Condition{0, CompareOp::kLe, 5, 0}).Matches(row));
  EXPECT_TRUE((Condition{0, CompareOp::kGt, 4, 0}).Matches(row));
  EXPECT_FALSE((Condition{0, CompareOp::kGt, 5, 0}).Matches(row));
  EXPECT_TRUE((Condition{0, CompareOp::kGe, 5, 0}).Matches(row));
  EXPECT_TRUE((Condition{1, CompareOp::kBetween, 10, 10}).Matches(row));
  EXPECT_FALSE((Condition{1, CompareOp::kBetween, 11, 20}).Matches(row));
}

TEST(ConditionTest, KeyRangeMatchesSemantics) {
  const Condition between{0, CompareOp::kBetween, 3, 7};
  EXPECT_EQ(between.KeyRange(), std::make_pair(int64_t{3}, int64_t{7}));
  const Condition eq{0, CompareOp::kEq, 4, 0};
  EXPECT_EQ(eq.KeyRange(), std::make_pair(int64_t{4}, int64_t{4}));
  const Condition lt{0, CompareOp::kLt, 4, 0};
  EXPECT_EQ(lt.KeyRange().second, 3);
  const Condition ge{0, CompareOp::kGe, 4, 0};
  EXPECT_EQ(ge.KeyRange().first, 4);
}

TEST(PredicateTest, EmptyPredicateMatchesEverything) {
  const Predicate p;
  EXPECT_TRUE(p.Matches({1, 2, 3}));
  EXPECT_TRUE(p.empty());
}

TEST(PredicateTest, ConjunctionSemantics) {
  Predicate p;
  p.Add({0, CompareOp::kGe, 5, 0});
  p.Add({1, CompareOp::kLt, 10, 0});
  EXPECT_TRUE(p.Matches({5, 9}));
  EXPECT_FALSE(p.Matches({4, 9}));
  EXPECT_FALSE(p.Matches({5, 10}));
}

TEST(PredicateTest, FindCondition) {
  Predicate p;
  p.Add({2, CompareOp::kEq, 1, 0});
  p.Add({0, CompareOp::kGt, 1, 0});
  EXPECT_EQ(p.FindCondition(2), 0);
  EXPECT_EQ(p.FindCondition(0), 1);
  EXPECT_EQ(p.FindCondition(1), -1);
}

TEST(PredicateTest, ToStringReadable) {
  const Schema schema({{"a1", 8}, {"a2", 8}});
  Predicate p;
  p.Add({0, CompareOp::kBetween, 3, 9});
  p.Add({1, CompareOp::kGt, 100, 0});
  EXPECT_EQ(p.ToString(schema), "a1 between 3 and 9 and a2 > 100");
  EXPECT_EQ(Predicate().ToString(schema), "true");
}

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(test::SequentialTable("T", 1000));
    table_->RecomputeStats();
  }
  std::unique_ptr<Table> table_;
};

TEST_F(SelectivityTest, BetweenMatchesTrueFraction) {
  // col0 uniform 0..999; between 100..299 -> 20%.
  const Condition c{0, CompareOp::kBetween, 100, 299};
  EXPECT_NEAR(EstimateConditionSelectivity(*table_, c), 0.2, 1e-9);
}

TEST_F(SelectivityTest, EqualityUsesDistinctCount) {
  const Condition c{0, CompareOp::kEq, 500, 0};
  EXPECT_NEAR(EstimateConditionSelectivity(*table_, c), 1.0 / 1000.0, 1e-12);
}

TEST_F(SelectivityTest, OutOfRangeGivesZero) {
  const Condition c{0, CompareOp::kBetween, 5000, 6000};
  EXPECT_DOUBLE_EQ(EstimateConditionSelectivity(*table_, c), 0.0);
}

TEST_F(SelectivityTest, WholeRangeGivesOne) {
  const Condition c{0, CompareOp::kBetween, -100, 100000};
  EXPECT_NEAR(EstimateConditionSelectivity(*table_, c), 1.0, 1e-9);
}

TEST_F(SelectivityTest, ConjunctionMultiplies) {
  Predicate p;
  p.Add({0, CompareOp::kBetween, 0, 499});    // 0.5
  p.Add({1, CompareOp::kBetween, 0, 4});      // 0.5 of 0..9
  EXPECT_NEAR(EstimatePredicateSelectivity(*table_, p), 0.25, 1e-9);
}

TEST_F(SelectivityTest, EstimateTracksActualCount) {
  const Condition c{0, CompareOp::kBetween, 250, 749};
  size_t actual = 0;
  for (const Row& r : table_->rows()) {
    if (c.Matches(r)) ++actual;
  }
  const double est = EstimateConditionSelectivity(*table_, c) *
                     static_cast<double>(table_->num_rows());
  EXPECT_NEAR(est, static_cast<double>(actual), 5.0);
}

}  // namespace
}  // namespace mscm::engine
