#include "stats/descriptive.h"

#include <gtest/gtest.h>

namespace mscm::stats {
namespace {

TEST(DescriptiveTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(DescriptiveTest, VarianceSampleFormula) {
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(DescriptiveTest, StdDevIsSqrtVariance) {
  const std::vector<double> xs = {1, 3, 5, 9};
  EXPECT_NEAR(StdDev(xs) * StdDev(xs), Variance(xs), 1e-12);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(Min(xs), -1);
  EXPECT_DOUBLE_EQ(Max(xs), 7);
}

TEST(DescriptiveTest, QuantileEndpointsAndMedian) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 50);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 30);
  EXPECT_DOUBLE_EQ(Median(xs), 30);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
}

TEST(DescriptiveTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

TEST(DescriptiveTest, SummarizeConsistent) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(HistogramTest, CountsLandInCorrectBins) {
  const Histogram h = BuildHistogram({0.5, 1.5, 1.6, 2.5}, 0.0, 3.0, 3);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  const Histogram h = BuildHistogram({-5.0, 99.0}, 0.0, 10.0, 5);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(HistogramTest, BinGeometry) {
  const Histogram h = BuildHistogram({1.0}, 0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 2.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
}

TEST(HistogramTest, TotalCountPreserved) {
  std::vector<double> xs;
  for (int i = 0; i < 57; ++i) xs.push_back(i * 0.173);
  const Histogram h = BuildHistogram(xs, 0.0, 10.0, 7);
  size_t total = 0;
  for (size_t c : h.counts) total += c;
  EXPECT_EQ(total, xs.size());
}

}  // namespace
}  // namespace mscm::stats
