#include "cluster/hierarchical.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mscm::cluster {
namespace {

TEST(HierarchicalTest, SingletonInput) {
  const auto clusters = AgglomerativeCluster1D({3.5}, 1);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[0].centroid, 3.5);
  EXPECT_EQ(clusters[0].count, 1u);
}

TEST(HierarchicalTest, KLargerThanInputGivesSingletons) {
  const auto clusters = AgglomerativeCluster1D({1.0, 2.0}, 5);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(HierarchicalTest, TwoObviousClusters) {
  const auto clusters =
      AgglomerativeCluster1D({1.0, 1.1, 0.9, 10.0, 10.2, 9.8}, 2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_NEAR(clusters[0].centroid, 1.0, 0.1);
  EXPECT_NEAR(clusters[1].centroid, 10.0, 0.1);
  EXPECT_EQ(clusters[0].count, 3u);
  EXPECT_EQ(clusters[1].count, 3u);
}

TEST(HierarchicalTest, ClustersSortedByCentroid) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Uniform(0, 100));
  const auto clusters = AgglomerativeCluster1D(xs, 7);
  for (size_t i = 0; i + 1 < clusters.size(); ++i) {
    EXPECT_LE(clusters[i].centroid, clusters[i + 1].centroid);
    // Ranges must not overlap in 1-D centroid-linkage agglomeration.
    EXPECT_LE(clusters[i].max, clusters[i + 1].min);
  }
}

TEST(HierarchicalTest, MembersPartitionInput) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 57; ++i) xs.push_back(rng.Uniform(0, 10));
  const auto clusters = AgglomerativeCluster1D(xs, 4);
  std::vector<bool> seen(xs.size(), false);
  size_t total = 0;
  for (const auto& c : clusters) {
    total += c.members.size();
    EXPECT_EQ(c.members.size(), c.count);
    for (size_t idx : c.members) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
      EXPECT_GE(xs[idx], c.min);
      EXPECT_LE(xs[idx], c.max);
    }
  }
  EXPECT_EQ(total, xs.size());
}

TEST(HierarchicalTest, CentroidIsMemberMean) {
  const std::vector<double> xs = {1, 2, 3, 100, 101};
  const auto clusters = AgglomerativeCluster1D(xs, 2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_NEAR(clusters[0].centroid, 2.0, 1e-12);
  EXPECT_NEAR(clusters[1].centroid, 100.5, 1e-12);
}

TEST(HierarchicalTest, ThreeGaussianClustersRecovered) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.Gaussian(10, 1));
  for (int i = 0; i < 100; ++i) xs.push_back(rng.Gaussian(50, 1.5));
  for (int i = 0; i < 100; ++i) xs.push_back(rng.Gaussian(90, 1));
  const auto clusters = AgglomerativeCluster1D(xs, 3);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_NEAR(clusters[0].centroid, 10, 1.0);
  EXPECT_NEAR(clusters[1].centroid, 50, 1.0);
  EXPECT_NEAR(clusters[2].centroid, 90, 1.0);
}

TEST(HierarchicalTest, ByDistanceStopsAtGap) {
  // Gaps of 1 within groups, gap of 50 between: threshold 5 keeps 2 groups.
  const auto clusters = AgglomerativeClusterByDistance(
      {0, 1, 2, 52, 53, 54}, 5.0);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(HierarchicalTest, ByDistanceZeroThresholdKeepsDistinctValues) {
  const auto clusters = AgglomerativeClusterByDistance({1, 2, 3}, 0.0);
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(HierarchicalTest, ByDistanceHugeThresholdMergesAll) {
  const auto clusters = AgglomerativeClusterByDistance({1, 2, 3, 50}, 1e9);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(HierarchicalTest, DuplicateValues) {
  const auto clusters = AgglomerativeCluster1D({5, 5, 5, 5}, 2);
  // Duplicates merge freely; asking for 2 clusters of identical points still
  // returns 2 clusters with centroid 5.
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(clusters[0].centroid, 5.0);
  EXPECT_DOUBLE_EQ(clusters[1].centroid, 5.0);
}

}  // namespace
}  // namespace mscm::cluster
