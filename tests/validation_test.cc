#include "core/validation.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mscm::core {
namespace {

TEST(EstimateBandsTest, VeryGoodBandIs30Percent) {
  EXPECT_TRUE(IsVeryGoodEstimate(10.0, 10.0));
  EXPECT_TRUE(IsVeryGoodEstimate(12.9, 10.0));
  EXPECT_TRUE(IsVeryGoodEstimate(7.1, 10.0));
  EXPECT_FALSE(IsVeryGoodEstimate(13.5, 10.0));
  EXPECT_FALSE(IsVeryGoodEstimate(6.5, 10.0));
}

TEST(EstimateBandsTest, GoodBandIsFactorOfTwo) {
  // "2 minutes vs 4 minutes" is good per the paper.
  EXPECT_TRUE(IsGoodEstimate(240.0, 120.0));
  EXPECT_TRUE(IsGoodEstimate(60.0, 120.0));
  EXPECT_FALSE(IsGoodEstimate(59.0, 120.0));
  EXPECT_FALSE(IsGoodEstimate(241.0, 120.0));
}

TEST(EstimateBandsTest, VeryGoodImpliesGood) {
  for (double est : {7.1, 10.0, 12.9}) {
    ASSERT_TRUE(IsVeryGoodEstimate(est, 10.0));
    EXPECT_TRUE(IsGoodEstimate(est, 10.0));
  }
}

TEST(EstimateBandsTest, ZeroObservedHandled) {
  EXPECT_TRUE(IsVeryGoodEstimate(0.0, 0.0));
  EXPECT_FALSE(IsVeryGoodEstimate(1.0, 0.0));
}

// Regression: both validators used to accept *any* estimated <= 0 when the
// observed cost was non-positive — an estimate of -50 s against an observed
// 0 s counted as "very good", inflating the Table-5 accuracy percentages.
// A zero-cost observation is only matched by a (near-)zero estimate.
TEST(EstimateBandsTest, NegativeEstimateAgainstZeroObservedIsRejected) {
  EXPECT_FALSE(IsVeryGoodEstimate(-50.0, 0.0));
  EXPECT_FALSE(IsGoodEstimate(-50.0, 0.0));
  EXPECT_FALSE(IsVeryGoodEstimate(-1e-3, 0.0));
  EXPECT_FALSE(IsGoodEstimate(0.5, 0.0));
  // Negative observed values get the same treatment as zero.
  EXPECT_FALSE(IsVeryGoodEstimate(-2.0, -2.0));
  // Exactly-zero and numerically-zero estimates still match.
  EXPECT_TRUE(IsVeryGoodEstimate(0.0, 0.0));
  EXPECT_TRUE(IsGoodEstimate(0.0, 0.0));
  EXPECT_TRUE(IsGoodEstimate(1e-12, 0.0));
}

class ValidateTest : public ::testing::Test {
 protected:
  CostModel PerfectModel() {
    // cost = 2 * x exactly, single state.
    ObservationSet train;
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
      Observation o;
      o.probing_cost = 0.5;
      o.features = {rng.Uniform(1.0, 10.0)};
      o.cost = 2.0 * o.features[0];
      train.push_back(o);
    }
    return FitCostModel(QueryClassId::kUnarySeqScan, train, {0},
                        ContentionStates::Single(),
                        QualitativeForm::kGeneral);
  }
};

TEST_F(ValidateTest, PerfectModelScoresFullMarks) {
  const CostModel model = PerfectModel();
  ObservationSet test;
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    Observation o;
    o.probing_cost = 0.5;
    o.features = {rng.Uniform(1.0, 10.0)};
    o.cost = 2.0 * o.features[0];
    test.push_back(o);
  }
  const ValidationReport r = Validate(model, test);
  EXPECT_EQ(r.n_test, 30u);
  EXPECT_DOUBLE_EQ(r.pct_very_good, 1.0);
  EXPECT_DOUBLE_EQ(r.pct_good, 1.0);
  EXPECT_NEAR(r.mean_relative_error, 0.0, 1e-9);
  EXPECT_NEAR(r.rmse, 0.0, 1e-9);
}

TEST_F(ValidateTest, BandsCountedCorrectly) {
  const CostModel model = PerfectModel();  // estimates 2*x
  ObservationSet test;
  // Observed = 2x (very good), observed = 3x (estimate 2x: ratio 0.67 ->
  // good, rel err 0.33 -> not very good), observed = 10x (not good).
  for (double mult : {2.0, 3.0, 10.0}) {
    Observation o;
    o.probing_cost = 0.5;
    o.features = {4.0};
    o.cost = mult * 4.0;
    test.push_back(o);
  }
  const ValidationReport r = Validate(model, test);
  EXPECT_NEAR(r.pct_very_good, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.pct_good, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.avg_observed_cost, (8.0 + 12.0 + 40.0) / 3.0, 1e-9);
}

TEST_F(ValidateTest, EmptyTestSet) {
  const ValidationReport r = Validate(PerfectModel(), {});
  EXPECT_EQ(r.n_test, 0u);
  EXPECT_DOUBLE_EQ(r.pct_good, 0.0);
}

}  // namespace
}  // namespace mscm::core
