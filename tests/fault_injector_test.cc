#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace mscm::sim {
namespace {

TEST(FaultInjectorTest, UnconfiguredInjectorPassesEveryCallThrough) {
  FaultInjector injector;
  auto probe = injector.WrapProbe([] { return 0.7; });
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(probe(), 0.7);
  EXPECT_EQ(injector.calls(), 100u);
  EXPECT_EQ(injector.injected(FaultKind::kNone), 100u);
  EXPECT_EQ(injector.injected(FaultKind::kThrow), 0u);
}

TEST(FaultInjectorTest, ScheduledFaultsApplyInOrderThenRatesResume) {
  FaultInjector injector;  // all rates zero
  injector.ScheduleNext(FaultKind::kThrow);
  injector.ScheduleNext(FaultKind::kNaN);
  injector.ScheduleNext(FaultKind::kInf);
  injector.ScheduleNext(FaultKind::kNegative);

  auto probe = injector.WrapProbe([] { return 0.7; });
  EXPECT_THROW(probe(), std::runtime_error);
  EXPECT_TRUE(std::isnan(probe()));
  EXPECT_TRUE(std::isinf(probe()));
  EXPECT_DOUBLE_EQ(probe(), -1.0);
  EXPECT_DOUBLE_EQ(probe(), 0.7);  // scripted queue drained → pass-through

  EXPECT_EQ(injector.injected(FaultKind::kThrow), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kNaN), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kInf), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kNegative), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kNone), 1u);
}

TEST(FaultInjectorTest, SeededRatesAreDeterministicAndProportional) {
  FaultInjectorConfig config;
  config.seed = 42;
  config.throw_rate = 0.25;
  config.nan_rate = 0.25;

  uint64_t first_throws = 0;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(config);
    auto probe = injector.WrapProbe([] { return 0.7; });
    for (int i = 0; i < 400; ++i) {
      try {
        probe();
      } catch (const std::runtime_error&) {
      }
    }
    const uint64_t throws = injector.injected(FaultKind::kThrow);
    const uint64_t nans = injector.injected(FaultKind::kNaN);
    // Roughly a quarter each (generous bounds; the draw is seeded, so any
    // failure here is deterministic, not flaky).
    EXPECT_GT(throws, 50u);
    EXPECT_LT(throws, 150u);
    EXPECT_GT(nans, 50u);
    EXPECT_LT(nans, 150u);
    EXPECT_EQ(injector.calls(), 400u);
    if (run == 0) {
      first_throws = throws;
    } else {
      EXPECT_EQ(throws, first_throws);  // same seed → same fault stream
    }
  }
}

TEST(FaultInjectorTest, HangBlocksUntilReleased) {
  FaultInjector injector;
  injector.ScheduleNext(FaultKind::kHang);
  auto probe = injector.WrapProbe([] { return 0.7; });

  double hung_result = 0.0;
  std::thread hung([&] { hung_result = probe(); });
  while (injector.hanging() < 1) std::this_thread::yield();

  injector.ReleaseHangs();
  hung.join();
  EXPECT_TRUE(std::isnan(hung_result));  // a released hang is a failed probe
  EXPECT_EQ(injector.hanging(), 0);

  // Hangs injected after release return immediately.
  injector.ScheduleNext(FaultKind::kHang);
  EXPECT_TRUE(std::isnan(probe()));
}

TEST(FaultInjectorTest, DelayFaultSleepsThenPassesThrough) {
  FaultInjectorConfig config;
  config.delay = std::chrono::milliseconds(20);
  FaultInjector injector(config);
  injector.ScheduleNext(FaultKind::kDelay);
  auto probe = injector.WrapProbe([] { return 0.7; });

  const auto started = std::chrono::steady_clock::now();
  EXPECT_DOUBLE_EQ(probe(), 0.7);
  EXPECT_GE(std::chrono::steady_clock::now() - started,
            std::chrono::milliseconds(20));
}

TEST(FaultInjectorTest, WrappedProbeSurvivesInjectorDestruction) {
  std::function<double()> probe;
  {
    FaultInjector injector;
    probe = injector.WrapProbe([] { return 0.7; });
    injector.ScheduleNext(FaultKind::kHang);
  }
  // The injector is gone: the wrapper still runs off the shared state, and
  // the scripted hang was released by the destructor.
  EXPECT_TRUE(std::isnan(probe()));
  EXPECT_DOUBLE_EQ(probe(), 0.7);
}

class ConstSource : public core::ObservationSource {
 public:
  core::Observation Draw() override {
    core::Observation obs;
    obs.features = {1.0, 2.0};
    obs.cost = 2.0;
    obs.probing_cost = 0.5;
    return obs;
  }
};

TEST(FaultyObservationSourceTest, InjectsSamplingFaults) {
  ConstSource inner;
  FaultInjector injector;
  FaultyObservationSource source(&inner, &injector);

  // Unfaulted: forwards the inner draw.
  auto obs = source.TryDraw();
  ASSERT_TRUE(obs.has_value());
  EXPECT_DOUBLE_EQ(obs->cost, 2.0);

  injector.ScheduleNext(FaultKind::kThrow);
  EXPECT_THROW(source.TryDraw(), std::runtime_error);

  injector.ScheduleNext(FaultKind::kNaN);
  obs = source.TryDraw();
  ASSERT_TRUE(obs.has_value());
  EXPECT_TRUE(std::isnan(obs->cost));

  injector.ScheduleNext(FaultKind::kNegative);
  obs = source.TryDraw();
  ASSERT_TRUE(obs.has_value());
  EXPECT_DOUBLE_EQ(obs->cost, -1.0);

  // Draw() stays unfaulted regardless of the scripted queue.
  injector.ScheduleNext(FaultKind::kThrow);
  EXPECT_DOUBLE_EQ(source.Draw().cost, 2.0);
  EXPECT_THROW(source.TryDraw(), std::runtime_error);  // queue still pending
}

TEST(FaultyObservationSourceTest, HungSamplingQueryYieldsNoSampleOnRelease) {
  ConstSource inner;
  FaultInjector injector;
  FaultyObservationSource source(&inner, &injector);
  injector.ScheduleNext(FaultKind::kHang);

  std::optional<core::Observation> result;
  bool returned = false;
  std::thread sampler([&] {
    result = source.TryDraw();
    returned = true;
  });
  while (injector.hanging() < 1) std::this_thread::yield();
  EXPECT_FALSE(returned);

  injector.ReleaseHangs();
  sampler.join();
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace mscm::sim
