// Small string-formatting helpers shared by examples, benches, and reports.

#ifndef MSCM_COMMON_STR_UTIL_H_
#define MSCM_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace mscm {

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Formats a double compactly: fixed notation for mid-range magnitudes,
// scientific otherwise. Used in printed cost-model equations.
std::string CompactDouble(double v, int significant_digits = 4);

}  // namespace mscm

#endif  // MSCM_COMMON_STR_UTIL_H_
