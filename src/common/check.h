// Lightweight assertion macros used throughout the MSCM library.
//
// The library does not use exceptions (Google style). Programmer errors —
// violated preconditions, out-of-range indexes, broken invariants — abort the
// process with a diagnostic. Expected runtime failures are reported through
// return values (std::optional / status enums) instead.

#ifndef MSCM_COMMON_CHECK_H_
#define MSCM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mscm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "MSCM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mscm::internal

// Always-on invariant check. `MSCM_CHECK(cond)` or
// `MSCM_CHECK_MSG(cond, "context")`.
#define MSCM_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mscm::internal::CheckFailed(__FILE__, __LINE__, #cond, "");     \
    }                                                                   \
  } while (false)

#define MSCM_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mscm::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                   \
  } while (false)

// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define MSCM_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MSCM_DCHECK(cond) MSCM_CHECK(cond)
#endif

#endif  // MSCM_COMMON_CHECK_H_
