#include "common/rng.h"

#include <cmath>

namespace mscm {

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller. Draw u1 away from zero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double mean) {
  MSCM_DCHECK(mean > 0.0);
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -mean * std::log(u);
}

}  // namespace mscm
