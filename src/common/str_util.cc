#include "common/str_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace mscm {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string CompactDouble(double v, int significant_digits) {
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e-3 && a < 1e6) {
    // Choose decimals so that `significant_digits` significant figures show.
    // The leading digit sits at 10^exponent; values below 1 have a negative
    // exponent, i.e. leading zeros after the decimal point that must not
    // consume significant figures (0.001234 at 3 digits is "0.00123").
    const int exponent = static_cast<int>(std::floor(std::log10(a)));
    int decimals = significant_digits - 1 - exponent;
    if (decimals < 0) decimals = 0;
    if (decimals > 9) decimals = 9;
    return Format("%.*f", decimals, v);
  }
  return Format("%.*e", significant_digits - 1, v);
}

}  // namespace mscm
