#include "common/text_table.h"

#include <algorithm>

#include "common/check.h"

namespace mscm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MSCM_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  MSCM_CHECK_MSG(cells.size() <= headers_.size(),
                 "row has more cells than table columns");
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + render_line(headers_) + sep;
  for (const Row& row : rows_) {
    out += row.separator ? sep : render_line(row.cells);
  }
  out += sep;
  return out;
}

}  // namespace mscm
