// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library (table generation, query
// sampling, load building, cost noise) takes an explicit `Rng&` so that a
// single seed reproduces an entire experiment end to end. The generator is
// xoshiro256**, seeded through SplitMix64 — fast, high quality, and fully
// self-contained (no dependence on libstdc++ distribution implementations,
// which are not portable across standard library versions).

#ifndef MSCM_COMMON_RNG_H_
#define MSCM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace mscm {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedf00dULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    MSCM_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MSCM_DCHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Modulo bias is negligible for span << 2^64 (all library uses).
    return lo + static_cast<int64_t>(NextUint64() % span);
  }

  // Standard normal via Box–Muller (polar form avoided to stay branch-light;
  // the trig form is fine at this scale).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given mean.
  double Exponential(double mean);

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for parallel-safe sub-streams).
  Rng Fork() { return Rng(NextUint64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace mscm

#endif  // MSCM_COMMON_RNG_H_
