// Aligned plain-text table rendering for the benchmark harness outputs.
//
// The bench binaries reproduce the paper's tables; `TextTable` renders rows
// with column alignment so the output is directly comparable to the paper.

#ifndef MSCM_COMMON_TEXT_TABLE_H_
#define MSCM_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace mscm {

class TextTable {
 public:
  // `headers` defines the number of columns.
  explicit TextTable(std::vector<std::string> headers);

  // Appends a row. Missing cells render empty; extra cells are an error.
  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal separator line before the next row.
  void AddSeparator();

  // Renders the table, each line terminated with '\n'.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace mscm

#endif  // MSCM_COMMON_TEXT_TABLE_H_
