#include "core/query_class.h"

namespace mscm::core {

const char* ToString(QueryClassId id) {
  switch (id) {
    case QueryClassId::kUnarySeqScan:
      return "unary/sequential-scan";
    case QueryClassId::kUnaryNonClusteredIndex:
      return "unary/nonclustered-index-range";
    case QueryClassId::kUnaryClusteredIndex:
      return "unary/clustered-index-range";
    case QueryClassId::kJoinNoIndex:
      return "join/no-index";
    case QueryClassId::kJoinIndex:
      return "join/index-nested-loop";
  }
  return "?";
}

const char* Label(QueryClassId id) {
  switch (id) {
    case QueryClassId::kUnarySeqScan:
      return "G1";
    case QueryClassId::kUnaryNonClusteredIndex:
      return "G2";
    case QueryClassId::kUnaryClusteredIndex:
      return "Gc";
    case QueryClassId::kJoinNoIndex:
      return "G3";
    case QueryClassId::kJoinIndex:
      return "Gj";
  }
  return "?";
}

bool IsJoinClass(QueryClassId id) {
  return id == QueryClassId::kJoinNoIndex || id == QueryClassId::kJoinIndex;
}

QueryClassId ClassifySelect(const engine::Database& db,
                            const engine::SelectQuery& query,
                            const engine::PlannerRules& rules) {
  const engine::SelectPlan plan = engine::ChooseSelectPlan(db, query, rules);
  switch (plan.method) {
    case engine::AccessMethod::kSequentialScan:
      return QueryClassId::kUnarySeqScan;
    case engine::AccessMethod::kClusteredIndexScan:
      return QueryClassId::kUnaryClusteredIndex;
    case engine::AccessMethod::kNonClusteredIndexScan:
      return QueryClassId::kUnaryNonClusteredIndex;
  }
  return QueryClassId::kUnarySeqScan;
}

QueryClassId ClassifyJoin(const engine::Database& db,
                          const engine::JoinQuery& query,
                          const engine::PlannerRules& rules) {
  const engine::JoinPlan plan = engine::ChooseJoinPlan(db, query, rules);
  return plan.method == engine::JoinMethod::kIndexNestedLoop
             ? QueryClassId::kJoinIndex
             : QueryClassId::kJoinNoIndex;
}

}  // namespace mscm::core
