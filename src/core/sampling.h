// Query sampling (paper §4.1): draws random sample queries from a target
// query class against a local database, varying operand tables, predicate
// selectivities and projections so the observed data spans the explanatory
// variables. Sampled queries are verified to classify into the target class
// (classification depends on the site's planner rules).
//
// Also provides the Proposition 4.1 sample-size rule: the general
// qualitative model with k quantitative variables and s states has
// (k+1)·s coefficients plus an error variance, and the standard sampling
// guideline of 10 observations per estimated parameter gives
// n >= 10·((k+1)·s + 1).

#ifndef MSCM_CORE_SAMPLING_H_
#define MSCM_CORE_SAMPLING_H_

#include <variant>

#include "common/rng.h"
#include "core/query_class.h"
#include "engine/database.h"
#include "engine/query.h"

namespace mscm::core {

// Minimum observations per Proposition 4.1 for the general form.
int MinimumSampleSize(int num_quantitative_vars, int num_states);

// Paper Eq. (4): a practical sample size computed from the basic-variable
// count (expecting most basic variables plus a couple of secondary ones to
// survive selection) and the expected maximum state count.
int RecommendedSampleSize(int num_basic_vars, int expected_max_states);

class QuerySampler {
 public:
  QuerySampler(const engine::Database* db, engine::PlannerRules rules,
               uint64_t seed);

  // Draws a random query classifying into `target` (a unary class).
  engine::SelectQuery SampleSelect(QueryClassId target);

  // Draws a random join query classifying into `target` (a join class).
  engine::JoinQuery SampleJoin(QueryClassId target);

 private:
  engine::Condition RangeCondition(const engine::Table& table, int column,
                                   double selectivity);
  std::vector<int> RandomProjection(const engine::Table& table);
  const engine::Table* RandomTable();

  const engine::Database* db_;
  engine::PlannerRules rules_;
  Rng rng_;
  std::vector<std::string> table_names_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_SAMPLING_H_
