#include "core/catalog.h"

#include <iterator>
#include <limits>

namespace mscm::core {

void GlobalCatalog::Register(const std::string& site, CostModel model) {
  const Key key{site, static_cast<int>(model.class_id())};
  models_.erase(key);
  models_.emplace(key, std::move(model));
}

size_t GlobalCatalog::Unregister(const std::string& site) {
  // Keys sort by site name first, so the site's models form one contiguous
  // range: erase from the first (site, *) key to the first key past it.
  const auto first =
      models_.lower_bound(Key{site, std::numeric_limits<int>::min()});
  auto last = first;
  while (last != models_.end() && last->first.first == site) ++last;
  const size_t removed = static_cast<size_t>(std::distance(first, last));
  models_.erase(first, last);
  return removed;
}

const CostModel* GlobalCatalog::Find(const std::string& site,
                                     QueryClassId class_id) const {
  const auto it = models_.find(Key{site, static_cast<int>(class_id)});
  return it == models_.end() ? nullptr : &it->second;
}

const CompiledEquations* GlobalCatalog::FindCompiled(
    const std::string& site, QueryClassId class_id) const {
  const CostModel* model = Find(site, class_id);
  return model == nullptr ? nullptr : &model->compiled();
}

std::optional<CostModel> GlobalCatalog::FindCopy(const std::string& site,
                                                 QueryClassId class_id) const {
  const CostModel* model = Find(site, class_id);
  if (model == nullptr) return std::nullopt;
  return *model;
}

std::vector<std::pair<std::string, QueryClassId>> GlobalCatalog::Entries()
    const {
  std::vector<std::pair<std::string, QueryClassId>> out;
  out.reserve(models_.size());
  for (const auto& [key, _] : models_) {
    out.emplace_back(key.first, static_cast<QueryClassId>(key.second));
  }
  return out;
}

}  // namespace mscm::core
