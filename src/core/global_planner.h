// Global query planning against the catalog: the reason local cost models
// exist at all. Given the candidate placements of a component query —
// (site, query class, explanatory features, current probing cost at that
// site) — pick the placement with the lowest estimated local cost.

#ifndef MSCM_CORE_GLOBAL_PLANNER_H_
#define MSCM_CORE_GLOBAL_PLANNER_H_

#include <string>
#include <vector>

#include "core/catalog.h"

namespace mscm::core {

struct ComponentQueryCandidate {
  std::string site;
  QueryClassId class_id = QueryClassId::kUnarySeqScan;
  std::vector<double> features;
  // Current probing cost at the site (observed, or estimated via Eq. 2).
  double probing_cost = 0.0;
  // Estimated time to ship the component result back to the global site
  // over the current network-link conditions (0 when co-located). See
  // sim::NetworkLink for the dynamic-link substrate.
  double shipping_seconds = 0.0;
};

struct PlacementDecision {
  // Index into the candidate list; -1 if no candidate had a model.
  int chosen = -1;
  // Estimated cost per candidate (infinity where no model exists).
  std::vector<double> estimates;
};

PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates);

}  // namespace mscm::core

#endif  // MSCM_CORE_GLOBAL_PLANNER_H_
