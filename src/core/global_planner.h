// Global query planning against the catalog: the reason local cost models
// exist at all. Given the candidate placements of a component query —
// (site, query class, explanatory features, current probing cost at that
// site) — pick the placement with the lowest estimated local cost.
//
// Two rankings are served (see cost_distribution.h):
//   - kPointEstimate: argmin over point estimate + shipping, the paper's
//     original rule and the default (bit-compatible with the legacy
//     overload), and
//   - kExpectedCost / kRiskAdjusted: argmin over PlacementScore of the
//     served cost *distribution* (soft state membership near partition
//     boundaries + per-state prediction intervals), which separates
//     placements a point estimate cannot when the probing cost sits near a
//     state boundary.

#ifndef MSCM_CORE_GLOBAL_PLANNER_H_
#define MSCM_CORE_GLOBAL_PLANNER_H_

#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/cost_distribution.h"

namespace mscm::core {

struct ComponentQueryCandidate {
  std::string site;
  QueryClassId class_id = QueryClassId::kUnarySeqScan;
  std::vector<double> features;
  // Current probing cost at the site (observed, or estimated via Eq. 2).
  double probing_cost = 0.0;
  // Estimated time to ship the component result back to the global site
  // over the current network-link conditions (0 when co-located). See
  // sim::NetworkLink for the dynamic-link substrate.
  double shipping_seconds = 0.0;
};

struct PlacementDecision {
  // Index into the candidate list; -1 if no candidate had a model (or every
  // candidate carried non-finite inputs).
  int chosen = -1;
  // Point estimate + shipping per candidate (infinity where no model exists
  // or the candidate's inputs are non-finite — such candidates are never
  // chosen).
  std::vector<double> estimates;
  // Served cost distribution per candidate (zeroed where no model exists).
  std::vector<CostDistribution> distributions;
  // Ranking score per candidate under the requested policy (infinity where
  // unservable). chosen is the argmin of this vector.
  std::vector<double> scores;
};

// Ranks candidates under `ranking`. With the default PlacementRanking
// (kPointEstimate) the chosen index and `estimates` match the legacy
// overload exactly.
PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates,
    const PlacementRanking& ranking);

// Legacy point-estimate ranking (delegates to the overload above).
PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates);

}  // namespace mscm::core

#endif  // MSCM_CORE_GLOBAL_PLANNER_H_
