// Probing-cost estimation (paper §3.3, Eq. 2): instead of executing the
// probing query every time a contention state must be determined, fit a
// regression of the probing cost on the system statistics the environment
// monitor exposes (CPU load, I/O utilization, memory use, …), then estimate.
// Reading counters is cheaper than running even a small query; the price is
// some estimation error.

#ifndef MSCM_CORE_PROBING_ESTIMATOR_H_
#define MSCM_CORE_PROBING_ESTIMATOR_H_

#include <string>
#include <vector>

#include "sim/system_monitor.h"
#include "stats/ols.h"

namespace mscm::core {

class ProbingCostEstimator {
 public:
  // Fixed candidate-parameter vector extracted from a stats snapshot
  // (order matches StatNames()).
  static std::vector<double> StatFeatures(const sim::SystemStats& stats);
  static const std::vector<std::string>& StatNames();

  // Estimated probing cost for the given monitor snapshot.
  double Estimate(const sim::SystemStats& stats) const;

  // Candidate stats that survived the significance screen.
  const std::vector<int>& selected_stats() const { return selected_; }
  double r_squared() const { return fit_.r_squared; }
  double standard_error() const { return fit_.standard_error; }

  std::string ToString() const;

  // Fits the estimator from paired (snapshot, observed probing cost)
  // samples. Insignificant parameters (|t| below `t_threshold`) are removed
  // one at a time, weakest first — the "standard statistical procedure" the
  // paper references for determining the significant parameters.
  static ProbingCostEstimator Fit(const std::vector<sim::SystemStats>& stats,
                                  const std::vector<double>& probing_costs,
                                  double t_threshold = 2.0);

 private:
  ProbingCostEstimator(std::vector<int> selected, stats::OlsResult fit)
      : selected_(std::move(selected)), fit_(std::move(fit)) {}

  std::vector<int> selected_;
  stats::OlsResult fit_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_PROBING_ESTIMATOR_H_
