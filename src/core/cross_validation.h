// K-fold cross-validation for qualitative cost models: an out-of-sample
// complement to the in-sample R²/SEE/F statistics — useful when deciding
// whether a more complex model (more states, more variables) genuinely
// generalizes or merely fits the training sample.

#ifndef MSCM_CORE_CROSS_VALIDATION_H_
#define MSCM_CORE_CROSS_VALIDATION_H_

#include "common/rng.h"
#include "core/cost_model.h"
#include "core/validation.h"

namespace mscm::core {

struct CrossValidationReport {
  int folds = 0;
  // Averages over held-out folds.
  double mean_rmse = 0.0;
  double pct_very_good = 0.0;
  double pct_good = 0.0;
  double mean_relative_error = 0.0;
};

// Shuffles the observations into `folds` parts; fits on folds-1 parts with
// the given (fixed) selection/states/form and validates on the held-out
// part. Requires folds >= 2 and enough observations that every training
// split can support the design matrix.
CrossValidationReport CrossValidate(QueryClassId class_id,
                                    const ObservationSet& observations,
                                    const std::vector<int>& selected,
                                    const ContentionStates& states,
                                    QualitativeForm form, int folds,
                                    Rng& rng);

}  // namespace mscm::core

#endif  // MSCM_CORE_CROSS_VALIDATION_H_
