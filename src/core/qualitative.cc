#include "core/qualitative.h"

#include "common/check.h"

namespace mscm::core {

const char* ToString(QualitativeForm form) {
  switch (form) {
    case QualitativeForm::kCoincident:
      return "coincident";
    case QualitativeForm::kParallel:
      return "parallel";
    case QualitativeForm::kConcurrent:
      return "concurrent";
    case QualitativeForm::kGeneral:
      return "general";
  }
  return "?";
}

DesignLayout DesignLayout::Make(int num_selected, QualitativeForm form,
                                int num_states) {
  MSCM_CHECK(num_selected >= 0 && num_states >= 1);
  std::vector<DesignTerm> terms;

  const bool intercept_per_state =
      num_states > 1 && (form == QualitativeForm::kParallel ||
                         form == QualitativeForm::kGeneral);
  const bool slopes_per_state =
      num_states > 1 && (form == QualitativeForm::kConcurrent ||
                         form == QualitativeForm::kGeneral);

  if (intercept_per_state) {
    for (int s = 0; s < num_states; ++s) terms.push_back({-1, s});
  } else {
    terms.push_back({-1, -1});
  }
  for (int v = 0; v < num_selected; ++v) {
    if (slopes_per_state) {
      for (int s = 0; s < num_states; ++s) terms.push_back({v, s});
    } else {
      terms.push_back({v, -1});
    }
  }
  return DesignLayout(std::move(terms), form, num_states, num_selected);
}

std::vector<double> DesignLayout::Row(
    const std::vector<double>& selected_values, int state) const {
  MSCM_CHECK(selected_values.size() ==
             static_cast<size_t>(num_selected_));
  MSCM_CHECK(state >= 0 && state < num_states_);
  std::vector<double> row(terms_.size(), 0.0);
  for (size_t c = 0; c < terms_.size(); ++c) {
    const DesignTerm& t = terms_[c];
    if (t.state != -1 && t.state != state) continue;
    row[c] = (t.variable == -1)
                 ? 1.0
                 : selected_values[static_cast<size_t>(t.variable)];
  }
  return row;
}

int DesignLayout::ColumnOf(int variable, int state) const {
  for (size_t c = 0; c < terms_.size(); ++c) {
    const DesignTerm& t = terms_[c];
    if (t.variable != variable) continue;
    if (t.state == -1 || t.state == state) return static_cast<int>(c);
  }
  return -1;
}

std::vector<double> SelectValues(const std::vector<double>& features,
                                 const std::vector<int>& selected) {
  std::vector<double> out;
  out.reserve(selected.size());
  for (int idx : selected) {
    MSCM_CHECK(idx >= 0 && static_cast<size_t>(idx) < features.size());
    out.push_back(features[static_cast<size_t>(idx)]);
  }
  return out;
}

stats::Matrix BuildDesignMatrix(const ObservationSet& observations,
                                const std::vector<int>& selected,
                                const ContentionStates& states,
                                const DesignLayout& layout) {
  MSCM_CHECK(layout.num_states() == states.num_states());
  stats::Matrix x(observations.size(), layout.num_columns());
  for (size_t r = 0; r < observations.size(); ++r) {
    const Observation& obs = observations[r];
    const std::vector<double> row = layout.Row(
        SelectValues(obs.features, selected), states.StateOf(obs.probing_cost));
    for (size_t c = 0; c < row.size(); ++c) x(r, c) = row[c];
  }
  return x;
}

std::vector<double> ResponseVector(const ObservationSet& observations) {
  std::vector<double> y;
  y.reserve(observations.size());
  for (const Observation& obs : observations) y.push_back(obs.cost);
  return y;
}

}  // namespace mscm::core
