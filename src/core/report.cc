#include "core/report.h"

#include <algorithm>

#include "common/str_util.h"

namespace mscm::core {
namespace {

std::string NameList(const VariableSet& variables,
                     const std::vector<int>& indices) {
  if (indices.empty()) return "(none)";
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (int v : indices) {
    names.push_back(variables.name(static_cast<size_t>(v)));
  }
  return Join(names, "; ");
}

}  // namespace

std::string RenderBuildReport(const BuildReport& report) {
  const VariableSet variables =
      VariableSet::ForClass(report.model.class_id());

  double probe_lo = 0.0;
  double probe_hi = 0.0;
  if (!report.training.empty()) {
    probe_lo = probe_hi = report.training.front().probing_cost;
    for (const Observation& o : report.training) {
      probe_lo = std::min(probe_lo, o.probing_cost);
      probe_hi = std::max(probe_hi, o.probing_cost);
    }
  }

  std::string out;
  out += Format("=== cost-model derivation report: class %s ===\n",
                Label(report.model.class_id()));
  out += Format("training sample : %zu observations, probing costs in "
                "[%.3f, %.3f] s\n",
                report.training.size(), probe_lo, probe_hi);
  out += Format("state search    : %d growth iteration(s), %d merge(s), "
                "settled on %d state(s)\n",
                report.growth_iterations, report.merges,
                report.model.states().num_states());
  if (report.r2_by_state_count.size() > 1) {
    std::vector<std::string> series;
    for (double r2 : report.r2_by_state_count) {
      series.push_back(Format("%.3f", r2));
    }
    out += Format("R^2 by tried m  : %s\n", Join(series, ", ").c_str());
  }
  out += Format("selected vars   : %s\n",
                NameList(variables, report.model.selected_variables())
                    .c_str());
  if (!report.selection_trace.screened_out.empty()) {
    out += Format("screened out    : %s\n",
                  NameList(variables, report.selection_trace.screened_out)
                      .c_str());
  }
  if (!report.selection_trace.removed_backward.empty()) {
    out += Format("removed backward: %s\n",
                  NameList(variables,
                           report.selection_trace.removed_backward)
                      .c_str());
  }
  if (!report.selection_trace.added_forward.empty()) {
    out += Format("added forward   : %s\n",
                  NameList(variables, report.selection_trace.added_forward)
                      .c_str());
  }
  if (!report.selection_trace.rejected_vif.empty()) {
    out += Format("rejected by VIF : %s\n",
                  NameList(variables, report.selection_trace.rejected_vif)
                      .c_str());
  }
  out += report.model.ToString(variables);
  return out;
}

}  // namespace mscm::core
