// A sample observation: the explanatory-variable values and observed cost of
// one sample query, together with the cost of the probing query measured in
// the same environment ("sampled probing query costs", paper §3.3).

#ifndef MSCM_CORE_OBSERVATION_H_
#define MSCM_CORE_OBSERVATION_H_

#include <vector>

namespace mscm::core {

struct Observation {
  // One value per variable in the class's VariableSet.
  std::vector<double> features;
  // Observed elapsed cost of the sample query (seconds).
  double cost = 0.0;
  // Observed (or estimated) probing-query cost at the same contention point.
  double probing_cost = 0.0;
};

using ObservationSet = std::vector<Observation>;

}  // namespace mscm::core

#endif  // MSCM_CORE_OBSERVATION_H_
