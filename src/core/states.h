// Discrete system contention states over the probing-query cost range
// (paper §3.3). A ContentionStates partition maps an observed probing cost
// to a state index; state 0 is the lowest-contention state. The paper
// numbers states in the opposite direction ("high contention" = state 1),
// which is purely cosmetic.

#ifndef MSCM_CORE_STATES_H_
#define MSCM_CORE_STATES_H_

#include <string>
#include <vector>

#include "cluster/hierarchical.h"

namespace mscm::core {

class ContentionStates {
 public:
  // A single all-covering state (the static method's special case).
  static ContentionStates Single();

  // Uniform partition of [cmin, cmax] into m equal-width subranges.
  static ContentionStates UniformPartition(double cmin, double cmax, int m);

  // Partition with explicit internal boundaries (ascending). Used when
  // reconstructing a persisted model.
  static ContentionStates FromBoundaries(std::vector<double> boundaries);

  // Partition induced by probing-cost clusters: the boundary between two
  // adjacent clusters is the midpoint between the left cluster's max and the
  // right cluster's min (clusters must be sorted by centroid, as
  // AgglomerativeCluster1D returns them).
  static ContentionStates FromClusters(
      const std::vector<cluster::Cluster>& clusters);

  int num_states() const { return static_cast<int>(boundaries_.size()) + 1; }

  // State of a probing cost: index i such that
  // boundaries[i-1] < cost <= boundaries[i] (ends open to ±infinity, so any
  // cost — including ones outside the training range — maps to a state).
  int StateOf(double probing_cost) const;

  // Merges states s and s+1 (paper's "merging adjustment").
  void MergeAdjacent(int s);

  // Internal boundaries, ascending (size num_states()-1).
  const std::vector<double>& boundaries() const { return boundaries_; }

  std::string ToString() const;

 private:
  explicit ContentionStates(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)) {}

  std::vector<double> boundaries_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_STATES_H_
