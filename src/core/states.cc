#include "core/states.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace mscm::core {

ContentionStates ContentionStates::Single() { return ContentionStates({}); }

ContentionStates ContentionStates::UniformPartition(double cmin, double cmax,
                                                    int m) {
  MSCM_CHECK(m >= 1);
  MSCM_CHECK(cmax >= cmin);
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<size_t>(m - 1));
  const double width = (cmax - cmin) / static_cast<double>(m);
  for (int i = 1; i < m; ++i) {
    boundaries.push_back(cmin + width * static_cast<double>(i));
  }
  return ContentionStates(std::move(boundaries));
}

ContentionStates ContentionStates::FromBoundaries(
    std::vector<double> boundaries) {
  MSCM_CHECK(std::is_sorted(boundaries.begin(), boundaries.end()));
  return ContentionStates(std::move(boundaries));
}

ContentionStates ContentionStates::FromClusters(
    const std::vector<cluster::Cluster>& clusters) {
  MSCM_CHECK(!clusters.empty());
  std::vector<double> boundaries;
  boundaries.reserve(clusters.size() - 1);
  for (size_t i = 0; i + 1 < clusters.size(); ++i) {
    MSCM_CHECK_MSG(clusters[i].centroid <= clusters[i + 1].centroid,
                   "clusters must be sorted by centroid");
    boundaries.push_back(0.5 * (clusters[i].max + clusters[i + 1].min));
  }
  return ContentionStates(std::move(boundaries));
}

int ContentionStates::StateOf(double probing_cost) const {
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(),
                                   probing_cost);
  return static_cast<int>(it - boundaries_.begin());
}

void ContentionStates::MergeAdjacent(int s) {
  MSCM_CHECK(s >= 0 && s < num_states() - 1);
  boundaries_.erase(boundaries_.begin() + s);
}

std::string ContentionStates::ToString() const {
  if (boundaries_.empty()) return "[single state]";
  std::vector<std::string> parts;
  parts.push_back(Format("(-inf, %.4f]", boundaries_.front()));
  for (size_t i = 0; i + 1 < boundaries_.size(); ++i) {
    parts.push_back(Format("(%.4f, %.4f]", boundaries_[i], boundaries_[i + 1]));
  }
  parts.push_back(Format("(%.4f, +inf)", boundaries_.back()));
  return Join(parts, " ");
}

}  // namespace mscm::core
