// ObservationSource backed by a live local site: each draw jumps the load
// builder to a fresh contention point from the environment's distribution,
// measures the probing query, then runs a freshly-sampled query of the
// target class — producing one (features, cost, probing cost) observation,
// exactly the sampling procedure of paper §4.1.

#ifndef MSCM_CORE_AGENT_SOURCE_H_
#define MSCM_CORE_AGENT_SOURCE_H_

#include <optional>

#include "core/observation_source.h"
#include "core/sampling.h"
#include "mdbs/local_dbs.h"

namespace mscm::core {

class AgentObservationSource : public ObservationSource {
 public:
  AgentObservationSource(mdbs::LocalDbs* site, QueryClassId class_id,
                         uint64_t seed);

  Observation Draw() override;

  // Observes probe + sample query at the *current* contention point without
  // resampling the load — for callers that have already positioned the
  // environment (e.g. right after taking a monitor snapshot).
  Observation DrawAtCurrentLoad();

  // Rejection sampling plus a bisection fallback on the load builder's
  // process count (probing cost is monotone in the contention level in
  // expectation, so bisection homes in on the requested subrange).
  std::optional<Observation> DrawInProbingRange(double lo, double hi,
                                                int max_attempts) override;

 private:
  // Runs probe + sample query at the current contention point.
  Observation ObserveHere(double probing_cost);

  mdbs::LocalDbs* site_;
  QueryClassId class_id_;
  QuerySampler sampler_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_AGENT_SOURCE_H_
