// Contention-state determination (paper §3.3).
//
// IUPMA — Iterative Uniform Partition with Merging Adjustment
// (Algorithm 3.1): grow the number of uniform probing-cost subranges while
// the qualitative regression keeps improving materially; then merge adjacent
// states whose adjusted coefficients differ too little to matter.
//
// ICMA — Iterative Clustering with Merging Adjustment: identical loop, but
// each candidate partition comes from agglomerative (centroid-linkage)
// clustering of the sampled probing costs, so boundaries follow the actual
// contention-level distribution. When a cluster holds too few observations
// for regression, additional sample queries are drawn inside its subrange
// (via the observation source) instead of discarding the cluster.

#ifndef MSCM_CORE_STATE_DETERMINATION_H_
#define MSCM_CORE_STATE_DETERMINATION_H_

#include <vector>

#include "core/cost_model.h"
#include "core/observation_source.h"

namespace mscm::core {

struct StateDeterminationOptions {
  int max_states = 8;
  // Growth stops when the R^2 gain and the relative SEE improvement of the
  // next partition both fall below these thresholds.
  double r2_gain_epsilon = 0.005;
  double see_gain_epsilon = 0.03;
  // Adjacent states merge when the maximum relative difference across their
  // adjusted coefficients is below this.
  double merge_threshold = 0.10;
  // Minimum observations per state; 0 = automatic (terms per state + 3,
  // at least 6).
  int min_observations_per_state = 0;
  QualitativeForm form = QualitativeForm::kGeneral;
};

struct StateDeterminationResult {
  CostModel model;
  int growth_iterations = 0;
  int merges = 0;
  // R^2 of the best model at each tried state count (index 0 = one state),
  // recorded for the states-sweep ablation.
  std::vector<double> r2_by_state_count;
};

// Observations per state under a candidate partition.
std::vector<int> StateCounts(const ObservationSet& observations,
                             const ContentionStates& states);

// Algorithm 3.1. `observations` are the sampled queries with their probing
// costs; `selected` indexes the quantitative variables to include.
StateDeterminationResult DetermineStatesIupma(
    QueryClassId class_id, const ObservationSet& observations,
    const std::vector<int>& selected, const StateDeterminationOptions& options);

// Clustering-based variant. May append targeted observations to
// `observations` when `source` is non-null and a cluster is undersampled.
StateDeterminationResult DetermineStatesIcma(
    QueryClassId class_id, ObservationSet& observations,
    const std::vector<int>& selected, const StateDeterminationOptions& options,
    ObservationSource* source);

}  // namespace mscm::core

#endif  // MSCM_CORE_STATE_DETERMINATION_H_
