#include "core/cost_distribution.h"

namespace mscm::core {

const char* ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kPointEstimate:
      return "point-estimate";
    case PlacementPolicy::kExpectedCost:
      return "expected-cost";
    case PlacementPolicy::kRiskAdjusted:
      return "risk-adjusted";
  }
  return "?";
}

double PlacementScore(const PlacementRanking& ranking,
                      const CostDistribution& distribution,
                      double point_estimate, double shipping_seconds) {
  if (ranking.policy == PlacementPolicy::kPointEstimate) {
    return point_estimate + shipping_seconds;
  }
  const double width = distribution.width();
  double width_eff = width;
  if (distribution.stale) width_eff *= ranking.stale_width_factor;
  if (distribution.degraded) width_eff *= ranking.degraded_width_factor;
  // Widening is one-sided distrust: half of the extra width lands on the
  // mean, so a stale/degraded candidate cannot win on its point value alone.
  double score =
      distribution.mean + 0.5 * (width_eff - width) + shipping_seconds;
  if (ranking.policy == PlacementPolicy::kRiskAdjusted) {
    score += ranking.risk_lambda * width_eff;
  }
  return score;
}

}  // namespace mscm::core
