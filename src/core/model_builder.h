// End-to-end cost-model development pipeline (paper §4): draw a sample of
// queries of the target class, determine contention states (IUPMA/ICMA or
// the single-state static special case), run the mixed backward/forward
// variable selection, and fit the final qualitative regression model.

#ifndef MSCM_CORE_MODEL_BUILDER_H_
#define MSCM_CORE_MODEL_BUILDER_H_

#include "core/cost_model.h"
#include "core/observation_source.h"
#include "core/state_determination.h"
#include "core/variable_selection.h"

namespace mscm::core {

enum class StateAlgorithm {
  kSingleState,  // the static query sampling method (one contention state)
  kIupma,
  kIcma,
};

const char* ToString(StateAlgorithm a);

struct ModelBuildOptions {
  StateAlgorithm algorithm = StateAlgorithm::kIupma;
  QualitativeForm form = QualitativeForm::kGeneral;
  StateDeterminationOptions states;
  VariableSelectionOptions selection;
  // 0 = use RecommendedSampleSize (paper Eq. 4).
  int sample_size = 0;
  int expected_max_states = 6;
};

struct BuildReport {
  CostModel model;
  ObservationSet training;
  VariableSelectionTrace selection_trace;
  int growth_iterations = 0;
  int merges = 0;
  std::vector<double> r2_by_state_count;
};

// Draws `n` observations from the source.
ObservationSet DrawObservations(ObservationSource& source, int n);

// Draws `n` observations via ObservationSource::TryDraw. Returns nullopt as
// soon as a draw fails — a source that cannot sample the current environment
// cannot yield a representative set, so partial results are not returned.
std::optional<ObservationSet> TryDrawObservations(ObservationSource& source,
                                                  int n);

// Runs the full pipeline.
BuildReport BuildCostModel(QueryClassId class_id, ObservationSource& source,
                           const ModelBuildOptions& options);

// Pipeline over pre-collected observations (no source; ICMA cannot top up
// undersampled clusters in this mode).
BuildReport BuildCostModelFromObservations(QueryClassId class_id,
                                           ObservationSet observations,
                                           const ModelBuildOptions& options);

}  // namespace mscm::core

#endif  // MSCM_CORE_MODEL_BUILDER_H_
