#include "core/agent_source.h"

#include "core/explanatory.h"

namespace mscm::core {

AgentObservationSource::AgentObservationSource(mdbs::LocalDbs* site,
                                               QueryClassId class_id,
                                               uint64_t seed)
    : site_(site),
      class_id_(class_id),
      sampler_(&site->database(), site->profile().planner, seed) {
  MSCM_CHECK(site_ != nullptr);
}

Observation AgentObservationSource::ObserveHere(double probing_cost) {
  Observation obs;
  obs.probing_cost = probing_cost;
  if (IsJoinClass(class_id_)) {
    const engine::JoinQuery q = sampler_.SampleJoin(class_id_);
    const mdbs::LocalDbs::JoinOutcome out = site_->RunJoin(q);
    obs.features = ExtractJoinFeatures(out.execution);
    obs.cost = out.elapsed_seconds;
  } else {
    const engine::SelectQuery q = sampler_.SampleSelect(class_id_);
    const mdbs::LocalDbs::SelectOutcome out = site_->RunSelect(q);
    obs.features = ExtractUnaryFeatures(out.execution);
    obs.cost = out.elapsed_seconds;
  }
  return obs;
}

Observation AgentObservationSource::Draw() {
  site_->ResampleLoad();
  const double probing_cost = site_->RunProbingQuery();
  return ObserveHere(probing_cost);
}

Observation AgentObservationSource::DrawAtCurrentLoad() {
  return ObserveHere(site_->RunProbingQuery());
}

std::optional<Observation> AgentObservationSource::DrawInProbingRange(
    double lo, double hi, int max_attempts) {
  MSCM_CHECK(lo <= hi);

  // Phase 1: rejection sampling from the environment's own distribution.
  const int rejection_attempts = std::max(1, max_attempts / 2);
  for (int i = 0; i < rejection_attempts; ++i) {
    site_->ResampleLoad();
    const double probe = site_->RunProbingQuery();
    if (probe >= lo && probe <= hi) return ObserveHere(probe);
  }

  // Phase 2: bisection on the process count toward the subrange midpoint.
  const auto& cfg = site_->database();  // silence unused warning path
  (void)cfg;
  double p_lo = 0.0;
  double p_hi = 200.0;
  const double target = 0.5 * (lo + hi);
  for (int i = 0; i < std::max(1, max_attempts - rejection_attempts); ++i) {
    const double mid = 0.5 * (p_lo + p_hi);
    site_->SetLoadProcesses(mid);
    const double probe = site_->RunProbingQuery();
    if (probe >= lo && probe <= hi) return ObserveHere(probe);
    if (probe < target) {
      p_lo = mid;
    } else {
      p_hi = mid;
    }
  }
  return std::nullopt;
}

}  // namespace mscm::core
