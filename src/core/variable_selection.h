// Mixed backward/forward variable selection for qualitative regression cost
// models (paper §4.2):
//
//  * screening — any variable whose maximum per-state simple correlation
//    with the response is too small has no linear relationship with cost in
//    any state and is dropped from consideration;
//  * backward elimination — starting from the full basic model, repeatedly
//    remove the variable with the smallest average per-state correlation
//    with cost, provided removal improves (or barely affects) the standard
//    error of estimation;
//  * forward selection — add the secondary variable with the largest average
//    per-state correlation with the current residuals, provided it
//    materially improves the standard error and does not introduce
//    multicollinearity (per-state VIF screen, §4.3).

#ifndef MSCM_CORE_VARIABLE_SELECTION_H_
#define MSCM_CORE_VARIABLE_SELECTION_H_

#include <vector>

#include "core/explanatory.h"
#include "core/observation.h"
#include "core/qualitative.h"
#include "core/states.h"

namespace mscm::core {

struct VariableSelectionOptions {
  // Screening threshold on max_j |corr_j(x_v, y)|.
  double min_max_abs_correlation = 0.05;
  // Backward: remove when SEE_reduced <= SEE * (1 + epsilon).
  double backward_see_epsilon = 0.02;
  // Forward: add when (SEE - SEE_augmented) / SEE > epsilon.
  double forward_see_epsilon = 0.03;
  // Per-state variance-inflation-factor limit for new variables.
  double vif_limit = 10.0;
  QualitativeForm form = QualitativeForm::kGeneral;
};

struct VariableSelectionTrace {
  std::vector<int> screened_out;
  std::vector<int> removed_backward;
  std::vector<int> added_forward;
  std::vector<int> rejected_vif;
};

// Returns the indices (into `variables`) of the selected explanatory
// variables, in stable order. `trace` (optional) records the decisions.
std::vector<int> SelectVariables(QueryClassId class_id,
                                 const ObservationSet& observations,
                                 const VariableSet& variables,
                                 const ContentionStates& states,
                                 const VariableSelectionOptions& options,
                                 VariableSelectionTrace* trace = nullptr);

// Average / maximum over states of |corr_j(x_var, target)|, where target is
// taken from `targets` (one value per observation). Exposed for testing.
double AverageStateCorrelation(const ObservationSet& observations,
                               const ContentionStates& states, int var,
                               const std::vector<double>& targets);
double MaxStateCorrelation(const ObservationSet& observations,
                           const ContentionStates& states, int var,
                           const std::vector<double>& targets);

// Maximum per-state VIF of `var` against the variables in `against`
// (plus an intercept), over states with enough observations. Exposed for
// testing.
double MaxStateVif(const ObservationSet& observations,
                   const ContentionStates& states, int var,
                   const std::vector<int>& against);

}  // namespace mscm::core

#endif  // MSCM_CORE_VARIABLE_SELECTION_H_
