// The serving form of a derived cost model: the paper's per-state linear
// equations (Table 4) compiled into one flat, state-major coefficient table.
//
// Derivation works on the DesignLayout term list — one column per
// (variable, state) cell, shared columns for coincident/parallel/concurrent
// forms — because that is what OLS fits and what the merging test of
// Algorithm 3.1 inspects. Serving needs none of that structure: "for the
// current time" (§3.1) the optimizer resolves one contention state from the
// probing cost and evaluates one linear equation. CompiledEquations is that
// equation set, materialized once at publication time:
//
//   table_[s * stride .. (s+1) * stride) = (intercept_s, slope_s[0..k-1])
//
// with stride = num_selected + 1, plus the state partition boundaries for
// state lookup and the selected→feature index remap. Whatever qualitative
// form derived the model, compilation resolves shared coefficients into
// every state's row, so evaluation never branches on form or per-term state
// tags: one state lookup, one width check, then a raw dot product over
// num_selected + 1 doubles.
//
// Evaluation is bit-for-bit identical to CostModel::Estimate (the
// derivation-side reference that rebuilds a design row per call): within a
// state, active design columns appear in intercept-then-variables order,
// and skipping a column whose row entry is zero cannot change an IEEE sum.
// tests/compiled_equations_test.cc holds the differential property test.
//
// Instances are immutable after Compile() and safe to share across threads.

#ifndef MSCM_CORE_COMPILED_EQUATIONS_H_
#define MSCM_CORE_COMPILED_EQUATIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/cost_distribution.h"
#include "core/qualitative.h"
#include "core/states.h"
#include "stats/ols.h"

namespace mscm::core {

class CompiledEquations {
 public:
  // Compiles the fitted artifact (selection + partition + layout +
  // coefficients) into the serving table. Validates the whole remap once —
  // every selected feature index, every (variable, state) coefficient
  // column — so per-estimate evaluation carries no per-term checks.
  static CompiledEquations Compile(const std::vector<int>& selected,
                                   const ContentionStates& states,
                                   const DesignLayout& layout,
                                   const std::vector<double>& coefficients);

  // As above, and additionally compiles the fit's prediction-interval
  // structure when it is available ((X'X)^{-1} present, positive residual
  // degrees of freedom): per state, the (1 + num_selected)^2 submatrix of
  // (X'X)^{-1} over the state's active design columns, plus the SEE and the
  // Student-t quantile for 95% intervals — everything
  // IntervalHalfWidthInState needs without touching the DesignLayout per
  // call. A fit without the structure compiles fine; has_intervals() is then
  // false and distributions carry only between-state spread.
  static CompiledEquations Compile(const std::vector<int>& selected,
                                   const ContentionStates& states,
                                   const DesignLayout& layout,
                                   const stats::OlsResult& fit);

  // A copy of `base` with the given per-state coefficient rows replaced and
  // `generation` stamped — the adaptation swap path. Each replacement row
  // has stride (= num_selected + 1) doubles in (intercept, slopes) order;
  // states not in `rows` keep the base rows bit for bit, so estimate-cache
  // entries for untouched states stay value-correct across the swap. The
  // interval structure is kept as-is: RLS adaptation moves the point
  // equations, while prediction intervals continue to describe the last
  // full (slow-path) fit.
  static CompiledEquations WithAdaptedRows(
      const CompiledEquations& base,
      const std::map<int, std::vector<double>>& rows, uint64_t generation);

  // Which model produced an estimate: 0 for a freshly derived model, +1 per
  // adaptation swap. Stamped through EstimateResponse so feedback pairs are
  // credited to the generation that actually served them.
  uint64_t generation() const { return generation_; }

  int num_states() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  size_t num_selected() const { return selected_.size(); }

  // Minimum feature-vector width an estimate request must supply
  // (max selected feature index + 1).
  size_t min_features() const { return min_features_; }

  // Contention state of a probing cost — identical partition semantics to
  // ContentionStates::StateOf (ends open to ±infinity).
  int StateOf(double probing_cost) const {
    int state = 0;
    const int n = static_cast<int>(boundaries_.size());
    while (state < n && boundaries_[state] < probing_cost) ++state;
    return state;
  }

  // Validates the feature-vector width once per request; aborts with a
  // clear diagnostic on a short vector instead of faulting mid-loop.
  void CheckFeatureWidth(const std::vector<double>& features) const {
    MSCM_CHECK_MSG(features.size() >= min_features_,
                   "feature vector shorter than the compiled model's "
                   "selected-variable remap");
  }

  // Full serving evaluation: width check, state lookup, dot product,
  // negative clamp. Matches CostModel::Estimate bit for bit.
  double Evaluate(const std::vector<double>& features,
                  double probing_cost) const {
    CheckFeatureWidth(features);
    return EvaluateInState(features.data(), StateOf(probing_cost));
  }

  // The inner hot loop, for callers that resolved the state and validated
  // the width already (batched serving does both once per block):
  //   y = row[0] + sum_j row[j + 1] * features[selected[j]].
  double EvaluateInState(const double* features, int state) const {
    MSCM_DCHECK(state >= 0 && state < num_states());
    const double* row = &table_[static_cast<size_t>(state) * stride_];
    double y = row[0];
    for (size_t j = 0; j < selected_.size(); ++j) {
      y += row[j + 1] * features[static_cast<size_t>(selected_[j])];
    }
    // Exactly std::max(0.0, y), matching the reference path's clamp
    // (including for NaN) without pulling <algorithm> into the hot header.
    return 0.0 < y ? y : 0.0;
  }

  // Packs one request's selected features into `dst[0..num_selected)` in
  // slope order — the gather that turns arbitrary feature vectors into the
  // contiguous rows EvaluateRowsInState streams over. `features` must have
  // passed CheckFeatureWidth.
  void GatherSelected(const double* features, double* dst) const {
    for (size_t j = 0; j < selected_.size(); ++j) {
      dst[j] = features[static_cast<size_t>(selected_[j])];
    }
  }

  // Grouped serving evaluation: `packed` holds n gathered rows (see
  // GatherSelected), row-major n x num_selected, all resolved to the same
  // contention state; writes n estimates to `out`. The coefficient row is
  // pinned once and every load is unit-stride, so the compiler can keep
  // slopes in registers and vectorize — this is the batch hot loop when
  // EstimateBatch groups items by state. Accumulation order and the
  // negative clamp are exactly EvaluateInState's (same additions, same
  // order, no FMA contraction the scalar path wouldn't do), so results are
  // bit-for-bit identical to evaluating each row alone.
  void EvaluateRowsInState(int state, const double* packed, size_t n,
                           double* out) const {
    MSCM_DCHECK(state >= 0 && state < num_states());
    const double* row = &table_[static_cast<size_t>(state) * stride_];
    const size_t k = selected_.size();
    for (size_t i = 0; i < n; ++i) {
      const double* f = packed + i * k;
      double y = row[0];
      for (size_t j = 0; j < k; ++j) {
        y += row[j + 1] * f[j];
      }
      out[i] = 0.0 < y ? y : 0.0;
    }
  }

  // The state's row: (intercept, slope[0..num_selected-1]), contiguous.
  const double* row(int state) const {
    MSCM_DCHECK(state >= 0 && state < num_states());
    return &table_[static_cast<size_t>(state) * stride_];
  }

  // The state's partition interval (lo, hi], ±infinity at the ends — what
  // the runtime estimate cache revalidates published probing costs against.
  void StateInterval(int state, double* lo, double* hi) const;

  // Whether the prediction-interval structure was compiled in (see the
  // OlsResult Compile overload).
  bool has_intervals() const { return has_intervals_; }

  // Half-width of the 95% prediction interval for a *new* observation
  // evaluated in `state`: t * s * sqrt(1 + z' M_s z) with z = (1, gathered)
  // and M_s the state's compiled (X'X)^{-1} submatrix. `gathered` holds the
  // selected feature values in slope order (see GatherSelected). Matches
  // CostModel::EstimateWithInterval's half-width (alpha = 0.05) to floating-
  // point reassociation. Returns 0 when has_intervals() is false.
  double IntervalHalfWidthInState(const double* gathered, int state) const;

  // The served cost distribution for one request (see cost_distribution.h):
  // resolves the probing cost to a state, blends in the adjacent state when
  // the cost sits within band_fraction * |boundary| of a partition boundary
  // (soft membership, weight ramping linearly from 0.5 at the boundary to 0
  // at the band edge), and combines the member states' means and prediction
  // half-widths into mixture moments:
  //   mean = sum_i w_i m_i
  //   half = sqrt(sum_i w_i (h_i^2 + (m_i - mean)^2))
  //   [low, high] = [max(0, mean - half), mean + half]
  // Continuous in the probing cost everywhere (at the band edge the
  // neighbor's weight reaches 0), and away from any band it degenerates to
  // the hard-state evaluation: mean == Evaluate(features, probing_cost).
  // band_fraction <= 0 disables blending. stale/degraded are left for the
  // caller to stamp from the probe reading.
  CostDistribution EvaluateDistribution(const std::vector<double>& features,
                                        double probing_cost,
                                        double band_fraction) const;

  // Feature indices of the selected variables, in slope order.
  const std::vector<int>& selected() const { return selected_; }

  // Internal partition boundaries, ascending (size num_states() - 1).
  const std::vector<double>& boundaries() const { return boundaries_; }

  // Renders the table per state (debugging aid; Table-4 style rendering
  // with variable names lives on CostModel::ToString).
  std::string ToString() const;

 private:
  CompiledEquations(std::vector<double> table, std::vector<double> boundaries,
                    std::vector<int> selected, size_t min_features)
      : stride_(selected.size() + 1),
        min_features_(min_features),
        table_(std::move(table)),
        boundaries_(std::move(boundaries)),
        selected_(std::move(selected)) {}

  size_t stride_;
  size_t min_features_;
  std::vector<double> table_;       // state-major, num_states x stride_
  std::vector<double> boundaries_;  // state partition, ascending
  std::vector<int> selected_;       // slope j reads features[selected_[j]]
  uint64_t generation_ = 0;         // adaptation generation (0 = base fit)

  // Prediction-interval structure (empty / zero unless the OlsResult
  // Compile overload found covariance + degrees of freedom): per state, the
  // stride_ x stride_ submatrix of (X'X)^{-1} over the state's active
  // columns, state-major like table_.
  bool has_intervals_ = false;
  double sigma_ = 0.0;  // SEE of the fit
  double t95_ = 0.0;    // Student-t upper 0.025 quantile at the fit's dof
  std::vector<double> interval_table_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_COMPILED_EQUATIONS_H_
