// Model validation against held-out test queries (paper §5): the fraction
// of "very good" estimates (relative error within 30%) and "good" estimates
// (within a factor of two of the observed cost — "one-time larger or
// smaller"). Estimates off by an order of magnitude are what the paper calls
// unacceptable.

#ifndef MSCM_CORE_VALIDATION_H_
#define MSCM_CORE_VALIDATION_H_

#include <cstddef>

#include "core/cost_model.h"
#include "core/observation.h"

namespace mscm::core {

struct ValidationReport {
  size_t n_test = 0;
  double avg_observed_cost = 0.0;
  // Fraction with |estimate - observed| / observed <= 0.3.
  double pct_very_good = 0.0;
  // Fraction with estimate within [observed/2, observed*2] (includes the
  // very-good estimates).
  double pct_good = 0.0;
  double mean_relative_error = 0.0;
  double rmse = 0.0;
};

// Whether a single estimate is very good / good under the paper's bands.
bool IsVeryGoodEstimate(double estimated, double observed);
bool IsGoodEstimate(double estimated, double observed);

ValidationReport Validate(const CostModel& model, const ObservationSet& test);

}  // namespace mscm::core

#endif  // MSCM_CORE_VALIDATION_H_
