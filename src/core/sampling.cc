#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mscm::core {
namespace {

constexpr int kMaxSampleAttempts = 200;

// Columns with these indexes carry indexes in the generated databases:
// 0 = clustered, 1 and 2 = non-clustered (see engine::GenerateDatabase).
constexpr int kClusteredColumn = 0;
constexpr int kNonClusteredColumns[] = {1, 2};
constexpr int kJoinColumnNoIndex = 4;  // a5: shared 5000-value domain

// Log-uniform draw in [lo, hi].
double LogUniform(Rng& rng, double lo, double hi) {
  MSCM_CHECK(lo > 0.0 && hi >= lo);
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

int MinimumSampleSize(int num_quantitative_vars, int num_states) {
  MSCM_CHECK(num_quantitative_vars >= 0 && num_states >= 1);
  return 10 * ((num_quantitative_vars + 1) * num_states + 1);
}

int RecommendedSampleSize(int num_basic_vars, int expected_max_states) {
  // Expect most basic variables plus up to two secondary ones to survive.
  return MinimumSampleSize(num_basic_vars + 2, expected_max_states);
}

QuerySampler::QuerySampler(const engine::Database* db,
                           engine::PlannerRules rules, uint64_t seed)
    : db_(db), rules_(rules), rng_(seed) {
  MSCM_CHECK(db_ != nullptr);
  for (const std::string& name : db_->TableNames()) {
    if (name == "P0") continue;  // the probing table is not a sampling target
    table_names_.push_back(name);
  }
  MSCM_CHECK_MSG(!table_names_.empty(), "empty database");
}

const engine::Table* QuerySampler::RandomTable() {
  const size_t pick = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(table_names_.size()) - 1));
  const engine::Table* t = db_->FindTable(table_names_[pick]);
  MSCM_CHECK(t != nullptr);
  return t;
}

engine::Condition QuerySampler::RangeCondition(const engine::Table& table,
                                               int column,
                                               double selectivity) {
  const engine::ColumnStats& s =
      table.column_stats(static_cast<size_t>(column));
  const double span = static_cast<double>(s.max - s.min) + 1.0;
  const int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(span * selectivity)));
  const int64_t lo =
      s.min + rng_.UniformInt(0, std::max<int64_t>(0, (s.max - s.min) -
                                                          (width - 1)));
  engine::Condition cond;
  cond.column = column;
  cond.op = engine::CompareOp::kBetween;
  cond.lo = lo;
  cond.hi = lo + width - 1;
  return cond;
}

std::vector<int> QuerySampler::RandomProjection(const engine::Table& table) {
  const int n = static_cast<int>(table.schema().num_columns());
  const int keep = static_cast<int>(rng_.UniformInt(1, n));
  std::vector<int> cols(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) cols[static_cast<size_t>(i)] = i;
  rng_.Shuffle(cols);
  cols.resize(static_cast<size_t>(keep));
  std::sort(cols.begin(), cols.end());
  return cols;
}

engine::SelectQuery QuerySampler::SampleSelect(QueryClassId target) {
  MSCM_CHECK(!IsJoinClass(target));
  for (int attempt = 0; attempt < kMaxSampleAttempts; ++attempt) {
    const engine::Table* table = RandomTable();
    const int num_cols = static_cast<int>(table->schema().num_columns());

    engine::SelectQuery q;
    q.table = table->name();
    q.projection = RandomProjection(*table);

    switch (target) {
      case QueryClassId::kUnarySeqScan: {
        // 1–2 conditions on non-indexed columns only.
        const int conds = static_cast<int>(rng_.UniformInt(1, 2));
        for (int c = 0; c < conds; ++c) {
          const int col =
              static_cast<int>(rng_.UniformInt(3, num_cols - 1));
          if (q.predicate.FindCondition(col) >= 0) continue;
          q.predicate.Add(
              RangeCondition(*table, col, LogUniform(rng_, 0.02, 0.95)));
        }
        break;
      }
      case QueryClassId::kUnaryNonClusteredIndex: {
        const int col = kNonClusteredColumns[rng_.UniformInt(0, 1)];
        const double limit = rules_.nonclustered_selectivity_limit;
        q.predicate.Add(RangeCondition(
            *table, col, LogUniform(rng_, 0.002, 0.85 * limit)));
        if (rng_.Bernoulli(0.5)) {
          const int extra =
              static_cast<int>(rng_.UniformInt(3, num_cols - 1));
          q.predicate.Add(
              RangeCondition(*table, extra, LogUniform(rng_, 0.1, 0.9)));
        }
        break;
      }
      case QueryClassId::kUnaryClusteredIndex: {
        q.predicate.Add(RangeCondition(*table, kClusteredColumn,
                                       LogUniform(rng_, 0.01, 0.9)));
        if (rng_.Bernoulli(0.4)) {
          const int extra =
              static_cast<int>(rng_.UniformInt(3, num_cols - 1));
          q.predicate.Add(
              RangeCondition(*table, extra, LogUniform(rng_, 0.1, 0.9)));
        }
        break;
      }
      default:
        MSCM_CHECK_MSG(false, "not a unary class");
    }

    if (ClassifySelect(*db_, q, rules_) == target) return q;
  }
  MSCM_CHECK_MSG(false, "could not sample a query in the target unary class");
  return {};
}

engine::JoinQuery QuerySampler::SampleJoin(QueryClassId target) {
  MSCM_CHECK(IsJoinClass(target));
  for (int attempt = 0; attempt < kMaxSampleAttempts; ++attempt) {
    const engine::Table* left = RandomTable();
    const engine::Table* right = RandomTable();

    engine::JoinQuery q;
    q.left_table = left->name();
    q.right_table = right->name();

    if (target == QueryClassId::kJoinNoIndex) {
      q.left_column = kJoinColumnNoIndex;
      q.right_column = kJoinColumnNoIndex;
      // Local selections keep the qualified sides moderate so result sizes
      // span a wide range without exploding.
      const int lcol = static_cast<int>(rng_.UniformInt(
          3, static_cast<int64_t>(left->schema().num_columns()) - 1));
      const int rcol = static_cast<int>(rng_.UniformInt(
          3, static_cast<int64_t>(right->schema().num_columns()) - 1));
      q.left_predicate.Add(
          RangeCondition(*left, lcol, LogUniform(rng_, 0.05, 0.7)));
      q.right_predicate.Add(
          RangeCondition(*right, rcol, LogUniform(rng_, 0.05, 0.7)));
    } else {  // kJoinIndex
      // Join into the right table's non-clustered index; keep the outer
      // side selective so the planner picks index nested loop.
      q.left_column = 1;
      q.right_column = 1;
      const double max_outer =
          rules_.index_join_outer_limit *
          static_cast<double>(right->num_rows()) /
          std::max(1.0, static_cast<double>(left->num_rows()));
      const double hi = std::min(0.5, 0.8 * max_outer);
      if (hi <= 0.002) continue;  // incompatible table pair; redraw
      const int lcol = static_cast<int>(rng_.UniformInt(
          3, static_cast<int64_t>(left->schema().num_columns()) - 1));
      q.left_predicate.Add(
          RangeCondition(*left, lcol, LogUniform(rng_, 0.002, hi)));
    }

    // Project a few columns from each side.
    const int lkeep = static_cast<int>(rng_.UniformInt(
        1, static_cast<int64_t>(left->schema().num_columns()) - 1));
    const int rkeep = static_cast<int>(rng_.UniformInt(
        1, static_cast<int64_t>(right->schema().num_columns()) - 1));
    for (int c = 0; c < lkeep; ++c) q.projection.emplace_back(0, c);
    for (int c = 0; c < rkeep; ++c) q.projection.emplace_back(1, c);

    if (ClassifyJoin(*db_, q, rules_) == target) return q;
  }
  MSCM_CHECK_MSG(false, "could not sample a query in the target join class");
  return {};
}

}  // namespace mscm::core
