// Cost-model (de)serialization — the MDBS catalog persists derived model
// parameters between optimizer sessions (paper §1: "the cost model
// parameters are kept in the MDBS catalog and utilized during query
// optimization").
//
// The format is a line-oriented text record:
//
//   mscm-cost-model v1
//   class <int>
//   form <int>
//   states <b1> <b2> …          (internal boundaries; empty for one state)
//   selected <v1> <v2> …
//   coefficients <c1> <c2> …
//   stats <r2> <see> <f> <f_pvalue> <n>
//   xtxinv <p> <m11> <m12> …     (optional: (X'X)^{-1}, row-major p x p)
//   end
//
// Only what estimation and reporting need is persisted; residuals and
// training data are not (they live with the training run, not the catalog).
// The compiled serving form (core::CompiledEquations) is not persisted
// either: it is deterministically reconstructed from the parsed artifact
// when the CostModel is rebuilt on load, so a loaded catalog serves from
// the same flat per-state tables as a freshly derived one. The fit's
// covariance structure ((X'X)^{-1}) IS persisted (the optional `xtxinv`
// line) because prediction intervals — and the cost distributions the
// placement ranker serves — must survive a catalog round-trip:
// EstimateWithInterval and CompiledEquations::has_intervals() work
// identically on a loaded model. Records written without the line still
// parse (intervals then unavailable, as before).

#ifndef MSCM_CORE_MODEL_IO_H_
#define MSCM_CORE_MODEL_IO_H_

#include <optional>
#include <string>

#include "core/catalog.h"
#include "core/cost_model.h"

namespace mscm::core {

std::string SerializeCostModel(const CostModel& model);

// Parses a record produced by SerializeCostModel. Returns nullopt on any
// malformed input (never aborts: catalog files are external data).
std::optional<CostModel> ParseCostModel(const std::string& text);

// Whole-catalog persistence: concatenated `site <name>` + model records.
std::string SerializeCatalog(const GlobalCatalog& catalog);
std::optional<GlobalCatalog> ParseCatalog(const std::string& text);

// File convenience wrappers. Save returns false on I/O failure; Load returns
// nullopt on I/O failure or malformed contents.
bool SaveCatalogToFile(const GlobalCatalog& catalog, const std::string& path);
std::optional<GlobalCatalog> LoadCatalogFromFile(const std::string& path);

}  // namespace mscm::core

#endif  // MSCM_CORE_MODEL_IO_H_
