// The MDBS global catalog: derived cost-model parameters are "kept in the
// MDBS catalog and utilized during query optimization" (paper §1). Keyed by
// (site name, query class).

#ifndef MSCM_CORE_CATALOG_H_
#define MSCM_CORE_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.h"

namespace mscm::core {

class GlobalCatalog {
 public:
  // Registers (or replaces) the model for (site, model.class_id()).
  //
  // Invalidation rule: Register() destroys any previously registered model
  // for the same (site, class) key, so raw pointers obtained from Find() for
  // that key dangle afterwards. Pointers for *other* keys stay valid
  // (std::map nodes are stable), but the safe contract is: do not hold a
  // Find() pointer across any Register() call. Callers that must outlive
  // writes should use FindCopy(), or hold the catalog inside
  // runtime::SnapshotCatalog, whose immutable snapshots make Find() pointers
  // valid for the snapshot's whole lifetime.
  void Register(const std::string& site, CostModel model);

  // Removes every model registered for `site` (all query classes). Returns
  // the number of entries erased (0 = the site had none). The same
  // invalidation rule as Register() applies: Find() pointers for the erased
  // keys dangle afterwards.
  size_t Unregister(const std::string& site);

  // The model for (site, class), or nullptr if none is registered. The
  // pointer is invalidated by a Register() for the same key (see above).
  const CostModel* Find(const std::string& site, QueryClassId class_id) const;

  // The *serving form* for (site, class): the per-state equation table
  // compiled when the model was built (stored alongside the derivation
  // artifact), or nullptr if none is registered. Same invalidation rule as
  // Find(). Estimate-serving callers should consume this, not the model's
  // DesignLayout.
  const CompiledEquations* FindCompiled(const std::string& site,
                                        QueryClassId class_id) const;

  // Value-returning lookup: a copy that cannot dangle, at the price of
  // copying the model (a few hundred doubles). Preferred by concurrent
  // callers that cannot pin a snapshot.
  std::optional<CostModel> FindCopy(const std::string& site,
                                    QueryClassId class_id) const;

  std::vector<std::pair<std::string, QueryClassId>> Entries() const;

  size_t size() const { return models_.size(); }

  // Stable epoch of this catalog's contents. The catalog itself never changes
  // it; a publisher (runtime::SnapshotCatalog) stamps each published snapshot
  // with its version number so downstream caches can key on "which catalog
  // priced this" without holding the snapshot pointer. 0 = never stamped.
  uint64_t revision() const { return revision_; }
  void set_revision(uint64_t revision) { revision_ = revision; }

 private:
  using Key = std::pair<std::string, int>;
  std::map<Key, CostModel> models_;
  uint64_t revision_ = 0;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_CATALOG_H_
