// The MDBS global catalog: derived cost-model parameters are "kept in the
// MDBS catalog and utilized during query optimization" (paper §1). Keyed by
// (site name, query class).

#ifndef MSCM_CORE_CATALOG_H_
#define MSCM_CORE_CATALOG_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.h"

namespace mscm::core {

class GlobalCatalog {
 public:
  // Registers (or replaces) the model for (site, model.class_id()).
  void Register(const std::string& site, CostModel model);

  // The model for (site, class), or nullptr if none is registered.
  const CostModel* Find(const std::string& site, QueryClassId class_id) const;

  std::vector<std::pair<std::string, QueryClassId>> Entries() const;

  size_t size() const { return models_.size(); }

 private:
  using Key = std::pair<std::string, int>;
  std::map<Key, CostModel> models_;
};

}  // namespace mscm::core

#endif  // MSCM_CORE_CATALOG_H_
