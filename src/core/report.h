// Human-readable summary of a model-derivation run: what was sampled, which
// states were found, which variables survived selection (and why others
// fell), and the headline statistics — the audit trail an MDBS operator
// wants before trusting a freshly derived model.

#ifndef MSCM_CORE_REPORT_H_
#define MSCM_CORE_REPORT_H_

#include <string>

#include "core/model_builder.h"

namespace mscm::core {

// Renders a multi-line description of the build. Includes the per-state
// equations (CostModel::ToString), the observation count and probing-cost
// range, the selection trace, and growth/merge counters.
std::string RenderBuildReport(const BuildReport& report);

}  // namespace mscm::core

#endif  // MSCM_CORE_REPORT_H_
