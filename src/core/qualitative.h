// Qualitative-variable regression forms (paper §3.2, Table 2).
//
// A qualitative variable with s states enters the regression through
// indicator variables. The four forms differ in which coefficients are
// allowed to vary by state:
//   coincident — none (the static model);
//   parallel   — intercept only;
//   concurrent — slopes only;
//   general    — intercept and slopes (appropriate for query cost models,
//                since contention affects initialization, I/O and CPU terms
//                alike — §3.2).
//
// Parameterization note: the paper writes per-state terms as a shared
// coefficient plus per-state deltas against a reference state
// (β_i0 + β_ij·I_j). We use the equivalent cell-means parameterization —
// one coefficient per (variable, state) cell — which spans the same model
// space, makes "adjusted coefficients" directly available for the merging
// test, and avoids an arbitrary reference state.

#ifndef MSCM_CORE_QUALITATIVE_H_
#define MSCM_CORE_QUALITATIVE_H_

#include <string>
#include <vector>

#include "core/observation.h"
#include "core/states.h"
#include "stats/matrix.h"

namespace mscm::core {

enum class QualitativeForm {
  kCoincident,
  kParallel,
  kConcurrent,
  kGeneral,
};

const char* ToString(QualitativeForm form);

// One design-matrix column: `variable` is an index into the *selected*
// variable list (-1 for the intercept); `state` is a contention state
// (-1 when the coefficient is shared across states).
struct DesignTerm {
  int variable = -1;
  int state = -1;
};

class DesignLayout {
 public:
  // Layout for `num_selected` quantitative variables under `form` with
  // `num_states` contention states.
  static DesignLayout Make(int num_selected, QualitativeForm form,
                           int num_states);

  const std::vector<DesignTerm>& terms() const { return terms_; }
  size_t num_columns() const { return terms_.size(); }
  QualitativeForm form() const { return form_; }
  int num_states() const { return num_states_; }
  int num_selected() const { return num_selected_; }

  // Builds one design row for the given selected-variable values and state.
  // `selected_values[i]` is the value of selected variable i.
  std::vector<double> Row(const std::vector<double>& selected_values,
                          int state) const;

  // Column index of the term for (variable, state); for shared-coefficient
  // forms, the shared column matches any state. Returns -1 if absent.
  int ColumnOf(int variable, int state) const;

 private:
  DesignLayout(std::vector<DesignTerm> terms, QualitativeForm form,
               int num_states, int num_selected)
      : terms_(std::move(terms)),
        form_(form),
        num_states_(num_states),
        num_selected_(num_selected) {}

  std::vector<DesignTerm> terms_;
  QualitativeForm form_;
  int num_states_;
  int num_selected_;
};

// Values of the selected variables, in selection order.
std::vector<double> SelectValues(const std::vector<double>& features,
                                 const std::vector<int>& selected);

// Builds the full design matrix and response vector for a training set.
stats::Matrix BuildDesignMatrix(const ObservationSet& observations,
                                const std::vector<int>& selected,
                                const ContentionStates& states,
                                const DesignLayout& layout);

std::vector<double> ResponseVector(const ObservationSet& observations);

}  // namespace mscm::core

#endif  // MSCM_CORE_QUALITATIVE_H_
