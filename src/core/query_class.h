// Query classification (paper §4.1): local queries are grouped into
// homogeneous classes by the access method they would most likely be
// performed with, since queries sharing an access method share a performance
// behaviour describable by one cost model. The classifier mirrors the
// engine's rule-based access-path chooser.
//
// The paper's experiments use three representative classes per site:
//   G1 — unary queries without usable indexes (sequential scan),
//   G2 — unary queries with a usable non-clustered index on a range,
//   G3 — join queries without usable indexes.
// The library additionally supports the clustered-index unary class and the
// indexed join class from the underlying static method's taxonomy.

#ifndef MSCM_CORE_QUERY_CLASS_H_
#define MSCM_CORE_QUERY_CLASS_H_

#include "engine/access_path.h"
#include "engine/database.h"
#include "engine/query.h"

namespace mscm::core {

enum class QueryClassId {
  kUnarySeqScan,           // G1
  kUnaryNonClusteredIndex, // G2
  kUnaryClusteredIndex,    // extension of the unary taxonomy
  kJoinNoIndex,            // G3 (hash / sort-merge / nested loop)
  kJoinIndex,              // index nested loop joins
};

const char* ToString(QueryClassId id);

// Short paper-style label: "G1", "G2", "G3", "Gc", "Gj".
const char* Label(QueryClassId id);

bool IsJoinClass(QueryClassId id);

QueryClassId ClassifySelect(const engine::Database& db,
                            const engine::SelectQuery& query,
                            const engine::PlannerRules& rules);

QueryClassId ClassifyJoin(const engine::Database& db,
                          const engine::JoinQuery& query,
                          const engine::PlannerRules& rules);

}  // namespace mscm::core

#endif  // MSCM_CORE_QUERY_CLASS_H_
