#include "core/explanatory.h"

#include <algorithm>
#include <cmath>

namespace mscm::core {
namespace {

constexpr double kKilo = 1e-3;

// Declared output width of a projection, in bytes.
int ProjectedBytes(const engine::Table& table,
                   const std::vector<int>& projection) {
  if (projection.empty()) return table.schema().TupleBytes();
  int bytes = 0;
  for (int c : projection) {
    bytes += table.schema().column(static_cast<size_t>(c)).byte_width;
  }
  return bytes;
}

}  // namespace

VariableSet VariableSet::ForClass(QueryClassId id) {
  if (!IsJoinClass(id)) {
    // Paper Table 3, unary query class.
    return VariableSet({
        {"N_t (operand ktuples)", true},
        {"N_it (intermediate ktuples)", true},
        {"N_rt (result ktuples)", true},
        {"TL_t (operand tuple bytes)", false},
        {"TL_rt (result tuple bytes)", false},
        {"L_t (operand KB)", false},
        {"L_rt (result KB)", false},
    });
  }
  // Paper Table 3, join query class.
  return VariableSet({
      {"N_t1 (left ktuples)", true},
      {"N_t2 (right ktuples)", true},
      {"N_it1 (left qualified ktuples)", true},
      {"N_it2 (right qualified ktuples)", true},
      {"N_rt (result ktuples)", true},
      {"N_it1*N_it2 (Mtuple-pairs)", true},
      {"TL_t1 (left tuple bytes)", false},
      {"TL_t2 (right tuple bytes)", false},
      {"TL_rt (result tuple bytes)", false},
      {"L_t1 (left KB)", false},
      {"L_t2 (right KB)", false},
      {"L_rt (result KB)", false},
  });
}

std::vector<int> VariableSet::BasicIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].basic) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> VariableSet::SecondaryIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (!defs_[i].basic) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<double> ExtractUnaryFeatures(const engine::SelectExecution& exec) {
  const double n_t = static_cast<double>(exec.operand_rows) * kKilo;
  const double n_it = static_cast<double>(exec.intermediate_rows) * kKilo;
  const double n_rt = static_cast<double>(exec.result_rows) * kKilo;
  const double tl_t = static_cast<double>(exec.operand_tuple_bytes);
  const double tl_rt = static_cast<double>(exec.result_tuple_bytes);
  return {
      n_t,
      n_it,
      n_rt,
      tl_t,
      tl_rt,
      n_t * tl_t,        // operand KB: ktuples * bytes == KB
      n_rt * tl_rt,      // result KB
  };
}

std::vector<double> ExtractJoinFeatures(const engine::JoinExecution& exec) {
  const double n_t1 = static_cast<double>(exec.left_rows) * kKilo;
  const double n_t2 = static_cast<double>(exec.right_rows) * kKilo;
  const double n_it1 = static_cast<double>(exec.left_qualified) * kKilo;
  const double n_it2 = static_cast<double>(exec.right_qualified) * kKilo;
  const double n_rt = static_cast<double>(exec.result_rows) * kKilo;
  const double tl_t1 = static_cast<double>(exec.left_tuple_bytes);
  const double tl_t2 = static_cast<double>(exec.right_tuple_bytes);
  const double tl_rt = static_cast<double>(exec.result_tuple_bytes);
  return {
      n_t1,
      n_t2,
      n_it1,
      n_it2,
      n_rt,
      n_it1 * n_it2 * kKilo,  // mega tuple-pairs
      tl_t1,
      tl_t2,
      tl_rt,
      n_t1 * tl_t1,
      n_t2 * tl_t2,
      n_rt * tl_rt,
  };
}

std::vector<double> EstimateUnaryFeatures(const engine::Database& db,
                                          const engine::SelectQuery& query,
                                          const engine::PlannerRules& rules) {
  const engine::Table* table = db.FindTable(query.table);
  MSCM_CHECK(table != nullptr);
  const double rows = static_cast<double>(table->num_rows());

  // Intermediate cardinality: what the chosen access method fetches.
  const engine::SelectPlan plan = engine::ChooseSelectPlan(db, query, rules);
  double intermediate = rows;
  if (plan.driving_condition >= 0) {
    const engine::Condition& driving =
        query.predicate
            .conditions()[static_cast<size_t>(plan.driving_condition)];
    intermediate = rows * engine::EstimateConditionSelectivity(*table, driving);
  }
  const double result =
      rows * engine::EstimatePredicateSelectivity(*table, query.predicate);

  const double n_t = rows * kKilo;
  const double n_it = intermediate * kKilo;
  const double n_rt = result * kKilo;
  const double tl_t = table->schema().TupleBytes();
  const double tl_rt = ProjectedBytes(*table, query.projection);
  return {n_t, n_it, n_rt, tl_t, tl_rt, n_t * tl_t, n_rt * tl_rt};
}

std::vector<double> EstimateJoinFeatures(const engine::Database& db,
                                         const engine::JoinQuery& query,
                                         const engine::PlannerRules& rules) {
  (void)rules;
  const engine::Table* left = db.FindTable(query.left_table);
  const engine::Table* right = db.FindTable(query.right_table);
  MSCM_CHECK(left != nullptr && right != nullptr);

  const double lrows = static_cast<double>(left->num_rows());
  const double rrows = static_cast<double>(right->num_rows());
  const double lqual =
      lrows * engine::EstimatePredicateSelectivity(*left, query.left_predicate);
  const double rqual = rrows * engine::EstimatePredicateSelectivity(
                                   *right, query.right_predicate);

  // Equijoin cardinality estimate: |L'|·|R'| / D. The classical containment
  // formula uses D = max(distinct counts); for sparse uniform join columns
  // (fewer rows than domain values) the value-overlap probability is
  // governed by the domain *span*, so take the largest of both measures.
  const auto& ls = left->column_stats(static_cast<size_t>(query.left_column));
  const auto& rs =
      right->column_stats(static_cast<size_t>(query.right_column));
  const double divisor = std::max(
      {1.0, static_cast<double>(ls.distinct),
       static_cast<double>(rs.distinct),
       static_cast<double>(ls.max - ls.min) + 1.0,
       static_cast<double>(rs.max - rs.min) + 1.0});
  const double result = lqual * rqual / divisor;

  const double tl_t1 = left->schema().TupleBytes();
  const double tl_t2 = right->schema().TupleBytes();
  double tl_rt = tl_t1 + tl_t2;
  if (!query.projection.empty()) {
    int bytes = 0;
    for (auto [side, col] : query.projection) {
      const engine::Table* t = side == 0 ? left : right;
      bytes += t->schema().column(static_cast<size_t>(col)).byte_width;
    }
    tl_rt = bytes;
  }

  const double n_t1 = lrows * kKilo;
  const double n_t2 = rrows * kKilo;
  const double n_it1 = lqual * kKilo;
  const double n_it2 = rqual * kKilo;
  const double n_rt = result * kKilo;
  return {n_t1,
          n_t2,
          n_it1,
          n_it2,
          n_rt,
          n_it1 * n_it2 * kKilo,
          tl_t1,
          tl_t2,
          tl_rt,
          n_t1 * tl_t1,
          n_t2 * tl_t2,
          n_rt * tl_rt};
}

}  // namespace mscm::core
