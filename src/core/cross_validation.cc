#include "core/cross_validation.h"

#include <numeric>

namespace mscm::core {

CrossValidationReport CrossValidate(QueryClassId class_id,
                                    const ObservationSet& observations,
                                    const std::vector<int>& selected,
                                    const ContentionStates& states,
                                    QualitativeForm form, int folds,
                                    Rng& rng) {
  MSCM_CHECK(folds >= 2);
  MSCM_CHECK(observations.size() >= static_cast<size_t>(2 * folds));

  std::vector<size_t> order(observations.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  CrossValidationReport report;
  report.folds = folds;
  for (int f = 0; f < folds; ++f) {
    ObservationSet train;
    ObservationSet held_out;
    for (size_t i = 0; i < order.size(); ++i) {
      const Observation& obs = observations[order[i]];
      if (static_cast<int>(i % static_cast<size_t>(folds)) == f) {
        held_out.push_back(obs);
      } else {
        train.push_back(obs);
      }
    }
    const CostModel model =
        FitCostModel(class_id, train, selected, states, form);
    const ValidationReport v = Validate(model, held_out);
    report.mean_rmse += v.rmse;
    report.pct_very_good += v.pct_very_good;
    report.pct_good += v.pct_good;
    report.mean_relative_error += v.mean_relative_error;
  }
  const double k = static_cast<double>(folds);
  report.mean_rmse /= k;
  report.pct_very_good /= k;
  report.pct_good /= k;
  report.mean_relative_error /= k;
  return report;
}

}  // namespace mscm::core
