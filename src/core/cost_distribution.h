// Distribution-aware serving types for least-expected-cost placement.
//
// The paper's qualitative-state models carry more information than a point
// estimate: each contention state has its own equation and its own
// prediction-interval structure, and the probing cost that selects the state
// is a noisy measurement. Near a state boundary a small probe jitter flips
// the selected equation entirely, so comparing point estimates picks the
// wrong site a measurable fraction of the time — the failure mode "Least
// Expected Cost Query Optimization" (Chu/Halpern/Seshadri; see PAPERS.md)
// argues against. CostDistribution is the small served summary that lets a
// planner rank under that uncertainty: a mean that blends the states the
// probe could plausibly be in, an interval that folds per-state prediction
// error together with between-state spread, and the staleness/degradation
// flags that tell the ranker how much to trust it.

#ifndef MSCM_CORE_COST_DISTRIBUTION_H_
#define MSCM_CORE_COST_DISTRIBUTION_H_

#include <cstdint>

namespace mscm::core {

// A per-candidate cost distribution, served from the compiled equation
// table (CompiledEquations::EvaluateDistribution). `mean` is the soft-state
// expected cost; [low, high] is a central interval combining per-state 95%
// prediction intervals with the between-state spread of the soft
// membership; `stale`/`degraded` mirror the probe reading that priced it.
struct CostDistribution {
  double mean = 0.0;
  double low = 0.0;
  double high = 0.0;
  // Per-state prediction intervals contributed to [low, high] (the model
  // carried its covariance structure). When false the interval reflects
  // only between-state spread — zero away from boundaries.
  bool has_interval = false;
  bool stale = false;     // priced from a stale probe or drift-flagged model
  bool degraded = false;  // priced from a site whose breaker is not closed

  double width() const { return high - low; }
};

// How ChoosePlacement ranks candidates. Values are a wire contract
// (append-only; see net/wire_format.h).
enum class PlacementPolicy : uint8_t {
  // Legacy ranking: point estimate + shipping, bit-compatible with the
  // pre-distribution planner.
  kPointEstimate = 0,
  // Rank by the distribution mean (+ shipping), with stale/degraded
  // candidates widened before the mean shifts (see PlacementScore).
  kExpectedCost = 1,
  // kExpectedCost plus a risk premium of risk_lambda * effective width —
  // prefers a slightly dearer site whose cost is certain over a cheap-
  // looking one straddling a state boundary.
  kRiskAdjusted = 2,
};

const char* ToString(PlacementPolicy policy);

// Ranking configuration shared by core::ChoosePlacement and
// runtime::EstimationService::ChoosePlacement. Defaults are
// backward-compatible: kPointEstimate scores exactly what the legacy
// planner compared.
struct PlacementRanking {
  PlacementPolicy policy = PlacementPolicy::kPointEstimate;
  // kRiskAdjusted: score = mean_eff + risk_lambda * width_eff + shipping.
  double risk_lambda = 0.5;
  // Stale/degraded candidates get their interval width multiplied before
  // scoring — an old reading or an open breaker means the point value is
  // not to be trusted, so widen first, then penalize the widened upper tail.
  double stale_width_factor = 1.5;
  double degraded_width_factor = 3.0;
  // Soft state membership: a probing cost within
  // boundary_band_fraction * |boundary| of a state boundary blends the two
  // adjacent states (weight ramps linearly from 0.5 at the boundary to 0 at
  // the band edge). Zero disables blending (hard states everywhere).
  double boundary_band_fraction = 0.1;
};

// Lower-is-better ranking score for one candidate. Under kPointEstimate
// this is exactly point_estimate + shipping_seconds (legacy-compatible —
// including its NaN semantics: a NaN never compares below anything). The
// distribution policies derive an effective width
//   W_eff = width * stale_factor? * degraded_factor?
// and shift the mean by half the widening (the distrust is one-sided: an
// untrustworthy cheap estimate is more likely hiding cost than savings):
//   kExpectedCost:  mean + (W_eff - width)/2 + shipping
//   kRiskAdjusted:  the above + risk_lambda * W_eff
double PlacementScore(const PlacementRanking& ranking,
                      const CostDistribution& distribution,
                      double point_estimate, double shipping_seconds);

}  // namespace mscm::core

#endif  // MSCM_CORE_COST_DISTRIBUTION_H_
