#include "core/state_determination.h"

#include <algorithm>
#include <cmath>

#include "cluster/hierarchical.h"
#include "common/check.h"

namespace mscm::core {
namespace {

// Probing-cost range of a training set.
std::pair<double, double> ProbingRange(const ObservationSet& observations) {
  MSCM_CHECK(!observations.empty());
  double lo = observations[0].probing_cost;
  double hi = lo;
  for (const Observation& o : observations) {
    lo = std::min(lo, o.probing_cost);
    hi = std::max(hi, o.probing_cost);
  }
  return {lo, hi};
}

std::vector<double> ProbingCosts(const ObservationSet& observations) {
  std::vector<double> out;
  out.reserve(observations.size());
  for (const Observation& o : observations) out.push_back(o.probing_cost);
  return out;
}

int MinRequiredPerState(const std::vector<int>& selected,
                        const StateDeterminationOptions& options) {
  if (options.min_observations_per_state > 0) {
    return options.min_observations_per_state;
  }
  // Each state introduces up to (#vars + 1) coefficients under the general
  // form; require a few extra points beyond that.
  return std::max(6, static_cast<int>(selected.size()) + 1 + 3);
}

// Maximum relative difference between the adjusted coefficients of two
// adjacent states (the merging test of Algorithm 3.1, step 18).
double CoefficientGap(const CostModel& model, int s) {
  double gap = 0.0;
  constexpr double kTiny = 1e-9;
  for (int v = -1; v < model.layout().num_selected(); ++v) {
    const double a = model.CoefficientFor(v, s);
    const double b = model.CoefficientFor(v, s + 1);
    const double denom = std::max({std::fabs(a), std::fabs(b), kTiny});
    gap = std::max(gap, std::fabs(a - b) / denom);
  }
  return gap;
}

// Phase 2 of both algorithms: merge adjacent states whose effects on the
// model are not significantly different; refit and repeat.
CostModel MergingAdjustment(QueryClassId class_id,
                            const ObservationSet& observations,
                            const std::vector<int>& selected,
                            CostModel model,
                            const StateDeterminationOptions& options,
                            int* merges) {
  while (model.states().num_states() > 1) {
    // Find the most similar adjacent pair below the threshold.
    int best_state = -1;
    double best_gap = options.merge_threshold;
    for (int s = 0; s < model.states().num_states() - 1; ++s) {
      const double gap = CoefficientGap(model, s);
      if (gap < best_gap) {
        best_gap = gap;
        best_state = s;
      }
    }
    if (best_state < 0) break;
    ContentionStates merged = model.states();
    merged.MergeAdjacent(best_state);
    model = FitCostModel(class_id, observations, selected, merged,
                         options.form);
    if (merges != nullptr) ++(*merges);
  }
  return model;
}

// Shared growth loop: `partition(m)` yields the candidate m-state partition
// (or nullopt when m states cannot be supported, stopping growth).
template <typename PartitionFn>
StateDeterminationResult GrowAndMerge(QueryClassId class_id,
                                      ObservationSet& observations,
                                      const std::vector<int>& selected,
                                      const StateDeterminationOptions& options,
                                      PartitionFn partition) {
  MSCM_CHECK(!observations.empty());

  CostModel best = FitCostModel(class_id, observations, selected,
                                ContentionStates::Single(), options.form);
  StateDeterminationResult result{best, /*growth_iterations=*/0,
                                  /*merges=*/0,
                                  /*r2_by_state_count=*/{best.r_squared()}};

  double r2_prev = best.r_squared();
  double see_prev = best.standard_error();

  // Growth tolerates one stale step: with a skewed probing-cost distribution
  // a partition at m may gain nothing while m+1 still helps (the extra
  // boundary lands in the dense region).
  int stale = 0;
  for (int m = 2; m <= options.max_states; ++m) {
    auto states = partition(m);
    if (!states.has_value()) break;
    ++result.growth_iterations;

    CostModel candidate =
        FitCostModel(class_id, observations, selected, *states, options.form);
    result.r2_by_state_count.push_back(candidate.r_squared());

    const double r2_gain = candidate.r_squared() - r2_prev;
    const double see_gain =
        see_prev > 1e-12
            ? (see_prev - candidate.standard_error()) / see_prev
            : 0.0;
    const bool improved = r2_gain > options.r2_gain_epsilon ||
                          see_gain > options.see_gain_epsilon;
    if (!improved) {
      if (++stale >= 2) break;  // keep the previous (smaller) model
      continue;
    }
    stale = 0;
    best = std::move(candidate);
    r2_prev = best.r_squared();
    see_prev = best.standard_error();
  }

  best = MergingAdjustment(class_id, observations, selected, std::move(best),
                           options, &result.merges);
  result.model = std::move(best);
  return result;
}

}  // namespace

std::vector<int> StateCounts(const ObservationSet& observations,
                             const ContentionStates& states) {
  std::vector<int> counts(static_cast<size_t>(states.num_states()), 0);
  for (const Observation& o : observations) {
    ++counts[static_cast<size_t>(states.StateOf(o.probing_cost))];
  }
  return counts;
}

StateDeterminationResult DetermineStatesIupma(
    QueryClassId class_id, const ObservationSet& observations,
    const std::vector<int>& selected,
    const StateDeterminationOptions& options) {
  ObservationSet working = observations;
  const auto [cmin, cmax] = ProbingRange(working);
  const int min_per_state = MinRequiredPerState(selected, options);

  auto partition = [&](int m) -> std::optional<ContentionStates> {
    ContentionStates states =
        ContentionStates::UniformPartition(cmin, cmax, m);
    // Pre-merge underpopulated subranges into a neighbor: the sparse tail of
    // a skewed probing-cost distribution cannot support states of its own,
    // but the dense region still benefits from the finer partition.
    bool changed = true;
    while (changed && states.num_states() > 1) {
      changed = false;
      const std::vector<int> counts = StateCounts(working, states);
      for (int s = 0; s < states.num_states(); ++s) {
        if (counts[static_cast<size_t>(s)] >= min_per_state) continue;
        int boundary;  // boundary index to remove == left state of the merge
        if (s == 0) {
          boundary = 0;
        } else if (s == states.num_states() - 1) {
          boundary = s - 1;
        } else {
          // Merge toward the emptier neighbor.
          boundary = counts[static_cast<size_t>(s - 1)] <=
                             counts[static_cast<size_t>(s + 1)]
                         ? s - 1
                         : s;
        }
        states.MergeAdjacent(boundary);
        changed = true;
        break;
      }
    }
    if (states.num_states() < 2) return std::nullopt;
    return states;
  };
  return GrowAndMerge(class_id, working, selected, options, partition);
}

StateDeterminationResult DetermineStatesIcma(
    QueryClassId class_id, ObservationSet& observations,
    const std::vector<int>& selected, const StateDeterminationOptions& options,
    ObservationSource* source) {
  const int min_per_state = MinRequiredPerState(selected, options);

  auto partition = [&](int m) -> std::optional<ContentionStates> {
    const std::vector<cluster::Cluster> clusters =
        cluster::AgglomerativeCluster1D(ProbingCosts(observations),
                                        static_cast<size_t>(m));
    if (clusters.size() < static_cast<size_t>(m)) return std::nullopt;
    ContentionStates states = ContentionStates::FromClusters(clusters);

    // Top up undersampled clusters with targeted draws rather than ignoring
    // their data points (§3.3).
    if (source != nullptr) {
      for (size_t k = 0; k < clusters.size(); ++k) {
        int have = static_cast<int>(clusters[k].count);
        int attempts_left = 4 * min_per_state;
        while (have < min_per_state && attempts_left-- > 0) {
          auto extra = source->DrawInProbingRange(clusters[k].min,
                                                  clusters[k].max,
                                                  /*max_attempts=*/20);
          if (!extra.has_value()) break;
          observations.push_back(std::move(*extra));
          ++have;
        }
      }
    }

    const std::vector<int> counts = StateCounts(observations, states);
    for (int c : counts) {
      if (c < min_per_state) return std::nullopt;
    }
    return states;
  };
  return GrowAndMerge(class_id, observations, selected, options, partition);
}

}  // namespace mscm::core
