#include "core/cost_model.h"

#include <algorithm>

#include "common/str_util.h"
#include "stats/distributions.h"

namespace mscm::core {

double CostModel::Estimate(const std::vector<double>& features,
                           double probing_cost) const {
  const int state = states_.StateOf(probing_cost);
  const std::vector<double> row =
      layout_.Row(SelectValues(features, selected_), state);
  return std::max(0.0, fit_.Predict(row));
}

double CostModel::EstimateTermWalk(const std::vector<double>& features,
                                   double probing_cost) const {
  const int state = states_.StateOf(probing_cost);
  const std::vector<DesignTerm>& terms = layout_.terms();
  double y = 0.0;
  for (size_t c = 0; c < terms.size(); ++c) {
    const DesignTerm& t = terms[c];
    if (t.state != -1 && t.state != state) continue;
    double x = 1.0;
    if (t.variable != -1) {
      const size_t idx =
          static_cast<size_t>(selected_[static_cast<size_t>(t.variable)]);
      MSCM_CHECK(idx < features.size());
      x = features[idx];
    }
    y += fit_.coefficients[c] * x;
  }
  return std::max(0.0, y);
}

std::optional<CostModel::Interval> CostModel::EstimateWithInterval(
    const std::vector<double>& features, double probing_cost,
    double alpha) const {
  // No covariance structure (a model reconstructed from a persisted record)
  // or no residual degrees of freedom: there is no interval to compute.
  const double dof =
      static_cast<double>(fit_.n) - static_cast<double>(fit_.p);
  if (fit_.xtx_inverse.empty() || dof <= 0.0) return std::nullopt;

  const int state = states_.StateOf(probing_cost);
  const std::vector<double> row =
      layout_.Row(SelectValues(features, selected_), state);
  Interval out;
  out.estimate = std::max(0.0, fit_.Predict(row));
  const double se = fit_.PredictionStandardError(row);
  if (se <= 0.0) {
    // A perfect in-process fit: the interval legitimately collapses.
    out.low = out.high = out.estimate;
    return out;
  }
  const double t = stats::StudentTUpperQuantile(alpha / 2.0, dof);
  const double center = fit_.Predict(row);
  out.low = std::max(0.0, center - t * se);
  out.high = std::max(0.0, center + t * se);
  return out;
}

double CostModel::CoefficientFor(int variable, int state) const {
  const int col = layout_.ColumnOf(variable, state);
  MSCM_CHECK_MSG(col >= 0, "no design column for variable/state");
  return fit_.coefficients[static_cast<size_t>(col)];
}

std::string CostModel::ToString(const VariableSet& variables) const {
  std::string out;
  out += Format("class %s, %s form, %d state(s)\n", Label(class_id_),
                core::ToString(layout_.form()), states_.num_states());
  out += Format("states: %s\n", states_.ToString().c_str());
  for (int s = 0; s < states_.num_states(); ++s) {
    std::vector<std::string> terms;
    const double intercept = CoefficientFor(-1, s);
    terms.push_back(CompactDouble(intercept));
    for (size_t i = 0; i < selected_.size(); ++i) {
      const double b = CoefficientFor(static_cast<int>(i), s);
      const std::string& name =
          variables.name(static_cast<size_t>(selected_[i]));
      terms.push_back(
          Format("%s*[%s]", CompactDouble(b).c_str(), name.c_str()));
    }
    out += Format("  state %d: cost = %s\n", s, Join(terms, " + ").c_str());
  }
  out += Format("  R^2 = %.4f, SEE = %s, F = %s (p = %.3g), n = %zu\n",
                fit_.r_squared, CompactDouble(fit_.standard_error).c_str(),
                CompactDouble(fit_.f_statistic).c_str(), fit_.f_pvalue,
                fit_.n);
  return out;
}

CostModel FitCostModel(QueryClassId class_id,
                       const ObservationSet& observations,
                       const std::vector<int>& selected,
                       const ContentionStates& states, QualitativeForm form) {
  const DesignLayout layout = DesignLayout::Make(
      static_cast<int>(selected.size()), form, states.num_states());
  const stats::Matrix x =
      BuildDesignMatrix(observations, selected, states, layout);
  const std::vector<double> y = ResponseVector(observations);
  stats::OlsResult fit = stats::FitOls(x, y);
  return CostModel(class_id, selected, states, layout, std::move(fit));
}

}  // namespace mscm::core
