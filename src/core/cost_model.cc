#include "core/cost_model.h"

#include <algorithm>

#include "common/str_util.h"
#include "stats/distributions.h"

namespace mscm::core {

double CostModel::Estimate(const std::vector<double>& features,
                           double probing_cost) const {
  const int state = states_.StateOf(probing_cost);
  // An adapted state's equation lives in the adaptation overlay, not the
  // base fit. Evaluate its row with exactly EvaluateInState's accumulation
  // order so the reference path stays bit-identical to the compiled path.
  const auto it = adaptation_.states.find(state);
  if (it != adaptation_.states.end()) {
    const std::vector<double>& row = it->second.row;
    double y = row[0];
    for (size_t j = 0; j < selected_.size(); ++j) {
      y += row[j + 1] * features[static_cast<size_t>(selected_[j])];
    }
    return std::max(0.0, y);
  }
  const std::vector<double> row =
      layout_.Row(SelectValues(features, selected_), state);
  return std::max(0.0, fit_.Predict(row));
}

double CostModel::EstimateTermWalk(const std::vector<double>& features,
                                   double probing_cost) const {
  const int state = states_.StateOf(probing_cost);
  const std::vector<DesignTerm>& terms = layout_.terms();
  double y = 0.0;
  for (size_t c = 0; c < terms.size(); ++c) {
    const DesignTerm& t = terms[c];
    if (t.state != -1 && t.state != state) continue;
    double x = 1.0;
    if (t.variable != -1) {
      const size_t idx =
          static_cast<size_t>(selected_[static_cast<size_t>(t.variable)]);
      MSCM_CHECK(idx < features.size());
      x = features[idx];
    }
    y += fit_.coefficients[c] * x;
  }
  return std::max(0.0, y);
}

std::optional<CostModel::Interval> CostModel::EstimateWithInterval(
    const std::vector<double>& features, double probing_cost,
    double alpha) const {
  // No covariance structure (a model reconstructed from a persisted record)
  // or no residual degrees of freedom: there is no interval to compute.
  const double dof =
      static_cast<double>(fit_.n) - static_cast<double>(fit_.p);
  if (fit_.xtx_inverse.empty() || dof <= 0.0) return std::nullopt;

  const int state = states_.StateOf(probing_cost);
  const std::vector<double> row =
      layout_.Row(SelectValues(features, selected_), state);
  Interval out;
  out.estimate = std::max(0.0, fit_.Predict(row));
  const double se = fit_.PredictionStandardError(row);
  if (se <= 0.0) {
    // A perfect in-process fit: the interval legitimately collapses.
    out.low = out.high = out.estimate;
    return out;
  }
  const double t = stats::StudentTUpperQuantile(alpha / 2.0, dof);
  const double center = fit_.Predict(row);
  out.low = std::max(0.0, center - t * se);
  out.high = std::max(0.0, center + t * se);
  return out;
}

double CostModel::CoefficientFor(int variable, int state) const {
  const int col = layout_.ColumnOf(variable, state);
  MSCM_CHECK_MSG(col >= 0, "no design column for variable/state");
  return fit_.coefficients[static_cast<size_t>(col)];
}

std::string CostModel::ToString(const VariableSet& variables) const {
  std::string out;
  out += Format("class %s, %s form, %d state(s)\n", Label(class_id_),
                core::ToString(layout_.form()), states_.num_states());
  out += Format("states: %s\n", states_.ToString().c_str());
  for (int s = 0; s < states_.num_states(); ++s) {
    std::vector<std::string> terms;
    const double intercept = CoefficientFor(-1, s);
    terms.push_back(CompactDouble(intercept));
    for (size_t i = 0; i < selected_.size(); ++i) {
      const double b = CoefficientFor(static_cast<int>(i), s);
      const std::string& name =
          variables.name(static_cast<size_t>(selected_[i]));
      terms.push_back(
          Format("%s*[%s]", CompactDouble(b).c_str(), name.c_str()));
    }
    out += Format("  state %d: cost = %s\n", s, Join(terms, " + ").c_str());
  }
  out += Format("  R^2 = %.4f, SEE = %s, F = %s (p = %.3g), n = %zu\n",
                fit_.r_squared, CompactDouble(fit_.standard_error).c_str(),
                CompactDouble(fit_.f_statistic).c_str(), fit_.f_pvalue,
                fit_.n);
  return out;
}

CompiledEquations CostModel::CompileAdapted(
    const std::vector<int>& selected, const ContentionStates& states,
    const DesignLayout& layout, const stats::OlsResult& fit,
    const ModelAdaptationState& adaptation) {
  CompiledEquations base =
      CompiledEquations::Compile(selected, states, layout, fit);
  if (adaptation.empty()) return base;
  std::map<int, std::vector<double>> rows;
  for (const auto& [state, st] : adaptation.states) {
    rows.emplace(state, st.row);
  }
  return CompiledEquations::WithAdaptedRows(base, rows,
                                            adaptation.generation);
}

std::optional<CostModel> CostModel::ApplyFeedback(
    int state, const std::vector<double>& features, double actual,
    const stats::RlsConfig& config) const {
  MSCM_CHECK_MSG(state >= 0 && state < states_.num_states(),
                 "feedback for a state outside the partition");
  compiled_.CheckFeatureWidth(features);

  // z = (1, gathered selected features), the compiled row's regressor.
  const size_t stride = selected_.size() + 1;
  std::vector<double> z(stride);
  z[0] = 1.0;
  compiled_.GatherSelected(features.data(), z.data() + 1);

  // Warm-start from the state's previous adaptation trajectory, or from the
  // base compiled row under a diffuse prior on first touch.
  const auto it = adaptation_.states.find(state);
  std::vector<double> theta;
  std::vector<double> covariance;
  uint64_t prior_updates = 0;
  if (it != adaptation_.states.end()) {
    theta = it->second.row;
    covariance = it->second.covariance;
    prior_updates = it->second.updates;
  } else {
    const double* row = compiled_.row(state);
    theta.assign(row, row + stride);
  }
  stats::RlsEstimator rls(std::move(theta), std::move(covariance), config);
  if (!rls.Update(z.data(), actual)) return std::nullopt;

  ModelAdaptationState next = adaptation_;
  next.generation += 1;
  next.forgetting = config.forgetting;
  StateAdaptation& slot = next.states[state];
  slot.row = rls.coefficients();
  slot.covariance = rls.covariance();
  slot.updates = prior_updates + 1;
  return WithAdaptation(std::move(next));
}

CostModel FitCostModel(QueryClassId class_id,
                       const ObservationSet& observations,
                       const std::vector<int>& selected,
                       const ContentionStates& states, QualitativeForm form) {
  const DesignLayout layout = DesignLayout::Make(
      static_cast<int>(selected.size()), form, states.num_states());
  const stats::Matrix x =
      BuildDesignMatrix(observations, selected, states, layout);
  const std::vector<double> y = ResponseVector(observations);
  stats::OlsResult fit = stats::FitOls(x, y);
  return CostModel(class_id, selected, states, layout, std::move(fit));
}

}  // namespace mscm::core
