#include "core/validation.h"

#include <cmath>

#include "common/check.h"

namespace mscm::core {

namespace {

// A non-positive observed cost carries no scale to judge a relative error
// against: the only estimate that matches it is a (near-)zero one. Anything
// with magnitude above this — positive or negative — is a real prediction
// of nonzero cost and must not be counted as accurate. (The old rule
// accepted *any* estimated <= 0, so an estimate of -50 s against an
// observed 0 s inflated the Table-5 "very good" percentages.)
constexpr double kZeroCostTolerance = 1e-9;  // one nanosecond

bool MatchesNonPositiveObserved(double estimated) {
  return std::fabs(estimated) <= kZeroCostTolerance;
}

}  // namespace

bool IsVeryGoodEstimate(double estimated, double observed) {
  if (observed <= 0.0) return MatchesNonPositiveObserved(estimated);
  return std::fabs(estimated - observed) / observed <= 0.30;
}

bool IsGoodEstimate(double estimated, double observed) {
  if (observed <= 0.0) return MatchesNonPositiveObserved(estimated);
  return estimated >= observed / 2.0 && estimated <= observed * 2.0;
}

ValidationReport Validate(const CostModel& model, const ObservationSet& test) {
  ValidationReport report;
  report.n_test = test.size();
  if (test.empty()) return report;

  size_t very_good = 0;
  size_t good = 0;
  double sum_cost = 0.0;
  double sum_rel = 0.0;
  double sum_sq = 0.0;
  for (const Observation& obs : test) {
    const double est = model.Estimate(obs.features, obs.probing_cost);
    sum_cost += obs.cost;
    if (obs.cost > 0.0) sum_rel += std::fabs(est - obs.cost) / obs.cost;
    sum_sq += (est - obs.cost) * (est - obs.cost);
    if (IsVeryGoodEstimate(est, obs.cost)) ++very_good;
    if (IsGoodEstimate(est, obs.cost)) ++good;
  }
  const double n = static_cast<double>(test.size());
  report.avg_observed_cost = sum_cost / n;
  report.pct_very_good = static_cast<double>(very_good) / n;
  report.pct_good = static_cast<double>(good) / n;
  report.mean_relative_error = sum_rel / n;
  report.rmse = std::sqrt(sum_sq / n);
  return report;
}

}  // namespace mscm::core
