// Abstraction over "run one more sample query in the dynamic environment".
// The model-building pipeline pulls observations through this interface; the
// mdbs glue (AgentObservationSource) implements it against a live site.

#ifndef MSCM_CORE_OBSERVATION_SOURCE_H_
#define MSCM_CORE_OBSERVATION_SOURCE_H_

#include <optional>

#include "core/observation.h"

namespace mscm::core {

class ObservationSource {
 public:
  virtual ~ObservationSource() = default;

  // Draws one observation at a contention point sampled from the
  // environment's own load distribution. Must succeed; sources that can fail
  // (dead site, timeout) should override TryDraw instead and make Draw
  // unreachable via MSCM_CHECK, per the no-exceptions convention (DESIGN §6).
  virtual Observation Draw() = 0;

  // Failure-reporting variant: nullopt means "the environment could not
  // produce a sample right now" (unreachable site, probe timeout). The
  // background refresh path draws through this so a flaky source degrades the
  // refresh instead of crashing it — and additionally armors against a
  // source that throws, routing the exception into the same failed-attempt
  // backoff (sim::FaultyObservationSource exercises both). Default:
  // delegates to Draw(), which for infallible sources never fails.
  virtual std::optional<Observation> TryDraw() { return Draw(); }

  // Draws one observation whose probing cost lands inside [lo, hi] — used by
  // ICMA when a contention cluster has too few sampled points for regression
  // (the paper draws additional sample queries rather than discarding the
  // cluster, §3.3). Default: unsupported.
  virtual std::optional<Observation> DrawInProbingRange(double lo, double hi,
                                                        int max_attempts) {
    (void)lo;
    (void)hi;
    (void)max_attempts;
    return std::nullopt;
  }
};

}  // namespace mscm::core

#endif  // MSCM_CORE_OBSERVATION_SOURCE_H_
