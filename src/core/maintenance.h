// Cost-model maintenance (paper §2): frequently-changing factors are
// captured by the qualitative variable, but *occasionally-changing* factors
// — DBMS configuration, schema changes, hardware upgrades — shift the whole
// cost surface and require re-invoking the sampling method "periodically or
// whenever a significant change for the factors occurs".
//
// DriftMonitor watches the stream of (estimated, observed) cost pairs the
// optimizer sees anyway and flags when the model's accuracy has degraded
// below its acceptance band; ManagedCostModel couples a model with a monitor
// and rebuilds from a live observation source when drift is flagged.

#ifndef MSCM_CORE_MAINTENANCE_H_
#define MSCM_CORE_MAINTENANCE_H_

#include <deque>
#include <optional>

#include "core/model_builder.h"

namespace mscm::core {

struct DriftMonitorOptions {
  // Rolling window of recent estimate outcomes.
  size_t window = 40;
  // Recommend a rebuild when the fraction of good estimates (within a factor
  // of two) in the window falls below this.
  double min_good_fraction = 0.5;
  // Never judge before this many outcomes have been seen.
  size_t min_outcomes = 20;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorOptions& options = {})
      : options_(options) {}

  // Records one estimate outcome.
  void Record(double estimated, double observed);

  // Fraction of good estimates in the current window (1.0 when empty).
  double RecentGoodFraction() const;

  bool RebuildRecommended() const;

  void Reset() { outcomes_.clear(); }
  size_t size() const { return outcomes_.size(); }

 private:
  DriftMonitorOptions options_;
  std::deque<bool> outcomes_;  // true = good estimate
};

// A cost model under maintenance: estimates are tracked, and when accuracy
// drifts out of band the model is rebuilt from fresh samples.
class ManagedCostModel {
 public:
  ManagedCostModel(CostModel model, QueryClassId class_id,
                   ModelBuildOptions build_options,
                   DriftMonitorOptions drift_options = {})
      : model_(std::move(model)),
        class_id_(class_id),
        build_options_(build_options),
        monitor_(drift_options) {}

  // Serving path: evaluates the model's compiled per-state equation table.
  double Estimate(const std::vector<double>& features,
                  double probing_cost) const {
    return model_.EstimateFast(features, probing_cost);
  }

  // Feeds back the observed cost for an earlier estimate.
  void ReportOutcome(double estimated, double observed) {
    monitor_.Record(estimated, observed);
  }

  bool RebuildRecommended() const { return monitor_.RebuildRecommended(); }

  // Rebuilds from `source` if drift is flagged. Returns true when a rebuild
  // happened (the monitor is reset so the new model starts clean).
  bool RebuildIfDrifting(ObservationSource& source);

  const CostModel& model() const { return model_; }
  const DriftMonitor& monitor() const { return monitor_; }
  int rebuild_count() const { return rebuild_count_; }

 private:
  CostModel model_;
  QueryClassId class_id_;
  ModelBuildOptions build_options_;
  DriftMonitor monitor_;
  int rebuild_count_ = 0;
};

// Online re-derivation (the runtime refresh daemon's build step): a
// failure-isolating wrapper over the model-building pipeline that can warm-
// start from observations the serving path has already collected, so a
// refresh pays for fewer fresh sample queries than a from-scratch build.
struct RederiveOptions {
  ModelBuildOptions build;
  // Caps on prior (feedback) observations mixed into the training set:
  // at most `max_reused` of them, and at most `max_reused_fraction` of the
  // total sample — the rest is freshly drawn so the new model always sees
  // the *current* environment.
  size_t max_reused = 128;
  double max_reused_fraction = 0.5;
};

// Draws a fresh sample from `source` (via ObservationSource::TryDraw), mixes
// in the newest `recent` observations under the options' caps, and runs the
// full pipeline. Returns nullopt instead of propagating failure: a source
// whose TryDraw fails or a degenerate fit (non-finite R²) must not take down
// a background refresh — the caller keeps serving the old model. There is no
// catch-all: programmer errors in the pipeline abort via MSCM_CHECK.
std::optional<BuildReport> RederiveModel(QueryClassId class_id,
                                         ObservationSource& source,
                                         const RederiveOptions& options,
                                         const ObservationSet& recent = {});

}  // namespace mscm::core

#endif  // MSCM_CORE_MAINTENANCE_H_
