// The derived cost-model artifact: everything the MDBS catalog stores for a
// (site, query class) pair, and everything the global query optimizer needs
// to turn (query features, current probing cost) into an estimated cost.
//
// The model carries two representations of the same per-state equations:
//   - the derivation artifact (DesignLayout + OlsResult) that fitting,
//     validation, the merging test and reporting inspect, and
//   - a CompiledEquations serving form, built once at construction, that
//     every estimate hot path evaluates (see compiled_equations.h).
// Serving call sites outside core/ consume only the compiled form.

#ifndef MSCM_CORE_COST_MODEL_H_
#define MSCM_CORE_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_equations.h"
#include "core/explanatory.h"
#include "core/observation.h"
#include "core/qualitative.h"
#include "core/query_class.h"
#include "core/states.h"
#include "stats/ols.h"
#include "stats/rls.h"

namespace mscm::core {

// The streaming-adaptation overlay on a derived model: per contention
// state, the RLS-adapted compiled coefficient row plus the estimator state
// (inverse-Gram covariance, update count) needed to resume the trajectory,
// and the model generation (0 = the base fit, +1 per adaptation swap).
// Adaptation operates in *compiled* space — one (intercept, slopes) row per
// state — rather than on the design-layout coefficients, because shared
// columns in coincident/parallel/concurrent forms would couple an update
// for one state into every other state's served equation.
struct StateAdaptation {
  std::vector<double> row;         // stride = num_selected + 1
  std::vector<double> covariance;  // stride x stride row-major RLS P
  uint64_t updates = 0;
};

struct ModelAdaptationState {
  uint64_t generation = 0;
  double forgetting = 1.0;               // λ the rows were adapted under
  std::map<int, StateAdaptation> states;  // keyed by contention state

  bool empty() const { return generation == 0 && states.empty(); }
};

class CostModel {
 public:
  CostModel(QueryClassId class_id, std::vector<int> selected,
            ContentionStates states, DesignLayout layout,
            stats::OlsResult fit)
      : class_id_(class_id),
        selected_(std::move(selected)),
        states_(std::move(states)),
        layout_(std::move(layout)),
        fit_(std::move(fit)),
        compiled_(
            CompiledEquations::Compile(selected_, states_, layout_, fit_)) {}

  // As above, resuming from a persisted or runtime-produced adaptation
  // overlay: the compiled table serves the adapted rows, stamped with the
  // overlay's generation.
  CostModel(QueryClassId class_id, std::vector<int> selected,
            ContentionStates states, DesignLayout layout,
            stats::OlsResult fit, ModelAdaptationState adaptation)
      : class_id_(class_id),
        selected_(std::move(selected)),
        states_(std::move(states)),
        layout_(std::move(layout)),
        fit_(std::move(fit)),
        adaptation_(std::move(adaptation)),
        compiled_(CompileAdapted(selected_, states_, layout_, fit_,
                                 adaptation_)) {}

  // Estimated cost (seconds) for a query with the given feature vector when
  // the probing query currently costs `probing_cost`. Negative estimates are
  // clamped to zero (a regression plane can dip below zero near the origin).
  double Estimate(const std::vector<double>& features,
                  double probing_cost) const;

  // Identical result to Estimate() — bit for bit — served from the compiled
  // per-state table: no per-call allocations, no term walk. The online
  // runtime's estimate hot path (runtime::EstimationService) runs millions
  // of these per second.
  double EstimateFast(const std::vector<double>& features,
                      double probing_cost) const {
    return compiled_.Evaluate(features, probing_cost);
  }

  // The retired serving path, kept only as a differential-test reference and
  // the compiled-vs-term-walk bench baseline: walks every DesignLayout term,
  // branching on its state tag and bounds-checking per term. Do not serve
  // estimates through this.
  double EstimateTermWalk(const std::vector<double>& features,
                          double probing_cost) const;

  struct Interval {
    double estimate = 0.0;
    double low = 0.0;
    double high = 0.0;
  };

  // Point estimate plus a (1 - alpha) prediction interval for a *new* query
  // observation — lets the optimizer reason about estimation risk, not just
  // the point value. Requires the fit's covariance structure ((X'X)^{-1}):
  // model_io persists it (the `xtxinv` record line), so round-tripped models
  // keep their intervals; only records written before that line existed —
  // or fits with no residual degrees of freedom — get nullopt, never a
  // silently degenerate interval.
  std::optional<Interval> EstimateWithInterval(
      const std::vector<double>& features, double probing_cost,
      double alpha = 0.05) const;

  // The served cost distribution (soft state membership near partition
  // boundaries + per-state 95% prediction intervals), from the compiled
  // table — see CompiledEquations::EvaluateDistribution. The caller stamps
  // stale/degraded from its probe reading.
  CostDistribution EstimateDistribution(const std::vector<double>& features,
                                        double probing_cost,
                                        double band_fraction = 0.1) const {
    return compiled_.EvaluateDistribution(features, probing_cost,
                                          band_fraction);
  }

  // Adjusted coefficient of `variable` (-1 = intercept) in `state` —
  // the b'_{ij} the merging test of Algorithm 3.1 compares.
  double CoefficientFor(int variable, int state) const;

  // --- Streaming adaptation (the fast tier; see stats/rls.h) ---

  // Folds one observed (features, actual cost) pair for `state` into the
  // model as a rank-1 RLS update of that state's compiled coefficient row,
  // returning the adapted model (generation + 1). The update warm-starts
  // from the state's previous adaptation (row + covariance) when present,
  // otherwise from the base compiled row under a diffuse prior. Returns
  // nullopt when the RLS guards reject the update (non-finite inputs,
  // degenerate gain, blown-up covariance) — the caller escalates to the
  // slow re-derivation path rather than serving a corrupted row.
  std::optional<CostModel> ApplyFeedback(
      int state, const std::vector<double>& features, double actual,
      const stats::RlsConfig& config = stats::RlsConfig()) const;

  // Rebinds this model's derivation artifact to a replacement adaptation
  // overlay — the publication path for the runtime AdaptationController,
  // which accumulates many RLS updates per state before swapping once.
  CostModel WithAdaptation(ModelAdaptationState adaptation) const {
    return CostModel(class_id_, selected_, states_, layout_, fit_,
                     std::move(adaptation));
  }

  uint64_t generation() const { return adaptation_.generation; }
  const ModelAdaptationState& adaptation() const { return adaptation_; }

  QueryClassId class_id() const { return class_id_; }
  const std::vector<int>& selected_variables() const { return selected_; }
  const ContentionStates& states() const { return states_; }
  const DesignLayout& layout() const { return layout_; }
  const stats::OlsResult& fit() const { return fit_; }

  // The immutable serving form (per-state equation table). Valid for the
  // model's whole lifetime; pointer-stable while the model is.
  const CompiledEquations& compiled() const { return compiled_; }

  double r_squared() const { return fit_.r_squared; }
  double standard_error() const { return fit_.standard_error; }
  double f_statistic() const { return fit_.f_statistic; }
  double f_pvalue() const { return fit_.f_pvalue; }

  // Renders per-state equations in the style of the paper's Table 4.
  std::string ToString(const VariableSet& variables) const;

 private:
  static CompiledEquations CompileAdapted(
      const std::vector<int>& selected, const ContentionStates& states,
      const DesignLayout& layout, const stats::OlsResult& fit,
      const ModelAdaptationState& adaptation);

  QueryClassId class_id_;
  std::vector<int> selected_;  // indices into the class VariableSet
  ContentionStates states_;
  DesignLayout layout_;
  stats::OlsResult fit_;
  ModelAdaptationState adaptation_;
  // Compiled from the members above at construction (declared last so it
  // can read them during initialization).
  CompiledEquations compiled_;
};

// Fits a cost model with the given variable selection / states / form.
CostModel FitCostModel(QueryClassId class_id,
                       const ObservationSet& observations,
                       const std::vector<int>& selected,
                       const ContentionStates& states, QualitativeForm form);

}  // namespace mscm::core

#endif  // MSCM_CORE_COST_MODEL_H_
