#include "core/maintenance.h"

#include <algorithm>
#include <cmath>

#include "core/sampling.h"
#include "core/validation.h"

namespace mscm::core {

void DriftMonitor::Record(double estimated, double observed) {
  outcomes_.push_back(IsGoodEstimate(estimated, observed));
  while (outcomes_.size() > options_.window) outcomes_.pop_front();
}

double DriftMonitor::RecentGoodFraction() const {
  if (outcomes_.empty()) return 1.0;
  size_t good = 0;
  for (bool b : outcomes_) {
    if (b) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(outcomes_.size());
}

bool DriftMonitor::RebuildRecommended() const {
  if (outcomes_.size() < options_.min_outcomes) return false;
  return RecentGoodFraction() < options_.min_good_fraction;
}

std::optional<BuildReport> RederiveModel(QueryClassId class_id,
                                         ObservationSource& source,
                                         const RederiveOptions& options,
                                         const ObservationSet& recent) {
  const VariableSet variables = VariableSet::ForClass(class_id);
  const int target =
      options.build.sample_size > 0
          ? options.build.sample_size
          : RecommendedSampleSize(
                static_cast<int>(variables.BasicIndices().size()),
                options.build.expected_max_states);
  const size_t reuse = std::min(
      {recent.size(), options.max_reused,
       static_cast<size_t>(static_cast<double>(target) *
                           options.max_reused_fraction)});
  const int fresh = std::max(1, target - static_cast<int>(reuse));
  // Draw through the failure-reporting interface: an unreachable site yields
  // nullopt and the caller keeps serving the old model. Programmer errors
  // inside the build pipeline still MSCM_CHECK-abort — they must not be
  // silently converted into "refresh skipped" (DESIGN §6).
  std::optional<ObservationSet> drawn = TryDrawObservations(source, fresh);
  if (!drawn.has_value()) return std::nullopt;
  ObservationSet observations = std::move(*drawn);
  observations.insert(observations.end(),
                      recent.end() - static_cast<long>(reuse), recent.end());
  BuildReport report = BuildCostModelFromObservations(
      class_id, std::move(observations), options.build);
  if (!std::isfinite(report.model.r_squared())) return std::nullopt;
  return report;
}

bool ManagedCostModel::RebuildIfDrifting(ObservationSource& source) {
  if (!monitor_.RebuildRecommended()) return false;
  BuildReport report = BuildCostModel(class_id_, source, build_options_);
  model_ = std::move(report.model);
  monitor_.Reset();
  ++rebuild_count_;
  return true;
}

}  // namespace mscm::core
