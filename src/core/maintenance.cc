#include "core/maintenance.h"

#include "core/validation.h"

namespace mscm::core {

void DriftMonitor::Record(double estimated, double observed) {
  outcomes_.push_back(IsGoodEstimate(estimated, observed));
  while (outcomes_.size() > options_.window) outcomes_.pop_front();
}

double DriftMonitor::RecentGoodFraction() const {
  if (outcomes_.empty()) return 1.0;
  size_t good = 0;
  for (bool b : outcomes_) {
    if (b) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(outcomes_.size());
}

bool DriftMonitor::RebuildRecommended() const {
  if (outcomes_.size() < options_.min_outcomes) return false;
  return RecentGoodFraction() < options_.min_good_fraction;
}

bool ManagedCostModel::RebuildIfDrifting(ObservationSource& source) {
  if (!monitor_.RebuildRecommended()) return false;
  BuildReport report = BuildCostModel(class_id_, source, build_options_);
  model_ = std::move(report.model);
  monitor_.Reset();
  ++rebuild_count_;
  return true;
}

}  // namespace mscm::core
