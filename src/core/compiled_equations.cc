#include "core/compiled_equations.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/str_util.h"
#include "stats/distributions.h"

namespace mscm::core {

CompiledEquations CompiledEquations::Compile(
    const std::vector<int>& selected, const ContentionStates& states,
    const DesignLayout& layout, const std::vector<double>& coefficients) {
  MSCM_CHECK_MSG(layout.num_selected() ==
                     static_cast<int>(selected.size()),
                 "layout/selection width mismatch");
  MSCM_CHECK_MSG(layout.num_states() == states.num_states(),
                 "layout/partition state-count mismatch");
  MSCM_CHECK_MSG(coefficients.size() == layout.num_columns(),
                 "coefficient vector does not match the design layout");

  // Validate the feature-index remap once, here, instead of per estimate:
  // slope j of every state reads features[selected[j]].
  size_t min_features = 0;
  for (int idx : selected) {
    MSCM_CHECK_MSG(idx >= 0, "negative selected feature index");
    min_features = std::max(min_features, static_cast<size_t>(idx) + 1);
  }

  const int num_states = states.num_states();
  const size_t stride = selected.size() + 1;
  std::vector<double> table(static_cast<size_t>(num_states) * stride, 0.0);
  for (int s = 0; s < num_states; ++s) {
    double* row = &table[static_cast<size_t>(s) * stride];
    for (int v = -1; v < static_cast<int>(selected.size()); ++v) {
      const int col = layout.ColumnOf(v, s);
      MSCM_CHECK_MSG(col >= 0, "design layout missing a (variable, state) "
                               "coefficient column");
      row[static_cast<size_t>(v + 1)] =
          coefficients[static_cast<size_t>(col)];
    }
  }
  return CompiledEquations(std::move(table), states.boundaries(), selected,
                           min_features);
}

CompiledEquations CompiledEquations::Compile(const std::vector<int>& selected,
                                             const ContentionStates& states,
                                             const DesignLayout& layout,
                                             const stats::OlsResult& fit) {
  CompiledEquations out = Compile(selected, states, layout, fit.coefficients);
  const double dof =
      static_cast<double>(fit.n) - static_cast<double>(fit.p);
  // No covariance (a record persisted before xtx_inverse was serialized) or
  // no residual degrees of freedom: serve point equations only, exactly the
  // cases where EstimateWithInterval answers nullopt.
  if (fit.xtx_inverse.empty() || dof <= 0.0 ||
      !std::isfinite(fit.standard_error) || fit.standard_error < 0.0) {
    return out;
  }
  MSCM_CHECK_MSG(fit.xtx_inverse.rows() == layout.num_columns() &&
                     fit.xtx_inverse.cols() == layout.num_columns(),
                 "(X'X)^{-1} does not match the design layout");

  const int num_states = states.num_states();
  const size_t stride = out.stride_;
  out.interval_table_.assign(
      static_cast<size_t>(num_states) * stride * stride, 0.0);
  std::vector<int> cols(stride, -1);
  for (int s = 0; s < num_states; ++s) {
    for (int v = -1; v < static_cast<int>(selected.size()); ++v) {
      cols[static_cast<size_t>(v + 1)] = layout.ColumnOf(v, s);
      MSCM_CHECK(cols[static_cast<size_t>(v + 1)] >= 0);
    }
    double* m = &out.interval_table_[static_cast<size_t>(s) * stride * stride];
    for (size_t a = 0; a < stride; ++a) {
      for (size_t b = 0; b < stride; ++b) {
        m[a * stride + b] =
            fit.xtx_inverse(static_cast<size_t>(cols[a]),
                            static_cast<size_t>(cols[b]));
      }
    }
  }
  out.sigma_ = fit.standard_error;
  out.t95_ = stats::StudentTUpperQuantile(0.025, dof);
  out.has_intervals_ = true;
  return out;
}

CompiledEquations CompiledEquations::WithAdaptedRows(
    const CompiledEquations& base, const std::map<int, std::vector<double>>& rows,
    uint64_t generation) {
  CompiledEquations out = base;
  for (const auto& [state, row] : rows) {
    MSCM_CHECK_MSG(state >= 0 && state < base.num_states(),
                   "adapted row for a state outside the partition");
    MSCM_CHECK_MSG(row.size() == base.stride_,
                   "adapted row width does not match the compiled stride");
    std::copy(row.begin(), row.end(),
              out.table_.begin() + static_cast<size_t>(state) * base.stride_);
  }
  out.generation_ = generation;
  return out;
}

double CompiledEquations::IntervalHalfWidthInState(const double* gathered,
                                                   int state) const {
  if (!has_intervals_) return 0.0;
  MSCM_DCHECK(state >= 0 && state < num_states());
  const double* m =
      &interval_table_[static_cast<size_t>(state) * stride_ * stride_];
  // quad = z' M_s z with z = (1, gathered[0..k-1]).
  double quad = 0.0;
  for (size_t a = 0; a < stride_; ++a) {
    const double za = a == 0 ? 1.0 : gathered[a - 1];
    double acc = 0.0;
    for (size_t b = 0; b < stride_; ++b) {
      acc += m[a * stride_ + b] * (b == 0 ? 1.0 : gathered[b - 1]);
    }
    quad += za * acc;
  }
  return t95_ * sigma_ * std::sqrt(std::max(0.0, 1.0 + quad));
}

CostDistribution CompiledEquations::EvaluateDistribution(
    const std::vector<double>& features, double probing_cost,
    double band_fraction) const {
  CheckFeatureWidth(features);
  std::vector<double> gathered(selected_.size());
  GatherSelected(features.data(), gathered.data());

  const int state = StateOf(probing_cost);
  // Soft membership: find the nearest internal boundary of `state` and, if
  // the probing cost sits inside its band, blend the state across it.
  int neighbor = -1;
  double weight_neighbor = 0.0;
  if (!boundaries_.empty() && band_fraction > 0.0 &&
      std::isfinite(probing_cost)) {
    double boundary = 0.0;
    double distance = std::numeric_limits<double>::infinity();
    if (state > 0) {
      boundary = boundaries_[static_cast<size_t>(state) - 1];
      distance = std::abs(probing_cost - boundary);
      neighbor = state - 1;
    }
    if (state < static_cast<int>(boundaries_.size())) {
      const double above = boundaries_[static_cast<size_t>(state)];
      if (std::abs(above - probing_cost) < distance) {
        boundary = above;
        distance = std::abs(above - probing_cost);
        neighbor = state + 1;
      }
    }
    // The band scales with the boundary's magnitude, so "near" means the
    // same relative probe jitter at every contention level.
    const double band = band_fraction * std::abs(boundary);
    if (neighbor >= 0 && distance < band) {
      weight_neighbor = 0.5 * (1.0 - distance / band);
    } else {
      neighbor = -1;
    }
  }

  CostDistribution out;
  out.has_interval = has_intervals_;
  double means[2] = {0.0, 0.0};
  double halves[2] = {0.0, 0.0};
  double weights[2] = {1.0 - weight_neighbor, weight_neighbor};
  const int members[2] = {state, neighbor};
  const int n = neighbor >= 0 ? 2 : 1;
  for (int i = 0; i < n; ++i) {
    EvaluateRowsInState(members[i], gathered.data(), 1, &means[i]);
    halves[i] = IntervalHalfWidthInState(gathered.data(), members[i]);
    out.mean += weights[i] * means[i];
  }
  double spread = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = means[i] - out.mean;
    spread += weights[i] * (halves[i] * halves[i] + d * d);
  }
  const double half = std::sqrt(spread);
  out.low = std::max(0.0, out.mean - half);
  out.high = out.mean + half;
  return out;
}

void CompiledEquations::StateInterval(int state, double* lo,
                                      double* hi) const {
  MSCM_CHECK(state >= 0 && state < num_states());
  const size_t s = static_cast<size_t>(state);
  *lo = s == 0 ? -std::numeric_limits<double>::infinity()
               : boundaries_[s - 1];
  *hi = s >= boundaries_.size() ? std::numeric_limits<double>::infinity()
                                : boundaries_[s];
}

std::string CompiledEquations::ToString() const {
  std::string out = Format("compiled equations: %d state(s), %zu slope(s)\n",
                           num_states(), num_selected());
  for (int s = 0; s < num_states(); ++s) {
    const double* r = row(s);
    std::vector<std::string> terms;
    terms.push_back(CompactDouble(r[0]));
    for (size_t j = 0; j < selected_.size(); ++j) {
      terms.push_back(Format("%s*x[%d]", CompactDouble(r[j + 1]).c_str(),
                             selected_[j]));
    }
    out += Format("  state %d: cost = %s\n", s, Join(terms, " + ").c_str());
  }
  return out;
}

}  // namespace mscm::core
