#include "core/compiled_equations.h"

#include <algorithm>
#include <limits>

#include "common/str_util.h"

namespace mscm::core {

CompiledEquations CompiledEquations::Compile(
    const std::vector<int>& selected, const ContentionStates& states,
    const DesignLayout& layout, const std::vector<double>& coefficients) {
  MSCM_CHECK_MSG(layout.num_selected() ==
                     static_cast<int>(selected.size()),
                 "layout/selection width mismatch");
  MSCM_CHECK_MSG(layout.num_states() == states.num_states(),
                 "layout/partition state-count mismatch");
  MSCM_CHECK_MSG(coefficients.size() == layout.num_columns(),
                 "coefficient vector does not match the design layout");

  // Validate the feature-index remap once, here, instead of per estimate:
  // slope j of every state reads features[selected[j]].
  size_t min_features = 0;
  for (int idx : selected) {
    MSCM_CHECK_MSG(idx >= 0, "negative selected feature index");
    min_features = std::max(min_features, static_cast<size_t>(idx) + 1);
  }

  const int num_states = states.num_states();
  const size_t stride = selected.size() + 1;
  std::vector<double> table(static_cast<size_t>(num_states) * stride, 0.0);
  for (int s = 0; s < num_states; ++s) {
    double* row = &table[static_cast<size_t>(s) * stride];
    for (int v = -1; v < static_cast<int>(selected.size()); ++v) {
      const int col = layout.ColumnOf(v, s);
      MSCM_CHECK_MSG(col >= 0, "design layout missing a (variable, state) "
                               "coefficient column");
      row[static_cast<size_t>(v + 1)] =
          coefficients[static_cast<size_t>(col)];
    }
  }
  return CompiledEquations(std::move(table), states.boundaries(), selected,
                           min_features);
}

void CompiledEquations::StateInterval(int state, double* lo,
                                      double* hi) const {
  MSCM_CHECK(state >= 0 && state < num_states());
  const size_t s = static_cast<size_t>(state);
  *lo = s == 0 ? -std::numeric_limits<double>::infinity()
               : boundaries_[s - 1];
  *hi = s >= boundaries_.size() ? std::numeric_limits<double>::infinity()
                                : boundaries_[s];
}

std::string CompiledEquations::ToString() const {
  std::string out = Format("compiled equations: %d state(s), %zu slope(s)\n",
                           num_states(), num_selected());
  for (int s = 0; s < num_states(); ++s) {
    const double* r = row(s);
    std::vector<std::string> terms;
    terms.push_back(CompactDouble(r[0]));
    for (size_t j = 0; j < selected_.size(); ++j) {
      terms.push_back(Format("%s*x[%d]", CompactDouble(r[j + 1]).c_str(),
                             selected_[j]));
    }
    out += Format("  state %d: cost = %s\n", s, Join(terms, " + ").c_str());
  }
  return out;
}

}  // namespace mscm::core
