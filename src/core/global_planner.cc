#include "core/global_planner.h"

#include <limits>

namespace mscm::core {

PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates) {
  PlacementDecision decision;
  decision.estimates.reserve(candidates.size());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const ComponentQueryCandidate& c = candidates[i];
    // Placement pricing is a serving path: evaluate the compiled per-state
    // table, not the derivation artifact.
    const CompiledEquations* equations =
        catalog.FindCompiled(c.site, c.class_id);
    double estimate = std::numeric_limits<double>::infinity();
    if (equations != nullptr) {
      estimate = equations->Evaluate(c.features, c.probing_cost) +
                 c.shipping_seconds;
    }
    decision.estimates.push_back(estimate);
    if (estimate < best) {
      best = estimate;
      decision.chosen = static_cast<int>(i);
    }
  }
  return decision;
}

}  // namespace mscm::core
