#include "core/global_planner.h"

#include <cmath>
#include <limits>

namespace mscm::core {
namespace {

bool FiniteInputs(const ComponentQueryCandidate& c) {
  if (!std::isfinite(c.probing_cost) || !std::isfinite(c.shipping_seconds) ||
      c.shipping_seconds < 0.0) {
    return false;
  }
  for (double f : c.features) {
    if (!std::isfinite(f)) return false;
  }
  return true;
}

}  // namespace

PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates,
    const PlacementRanking& ranking) {
  PlacementDecision decision;
  decision.estimates.reserve(candidates.size());
  decision.distributions.reserve(candidates.size());
  decision.scores.reserve(candidates.size());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const ComponentQueryCandidate& c = candidates[i];
    // Placement pricing is a serving path: evaluate the compiled per-state
    // table, not the derivation artifact.
    const CompiledEquations* equations =
        catalog.FindCompiled(c.site, c.class_id);
    double estimate = std::numeric_limits<double>::infinity();
    double score = std::numeric_limits<double>::infinity();
    CostDistribution distribution;
    // A NaN feature would evaluate through the negative clamp to 0 and win
    // every argmin; non-finite inputs keep the candidate unservable instead.
    if (equations != nullptr && FiniteInputs(c)) {
      estimate = equations->Evaluate(c.features, c.probing_cost) +
                 c.shipping_seconds;
      distribution = equations->EvaluateDistribution(
          c.features, c.probing_cost, ranking.boundary_band_fraction);
      score = PlacementScore(ranking, distribution,
                             estimate - c.shipping_seconds,
                             c.shipping_seconds);
    }
    decision.estimates.push_back(estimate);
    decision.distributions.push_back(distribution);
    decision.scores.push_back(score);
    // Strict < keeps the lowest-index winner on ties (deterministic).
    if (std::isfinite(score) && score < best) {
      best = score;
      decision.chosen = static_cast<int>(i);
    }
  }
  return decision;
}

PlacementDecision ChoosePlacement(
    const GlobalCatalog& catalog,
    const std::vector<ComponentQueryCandidate>& candidates) {
  return ChoosePlacement(catalog, candidates, PlacementRanking{});
}

}  // namespace mscm::core
