// Explanatory-variable sets per query class (paper Table 3) and feature
// extraction from executed queries.
//
// Basic variables capture cardinalities (operand, intermediate, result
// sizes); secondary variables capture tuple lengths and table byte lengths.
// The mixed backward/forward selection procedure (§4.2) starts from the full
// basic set and considers adding secondary ones.

#ifndef MSCM_CORE_EXPLANATORY_H_
#define MSCM_CORE_EXPLANATORY_H_

#include <string>
#include <vector>

#include "core/query_class.h"
#include "engine/executor.h"

namespace mscm::core {

struct VariableDef {
  std::string name;
  bool basic = true;
};

class VariableSet {
 public:
  static VariableSet ForClass(QueryClassId id);

  size_t size() const { return defs_.size(); }
  const VariableDef& def(size_t i) const { return defs_[i]; }
  const std::string& name(size_t i) const { return defs_[i].name; }

  std::vector<int> BasicIndices() const;
  std::vector<int> SecondaryIndices() const;

 private:
  explicit VariableSet(std::vector<VariableDef> defs)
      : defs_(std::move(defs)) {}
  std::vector<VariableDef> defs_;
};

// Feature vectors in the order of VariableSet::ForClass for the matching
// class family. Sizes are scaled (cardinalities in kilo-tuples, lengths in
// KB) so regression coefficients stay O(1)–O(100) and well conditioned.
std::vector<double> ExtractUnaryFeatures(const engine::SelectExecution& exec);
std::vector<double> ExtractJoinFeatures(const engine::JoinExecution& exec);

// Planning-time feature estimation: the same vectors predicted from catalog
// statistics *without executing the query* — what the global optimizer
// actually has when it costs candidate placements. Cardinalities come from
// uniform-assumption selectivities; join results from the standard
// |L'|·|R'| / max(d_left, d_right) equijoin estimate.
std::vector<double> EstimateUnaryFeatures(const engine::Database& db,
                                          const engine::SelectQuery& query,
                                          const engine::PlannerRules& rules);
std::vector<double> EstimateJoinFeatures(const engine::Database& db,
                                         const engine::JoinQuery& query,
                                         const engine::PlannerRules& rules);

}  // namespace mscm::core

#endif  // MSCM_CORE_EXPLANATORY_H_
