#include "core/model_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace mscm::core {
namespace {

constexpr char kHeader[] = "mscm-cost-model v1";
constexpr char kCatalogHeader[] = "mscm-catalog v1";

void AppendDoubles(std::string& out, const char* key,
                   const std::vector<double>& values) {
  out += key;
  for (double v : values) out += Format(" %.17g", v);
  out += "\n";
}

void AppendInts(std::string& out, const char* key,
                const std::vector<int>& values) {
  out += key;
  for (int v : values) out += Format(" %d", v);
  out += "\n";
}

// Splits a line into its first token and the remaining tokens.
bool SplitLine(const std::string& line, std::string& key,
               std::vector<std::string>& tokens) {
  std::istringstream iss(line);
  if (!(iss >> key)) return false;
  tokens.clear();
  std::string t;
  while (iss >> t) tokens.push_back(t);
  return true;
}

bool ParseDoubles(const std::vector<std::string>& tokens,
                  std::vector<double>& out) {
  out.clear();
  for (const std::string& t : tokens) {
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') return false;
    out.push_back(v);
  }
  return true;
}

bool ParseInts(const std::vector<std::string>& tokens, std::vector<int>& out) {
  out.clear();
  for (const std::string& t : tokens) {
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0') return false;
    out.push_back(static_cast<int>(v));
  }
  return true;
}

bool ParseU64(const std::string& t, uint64_t& out) {
  if (t.empty() || t[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (end == t.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

std::string SerializeCostModel(const CostModel& model) {
  std::string out;
  out += kHeader;
  out += "\n";
  out += Format("class %d\n", static_cast<int>(model.class_id()));
  out += Format("form %d\n", static_cast<int>(model.layout().form()));
  AppendDoubles(out, "states", model.states().boundaries());
  AppendInts(out, "selected", model.selected_variables());
  AppendDoubles(out, "coefficients", model.fit().coefficients);
  out += Format("stats %.17g %.17g %.17g %.17g %zu\n", model.r_squared(),
                model.standard_error(), model.f_statistic(),
                model.f_pvalue(), model.fit().n);
  // The interval structure: (X'X)^{-1}, row-major, prefixed by its
  // dimension. %.17g round-trips doubles exactly, so a loaded model's
  // prediction intervals match the in-process fit's.
  const stats::Matrix& xtx_inverse = model.fit().xtx_inverse;
  if (!xtx_inverse.empty()) {
    out += Format("xtxinv %zu", xtx_inverse.rows());
    for (size_t r = 0; r < xtx_inverse.rows(); ++r) {
      for (size_t c = 0; c < xtx_inverse.cols(); ++c) {
        out += Format(" %.17g", xtx_inverse(r, c));
      }
    }
    out += "\n";
  }
  // The adaptation overlay (generation, forgetting factor, and per-state
  // RLS row + covariance), appended only when the model has one, so records
  // written by earlier versions — and unadapted models today — are
  // byte-identical to before. %.17g round-trips the adapted rows exactly:
  // an adapted-then-persisted model serves bit-identical estimates after
  // reload (tests/model_io_test.cc pins this).
  const ModelAdaptationState& adaptation = model.adaptation();
  if (!adaptation.empty()) {
    out += Format("generation %llu\n",
                  static_cast<unsigned long long>(adaptation.generation));
    out += Format("forgetting %.17g\n", adaptation.forgetting);
    for (const auto& [state, st] : adaptation.states) {
      out += Format("adapted %d %llu", state,
                    static_cast<unsigned long long>(st.updates));
      for (double v : st.row) out += Format(" %.17g", v);
      out += "\n";
      if (!st.covariance.empty()) {
        out += Format("adaptcov %d", state);
        for (double v : st.covariance) out += Format(" %.17g", v);
        out += "\n";
      }
    }
  }
  out += "end\n";
  return out;
}

std::optional<CostModel> ParseCostModel(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  if (!std::getline(iss, line) || line != kHeader) return std::nullopt;

  std::optional<int> class_id;
  std::optional<int> form;
  std::vector<double> boundaries;
  std::vector<int> selected;
  std::vector<double> coefficients;
  std::vector<double> stats_values;
  std::vector<double> xtx_values;
  size_t xtx_rows = 0;
  bool saw_xtx = false;
  bool saw_states = false;
  bool saw_coeffs = false;
  bool saw_end = false;

  // Adaptation overlay lines (absent in legacy records). Collected raw and
  // validated against the reconstructed layout after the loop — a tampered
  // overlay rejects the whole record, never loads as a silently unadapted
  // model.
  uint64_t generation = 0;
  bool saw_generation = false;
  double forgetting = 1.0;
  struct RawAdapted {
    int state = 0;
    uint64_t updates = 0;
    std::vector<double> row;
  };
  std::vector<RawAdapted> adapted_rows;
  std::vector<std::pair<int, std::vector<double>>> adapted_covs;

  while (std::getline(iss, line)) {
    std::string key;
    std::vector<std::string> tokens;
    if (!SplitLine(line, key, tokens)) continue;
    if (key == "class") {
      std::vector<int> v;
      if (!ParseInts(tokens, v) || v.size() != 1) return std::nullopt;
      class_id = v[0];
    } else if (key == "form") {
      std::vector<int> v;
      if (!ParseInts(tokens, v) || v.size() != 1) return std::nullopt;
      form = v[0];
    } else if (key == "states") {
      if (!ParseDoubles(tokens, boundaries)) return std::nullopt;
      saw_states = true;
    } else if (key == "selected") {
      if (!ParseInts(tokens, selected)) return std::nullopt;
    } else if (key == "coefficients") {
      if (!ParseDoubles(tokens, coefficients)) return std::nullopt;
      saw_coeffs = true;
    } else if (key == "stats") {
      if (!ParseDoubles(tokens, stats_values) || stats_values.size() != 5) {
        return std::nullopt;
      }
    } else if (key == "xtxinv") {
      // Optional covariance structure: `xtxinv <p>` followed by p*p
      // row-major finite doubles. Malformed dimensions or values reject the
      // whole record — a model with a corrupt interval structure must not
      // load as a model that silently has none.
      if (tokens.empty()) return std::nullopt;
      std::vector<int> dim;
      if (!ParseInts({tokens[0]}, dim) || dim[0] <= 0) return std::nullopt;
      xtx_rows = static_cast<size_t>(dim[0]);
      if (!ParseDoubles({tokens.begin() + 1, tokens.end()}, xtx_values)) {
        return std::nullopt;
      }
      if (xtx_values.size() != xtx_rows * xtx_rows) return std::nullopt;
      for (double v : xtx_values) {
        if (!std::isfinite(v)) return std::nullopt;
      }
      saw_xtx = true;
    } else if (key == "generation") {
      if (tokens.size() != 1 || !ParseU64(tokens[0], generation)) {
        return std::nullopt;
      }
      saw_generation = true;
    } else if (key == "forgetting") {
      std::vector<double> v;
      if (!ParseDoubles(tokens, v) || v.size() != 1 ||
          !std::isfinite(v[0]) || v[0] <= 0.0 || v[0] > 1.0) {
        return std::nullopt;
      }
      forgetting = v[0];
    } else if (key == "adapted") {
      // `adapted <state> <updates> <stride row values>` — one adapted
      // compiled row.
      if (tokens.size() < 2) return std::nullopt;
      RawAdapted raw;
      std::vector<int> state_v;
      if (!ParseInts({tokens[0]}, state_v) ||
          !ParseU64(tokens[1], raw.updates)) {
        return std::nullopt;
      }
      raw.state = state_v[0];
      if (!ParseDoubles({tokens.begin() + 2, tokens.end()}, raw.row) ||
          raw.row.empty() || !AllFinite(raw.row)) {
        return std::nullopt;
      }
      adapted_rows.push_back(std::move(raw));
    } else if (key == "adaptcov") {
      // `adaptcov <state> <stride^2 values>` — the state's RLS covariance.
      if (tokens.size() < 2) return std::nullopt;
      std::vector<int> state_v;
      std::vector<double> values;
      if (!ParseInts({tokens[0]}, state_v) ||
          !ParseDoubles({tokens.begin() + 1, tokens.end()}, values) ||
          !AllFinite(values)) {
        return std::nullopt;
      }
      adapted_covs.emplace_back(state_v[0], std::move(values));
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;  // unknown key
    }
  }
  if (!class_id.has_value() || !form.has_value() || !saw_states ||
      !saw_coeffs || !saw_end) {
    return std::nullopt;
  }
  if (*class_id < 0 ||
      *class_id > static_cast<int>(QueryClassId::kJoinIndex)) {
    return std::nullopt;
  }
  if (*form < 0 || *form > static_cast<int>(QualitativeForm::kGeneral)) {
    return std::nullopt;
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return std::nullopt;
  }
  const QueryClassId cls = static_cast<QueryClassId>(*class_id);
  const QualitativeForm qform = static_cast<QualitativeForm>(*form);
  // Selected variables must index into the class variable set.
  const VariableSet vars = VariableSet::ForClass(cls);
  for (int v : selected) {
    if (v < 0 || static_cast<size_t>(v) >= vars.size()) return std::nullopt;
  }

  ContentionStates states = ContentionStates::FromBoundaries(boundaries);
  DesignLayout layout = DesignLayout::Make(
      static_cast<int>(selected.size()), qform, states.num_states());
  if (coefficients.size() != layout.num_columns()) return std::nullopt;

  stats::OlsResult fit;
  fit.coefficients = coefficients;
  fit.p = coefficients.size();
  if (stats_values.size() == 5) {
    fit.r_squared = stats_values[0];
    fit.standard_error = stats_values[1];
    fit.f_statistic = stats_values[2];
    fit.f_pvalue = stats_values[3];
    fit.n = static_cast<size_t>(stats_values[4]);
  }
  if (saw_xtx) {
    // The covariance must match the design width exactly; anything else is
    // a record assembled from mismatched pieces.
    if (xtx_rows != coefficients.size()) return std::nullopt;
    stats::Matrix xtx_inverse(xtx_rows, xtx_rows);
    for (size_t r = 0; r < xtx_rows; ++r) {
      for (size_t c = 0; c < xtx_rows; ++c) {
        xtx_inverse(r, c) = xtx_values[r * xtx_rows + c];
      }
    }
    fit.xtx_inverse = std::move(xtx_inverse);
  }

  // Reassemble the adaptation overlay, fail-closed: adapted rows demand a
  // nonzero generation (a zero-generation model by definition serves the
  // base fit), states must lie in the partition with exactly stride row
  // values, covariances must pair with an adapted row at stride^2 values,
  // and duplicates reject.
  ModelAdaptationState adaptation;
  if (!adapted_rows.empty() && (!saw_generation || generation == 0)) {
    return std::nullopt;
  }
  if (!adapted_covs.empty() && adapted_rows.empty()) return std::nullopt;
  adaptation.generation = generation;
  adaptation.forgetting = forgetting;
  const size_t stride = selected.size() + 1;
  for (RawAdapted& raw : adapted_rows) {
    if (raw.state < 0 || raw.state >= states.num_states()) {
      return std::nullopt;
    }
    if (raw.row.size() != stride) return std::nullopt;
    if (adaptation.states.count(raw.state) != 0) return std::nullopt;
    StateAdaptation& slot = adaptation.states[raw.state];
    slot.row = std::move(raw.row);
    slot.updates = raw.updates;
  }
  for (auto& [cov_state, values] : adapted_covs) {
    auto it = adaptation.states.find(cov_state);
    if (it == adaptation.states.end()) return std::nullopt;
    if (values.size() != stride * stride) return std::nullopt;
    if (!it->second.covariance.empty()) return std::nullopt;
    it->second.covariance = std::move(values);
  }

  if (adaptation.empty()) {
    return CostModel(cls, selected, std::move(states), std::move(layout),
                     std::move(fit));
  }
  return CostModel(cls, selected, std::move(states), std::move(layout),
                   std::move(fit), std::move(adaptation));
}

std::string SerializeCatalog(const GlobalCatalog& catalog) {
  std::string out;
  out += kCatalogHeader;
  out += "\n";
  for (const auto& [site, class_id] : catalog.Entries()) {
    const CostModel* model = catalog.Find(site, class_id);
    MSCM_CHECK(model != nullptr);
    out += Format("site %s\n", site.c_str());
    out += SerializeCostModel(*model);
  }
  return out;
}

std::optional<GlobalCatalog> ParseCatalog(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  if (!std::getline(iss, line) || line != kCatalogHeader) return std::nullopt;

  GlobalCatalog catalog;
  std::string site;
  std::string record;
  bool in_record = false;
  while (std::getline(iss, line)) {
    if (line.rfind("site ", 0) == 0) {
      site = line.substr(5);
      in_record = false;
      record.clear();
      continue;
    }
    if (line == kHeader) {
      in_record = true;
      record = line + "\n";
      continue;
    }
    if (!in_record) return std::nullopt;
    record += line + "\n";
    if (line == "end") {
      if (site.empty()) return std::nullopt;
      auto model = ParseCostModel(record);
      if (!model.has_value()) return std::nullopt;
      catalog.Register(site, std::move(*model));
      in_record = false;
    }
  }
  return catalog;
}

bool SaveCatalogToFile(const GlobalCatalog& catalog,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeCatalog(catalog);
  return static_cast<bool>(file);
}

std::optional<GlobalCatalog> LoadCatalogFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseCatalog(buffer.str());
}

}  // namespace mscm::core
