#include "core/model_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace mscm::core {
namespace {

constexpr char kHeader[] = "mscm-cost-model v1";
constexpr char kCatalogHeader[] = "mscm-catalog v1";

void AppendDoubles(std::string& out, const char* key,
                   const std::vector<double>& values) {
  out += key;
  for (double v : values) out += Format(" %.17g", v);
  out += "\n";
}

void AppendInts(std::string& out, const char* key,
                const std::vector<int>& values) {
  out += key;
  for (int v : values) out += Format(" %d", v);
  out += "\n";
}

// Splits a line into its first token and the remaining tokens.
bool SplitLine(const std::string& line, std::string& key,
               std::vector<std::string>& tokens) {
  std::istringstream iss(line);
  if (!(iss >> key)) return false;
  tokens.clear();
  std::string t;
  while (iss >> t) tokens.push_back(t);
  return true;
}

bool ParseDoubles(const std::vector<std::string>& tokens,
                  std::vector<double>& out) {
  out.clear();
  for (const std::string& t : tokens) {
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') return false;
    out.push_back(v);
  }
  return true;
}

bool ParseInts(const std::vector<std::string>& tokens, std::vector<int>& out) {
  out.clear();
  for (const std::string& t : tokens) {
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0') return false;
    out.push_back(static_cast<int>(v));
  }
  return true;
}

}  // namespace

std::string SerializeCostModel(const CostModel& model) {
  std::string out;
  out += kHeader;
  out += "\n";
  out += Format("class %d\n", static_cast<int>(model.class_id()));
  out += Format("form %d\n", static_cast<int>(model.layout().form()));
  AppendDoubles(out, "states", model.states().boundaries());
  AppendInts(out, "selected", model.selected_variables());
  AppendDoubles(out, "coefficients", model.fit().coefficients);
  out += Format("stats %.17g %.17g %.17g %.17g %zu\n", model.r_squared(),
                model.standard_error(), model.f_statistic(),
                model.f_pvalue(), model.fit().n);
  // The interval structure: (X'X)^{-1}, row-major, prefixed by its
  // dimension. %.17g round-trips doubles exactly, so a loaded model's
  // prediction intervals match the in-process fit's.
  const stats::Matrix& xtx_inverse = model.fit().xtx_inverse;
  if (!xtx_inverse.empty()) {
    out += Format("xtxinv %zu", xtx_inverse.rows());
    for (size_t r = 0; r < xtx_inverse.rows(); ++r) {
      for (size_t c = 0; c < xtx_inverse.cols(); ++c) {
        out += Format(" %.17g", xtx_inverse(r, c));
      }
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

std::optional<CostModel> ParseCostModel(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  if (!std::getline(iss, line) || line != kHeader) return std::nullopt;

  std::optional<int> class_id;
  std::optional<int> form;
  std::vector<double> boundaries;
  std::vector<int> selected;
  std::vector<double> coefficients;
  std::vector<double> stats_values;
  std::vector<double> xtx_values;
  size_t xtx_rows = 0;
  bool saw_xtx = false;
  bool saw_states = false;
  bool saw_coeffs = false;
  bool saw_end = false;

  while (std::getline(iss, line)) {
    std::string key;
    std::vector<std::string> tokens;
    if (!SplitLine(line, key, tokens)) continue;
    if (key == "class") {
      std::vector<int> v;
      if (!ParseInts(tokens, v) || v.size() != 1) return std::nullopt;
      class_id = v[0];
    } else if (key == "form") {
      std::vector<int> v;
      if (!ParseInts(tokens, v) || v.size() != 1) return std::nullopt;
      form = v[0];
    } else if (key == "states") {
      if (!ParseDoubles(tokens, boundaries)) return std::nullopt;
      saw_states = true;
    } else if (key == "selected") {
      if (!ParseInts(tokens, selected)) return std::nullopt;
    } else if (key == "coefficients") {
      if (!ParseDoubles(tokens, coefficients)) return std::nullopt;
      saw_coeffs = true;
    } else if (key == "stats") {
      if (!ParseDoubles(tokens, stats_values) || stats_values.size() != 5) {
        return std::nullopt;
      }
    } else if (key == "xtxinv") {
      // Optional covariance structure: `xtxinv <p>` followed by p*p
      // row-major finite doubles. Malformed dimensions or values reject the
      // whole record — a model with a corrupt interval structure must not
      // load as a model that silently has none.
      if (tokens.empty()) return std::nullopt;
      std::vector<int> dim;
      if (!ParseInts({tokens[0]}, dim) || dim[0] <= 0) return std::nullopt;
      xtx_rows = static_cast<size_t>(dim[0]);
      if (!ParseDoubles({tokens.begin() + 1, tokens.end()}, xtx_values)) {
        return std::nullopt;
      }
      if (xtx_values.size() != xtx_rows * xtx_rows) return std::nullopt;
      for (double v : xtx_values) {
        if (!std::isfinite(v)) return std::nullopt;
      }
      saw_xtx = true;
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;  // unknown key
    }
  }
  if (!class_id.has_value() || !form.has_value() || !saw_states ||
      !saw_coeffs || !saw_end) {
    return std::nullopt;
  }
  if (*class_id < 0 ||
      *class_id > static_cast<int>(QueryClassId::kJoinIndex)) {
    return std::nullopt;
  }
  if (*form < 0 || *form > static_cast<int>(QualitativeForm::kGeneral)) {
    return std::nullopt;
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return std::nullopt;
  }
  const QueryClassId cls = static_cast<QueryClassId>(*class_id);
  const QualitativeForm qform = static_cast<QualitativeForm>(*form);
  // Selected variables must index into the class variable set.
  const VariableSet vars = VariableSet::ForClass(cls);
  for (int v : selected) {
    if (v < 0 || static_cast<size_t>(v) >= vars.size()) return std::nullopt;
  }

  ContentionStates states = ContentionStates::FromBoundaries(boundaries);
  DesignLayout layout = DesignLayout::Make(
      static_cast<int>(selected.size()), qform, states.num_states());
  if (coefficients.size() != layout.num_columns()) return std::nullopt;

  stats::OlsResult fit;
  fit.coefficients = coefficients;
  fit.p = coefficients.size();
  if (stats_values.size() == 5) {
    fit.r_squared = stats_values[0];
    fit.standard_error = stats_values[1];
    fit.f_statistic = stats_values[2];
    fit.f_pvalue = stats_values[3];
    fit.n = static_cast<size_t>(stats_values[4]);
  }
  if (saw_xtx) {
    // The covariance must match the design width exactly; anything else is
    // a record assembled from mismatched pieces.
    if (xtx_rows != coefficients.size()) return std::nullopt;
    stats::Matrix xtx_inverse(xtx_rows, xtx_rows);
    for (size_t r = 0; r < xtx_rows; ++r) {
      for (size_t c = 0; c < xtx_rows; ++c) {
        xtx_inverse(r, c) = xtx_values[r * xtx_rows + c];
      }
    }
    fit.xtx_inverse = std::move(xtx_inverse);
  }
  return CostModel(cls, selected, std::move(states), std::move(layout),
                   std::move(fit));
}

std::string SerializeCatalog(const GlobalCatalog& catalog) {
  std::string out;
  out += kCatalogHeader;
  out += "\n";
  for (const auto& [site, class_id] : catalog.Entries()) {
    const CostModel* model = catalog.Find(site, class_id);
    MSCM_CHECK(model != nullptr);
    out += Format("site %s\n", site.c_str());
    out += SerializeCostModel(*model);
  }
  return out;
}

std::optional<GlobalCatalog> ParseCatalog(const std::string& text) {
  std::istringstream iss(text);
  std::string line;
  if (!std::getline(iss, line) || line != kCatalogHeader) return std::nullopt;

  GlobalCatalog catalog;
  std::string site;
  std::string record;
  bool in_record = false;
  while (std::getline(iss, line)) {
    if (line.rfind("site ", 0) == 0) {
      site = line.substr(5);
      in_record = false;
      record.clear();
      continue;
    }
    if (line == kHeader) {
      in_record = true;
      record = line + "\n";
      continue;
    }
    if (!in_record) return std::nullopt;
    record += line + "\n";
    if (line == "end") {
      if (site.empty()) return std::nullopt;
      auto model = ParseCostModel(record);
      if (!model.has_value()) return std::nullopt;
      catalog.Register(site, std::move(*model));
      in_record = false;
    }
  }
  return catalog;
}

bool SaveCatalogToFile(const GlobalCatalog& catalog,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << SerializeCatalog(catalog);
  return static_cast<bool>(file);
}

std::optional<GlobalCatalog> LoadCatalogFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseCatalog(buffer.str());
}

}  // namespace mscm::core
