#include "core/model_builder.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/sampling.h"

namespace mscm::core {
namespace {

BuildReport RunPipeline(QueryClassId class_id, ObservationSet observations,
                        const ModelBuildOptions& options,
                        ObservationSource* source) {
  MSCM_CHECK(!observations.empty());
  const VariableSet variables = VariableSet::ForClass(class_id);
  const std::vector<int> basic = variables.BasicIndices();

  ModelBuildOptions opts = options;
  opts.states.form = options.form;
  opts.selection.form = options.form;

  // Phase A: contention-state determination on the full basic model.
  StateDeterminationResult state_result = [&]() {
    switch (opts.algorithm) {
      case StateAlgorithm::kSingleState: {
        CostModel m = FitCostModel(class_id, observations, basic,
                                   ContentionStates::Single(), opts.form);
        const double r2 = m.r_squared();
        return StateDeterminationResult{std::move(m), 0, 0, {r2}};
      }
      case StateAlgorithm::kIupma:
        return DetermineStatesIupma(class_id, observations, basic,
                                    opts.states);
      case StateAlgorithm::kIcma:
        return DetermineStatesIcma(class_id, observations, basic, opts.states,
                                   source);
    }
    MSCM_CHECK(false);
    // Unreachable.
    CostModel m = FitCostModel(class_id, observations, basic,
                               ContentionStates::Single(), opts.form);
    return StateDeterminationResult{std::move(m), 0, 0, {}};
  }();

  const ContentionStates states = state_result.model.states();

  // Phase B: variable selection with the chosen states.
  VariableSelectionTrace trace;
  const std::vector<int> selected = SelectVariables(
      class_id, observations, variables, states, opts.selection, &trace);

  // Phase C: final fit; selection may have changed the coefficient
  // structure, so give the merging adjustment one more chance to simplify.
  CostModel model =
      FitCostModel(class_id, observations, selected, states, opts.form);
  int extra_merges = 0;
  while (model.states().num_states() > 1) {
    int best_state = -1;
    double best_gap = opts.states.merge_threshold;
    for (int s = 0; s < model.states().num_states() - 1; ++s) {
      double gap = 0.0;
      constexpr double kTiny = 1e-9;
      for (int v = -1; v < model.layout().num_selected(); ++v) {
        const double a = model.CoefficientFor(v, s);
        const double b = model.CoefficientFor(v, s + 1);
        const double denom =
            std::max({std::fabs(a), std::fabs(b), kTiny});
        gap = std::max(gap, std::fabs(a - b) / denom);
      }
      if (gap < best_gap) {
        best_gap = gap;
        best_state = s;
      }
    }
    if (best_state < 0) break;
    ContentionStates merged = model.states();
    merged.MergeAdjacent(best_state);
    model = FitCostModel(class_id, observations, selected, merged, opts.form);
    ++extra_merges;
  }

  BuildReport report{std::move(model),
                     std::move(observations),
                     std::move(trace),
                     state_result.growth_iterations,
                     state_result.merges + extra_merges,
                     std::move(state_result.r2_by_state_count)};
  return report;
}

}  // namespace

const char* ToString(StateAlgorithm a) {
  switch (a) {
    case StateAlgorithm::kSingleState:
      return "single-state";
    case StateAlgorithm::kIupma:
      return "IUPMA";
    case StateAlgorithm::kIcma:
      return "ICMA";
  }
  return "?";
}

ObservationSet DrawObservations(ObservationSource& source, int n) {
  MSCM_CHECK(n > 0);
  ObservationSet out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(source.Draw());
  return out;
}

std::optional<ObservationSet> TryDrawObservations(ObservationSource& source,
                                                  int n) {
  MSCM_CHECK(n > 0);
  ObservationSet out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::optional<Observation> obs = source.TryDraw();
    if (!obs.has_value()) return std::nullopt;
    out.push_back(std::move(*obs));
  }
  return out;
}

BuildReport BuildCostModel(QueryClassId class_id, ObservationSource& source,
                           const ModelBuildOptions& options) {
  const VariableSet variables = VariableSet::ForClass(class_id);
  const int n = options.sample_size > 0
                    ? options.sample_size
                    : RecommendedSampleSize(
                          static_cast<int>(variables.BasicIndices().size()),
                          options.expected_max_states);
  ObservationSet observations = DrawObservations(source, n);
  return RunPipeline(class_id, std::move(observations), options, &source);
}

BuildReport BuildCostModelFromObservations(QueryClassId class_id,
                                           ObservationSet observations,
                                           const ModelBuildOptions& options) {
  return RunPipeline(class_id, std::move(observations), options, nullptr);
}

}  // namespace mscm::core
