#include "core/probing_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/str_util.h"
#include "stats/matrix.h"

namespace mscm::core {
namespace {

stats::Matrix BuildDesign(const std::vector<sim::SystemStats>& stats,
                          const std::vector<int>& selected) {
  stats::Matrix x(stats.size(), selected.size() + 1);
  for (size_t r = 0; r < stats.size(); ++r) {
    const std::vector<double> f = ProbingCostEstimator::StatFeatures(stats[r]);
    x(r, 0) = 1.0;
    for (size_t c = 0; c < selected.size(); ++c) {
      x(r, c + 1) = f[static_cast<size_t>(selected[c])];
    }
  }
  return x;
}

}  // namespace

std::vector<double> ProbingCostEstimator::StatFeatures(
    const sim::SystemStats& stats) {
  return {
      stats.load_avg_1,
      stats.pct_user,
      stats.pct_system,
      stats.pct_idle,
      stats.mem_used,
      stats.swap_used,
      stats.reads_per_sec,
      stats.writes_per_sec,
      stats.pct_disk_util,
      stats.context_switches_per_sec,
  };
}

const std::vector<std::string>& ProbingCostEstimator::StatNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "load_avg_1",      "pct_user",       "pct_system",
      "pct_idle",        "mem_used",       "swap_used",
      "reads_per_sec",   "writes_per_sec", "pct_disk_util",
      "ctx_switches_ps",
  };
  return *names;
}

double ProbingCostEstimator::Estimate(const sim::SystemStats& stats) const {
  const std::vector<double> f = StatFeatures(stats);
  double acc = fit_.coefficients[0];
  for (size_t c = 0; c < selected_.size(); ++c) {
    acc += fit_.coefficients[c + 1] * f[static_cast<size_t>(selected_[c])];
  }
  return std::max(0.0, acc);
}

std::string ProbingCostEstimator::ToString() const {
  std::vector<std::string> terms;
  terms.push_back(CompactDouble(fit_.coefficients[0]));
  for (size_t c = 0; c < selected_.size(); ++c) {
    terms.push_back(Format(
        "%s*%s", CompactDouble(fit_.coefficients[c + 1]).c_str(),
        StatNames()[static_cast<size_t>(selected_[c])].c_str()));
  }
  return Format("probing_cost = %s  (R^2 = %.4f, SEE = %s)",
                Join(terms, " + ").c_str(), fit_.r_squared,
                CompactDouble(fit_.standard_error).c_str());
}

ProbingCostEstimator ProbingCostEstimator::Fit(
    const std::vector<sim::SystemStats>& stats,
    const std::vector<double>& probing_costs, double t_threshold) {
  MSCM_CHECK(stats.size() == probing_costs.size());
  MSCM_CHECK(stats.size() >= StatNames().size() * 2);

  std::vector<int> selected;
  for (size_t i = 0; i < StatNames().size(); ++i) {
    selected.push_back(static_cast<int>(i));
  }

  stats::OlsResult fit =
      stats::FitOls(BuildDesign(stats, selected), probing_costs);

  // Backward elimination on |t|: drop the weakest insignificant parameter
  // and refit until all survivors are significant (or one remains).
  while (selected.size() > 1) {
    size_t weakest = 0;
    double weakest_t = 1e300;
    for (size_t c = 0; c < selected.size(); ++c) {
      const double t = std::fabs(fit.t_statistics[c + 1]);
      if (t < weakest_t) {
        weakest_t = t;
        weakest = c;
      }
    }
    if (weakest_t >= t_threshold) break;
    selected.erase(selected.begin() + static_cast<long>(weakest));
    fit = stats::FitOls(BuildDesign(stats, selected), probing_costs);
  }
  return ProbingCostEstimator(std::move(selected), std::move(fit));
}

}  // namespace mscm::core
