#include "core/variable_selection.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/cost_model.h"
#include "stats/correlation.h"
#include "stats/ols.h"

namespace mscm::core {
namespace {

// Observation indices grouped by contention state.
std::vector<std::vector<size_t>> GroupByState(
    const ObservationSet& observations, const ContentionStates& states) {
  std::vector<std::vector<size_t>> groups(
      static_cast<size_t>(states.num_states()));
  for (size_t i = 0; i < observations.size(); ++i) {
    groups[static_cast<size_t>(states.StateOf(observations[i].probing_cost))]
        .push_back(i);
  }
  return groups;
}

// Per-state |corr| values of variable `var` against `targets`.
std::vector<double> StateCorrelations(const ObservationSet& observations,
                                      const ContentionStates& states, int var,
                                      const std::vector<double>& targets) {
  MSCM_CHECK(targets.size() == observations.size());
  std::vector<double> out;
  for (const auto& group : GroupByState(observations, states)) {
    if (group.size() < 3) continue;  // too few points to correlate
    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(group.size());
    ys.reserve(group.size());
    for (size_t i : group) {
      xs.push_back(observations[i].features[static_cast<size_t>(var)]);
      ys.push_back(targets[i]);
    }
    out.push_back(std::fabs(stats::PearsonCorrelation(xs, ys)));
  }
  return out;
}

std::vector<double> Costs(const ObservationSet& observations) {
  std::vector<double> out;
  out.reserve(observations.size());
  for (const Observation& o : observations) out.push_back(o.cost);
  return out;
}

double FitSee(QueryClassId class_id, const ObservationSet& observations,
              const std::vector<int>& selected, const ContentionStates& states,
              QualitativeForm form) {
  return FitCostModel(class_id, observations, selected, states, form)
      .standard_error();
}

}  // namespace

double AverageStateCorrelation(const ObservationSet& observations,
                               const ContentionStates& states, int var,
                               const std::vector<double>& targets) {
  const std::vector<double> cs =
      StateCorrelations(observations, states, var, targets);
  if (cs.empty()) return 0.0;
  double acc = 0.0;
  for (double c : cs) acc += c;
  return acc / static_cast<double>(cs.size());
}

double MaxStateCorrelation(const ObservationSet& observations,
                           const ContentionStates& states, int var,
                           const std::vector<double>& targets) {
  const std::vector<double> cs =
      StateCorrelations(observations, states, var, targets);
  double best = 0.0;
  for (double c : cs) best = std::max(best, c);
  return best;
}

double MaxStateVif(const ObservationSet& observations,
                   const ContentionStates& states, int var,
                   const std::vector<int>& against) {
  if (against.empty()) return 1.0;
  double worst = 1.0;
  for (const auto& group : GroupByState(observations, states)) {
    // Need more rows than columns (intercept + |against| + target check).
    if (group.size() < against.size() + 3) continue;
    stats::Matrix x(group.size(), against.size() + 2);
    for (size_t r = 0; r < group.size(); ++r) {
      const Observation& obs = observations[group[r]];
      x(r, 0) = 1.0;
      for (size_t c = 0; c < against.size(); ++c) {
        x(r, c + 1) =
            obs.features[static_cast<size_t>(against[c])];
      }
      x(r, against.size() + 1) =
          obs.features[static_cast<size_t>(var)];
    }
    worst = std::max(
        worst, stats::VarianceInflationFactor(x, against.size() + 1));
  }
  return worst;
}

std::vector<int> SelectVariables(QueryClassId class_id,
                                 const ObservationSet& observations,
                                 const VariableSet& variables,
                                 const ContentionStates& states,
                                 const VariableSelectionOptions& options,
                                 VariableSelectionTrace* trace) {
  MSCM_CHECK(!observations.empty());
  const std::vector<double> costs = Costs(observations);

  // --- screening on max per-state correlation with the response.
  auto screened = [&](int var) {
    return MaxStateCorrelation(observations, states, var, costs) <
           options.min_max_abs_correlation;
  };

  std::vector<int> current;
  for (int v : variables.BasicIndices()) {
    if (screened(v)) {
      if (trace != nullptr) trace->screened_out.push_back(v);
    } else {
      current.push_back(v);
    }
  }
  std::vector<int> secondary;
  for (int v : variables.SecondaryIndices()) {
    if (screened(v)) {
      if (trace != nullptr) trace->screened_out.push_back(v);
    } else {
      secondary.push_back(v);
    }
  }
  if (current.empty() && !secondary.empty()) {
    // Degenerate screening: fall back to the strongest secondary variable so
    // the model is never empty.
    current.push_back(secondary.front());
    secondary.erase(secondary.begin());
  }
  if (current.empty()) {
    // Fully degenerate screening: no variable cleared the correlation bar.
    // This is a *data* condition, not a programmer error — a sample whose
    // cost variance is dominated by an unmodeled factor (e.g. contention
    // priced under a single forced state) can leave every variable with
    // near-zero marginal correlation. Aborting here would let one bad
    // sample from one autonomous site take down the process through the
    // background refresh path. Keep the strongest variable instead: the
    // fit degrades gracefully (low R², caught by the caller's quality
    // guards and re-triggered drift) rather than dying.
    int best_var = -1;
    double best_corr = -1.0;
    for (size_t v = 0; v < variables.size(); ++v) {
      const double c =
          MaxStateCorrelation(observations, states, static_cast<int>(v), costs);
      if (c > best_corr) {
        best_corr = c;
        best_var = static_cast<int>(v);
      }
    }
    MSCM_CHECK_MSG(best_var >= 0, "no usable explanatory variables");
    current.push_back(best_var);
  }

  // --- backward elimination over the basic set.
  while (current.size() > 1) {
    // Least informative variable: smallest average per-state correlation.
    int weakest = -1;
    double weakest_corr = 1e300;
    for (int v : current) {
      const double c = AverageStateCorrelation(observations, states, v, costs);
      if (c < weakest_corr) {
        weakest_corr = c;
        weakest = v;
      }
    }
    const double see_current =
        FitSee(class_id, observations, current, states, options.form);
    std::vector<int> reduced;
    for (int v : current) {
      if (v != weakest) reduced.push_back(v);
    }
    const double see_reduced =
        FitSee(class_id, observations, reduced, states, options.form);
    const bool removable =
        see_reduced <= see_current * (1.0 + options.backward_see_epsilon);
    if (!removable) break;
    if (trace != nullptr) trace->removed_backward.push_back(weakest);
    current = std::move(reduced);
  }

  // --- multicollinearity screen on the surviving basic set (§4.3): while
  // any variable is (nearly) a linear combination of the others in some
  // state, drop the worst offender. For G1-style classes this removes one of
  // N_t/N_it, which coincide exactly under a full scan.
  while (current.size() > 1) {
    int worst = -1;
    double worst_vif = options.vif_limit;
    for (int v : current) {
      std::vector<int> others;
      for (int u : current) {
        if (u != v) others.push_back(u);
      }
      const double vif = MaxStateVif(observations, states, v, others);
      if (vif > worst_vif) {
        worst_vif = vif;
        worst = v;
      }
    }
    if (worst < 0) break;
    if (trace != nullptr) trace->rejected_vif.push_back(worst);
    current.erase(std::find(current.begin(), current.end(), worst));
  }

  // --- forward selection over the secondary set.
  std::vector<int> remaining = secondary;
  while (!remaining.empty()) {
    // Residuals of the current model.
    const CostModel model = FitCostModel(class_id, observations, current,
                                         states, options.form);
    const std::vector<double>& residuals = model.fit().residuals;

    // Candidate with the strongest average per-state residual correlation.
    int best = -1;
    size_t best_pos = 0;
    double best_corr = -1.0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const double c = AverageStateCorrelation(observations, states,
                                               remaining[i], residuals);
      if (c > best_corr) {
        best_corr = c;
        best = remaining[i];
        best_pos = i;
      }
    }
    MSCM_CHECK(best >= 0);
    remaining.erase(remaining.begin() + static_cast<long>(best_pos));

    // Multicollinearity screen (§4.3).
    if (MaxStateVif(observations, states, best, current) >
        options.vif_limit) {
      if (trace != nullptr) trace->rejected_vif.push_back(best);
      continue;
    }

    const double see_current = model.standard_error();
    std::vector<int> augmented = current;
    augmented.push_back(best);
    const double see_aug =
        FitSee(class_id, observations, augmented, states, options.form);
    const bool addable =
        see_aug < see_current &&
        (see_current - see_aug) / std::max(see_current, 1e-12) >
            options.forward_see_epsilon;
    if (!addable) break;  // most secondary variables are unimportant; stop
    if (trace != nullptr) trace->added_forward.push_back(best);
    current = std::move(augmented);
  }

  std::sort(current.begin(), current.end());
  return current;
}

}  // namespace mscm::core
