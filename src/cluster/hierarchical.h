// Agglomerative hierarchical clustering with centroid linkage, as used by
// the ICMA contention-state determination algorithm (paper §3.3): each data
// object starts in its own cluster and the two clusters whose centroids are
// closest are merged repeatedly until the desired number of clusters remains.
//
// The data here is one-dimensional (sampled probing-query costs). With
// centroid linkage in 1-D, the closest pair of centroids is always adjacent
// in sorted order, so the implementation keeps clusters sorted and only
// examines adjacent pairs — O(n log n + k·n) overall and exactly equivalent
// to the general algorithm.

#ifndef MSCM_CLUSTER_HIERARCHICAL_H_
#define MSCM_CLUSTER_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

namespace mscm::cluster {

struct Cluster {
  double centroid = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
  // Indices into the original input vector.
  std::vector<size_t> members;
};

// Clusters `xs` into exactly `k` clusters (or xs.size() clusters when k
// exceeds the input size). Returned clusters are sorted by centroid.
std::vector<Cluster> AgglomerativeCluster1D(const std::vector<double>& xs,
                                            size_t k);

// Runs the agglomeration until the smallest gap between adjacent cluster
// centroids would exceed `max_merge_distance`, i.e. keeps merging while the
// closest pair is within the threshold. Useful for picking a natural number
// of clusters.
std::vector<Cluster> AgglomerativeClusterByDistance(
    const std::vector<double>& xs, double max_merge_distance);

}  // namespace mscm::cluster

#endif  // MSCM_CLUSTER_HIERARCHICAL_H_
