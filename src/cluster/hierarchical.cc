#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace mscm::cluster {
namespace {

std::vector<Cluster> InitSingletons(const std::vector<double>& xs) {
  // Sort indices by value; each point becomes a singleton cluster.
  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<Cluster> clusters;
  clusters.reserve(xs.size());
  for (size_t idx : order) {
    Cluster c;
    c.centroid = xs[idx];
    c.min = xs[idx];
    c.max = xs[idx];
    c.count = 1;
    c.members = {idx};
    clusters.push_back(std::move(c));
  }
  return clusters;
}

void MergeInto(Cluster& dst, Cluster& src) {
  const double total = static_cast<double>(dst.count + src.count);
  dst.centroid = (dst.centroid * static_cast<double>(dst.count) +
                  src.centroid * static_cast<double>(src.count)) /
                 total;
  dst.min = std::min(dst.min, src.min);
  dst.max = std::max(dst.max, src.max);
  dst.count += src.count;
  dst.members.insert(dst.members.end(), src.members.begin(),
                     src.members.end());
}

// Finds the adjacent pair with minimal centroid distance; returns the index
// of the left element, or SIZE_MAX when fewer than two clusters remain.
size_t ClosestAdjacentPair(const std::vector<Cluster>& clusters,
                           double* distance) {
  size_t best = std::numeric_limits<size_t>::max();
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < clusters.size(); ++i) {
    const double d = clusters[i + 1].centroid - clusters[i].centroid;
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  if (distance != nullptr) *distance = best_dist;
  return best;
}

}  // namespace

std::vector<Cluster> AgglomerativeCluster1D(const std::vector<double>& xs,
                                            size_t k) {
  MSCM_CHECK(k >= 1);
  std::vector<Cluster> clusters = InitSingletons(xs);
  while (clusters.size() > k) {
    const size_t i = ClosestAdjacentPair(clusters, nullptr);
    MSCM_CHECK(i != std::numeric_limits<size_t>::max());
    MergeInto(clusters[i], clusters[i + 1]);
    clusters.erase(clusters.begin() + static_cast<long>(i) + 1);
  }
  return clusters;
}

std::vector<Cluster> AgglomerativeClusterByDistance(
    const std::vector<double>& xs, double max_merge_distance) {
  MSCM_CHECK(max_merge_distance >= 0.0);
  std::vector<Cluster> clusters = InitSingletons(xs);
  while (clusters.size() > 1) {
    double dist = 0.0;
    const size_t i = ClosestAdjacentPair(clusters, &dist);
    if (dist > max_merge_distance) break;
    MergeInto(clusters[i], clusters[i + 1]);
    clusters.erase(clusters.begin() + static_cast<long>(i) + 1);
  }
  return clusters;
}

}  // namespace mscm::cluster
