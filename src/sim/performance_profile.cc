#include "sim/performance_profile.h"

namespace mscm::sim {

PerformanceProfile PerformanceProfile::Alpha() {
  PerformanceProfile p;
  p.name = "alpha";
  p.init_seconds = 0.035;
  p.seq_page_seconds = 0.0042;
  p.rand_page_seconds = 0.0118;
  p.tuple_cpu_seconds = 13e-6;
  p.pred_eval_seconds = 6.5e-6;
  p.compare_seconds = 2.6e-6;
  p.hash_seconds = 3.8e-6;
  p.result_tuple_seconds = 9e-6;
  p.result_byte_seconds = 7e-9;
  p.base_buffer_hit = 0.62;
  p.noise_cv = 0.06;
  p.planner.prefer_hash_join = true;
  p.planner.nonclustered_selectivity_limit = 0.08;
  return p;
}

PerformanceProfile PerformanceProfile::Beta() {
  PerformanceProfile p;
  p.name = "beta";
  p.init_seconds = 0.018;
  p.seq_page_seconds = 0.0048;
  p.rand_page_seconds = 0.0102;
  p.tuple_cpu_seconds = 10e-6;
  p.pred_eval_seconds = 5.2e-6;
  p.compare_seconds = 2.2e-6;
  p.hash_seconds = 4.4e-6;
  p.result_tuple_seconds = 7e-6;
  p.result_byte_seconds = 5e-9;
  p.base_buffer_hit = 0.52;
  p.noise_cv = 0.07;
  p.planner.prefer_hash_join = false;  // sort-merge preferred
  p.planner.nonclustered_selectivity_limit = 0.06;
  return p;
}

}  // namespace mscm::sim
