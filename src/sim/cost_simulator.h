// Converts physical work counters into simulated elapsed time under a given
// contention level. This is the library's stand-in for wall-clock
// measurement against a real DBMS: elapsed = Σ (work unit × unit time ×
// resource slowdown) × log-normal noise. No real time passes — experiments
// that "run" hours of query workload complete in milliseconds.

#ifndef MSCM_SIM_COST_SIMULATOR_H_
#define MSCM_SIM_COST_SIMULATOR_H_

#include "common/rng.h"
#include "engine/work_counters.h"
#include "sim/contention_model.h"
#include "sim/performance_profile.h"

namespace mscm::sim {

// Deterministic (noise-free) elapsed seconds for the given work.
double NoiselessElapsedSeconds(const engine::WorkCounters& work,
                               const SlowdownFactors& slowdown,
                               const PerformanceProfile& profile);

// Observed elapsed seconds including measurement noise.
double SimulateElapsedSeconds(const engine::WorkCounters& work,
                              const SlowdownFactors& slowdown,
                              const PerformanceProfile& profile, Rng& rng);

}  // namespace mscm::sim

#endif  // MSCM_SIM_COST_SIMULATOR_H_
