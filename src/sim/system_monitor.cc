#include "sim/system_monitor.h"

#include <algorithm>
#include <cmath>

namespace mscm::sim {

void SystemMonitor::Tick(const MachineLoad& load, double dt_seconds) {
  MSCM_CHECK(dt_seconds >= 0.0);
  auto ema = [dt_seconds](double current, double target, double horizon) {
    const double alpha = 1.0 - std::exp(-dt_seconds / horizon);
    return current + alpha * (target - current);
  };
  load_avg_1_ = ema(load_avg_1_, load.num_processes, 60.0);
  load_avg_5_ = ema(load_avg_5_, load.num_processes, 300.0);
  load_avg_15_ = ema(load_avg_15_, load.num_processes, 900.0);
}

SystemStats SystemMonitor::Snapshot(const MachineLoad& load) {
  auto noisy = [this](double v, double cv) {
    return std::max(0.0, v * (1.0 + cv * rng_.Gaussian()));
  };

  SystemStats s;
  const double cpu_util =
      std::min(1.0, (load.cpu_demand + 0.05) / machine_.cpu_cores);
  s.processes_running = noisy(std::min(load.num_processes, machine_.cpu_cores +
                                        load.num_processes * cpu_util * 0.3),
                              0.10);
  s.processes_sleeping =
      noisy(std::max(0.0, load.num_processes - s.processes_running), 0.05);
  s.pct_user = noisy(72.0 * cpu_util, 0.05);
  s.pct_system = noisy(18.0 * cpu_util, 0.08);
  s.pct_idle = std::max(0.0, 100.0 - s.pct_user - s.pct_system);
  s.load_avg_1 = noisy(std::max(load_avg_1_, load.num_processes * 0.8), 0.05);
  s.load_avg_5 = load_avg_5_;
  s.load_avg_15 = load_avg_15_;

  s.mem_total = machine_.memory_mb;
  s.mem_used = noisy(std::min(machine_.memory_mb,
                              60.0 + load.memory_mb), 0.03);
  s.mem_free = std::max(0.0, machine_.memory_mb - s.mem_used);
  const double overcommit =
      std::max(0.0, 60.0 + load.memory_mb - machine_.memory_mb);
  s.swap_used = noisy(overcommit, 0.10);
  s.swapped_in = noisy(overcommit * 0.2, 0.30);
  s.swapped_out = noisy(overcommit * 0.25, 0.30);

  s.reads_per_sec = noisy(load.io_rate * 0.7, 0.08);
  s.writes_per_sec = noisy(load.io_rate * 0.3, 0.10);
  s.pct_disk_util = noisy(
      100.0 * std::min(load.io_rate / machine_.disk_io_capacity, 1.0), 0.06);

  s.context_switches_per_sec = noisy(90.0 + 45.0 * load.num_processes, 0.10);
  s.syscalls_per_sec = noisy(300.0 + 180.0 * load.num_processes, 0.12);
  return s;
}

}  // namespace mscm::sim
